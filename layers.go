// Package layers is the public API of the layered-analysis framework, a
// reproduction of Moses & Rajsbaum, "The Unified Structure of Consensus: a
// Layered Analysis Approach" (PODC 1998).
//
// The framework implements the paper's four models — the t-resilient
// synchronous message-passing model, the single-mobile-failure model M^mf,
// asynchronous read/write shared memory M^rw, and asynchronous message
// passing — each equipped with the paper's layerings (S1, S^t, the
// synchronic layering S^rw, and the permutation layering S^per), and the
// valence/connectivity machinery that drives the paper's impossibility
// proofs and lower bounds. On top of it sit executable analyses:
//
//   - Certify exhaustively checks a consensus protocol over a layered
//     submodel and returns OK or a concrete witness run;
//   - BivalentChain constructs the Theorem 4.2 / Lemma 6.1 adversary run;
//   - AnalyzeLayer reports the similarity and valence structure of a layer
//     S(x);
//   - the simplex/task API evaluates the Section 7 1-thick-connectivity
//     characterization of 1-resilient solvability;
//   - the sim API executes runs under seeded, scripted, or adversarial
//     schedulers, and runs synchronous protocols as concurrent goroutine
//     clusters.
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-claim vs. measured
// record.
package layers

import (
	"time"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/knowledge"
	"repro/internal/mobile"
	"repro/internal/proto"
	"repro/internal/resilient"
	"repro/internal/shmem"
	"repro/internal/simplex"
	"repro/internal/snapshot"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// Core vocabulary re-exports.
type (
	// State is a global state: a local state per process plus the
	// environment, observed through canonical encodings.
	State = core.State
	// Succ is a labeled successor of a state.
	Succ = core.Succ
	// Successor is the paper's successor function S : G -> 2^G \ {∅}.
	Successor = core.Successor
	// Model couples a successor function with its initial states.
	Model = core.Model
	// Execution is a finite execution: an initial state plus labeled steps.
	Execution = core.Execution
	// Step is one transition of an execution.
	Step = core.Step
	// Graph is an explored reachable state graph.
	Graph = core.Graph
)

// Protocol interfaces re-exports.
type (
	// SyncProtocol is a protocol for the round-based synchronous models.
	SyncProtocol = proto.SyncProtocol
	// SMProtocol is a protocol for the shared-memory model M^rw.
	SMProtocol = proto.SMProtocol
	// MPProtocol is a protocol for asynchronous message passing.
	MPProtocol = proto.MPProtocol
)

// Analysis vocabulary re-exports.
type (
	// Oracle computes horizon-bounded valence.
	Oracle = valence.Oracle
	// LayerReport is the connectivity analysis of one layer S(x).
	LayerReport = valence.LayerReport
	// Chain is a bivalent chain construction result.
	Chain = valence.Chain
	// Witness is the outcome of certifying a protocol.
	Witness = valence.Witness
	// WitnessKind classifies certification outcomes.
	WitnessKind = valence.WitnessKind
	// HorizonFunc gives the valence lookahead per chain depth.
	HorizonFunc = valence.HorizonFunc
)

// Witness kinds.
const (
	OK                 = valence.OK
	AgreementViolation = valence.AgreementViolation
	ValidityViolation  = valence.ValidityViolation
	UndecidedAtBound   = valence.UndecidedAtBound
	DecisionChanged    = valence.DecisionChanged
)

// Undecided is the sentinel decision value.
const Undecided = core.Undecided

// MobileS1 returns the single-mobile-failure model M^mf with the S1
// layering (Section 5) for protocol p on n processes.
func MobileS1(p SyncProtocol, n int) *mobile.Model { return mobile.New(p, n) }

// SyncS1 returns the t-resilient synchronous model with the S1 layering
// (failures recorded and silenced, no budget cap).
func SyncS1(p SyncProtocol, n int) *syncmp.Model { return syncmp.NewS1(p, n) }

// SyncSt returns the t-resilient synchronous model with the S^t layering
// of Section 6.
func SyncSt(p SyncProtocol, n, t int) *syncmp.Model { return syncmp.NewSt(p, n, t) }

// SharedMemory returns M^rw with the synchronic layering S^rw (Section
// 5.1).
func SharedMemory(p SMProtocol, n int) *shmem.Model { return shmem.New(p, n) }

// AsyncMessagePassing returns the asynchronous message-passing model with
// the permutation layering S^per (Section 5.1).
func AsyncMessagePassing(p MPProtocol, n int) *asyncmp.Model { return asyncmp.New(p, n) }

// AsyncSynchronic returns the synchronic layering for asynchronous message
// passing — the paper's remark after Corollary 5.4: the analogous
// nearly-synchronous submodel in which messages are delayed, never lost,
// and consensus is still impossible.
func AsyncSynchronic(p MPProtocol, n int) *asyncmp.Synchronic { return asyncmp.NewSynchronic(p, n) }

// IteratedImmediateSnapshot returns the wait-free iterated immediate
// snapshot model (one of the extension models of Corollary 7.3); each layer
// is an ordered partition of the processes.
func IteratedImmediateSnapshot(p SMProtocol, n int) *iis.Model { return iis.New(p, n) }

// SnapshotMemory returns the atomic-snapshot shared-memory model under the
// permutation layering (the other extension model of Corollary 7.3).
func SnapshotMemory(p SMProtocol, n int) *snapshot.Model { return snapshot.New(p, n) }

// SyncStMulti returns the t-resilient synchronous model whose layers allow
// up to maxPerRound simultaneous new failures (the Section 6 wasted-faults
// analysis).
func SyncStMulti(p SyncProtocol, n, t, maxPerRound int) *syncmp.MultiModel {
	return syncmp.NewStMulti(p, n, t, maxPerRound)
}

// SyncStGeneral is SyncSt under general-omission failures: failed
// processes also stop receiving. An ablation of the paper's
// sending-omission assumption.
func SyncStGeneral(p SyncProtocol, n, t int) *syncmp.Model { return syncmp.NewStGeneral(p, n, t) }

// MobileFull returns the unrestricted M^mf (arbitrary omission sets, not
// only the S1 prefixes); the S1 submodel's layers are subsets of its
// layers.
func MobileFull(p SyncProtocol, n int) *mobile.FullModel { return mobile.NewFull(p, n) }

// NewOracle returns a horizon-bounded valence oracle over a successor
// function.
func NewOracle(s Successor) *Oracle { return valence.NewOracle(s) }

// Certify exhaustively checks the consensus requirements (agreement,
// validity, decision-by-bound, write-once decisions) over all runs of the
// layered submodel up to `bound` layers. maxVisits caps the search (0 =
// unbounded).
func Certify(m Model, bound, maxVisits int) (*Witness, error) {
	return valence.Certify(m, bound, maxVisits)
}

// AnalyzeLayer reports the similarity and valence structure of S(x), with
// valences computed to the given lookahead horizon.
func AnalyzeLayer(m Model, o *Oracle, x State, horizon int) *LayerReport {
	return valence.AnalyzeLayer(m, o, x, horizon)
}

// BivalentChain constructs a bivalent execution of `target` layers (the
// Theorem 4.2 / Lemma 6.1 adversary), choosing a bivalent successor at
// every step.
func BivalentChain(m Model, o *Oracle, horizon HorizonFunc, target int) (*Chain, error) {
	return valence.BivalentChain(m, o, horizon, target)
}

// ConstHorizon returns the constant lookahead h at every chain depth.
func ConstHorizon(h int) HorizonFunc { return valence.ConstHorizon(h) }

// DecreasingHorizon returns bound-depth (floored at min), the exact
// horizon for protocols deciding within `bound` layers.
func DecreasingHorizon(bound, min int) HorizonFunc { return valence.DecreasingHorizon(bound, min) }

// ErrNodeBudget is returned (wrapped) by Explore and ExploreParallel when
// the node budget is exhausted; the partial graph explored so far is
// returned alongside it.
var ErrNodeBudget = core.ErrNodeBudget

// Explore builds the reachable state graph of a model to the given depth;
// maxNodes caps the node count (0 = unbounded). On budget exhaustion the
// partial graph is returned together with a wrapped ErrNodeBudget.
func Explore(m Model, depth, maxNodes int) (*Graph, error) {
	return core.Explore(m, depth, maxNodes)
}

// ExploreParallel is Explore with successor enumeration sharded across
// `workers` goroutines (workers <= 0 means GOMAXPROCS). The resulting graph
// is bit-identical to Explore's: same node set, edge order, and depths.
func ExploreParallel(m Model, depth, maxNodes, workers int) (*Graph, error) {
	return core.ExploreParallel(m, depth, maxNodes, workers)
}

// IDGraph is the interned CSR state graph: dense uint32 node ids, flat
// edge arrays, per-depth layers, and parent pointers for witness walkback.
type IDGraph = core.IDGraph

// Field is the whole-graph valence field: the valence mask of every node
// of an explored IDGraph, computed in one bottom-up O(V+E) sweep.
type Field = valence.Field

// ExploreID builds the interned CSR state graph of a model to the given
// depth; maxNodes caps the node count (0 = unbounded).
func ExploreID(m Model, depth, maxNodes int) (*IDGraph, error) {
	return core.ExploreID(m, depth, maxNodes)
}

// ExploreIDParallel is ExploreID with successor enumeration sharded across
// `workers` goroutines (workers <= 0 means GOMAXPROCS); the graph is
// bit-identical to ExploreID's.
func ExploreIDParallel(m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	return core.ExploreIDParallel(m, depth, maxNodes, workers)
}

// NewField computes the valence field of an explored graph: every node's
// mask in one deepest-first sweep, no recursion, no maps.
func NewField(g *IDGraph) *Field { return valence.NewField(g) }

// NewFieldParallel is NewField with each layer's OR-propagation sharded
// across `workers` goroutines; the result is bit-identical.
func NewFieldParallel(g *IDGraph, workers int) *Field { return valence.NewFieldParallel(g, workers) }

// ErrNotGraded is returned by CertifyGraph for graphs with same-depth
// shortcut edges (which the asynchronous models produce at small n).
var ErrNotGraded = valence.ErrNotGraded

// CertifyGraph certifies consensus by one forward pass over an already
// materialized graph, with per-(node, input-mask) visited bitsets instead
// of the recursive certifier's memo map. The witness is identical to
// Certify's bit for bit. Graded graphs only (ErrNotGraded otherwise).
func CertifyGraph(g *IDGraph, maxVisits int) (*Witness, error) {
	return valence.CertifyGraph(g, maxVisits)
}

// CertifyFast is Certify through the graph-backed engine: it explores the
// model's IDGraph in parallel and runs CertifyGraph, falling back to the
// recursive certifier for non-graded graphs. The witness is identical to
// Certify's.
func CertifyFast(m Model, bound, maxVisits int) (*Witness, error) {
	return valence.CertifyFast(m, bound, maxVisits)
}

// Ctx is the framework's lightweight cancellation context: a done channel
// plus an optional deadline, polled by the engines at layer/shard
// granularity. A nil *Ctx is valid and never cancels.
type Ctx = resilient.Ctx

// PanicError is the error a panic-safe worker pool recovers a worker
// panic into: shard id, panic value, stack, and a counter snapshot.
type PanicError = resilient.PanicError

// Resilience sentinels: ErrPartial is the root every interruption-family
// error wraps (budget exhaustion, cancellation, deadline, injected
// faults), so errors.Is(err, ErrPartial) identifies any partial result.
var (
	ErrPartial  = resilient.ErrPartial
	ErrCanceled = resilient.ErrCanceled
	ErrDeadline = resilient.ErrDeadline
)

// Supervisor runs checkpointable engine ops under a retry policy:
// exponential backoff with seeded jitter, per-error-class decisions, and a
// degradation ladder, resuming each attempt from the previous attempt's
// checkpoint.
type Supervisor = resilient.Supervisor

// Attempt is what a supervised op receives: the attempt's child context
// (carrying any resume snapshot) plus the degraded worker/kernel
// parameters to honor.
type Attempt = resilient.Attempt

// Policy configures a Supervisor (attempt/backoff/budget limits,
// classification).
type Policy = resilient.Policy

// Store is the crash-durable checkpoint generation store: atomic
// write-fsync-rename saves, keep-last-K rotation, and corrupt-generation
// fallback on load.
type Store = resilient.Store

// ErrCorruptCheckpoint is returned (wrapped) when a checkpoint file is
// torn, truncated, or fails its section CRCs; a Store falls back to the
// previous generation, a Supervisor fails fast.
var ErrCorruptCheckpoint = resilient.ErrCorruptCheckpoint

// ErrMemory is the soft-memory-limit sentinel; see SetSoftMemLimit.
var ErrMemory = resilient.ErrMemory

// SetSoftMemLimit arms (0 disarms) the advisory heap limit the engines
// poll at layer boundaries; crossing it interrupts the run with a
// checkpoint and an error wrapping ErrMemory, which the Supervisor treats
// as a degradation signal.
func SetSoftMemLimit(bytes int64) { resilient.SetSoftMemLimit(bytes) }

// NewFieldScalarCtx computes the valence field with the serial scalar
// kernel — the degradation ladder's last rung. The result is bit-identical
// to NewFieldParallel's, and the two kernels share checkpoints.
func NewFieldScalarCtx(ctx *Ctx, g *IDGraph) (*Field, error) {
	return valence.NewFieldScalarCtx(ctx, g)
}

// Background returns a cancelable context with no deadline.
func Background() *Ctx { return resilient.Background() }

// WithCancel returns a context and a function canceling it with
// ErrCanceled.
func WithCancel() (*Ctx, func()) { return resilient.WithCancel() }

// WithDeadline returns a context canceled with ErrDeadline after d, and a
// stop function releasing the timer.
func WithDeadline(d time.Duration) (*Ctx, func()) { return resilient.WithDeadline(d) }

// SaveCheckpoint writes the checkpoint attached to an interruption error
// (if any) to path, reporting whether one was written.
func SaveCheckpoint(path string, err error) (bool, error) {
	return resilient.SaveCheckpoint(path, err)
}

// LoadCheckpoint reads a checkpoint file's sections; hand them to a Ctx
// via SetResume and the interrupted engine resumes where it stopped.
func LoadCheckpoint(path string) ([]resilient.Section, error) {
	return resilient.LoadFile(path)
}

// ExploreCtx is Explore under a cancellation context: on interruption the
// error wraps ErrPartial and carries a resumable checkpoint.
func ExploreCtx(ctx *Ctx, m Model, depth, maxNodes int) (*Graph, error) {
	return core.ExploreCtx(ctx, m, depth, maxNodes)
}

// ExploreParallelCtx is ExploreParallel under a cancellation context.
func ExploreParallelCtx(ctx *Ctx, m Model, depth, maxNodes, workers int) (*Graph, error) {
	return core.ExploreParallelCtx(ctx, m, depth, maxNodes, workers)
}

// ExploreIDCtx is ExploreIDParallel under a cancellation context; a
// checkpoint loaded into ctx resumes the interrupted exploration and the
// finished graph is bit-identical to an uninterrupted run's.
func ExploreIDCtx(ctx *Ctx, m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	return core.ExploreIDCtx(ctx, m, depth, maxNodes, workers)
}

// CertifyGraphCtx is CertifyGraph under a cancellation context, with
// checkpoint/resume of the certification pass.
func CertifyGraphCtx(ctx *Ctx, g *IDGraph, maxVisits int) (*Witness, error) {
	return valence.CertifyGraphCtx(ctx, g, maxVisits)
}

// CertifyFastCtx is CertifyFast under a cancellation context.
func CertifyFastCtx(ctx *Ctx, m Model, bound, maxVisits int) (*Witness, error) {
	return valence.CertifyFastCtx(ctx, m, bound, maxVisits)
}

// NewFieldCtx is NewField under a cancellation context.
func NewFieldCtx(ctx *Ctx, g *IDGraph) (*Field, error) {
	return valence.NewFieldCtx(ctx, g)
}

// NewFieldParallelCtx is NewFieldParallel under a cancellation context,
// with checkpoint/resume of the sweep.
func NewFieldParallelCtx(ctx *Ctx, g *IDGraph, workers int) (*Field, error) {
	return valence.NewFieldParallelCtx(ctx, g, workers)
}

// NewKnowledgeClassesLayer computes the common-knowledge partition of one
// depth layer of a materialized graph, in discovery order.
func NewKnowledgeClassesLayer(g *IDGraph, d int) *KnowledgeClasses {
	return knowledge.NewClassesLayer(g, d)
}

// Similar reports the paper's similarity relation x ~s y and its
// witnessing process.
func Similar(x, y State) (j int, ok bool) { return core.Similar(x, y) }

// AgreeModulo reports whether two states agree modulo process j.
func AgreeModulo(x, y State, j int) bool { return core.AgreeModulo(x, y, j) }

// Topology vocabulary re-exports (Section 7).
type (
	// Vertex is a ⟨process, value⟩ pair.
	Vertex = simplex.Vertex
	// Simplex is a set of vertices with distinct process ids.
	Simplex = simplex.Simplex
	// Complex is a containment-closed set of simplexes.
	Complex = simplex.Complex
	// Problem is a decision problem ⟨I, O, Δ⟩.
	Problem = simplex.Problem
	// DeltaFunc maps input simplexes to allowed output simplexes.
	DeltaFunc = simplex.DeltaFunc
)

// NewComplex returns a complex seeded with the given simplexes (and their
// faces).
func NewComplex(simplexes ...Simplex) *Complex { return simplex.NewComplex(simplexes...) }

// FromValues builds the n-vertex simplex assigning values[i] to process i.
func FromValues(values []int) Simplex { return simplex.FromValues(values) }

// ProtocolViolation describes one conformance problem found by the
// protocol validators.
type ProtocolViolation = proto.Violation

// ValidateSyncProtocol checks a synchronous protocol's contract
// (determinism, send-vector length, write-once decisions) over `rounds`
// failure-free rounds on every binary input for n processes. Run it on
// your protocol before handing it to the analysis engine.
func ValidateSyncProtocol(p SyncProtocol, n, rounds int) []ProtocolViolation {
	return proto.ValidateSync(p, n, rounds)
}

// ValidateSMProtocol is ValidateSyncProtocol's shared-memory analogue.
func ValidateSMProtocol(p SMProtocol, n, phases int) []ProtocolViolation {
	return proto.ValidateSM(p, n, phases)
}
