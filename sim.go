package layers

import (
	"repro/internal/decision"
	"repro/internal/knowledge"
	"repro/internal/sim"
	"repro/internal/simplex"
	"repro/internal/tasks"
	"repro/internal/trace"
	"repro/internal/valence"
)

// Simulation re-exports: executing concrete runs.
type (
	// Scheduler picks environment actions during simulated runs.
	Scheduler = sim.Scheduler
	// Runner executes runs of a model under a scheduler.
	Runner = sim.Runner
	// Outcome summarizes one finished run.
	Outcome = sim.Outcome
	// Stats aggregates outcomes over many runs.
	Stats = sim.Stats
	// Cluster executes a synchronous protocol as concurrent goroutine
	// workers.
	Cluster = sim.Cluster
	// DropRule injects message loss into Cluster rounds.
	DropRule = sim.DropRule
	// Crash is a scheduler failing one process at a chosen layer.
	Crash = sim.Crash
	// FirstAction is the failure-free scheduler.
	FirstAction = sim.FirstAction
	// Starve is the 1-resilient adversary for permutation-layered models:
	// it never schedules the target process.
	Starve = sim.Starve
	// AsyncCluster executes an asynchronous message-passing protocol as
	// concurrent goroutine workers with controller-routed mailboxes.
	AsyncCluster = sim.AsyncCluster
)

// NewAsyncCluster starts a goroutine-per-process asynchronous cluster
// running protocol p from the given inputs. Close it when done.
func NewAsyncCluster(p MPProtocol, inputs []int) *AsyncCluster {
	return sim.NewAsyncCluster(p, inputs)
}

// NewRandomScheduler returns a seeded uniformly-random scheduler.
func NewRandomScheduler(seed int64) Scheduler { return sim.NewRandom(seed) }

// NewScriptScheduler replays a fixed action sequence (e.g. a witness
// execution's Actions()).
func NewScriptScheduler(actions []string) Scheduler { return sim.NewScript(actions) }

// NewAdversaryScheduler returns the bivalence-chasing scheduler of
// Lemma 4.1.
func NewAdversaryScheduler(o *Oracle, horizon HorizonFunc) Scheduler {
	return sim.NewAdversary(o, horizon)
}

// NewCluster starts a goroutine-per-process cluster running a synchronous
// protocol from the given inputs. Close it when done.
func NewCluster(p SyncProtocol, inputs []int) *Cluster { return sim.NewCluster(p, inputs) }

// Trace re-exports: rendering runs and state diffs.

// FormatExecution renders an execution layer by layer.
func FormatExecution(e *Execution) string { return trace.FormatExecution(e) }

// FormatState renders one state's decision/failure flags.
func FormatState(x State) string { return trace.FormatState(x) }

// CompareStates describes how two states differ and whether they are
// similar.
func CompareStates(x, y State) trace.Diff { return trace.Compare(x, y) }

// Task re-exports: the Section 7 decision-problem zoo.
type (
	// Task couples a decision problem with its ground-truth verdict.
	Task = tasks.Task
	// Covering is a pair of output complexes covering a run set.
	Covering = decision.Covering
)

// TaskZoo returns the standard decision problems for n processes.
func TaskZoo(n int) []Task { return tasks.Zoo(n) }

// BinaryConsensusTask returns the consensus decision problem.
func BinaryConsensusTask(n int) Task { return tasks.BinaryConsensus(n) }

// ConsensusCovering returns the covering reducing generalized valence to
// binary valence.
func ConsensusCovering(n int) Covering { return decision.ConsensusCovering(n) }

// CollectDecidedSimplexes gathers the decided output simplexes of a
// model's runs to the given depth.
func CollectDecidedSimplexes(m Model, depth, maxNodes int) (map[string]simplex.Simplex, error) {
	return decision.CollectDecidedSimplexes(m, depth, maxNodes)
}

// TaskWitness is the outcome of certifying a protocol against a general
// decision problem.
type TaskWitness = decision.TaskWitness

// Task certification outcomes.
const (
	TaskOK               = decision.TaskOK
	TaskOutputViolation  = decision.TaskOutputViolation
	TaskUndecidedAtBound = decision.TaskUndecidedAtBound
	TaskDecisionChanged  = decision.TaskDecisionChanged
)

// CertifyTask exhaustively checks that a protocol solves the decision
// problem Δ over the layered submodel from the given initial states:
// write-once decisions, everyone non-failed decided by the bound, and the
// decided simplex a face of some simplex of Δ(input). Agreement is not
// required — that is the point of general decision problems.
func CertifyTask(m Model, inits []State, delta DeltaFunc, bound, maxVisits int) (*TaskWitness, error) {
	return decision.CertifyTask(m, inits, delta, bound, maxVisits)
}

// CertifyFrom is Certify over an explicit set of initial states — e.g. a
// multivalued Con_0 built with a model's Initial method.
func CertifyFrom(m Model, inits []State, bound, maxVisits int) (*Witness, error) {
	return valence.CertifyFrom(m, inits, bound, maxVisits)
}

// CertifyParallel runs Certify's per-initial-state searches concurrently
// and returns the same (deterministic) verdict.
func CertifyParallel(m Model, bound, maxVisitsPerRoot, workers int) (*Witness, error) {
	return valence.CertifyParallel(m, bound, maxVisitsPerRoot, workers)
}

// DecisionDepth is the decision-time landscape of a protocol's runs.
type DecisionDepth = valence.DecisionDepth

// MeasureDecisionDepth walks every run of length bound from the initial
// states and histograms the first-all-decided layer.
func MeasureDecisionDepth(m Model, inits []State, bound, maxRuns int) (*DecisionDepth, error) {
	return valence.MeasureDecisionDepth(m, inits, bound, maxRuns)
}

// WidthProfile classifies every reachable state's valence per depth.
type WidthProfile = valence.WidthProfile

// BivalenceWidth measures how many bivalent/univalent states exist at each
// exploration depth — the adversary's room to maneuver.
func BivalenceWidth(m Model, o *Oracle, horizon HorizonFunc, depth, maxNodes int) (*WidthProfile, error) {
	return valence.BivalenceWidth(m, o, horizon, depth, maxNodes)
}

// Knowledge re-exports: the Dwork–Moses connection.

// KnowledgeClasses partitions states into common-knowledge classes among
// their non-failed processes.
type KnowledgeClasses = knowledge.Classes

// NewKnowledgeClasses computes the common-knowledge partition of a state
// set (typically: all states reachable at one round).
func NewKnowledgeClasses(states []State) *KnowledgeClasses {
	return knowledge.NewClasses(states)
}

// DecidedValueFact is the fact "some non-failed process has decided v".
func DecidedValueFact(v int) func(State) bool { return knowledge.DecidedValueFact(v) }
