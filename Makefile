GO ?= go

.PHONY: all build test tier1 race vet lint vettool chaos bench profile clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the engine-invariant analyzer suite (internal/analysis) over
# the whole module: detorder, internfreeze, obsguard, senterr, parshard.
# Exit status 1 means findings; suppress a deliberate exception with a
# //lint:<token> comment on the flagged line or the line above (the token
# is per-analyzer: nondet, mutates, obs, sentinel, unsync).
lint:
	$(GO) run ./cmd/lint ./...

# vettool runs the same suite through go vet's -vettool protocol, which
# adds build-cache incrementality and covers _test.go files (senterr).
vettool:
	$(GO) build -o bin/lint ./cmd/lint
	$(GO) vet -vettool=$(CURDIR)/bin/lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestFieldPropertyMatchesOracle|TestCertifyGraphMatchesRecursive' ./internal/valence
	$(GO) test -race ./internal/obs ./internal/cli ./cmd/lint

# chaos runs the deterministic fault-injection suite under the race
# detector: every named fault point (chaos.Points) is driven through the
# delay/panic/cancel/budget matrix plus seeded random plans, and the
# checkpoint/resume property tests replay interrupted explorations,
# certifications, and field sweeps to bit-identical results.
chaos:
	$(GO) test -race ./internal/chaos
	$(GO) test -race -run 'Checkpoint|Resum|Fault|Panic' ./internal/core ./internal/valence ./internal/resilient

# tier1 is the gate every change must keep green: full build, vet, the
# engine-invariant lint suite, the complete test suite (including the
# golden experiment outputs in the root package), the race detector
# over the internal packages that use concurrency (parallel exploration,
# parallel certification, shared successor caches, and the sharded
# valence-field sweep, whose randomized property test is re-run explicitly
# above; ./internal/... also covers internal/analysis and its fixture
# tests), and the chaos fault-injection suite.
tier1: build vet lint test race chaos

# bench regenerates BENCH_3.json from the E1–E11 experiment benchmarks,
# the certifier benchmarks, and the resilience overhead rows, and prints
# the per-row delta against the committed PR 3 baseline BENCH_2.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_3.json -baseline BENCH_2.json

# profile reruns the benchmark suites with CPU/heap profiling enabled and
# leaves the profiles, test binaries, and a BENCH json under profiles/.
# Inspect with: go tool pprof profiles/bench_root.test profiles/cpu_root.prof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/bench -out profiles/BENCH_profile.json -profiledir profiles

clean:
	$(GO) clean ./...
