GO ?= go

.PHONY: all build test tier1 race vet bench profile clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestFieldPropertyMatchesOracle|TestCertifyGraphMatchesRecursive' ./internal/valence
	$(GO) test -race ./internal/obs ./internal/cli

# tier1 is the gate every change must keep green: full build, vet, the
# complete test suite (including the golden experiment outputs in the root
# package), and the race detector over the internal packages that use
# concurrency (parallel exploration, parallel certification, shared
# successor caches, and the sharded valence-field sweep, whose randomized
# property test is re-run explicitly above).
tier1: build vet test race

# bench regenerates BENCH_2.json from the E1–E11 experiment benchmarks and
# the certifier benchmarks, and prints the per-row delta against the
# committed PR 1 baseline BENCH_1.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_2.json -baseline BENCH_1.json

# profile reruns the benchmark suites with CPU/heap profiling enabled and
# leaves the profiles, test binaries, and a BENCH json under profiles/.
# Inspect with: go tool pprof profiles/bench_root.test profiles/cpu_root.prof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/bench -out profiles/BENCH_profile.json -profiledir profiles

clean:
	$(GO) clean ./...
