GO ?= go

.PHONY: all build test tier1 race vet lint vettool chaos campaign crash bench benchfield benchexplore obsreport profile clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the engine-invariant analyzer suite (internal/analysis) over
# the whole module: detorder, internfreeze, obsguard, senterr, parshard,
# plus the cross-function dataflow analyzers ctxpoll, spanend, hotalloc,
# codecpair, atomicfield.
# Exit status 1 means findings; suppress a deliberate exception with a
# //lint:<token> comment on the flagged line or the line above (the token
# is per-analyzer: nondet, mutates, obs, sentinel, unsync, poll, span,
# alloc, codec, atomic; //lint:hotpath is a marker that opts a function
# into the hotalloc no-allocation obligation, not a suppression).
# `go run ./cmd/lint -json ./...` emits machine-readable diagnostics;
# `-stale` audits //lint: comments that no longer suppress anything.
lint:
	$(GO) run ./cmd/lint ./...

# vettool runs the same suite through go vet's -vettool protocol, which
# adds build-cache incrementality, covers _test.go files (senterr), and
# ships cross-package facts between units as .vetx payloads.
vettool:
	$(GO) build -o bin/lint ./cmd/lint
	$(GO) vet -vettool=$(CURDIR)/bin/lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestFieldPropertyMatchesOracle|TestCertifyGraphMatchesRecursive|TestFieldShardWordAlignment|TestFieldMatchesScalarPlanes' ./internal/valence
	$(GO) test -race -run 'TestSharded' .
	$(GO) test -race ./internal/obs ./internal/cli ./cmd/lint

# chaos runs the deterministic fault-injection suite under the race
# detector: every named fault point (chaos.Points) is driven through the
# delay/panic/cancel/budget matrix plus seeded random plans, and the
# checkpoint/resume property tests replay interrupted explorations,
# certifications, and field sweeps to bit-identical results.
chaos:
	$(GO) test -race ./internal/chaos
	$(GO) test -race -run 'Checkpoint|Resum|Fault|Panic' ./internal/core ./internal/valence ./internal/resilient

# campaign sweeps the seeded chaos campaign under the race detector: seeds
# × every named fault point × every fault kind, each case run under the
# retry/resume supervisor, asserting zero unrecovered failures and a
# bit-identical result against the fault-free reference pipeline.
campaign:
	$(GO) run -race ./cmd/chaoscampaign -seeds 18 -out /tmp/chaoscampaign_report.json
	@rm -f /tmp/chaoscampaign_report.json

# crash proves checkpoint durability against real process death: a child
# process saving checkpoint generations in a loop is SIGKILLed mid-write
# repeatedly, and each time the parent must load an intact generation and
# resume to the bit-identical graph; a deterministic torn-write/bit-rot
# pass exercises the generation fallback on top.
crash:
	$(GO) run ./cmd/chaoscampaign -crash -crash-kills 4

# tier1 is the gate every change must keep green: full build, vet, the
# engine-invariant lint suite, the complete test suite (including the
# golden experiment outputs in the root package), the race detector
# over the internal packages that use concurrency (parallel exploration,
# parallel certification, shared successor caches, and the sharded
# valence-field sweep, whose randomized property test is re-run explicitly
# above; ./internal/... also covers internal/analysis and its fixture
# tests), the chaos fault-injection suite, the supervised chaos campaign
# and SIGKILL crash harness, a one-iteration smoke pass of the
# field-kernel micro-benchmarks, and the traced-run obsreport round trip.
tier1: build vet lint test race chaos campaign crash benchfield benchexplore obsreport

# bench regenerates BENCH_6.json from the E1–E11 experiment benchmarks,
# the sharded/legacy exploration grid, the certifier and field-kernel
# benchmarks, the resilience overhead rows, the instrumented-phase
# latency-percentile rows, and the observability overhead rows, and
# prints the per-row delta (plus the geomean speedup line) against the
# committed PR 7 baseline BENCH_5.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_6.json -baseline BENCH_5.json

# benchfield smoke-runs the valence field micro-benchmark grid (scalar vs
# bit-plane, serial vs sharded, graded vs fixpoint, arena steady state) at
# one iteration per row — it validates the kernels still run and report
# allocs, not their timings; use `make bench` for real numbers.
benchfield:
	$(GO) test ./internal/valence -run '^$$' -bench 'BenchmarkFieldSweep|BenchmarkCertifyGraphArena' -benchtime 1x -benchmem

# benchexplore smoke-runs the sharded-vs-legacy exploration grid (model ×
# implementation × cold/warm × workers) at one iteration per row — it
# validates the grid still explores and both cache implementations agree
# on states/edges; use `make bench` for real numbers.
benchexplore:
	$(GO) test . -run '^$$' -bench 'BenchmarkExplore' -benchtime 1x -benchmem

# obsreport smoke-runs the journal analysis toolchain end to end: a traced
# E1 run writes a span journal, which obsreport must parse into a phase
# report and a Chrome trace. Any parse or export failure exits non-zero.
obsreport:
	$(GO) run ./cmd/experiments -only E1 -journal /tmp/obsreport_smoke.jsonl -trace >/dev/null
	$(GO) run ./cmd/obsreport -chrome /tmp/obsreport_smoke_trace.json /tmp/obsreport_smoke.jsonl >/dev/null
	@rm -f /tmp/obsreport_smoke.jsonl /tmp/obsreport_smoke_trace.json

# profile reruns the benchmark suites with CPU/heap profiling enabled and
# leaves the profiles, test binaries, and a BENCH json under profiles/.
# Inspect with: go tool pprof profiles/bench_root.test profiles/cpu_root.prof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/bench -out profiles/BENCH_profile.json -profiledir profiles

clean:
	$(GO) clean ./...
