package layers_test

// Deeper parameter sweeps, skipped under -short: they push the same
// experiments to larger n, t, and depths to confirm the shapes hold beyond
// the fast configurations.

import (
	"testing"

	layers "repro"
)

func TestSlowSyncLowerBoundN5T3(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	const n, tt = 5, 3
	good := layers.SyncSt(layers.FloodSet{Rounds: tt + 1}, n, tt)
	w, err := layers.Certify(good, tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != layers.OK {
		t.Errorf("FloodSet(t+1) n=5 t=3: %v", w.Kind)
	}
	fast := layers.SyncSt(layers.FloodSet{Rounds: tt}, n, tt)
	w, err = layers.Certify(fast, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == layers.OK {
		t.Error("FloodSet(t) n=5 t=3 certified")
	}
	if w.Exec.Len() != tt {
		t.Errorf("witness depth = %d, want %d", w.Exec.Len(), tt)
	}
}

func TestSlowEarlyFloodSetN5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	const n, tt = 5, 3
	m := layers.SyncSt(layers.EarlyFloodSet{MaxRounds: tt + 1}, n, tt)
	w, err := layers.Certify(m, tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != layers.OK {
		t.Errorf("EarlyFloodSet n=5 t=3: %v (%s)", w.Kind, w.Detail)
	}
}

func TestSlowParallelCertifyAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	const n, tt = 5, 2
	m := layers.SyncSt(layers.FloodSet{Rounds: tt + 1}, n, tt)
	seq, err := layers.Certify(m, tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := layers.CertifyParallel(m, tt+1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Kind != par.Kind {
		t.Errorf("sequential %v != parallel %v", seq.Kind, par.Kind)
	}
}

func TestSlowMobileDeepChain(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	const n, rounds = 4, 4
	m := layers.MobileS1(layers.FloodSet{Rounds: rounds}, n)
	o := layers.NewOracle(m)
	ch, err := layers.BivalentChain(m, o, layers.DecreasingHorizon(rounds, 1), rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stuck != nil || ch.Reached != rounds-1 {
		t.Errorf("deep chain reached %d of %d", ch.Reached, rounds-1)
	}
}

func TestSlowAsyncMPDepth2N3(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	m := layers.AsyncMessagePassing(layers.MPFlood{Phases: 2}, 3)
	w, err := layers.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == layers.OK {
		t.Error("consensus certified in async MP at depth 2")
	}
}

func TestSlowIISDepth2(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	m := layers.IteratedImmediateSnapshot(layers.SMVote{Phases: 2}, 3)
	w, err := layers.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == layers.OK {
		t.Error("consensus certified in IIS at depth 2")
	}
}
