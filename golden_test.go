package layers_test

// Golden regression tests: the framework is fully deterministic, so the
// exact witness the certifier returns for a given model/protocol/bound is
// part of the contract. A change here means the semantics of a model, a
// protocol, or the search order changed — all of which are observable
// behavior for downstream users replaying witnesses.

import (
	"strings"
	"testing"

	layers "repro"
)

func TestGoldenWitnesses(t *testing.T) {
	cases := []struct {
		name    string
		m       layers.Model
		bound   int
		kind    layers.WitnessKind
		actions string
	}{
		{
			name:    "mobile-n3-b2",
			m:       layers.MobileS1(layers.FloodSet{Rounds: 2}, 3),
			bound:   2,
			kind:    layers.AgreementViolation,
			actions: "(2,[2]);(2,[1])",
		},
		{
			name:    "syncst-n4-t2-fast",
			m:       layers.SyncSt(layers.FloodSet{Rounds: 2}, 4, 2),
			bound:   2,
			kind:    layers.AgreementViolation,
			actions: "(3,[2]);(2,[1])",
		},
		{
			name:    "shmem-n3-p1",
			m:       layers.SharedMemory(layers.SMVote{Phases: 1}, 3),
			bound:   1,
			kind:    layers.UndecidedAtBound,
			actions: "(0,A)",
		},
		{
			name:    "asyncmp-n3-p1",
			m:       layers.AsyncMessagePassing(layers.MPFlood{Phases: 1}, 3),
			bound:   1,
			kind:    layers.UndecidedAtBound,
			actions: "[0,1]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := layers.Certify(c.m, c.bound, 0)
			if err != nil {
				t.Fatal(err)
			}
			if w.Kind != c.kind {
				t.Errorf("kind = %v, want %v", w.Kind, c.kind)
			}
			if got := strings.Join(w.Exec.Actions(), ";"); got != c.actions {
				t.Errorf("witness actions = %q, want %q", got, c.actions)
			}
		})
	}
}
