package layers_test

import (
	"fmt"

	layers "repro"
)

// ExampleCertify refutes consensus in the single-mobile-failure model: the
// certifier explores every S1-run to the decision bound and reports the
// violation kind.
func ExampleCertify() {
	m := layers.MobileS1(layers.FloodSet{Rounds: 2}, 3)
	w, err := layers.Certify(m, 2, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(w.Kind)
	fmt.Println("witness layers:", w.Exec.Len())
	// Output:
	// agreement violation
	// witness layers: 2
}

// ExampleCertify_lowerBound contrasts the two halves of the Section 6
// story: t+1 rounds certify, t rounds are refuted.
func ExampleCertify_lowerBound() {
	const n, t = 3, 1
	good, _ := layers.Certify(layers.SyncSt(layers.FloodSet{Rounds: t + 1}, n, t), t+1, 0)
	fast, _ := layers.Certify(layers.SyncSt(layers.FloodSet{Rounds: t}, n, t), t, 0)
	fmt.Println("t+1 rounds:", good.Kind)
	fmt.Println("t rounds:  ", fast.Kind)
	// Output:
	// t+1 rounds: ok
	// t rounds:   agreement violation
}

// ExampleBivalentChain builds the Theorem 4.2 adversary run: layer by
// layer, always into a bivalent successor.
func ExampleBivalentChain() {
	m := layers.MobileS1(layers.FloodSet{Rounds: 3}, 3)
	o := layers.NewOracle(m)
	ch, err := layers.BivalentChain(m, o, layers.DecreasingHorizon(3, 1), 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bivalent layers:", ch.Reached)
	fmt.Println("stuck:", ch.Stuck != nil)
	// Output:
	// bivalent layers: 2
	// stuck: false
}

// ExampleAnalyzeLayer reports the similarity and valence structure of one
// layer S(x) — Lemma 5.1 for a single initial state.
func ExampleAnalyzeLayer() {
	m := layers.MobileS1(layers.FloodSet{Rounds: 2}, 3)
	o := layers.NewOracle(m)
	r := layers.AnalyzeLayer(m, o, m.Inits()[1], 2)
	fmt.Println("similarity connected:", r.SimilarityConnected)
	fmt.Println("valence connected:", r.ValenceConnected)
	// Output:
	// similarity connected: true
	// valence connected: true
}

// ExampleNewCluster runs FloodSet as real concurrent goroutine processes.
func ExampleNewCluster() {
	c := layers.NewCluster(layers.FloodSet{Rounds: 2}, []int{1, 0, 1})
	defer c.Close()
	decisions, err := c.RunRounds(2, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(decisions)
	// Output:
	// [0 0 0]
}

// ExampleSimilar exhibits Definition 3.1 on two initial states.
func ExampleSimilar() {
	m := layers.MobileS1(layers.FloodSet{Rounds: 2}, 3)
	x := m.Initial([]int{0, 0, 0})
	y := m.Initial([]int{0, 0, 1})
	j, ok := layers.Similar(x, y)
	fmt.Println(j, ok)
	// Output:
	// 2 true
}

// ExampleCertifyTask certifies 2-set agreement over ternary inputs in the
// mobile failure model — a solvable task exactly where consensus is not.
func ExampleCertifyTask() {
	const n = 3
	m := layers.MobileS1(layers.FloodSet{Rounds: 1}, n)
	var inits []layers.State
	for a := 0; a < 27; a++ {
		v := a
		in := make([]int, n)
		for i := 0; i < n; i++ {
			in[i] = v % 3
			v /= 3
		}
		inits = append(inits, m.Initial(in))
	}
	delta := layers.TaskZoo(n)[1].Problem.Delta // 2-set agreement
	w, err := layers.CertifyTask(m, inits, delta, 1, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(w.Kind)
	// Output:
	// ok
}

// ExampleValidateSyncProtocol runs the protocol conformance checks a
// protocol author should pass before using the analysis engine.
func ExampleValidateSyncProtocol() {
	violations := layers.ValidateSyncProtocol(layers.FloodSet{Rounds: 2}, 3, 3)
	fmt.Println("FloodSet violations:", len(violations))
	violations = layers.ValidateSyncProtocol(layers.FlickerDecider{}, 3, 3)
	fmt.Println("FlickerDecider violated write-once:", len(violations) > 0)
	// Output:
	// FloodSet violations: 0
	// FlickerDecider violated write-once: true
}
