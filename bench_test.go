package layers_test

// Benchmark harness: one benchmark per experiment in the EXPERIMENTS.md
// index (the paper has no numbered tables/figures; its evaluation is its
// lemma/theorem sequence, and each Ek below regenerates the machine-checked
// form of one claim). Custom metrics report search effort alongside time:
// states explored, memoized valence entries, witness depth.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	layers "repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/resilient"
	"repro/internal/tasks"
	"repro/internal/valence"
)

// BenchmarkE1_InitialConnectivity — Lemma 3.6: Con_0 similarity
// connectivity and existence of a bivalent initial state. Whole-graph row:
// the graph is materialized once and each iteration rebuilds the
// similarity structure (bucketed) and the valence field (one sweep).
func BenchmarkE1_InitialConnectivity(b *testing.B) {
	for _, n := range []int{3, 4, 5, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := protocols.FloodSet{Rounds: 2}
			m := layers.MobileS1(p, n)
			g, err := layers.ExploreIDParallel(m, 2, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inits := m.Inits()
				if _, conn := valence.SetSDiameter(inits); !conn {
					b.Fatal("Con_0 not similarity connected")
				}
				f := layers.NewFieldParallel(g, 0)
				found := false
				for _, u := range g.Layer(0) {
					if f.Bivalent(u) {
						found = true
						break
					}
				}
				if !found {
					b.Fatal("no bivalent initial state")
				}
			}
			b.ReportMetric(float64(g.Len()), "states")
			b.ReportMetric(g.Cache.Stats().HitRate()*100, "cache-hit-%")
		})
	}
}

// BenchmarkE2_MobileImpossibility — Lemma 5.1 + Corollary 5.2: layer
// connectivity and refutation of consensus in M^mf. Whole-graph row: the
// CSR graph is materialized once; each iteration is a sweep-based
// certification pass over it.
func BenchmarkE2_MobileImpossibility(b *testing.B) {
	for _, cfg := range []struct{ n, bound int }{{3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		b.Run(fmt.Sprintf("n=%d/B=%d", cfg.n, cfg.bound), func(b *testing.B) {
			p := protocols.FloodSet{Rounds: cfg.bound}
			m := layers.MobileS1(p, cfg.n)
			g, err := layers.ExploreIDParallel(m, cfg.bound, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var explored int
			for i := 0; i < b.N; i++ {
				w, err := layers.CertifyGraph(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				if w.Kind == layers.OK {
					b.Fatal("consensus certified in M^mf")
				}
				explored = w.Explored
			}
			b.ReportMetric(float64(explored), "states")
			b.ReportMetric(g.Cache.Stats().HitRate()*100, "cache-hit-%")
		})
	}
}

// BenchmarkE3_ShmemSynchronic — Lemma 5.3 + Corollary 5.4: synchronic
// layer analysis and refutation in M^rw.
func BenchmarkE3_ShmemSynchronic(b *testing.B) {
	b.Run("layer-analysis/n=3", func(b *testing.B) {
		p := protocols.SMVote{Phases: 2}
		m := layers.SharedMemory(p, 3)
		g, err := layers.ExploreIDParallel(m, 3, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := layers.NewFieldParallel(g, 0)
			for _, u := range g.Layer(0) {
				r := f.AnalyzeNode(u)
				if !r.ValenceConnected {
					b.Fatal("S^rw layer not valence connected")
				}
			}
		}
		b.ReportMetric(float64(g.Len()), "states")
	})
	b.Run("certify/n=3/B=1", func(b *testing.B) {
		p := protocols.SMVote{Phases: 1}
		m := layers.SharedMemory(p, 3)
		g, err := layers.ExploreIDParallel(m, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var explored int
		for i := 0; i < b.N; i++ {
			w, err := layers.CertifyGraph(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			if w.Kind == layers.OK {
				b.Fatal("consensus certified in M^rw")
			}
			explored = w.Explored
		}
		b.ReportMetric(float64(explored), "states")
	})
}

// BenchmarkE4_PermutationLayering — the permutation layering: diamond
// identity, transposition similarity, refutation in async MP.
func BenchmarkE4_PermutationLayering(b *testing.B) {
	b.Run("diamond/n=3", func(b *testing.B) {
		m := layers.AsyncMessagePassing(protocols.MPFullInfo{}, 3)
		x := m.Initial([]int{0, 1, 1})
		for i := 0; i < b.N; i++ {
			y := m.Sequential(m.Sequential(x, []int{0, 1, 2}), []int{0, 1})
			yp := m.Sequential(m.Sequential(x, []int{0, 1}), []int{2, 0, 1})
			if y.Key() != yp.Key() {
				b.Fatal("diamond identity failed")
			}
		}
	})
	b.Run("certify/n=3/B=1", func(b *testing.B) {
		p := protocols.MPFlood{Phases: 1}
		m := layers.AsyncMessagePassing(p, 3)
		g, err := layers.ExploreIDParallel(m, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var explored int
		for i := 0; i < b.N; i++ {
			w, err := layers.CertifyGraph(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			if w.Kind == layers.OK {
				b.Fatal("consensus certified in async MP")
			}
			explored = w.Explored
		}
		b.ReportMetric(float64(explored), "states")
	})
}

// BenchmarkE5_SyncLowerBound — Corollary 6.3: FloodSet(t+1) certified,
// FloodSet(t) refuted. Whole-graph rows: the graph is materialized once
// per configuration and each iteration is one sweep-based certification;
// n=5 and n=6 were impractical under the per-state recursive engine.
func BenchmarkE5_SyncLowerBound(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 1}, {4, 2}, {5, 1}, {6, 1}} {
		b.Run(fmt.Sprintf("certify/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			p := protocols.FloodSet{Rounds: cfg.t + 1}
			m := layers.SyncSt(p, cfg.n, cfg.t)
			g, err := layers.ExploreIDParallel(m, cfg.t+1, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var explored int
			for i := 0; i < b.N; i++ {
				w, err := layers.CertifyGraph(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				if w.Kind != layers.OK {
					b.Fatalf("FloodSet(t+1) refuted: %v", w.Kind)
				}
				explored = w.Explored
			}
			b.ReportMetric(float64(explored), "states")
			b.ReportMetric(g.Cache.Stats().HitRate()*100, "cache-hit-%")
		})
		b.Run(fmt.Sprintf("refute/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			p := protocols.FloodSet{Rounds: cfg.t}
			m := layers.SyncSt(p, cfg.n, cfg.t)
			g, err := layers.ExploreIDParallel(m, cfg.t, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var depth int
			for i := 0; i < b.N; i++ {
				w, err := layers.CertifyGraph(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				if w.Kind == layers.OK {
					b.Fatal("too-fast FloodSet certified")
				}
				depth = w.Exec.Len()
			}
			b.ReportMetric(float64(depth), "witness-layers")
			b.ReportMetric(g.Cache.Stats().HitRate()*100, "cache-hit-%")
		})
	}
}

// BenchmarkE6_FastUnivalence — Lemma 6.4: failure-free rounds after <= k
// failures force univalence in a fast protocol. Whole-graph row: one field
// sweep per iteration answers every univalence query by mask lookup (the
// failure-free action is the first CSR out-edge of every node).
func BenchmarkE6_FastUnivalence(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 2}} {
		b.Run(fmt.Sprintf("n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			rounds := cfg.t + 1
			p := protocols.FloodSet{Rounds: rounds}
			m := layers.SyncSt(p, cfg.n, cfg.t)
			g, err := layers.ExploreIDParallel(m, rounds, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := layers.NewFieldParallel(g, 0)
				for d := 0; d < rounds; d++ {
					for _, u := range g.Layer(d) {
						ff := g.EdgeTo[g.EdgeStart[u]]
						if mask := f.Mask(ff); mask != valence.V0 && mask != valence.V1 {
							b.Fatal("failure-free successor not univalent")
						}
					}
				}
			}
			b.ReportMetric(float64(g.Len()), "states")
		})
	}
}

// BenchmarkE7_ThickConnectivity — Theorem 7.2 / Corollary 7.3: the task
// zoo's 1-thick-connectivity verdicts.
func BenchmarkE7_ThickConnectivity(b *testing.B) {
	for _, n := range []int{2, 3} {
		b.Run(fmt.Sprintf("zoo/n=%d", n), func(b *testing.B) {
			zoo := tasks.Zoo(n)
			for i := 0; i < b.N; i++ {
				for _, task := range zoo {
					budget := task.SubproblemBudget
					if budget == 0 {
						budget = 1_000_000
					}
					_, ok, err := task.Problem.KThickConnected(1, budget)
					if err != nil {
						b.Fatal(err)
					}
					if ok != task.Solvable1Resilient {
						b.Fatalf("%s: verdict %v, want %v", task.Problem.Name, ok, task.Solvable1Resilient)
					}
				}
			}
		})
	}
}

// BenchmarkE8_DiameterRecurrence — Lemma 7.6 / Theorem 7.7: measured
// s-diameter growth against the recurrence bound. Whole-graph row: layer
// state sets and every S(x) are read off the CSR arrays of one
// materialized graph; the similarity graphs are built with the bucketed
// construction.
func BenchmarkE8_DiameterRecurrence(b *testing.B) {
	const n, t, depth = 3, 2, 2
	p := protocols.FullInfo{}
	m := layers.SyncSt(p, n, t)
	g, err := layers.ExploreIDParallel(m, depth, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	layerStates := make([][]layers.State, depth+1)
	for d := 0; d <= depth; d++ {
		for _, u := range g.Layer(d) {
			layerStates[d] = append(layerStates[d], g.States[u])
		}
	}
	b.ResetTimer()
	var measured int
	for i := 0; i < b.N; i++ {
		dPrev, _ := valence.SetSDiameter(layerStates[0])
		for d := 1; d <= depth; d++ {
			dY := 0
			for _, u := range g.Layer(d - 1) {
				// S(x) read off the CSR out-edges, deduplicated by node id.
				seen := make(map[uint32]bool)
				var states []layers.State
				for e := g.EdgeStart[u]; e < g.EdgeStart[u+1]; e++ {
					v := g.EdgeTo[e]
					if !seen[v] {
						seen[v] = true
						states = append(states, g.States[v])
					}
				}
				if ld, _ := valence.SetSDiameter(states); ld > dY {
					dY = ld
				}
			}
			bound := dPrev*dY + dPrev + dY
			dCur, _ := valence.SetSDiameter(layerStates[d])
			if dCur > bound {
				b.Fatalf("depth %d: measured %d > bound %d", d, dCur, bound)
			}
			if paperBound := decision.DiameterBound(dPrev, n, 1); bound > 0 && paperBound < 0 {
				b.Fatal("unreachable")
			}
			dPrev = dCur
			measured = dCur
		}
	}
	b.ReportMetric(float64(measured), "s-diameter")
	b.ReportMetric(float64(g.Len()), "states")
}

// BenchmarkE9_Extensions — wasted faults, early decision, IIS subdivision.
func BenchmarkE9_Extensions(b *testing.B) {
	b.Run("wasted-faults/n=4/t=2/c=2", func(b *testing.B) {
		const n, tt, c, rounds = 4, 2, 2, 3
		m := layers.SyncStMulti(protocols.FloodSet{Rounds: rounds}, n, tt, c)
		g, err := layers.ExploreIDParallel(m, rounds, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := layers.NewFieldParallel(g, 0)
			biv := 0
			for u := 0; u < g.Len(); u++ {
				if f.Bivalent(uint32(u)) {
					biv++
				}
			}
			if biv == 0 {
				b.Fatal("no bivalent states")
			}
		}
		b.ReportMetric(float64(g.Len()), "states")
	})
	b.Run("early-decision/n=4/t=2", func(b *testing.B) {
		m := layers.SyncSt(layers.EarlyFloodSet{MaxRounds: 3}, 4, 2)
		g, err := layers.ExploreIDParallel(m, 3, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var explored int
		for i := 0; i < b.N; i++ {
			w, err := layers.CertifyGraph(g, 0)
			if err != nil || w.Kind != layers.OK {
				b.Fatal(err, w.Kind)
			}
			explored = w.Explored
		}
		b.ReportMetric(float64(explored), "states")
	})
	b.Run("iis-subdivision/n=3", func(b *testing.B) {
		m := layers.IteratedImmediateSnapshot(layers.SMFullInfo{}, 3)
		x := m.Initial([]int{0, 1, 1})
		for i := 0; i < b.N; i++ {
			st := m.Stats(x)
			if st.TopSimplexes != 13 {
				b.Fatal("subdivision wrong")
			}
		}
	})
}

// BenchmarkExplore — the exploration front-end itself, measured for the
// hash-sharded successor cache against the pinned legacy single-lock cache
// (grid: 3 models × {sharded, legacy} × {cold, warm} × worker counts).
// cold rows pay first-sight interning and enumeration on a fresh cache
// every iteration; warm rows re-explore over an already-populated cache —
// the steady state every multi-pass analysis (explore → certify → field →
// diameter) and the roadmap's serving scenario live in, where the
// memoized-hit path is the whole per-node cache cost. Worker counts shard
// the frontier warming; on a single-CPU host the w>1 rows only add
// scheduling overhead, so the sharded-vs-legacy comparison at matched
// (model, mode, w) is the portable signal — cmd/bench reduces exactly
// those pairs to the exploration geomean.
func BenchmarkExplore(b *testing.B) {
	grid := []struct {
		name  string
		m     layers.Model
		depth int
	}{
		{"mobile/n=4", layers.MobileS1(protocols.FloodSet{Rounds: 2}, 4), 2},
		{"syncst/n=4/t=2", layers.SyncSt(protocols.FloodSet{Rounds: 3}, 4, 2), 3},
		{"shmem/n=3", layers.SharedMemory(protocols.SMVote{Phases: 2}, 3), 2},
	}
	var workers []int
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		dup := false
		for _, seen := range workers {
			dup = dup || seen == w
		}
		if !dup {
			workers = append(workers, w)
		}
	}
	for _, tc := range grid {
		raw := core.CacheOf(tc.m).Uncached()
		newCache := func(impl string) core.Interner {
			if impl == "legacy" {
				return core.NewLegacyCache(raw)
			}
			return core.NewSuccessorCache(raw)
		}
		for _, impl := range []string{"sharded", "legacy"} {
			for _, mode := range []string{"cold", "warm"} {
				for _, w := range workers {
					b.Run(fmt.Sprintf("%s/%s/%s/w=%d", tc.name, impl, mode, w), func(b *testing.B) {
						var shared core.Interner
						if mode == "warm" {
							shared = newCache(impl)
							if _, err := core.ExploreIDWith(shared, tc.m, tc.depth, 0, w); err != nil {
								b.Fatal(err)
							}
						}
						var g *core.IDGraph
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							c := shared
							if c == nil {
								// cold: a fresh cache per iteration, its
								// construction priced into the row.
								c = newCache(impl)
							}
							var err error
							g, err = core.ExploreIDWith(c, tc.m, tc.depth, 0, w)
							if err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(float64(g.Len()), "states")
						b.ReportMetric(float64(g.NumEdges()), "edges")
					})
				}
			}
		}
	}
}

// BenchmarkResilience — overhead rows for the resilient execution layer.
// checkpoint/write and checkpoint/load price the binary container on an
// interrupted E1-sized exploration (n=5, cut at the layer-1 boundary);
// cancel-poll compares the E1/n=5 analysis body under a live cancellation
// context against the bare engines — the polled checks are one atomic load
// per layer/shard, so the ctx row must stay within ~2% of base.
func BenchmarkResilience(b *testing.B) {
	interrupted := func(b *testing.B) error {
		b.Helper()
		m := layers.MobileS1(protocols.FloodSet{Rounds: 2}, 5)
		chaos.Arm(chaos.NewPlan().Set("explore.layer", chaos.Rule{Hit: 2, Kind: chaos.KindCancel}))
		_, perr := layers.ExploreIDCtx(nil, m, 2, 0, 1)
		chaos.Disarm()
		if perr == nil {
			b.Fatal("chaos cut did not interrupt the exploration")
		}
		return perr
	}
	b.Run("checkpoint/write", func(b *testing.B) {
		ck, ok := resilient.CheckpointFrom(interrupted(b))
		if !ok {
			b.Fatal("interrupted exploration carried no checkpoint")
		}
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			sections, err := ck.Sections()
			if err != nil {
				b.Fatal(err)
			}
			if err := resilient.WriteSections(&buf, sections); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
		b.ReportMetric(float64(buf.Len()), "ckpt-bytes")
	})
	b.Run("checkpoint/load", func(b *testing.B) {
		ck, ok := resilient.CheckpointFrom(interrupted(b))
		if !ok {
			b.Fatal("interrupted exploration carried no checkpoint")
		}
		sections, err := ck.Sections()
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := resilient.WriteSections(&buf, sections); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.SetBytes(int64(len(raw)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			back, err := resilient.ReadSections(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			var explore []byte
			for _, s := range back {
				if s.Tag == resilient.TagExplore {
					explore = s.Data
				}
			}
			if _, err := core.DecodeExploreCheckpoint(explore); err != nil {
				b.Fatal(err)
			}
		}
	})
	m := layers.MobileS1(protocols.FloodSet{Rounds: 2}, 5)
	g, err := layers.ExploreIDParallel(m, 2, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	e1Body := func(b *testing.B, ctx *layers.Ctx) {
		inits := m.Inits()
		if _, conn := valence.SetSDiameter(inits); !conn {
			b.Fatal("Con_0 not similarity connected")
		}
		f, err := layers.NewFieldParallelCtx(ctx, g, 0)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, u := range g.Layer(0) {
			if f.Bivalent(u) {
				found = true
				break
			}
		}
		if !found {
			b.Fatal("no bivalent initial state")
		}
	}
	b.Run("cancel-poll/e1/n=5/base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e1Body(b, nil)
		}
	})
	b.Run("cancel-poll/e1/n=5/ctx", func(b *testing.B) {
		ctx, cancel := layers.WithCancel()
		defer cancel()
		for i := 0; i < b.N; i++ {
			e1Body(b, ctx)
		}
	})
}

// BenchmarkE10_TaskCertifier — the k-set boundary through CertifyTask.
func BenchmarkE10_TaskCertifier(b *testing.B) {
	const n = 3
	m := layers.MobileS1(layers.FloodSet{Rounds: 1}, n)
	var inits []layers.State
	for a := 0; a < 27; a++ {
		v := a
		in := make([]int, n)
		for i := 0; i < n; i++ {
			in[i] = v % 3
			v /= 3
		}
		inits = append(inits, m.Initial(in))
	}
	delta := tasks.KSetAgreement(n, 2).Problem.Delta
	b.ResetTimer()
	var explored int
	for i := 0; i < b.N; i++ {
		w, err := layers.CertifyTask(m, inits, delta, 1, 0)
		if err != nil || w.Kind != layers.TaskOK {
			b.Fatal(err, w.Kind)
		}
		explored = w.Explored
	}
	b.ReportMetric(float64(explored), "states")
}

// BenchmarkE11_CommonKnowledge — the Dwork–Moses connection: CK-class
// computation at the decision round plus the common-knowledge check.
func BenchmarkE11_CommonKnowledge(b *testing.B) {
	const n, tt = 3, 1
	rounds := tt + 1
	m := layers.SyncSt(layers.FloodSet{Rounds: rounds}, n, tt)
	g, err := layers.ExploreIDParallel(m, rounds, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	states := make([]layers.State, 0, len(g.Layer(rounds)))
	for _, u := range g.Layer(rounds) {
		states = append(states, g.States[u])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classes := layers.NewKnowledgeClassesLayer(g, rounds)
		for _, x := range states {
			v := -1
			for p := 0; p < n; p++ {
				if x.FailedAt(p) {
					continue
				}
				if got, ok := x.Decided(p); ok {
					v = got
					break
				}
			}
			if v < 0 || !classes.CommonKnowledge(x.Key(), layers.DecidedValueFact(v)) {
				b.Fatal("decision without common knowledge")
			}
		}
	}
	b.ReportMetric(float64(len(states)), "states")
}

// BenchmarkObsPhases — instrumented engine rows: the E1/E5-shaped explore
// and certify bodies re-run with a live Metrics recorder, reporting the
// per-iteration latency tail (p50/p99 straight from the engine's own
// log-bucketed phase histograms) alongside ns/op. The uninstrumented
// E-rows above stay the disabled-overhead baseline; these rows are where
// BENCH_6.json carries the phase latency distributions.
func BenchmarkObsPhases(b *testing.B) {
	b.Run("explore/n=5", func(b *testing.B) {
		m := layers.MobileS1(protocols.FloodSet{Rounds: 2}, 5)
		met := obs.NewMetrics()
		obs.Enable(met)
		defer obs.Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := layers.ExploreIDParallel(m, 2, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if h := met.Timer("explore.time"); h != nil {
			b.ReportMetric(float64(h.Quantile(0.50)), "p50_ns")
			b.ReportMetric(float64(h.Quantile(0.99)), "p99_ns")
		}
	})
	b.Run("certify/n=4/t=2", func(b *testing.B) {
		p := protocols.FloodSet{Rounds: 3}
		m := layers.SyncSt(p, 4, 2)
		g, err := layers.ExploreIDParallel(m, 3, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		met := obs.NewMetrics()
		obs.Enable(met)
		defer obs.Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := layers.CertifyGraph(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			if w.Kind != layers.OK {
				b.Fatalf("FloodSet(t+1) refuted: %v", w.Kind)
			}
		}
		b.StopTimer()
		if h := met.Timer("certify.time"); h != nil {
			b.ReportMetric(float64(h.Quantile(0.50)), "p50_ns")
			b.ReportMetric(float64(h.Quantile(0.99)), "p99_ns")
		}
	})
}
