package layers_test

// Equivalence property test for the sharded successor cache: published
// graphs must be bit-identical — node numbering, keys, depths, layers,
// inits, CSR edge order, and budget cut points — whether exploration draws
// from the hash-sharded SuccessorCache or the pinned single-lock
// LegacyCache, at any worker count, and across checkpoint/resume cuts.
// Cache ids are racy under parallel warming; the deterministic
// frontier-order merge is what canonicalizes the published graph, and this
// test is the pin. Run under -race via the Makefile race target.

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/mobile"
	"repro/internal/proto"
	"repro/internal/protocols"
	"repro/internal/resilient"
	"repro/internal/shmem"
	"repro/internal/snapshot"
	"repro/internal/syncmp"
)

// equivCase is one model of the nine-family zoo with an exploration depth
// sized so the heavy asynchronous families stay test-suite cheap.
type equivCase struct {
	name  string
	m     core.Model
	depth int
}

func equivZoo() []equivCase {
	sp := proto.SyncProtocol(protocols.FloodSet{Rounds: 2})
	smp := proto.SMProtocol(protocols.SMVote{Phases: 2})
	mpp := proto.MPProtocol(protocols.MPFlood{Phases: 2})
	return []equivCase{
		{"mobile", mobile.New(sp, 3), 3},
		{"mobile-full", mobile.NewFull(sp, 3), 2},
		{"syncmp-st", syncmp.NewSt(sp, 3, 1), 2},
		{"syncmp-multi", syncmp.NewStMulti(sp, 3, 1, 1), 2},
		{"shmem", shmem.New(smp, 2), 2},
		{"asyncmp", asyncmp.New(mpp, 2), 2},
		{"asyncmp-synchronic", asyncmp.NewSynchronic(mpp, 2), 2},
		{"iis", iis.New(smp, 2), 2},
		{"snapshot", snapshot.New(smp, 2), 2},
	}
}

// newCache builds a fresh cache of the named implementation over the raw
// (uncached) successor function of m.
func newCache(impl string, m core.Model) core.Interner {
	raw := core.CacheOf(m).Uncached()
	if impl == "legacy" {
		return core.NewLegacyCache(raw)
	}
	return core.NewSuccessorCache(raw)
}

// sameGraph asserts two dense graphs agree on every published field.
func sameGraph(t *testing.T, want, got *core.IDGraph) {
	t.Helper()
	if !reflect.DeepEqual(want.Keys, got.Keys) {
		t.Fatal("Keys differ")
	}
	if !reflect.DeepEqual(want.DepthOf, got.DepthOf) {
		t.Fatal("DepthOf differs")
	}
	if !reflect.DeepEqual(want.Inits, got.Inits) {
		t.Fatal("Inits differ")
	}
	if !reflect.DeepEqual(want.EdgeStart, got.EdgeStart) {
		t.Fatal("EdgeStart differs")
	}
	if !reflect.DeepEqual(want.EdgeAction, got.EdgeAction) {
		t.Fatal("EdgeAction differs")
	}
	if !reflect.DeepEqual(want.EdgeTo, got.EdgeTo) {
		t.Fatal("EdgeTo differs")
	}
	for d := 0; d <= want.ReachedDepth(); d++ {
		if !reflect.DeepEqual(want.Layer(d), got.Layer(d)) {
			t.Fatalf("layer %d differs", d)
		}
	}
	for u := 0; u < want.Len(); u++ {
		if want.Keys[u] != got.States[u].Key() {
			t.Fatalf("node %d state key differs", u)
		}
	}
	wl, gl := want.Legacy(), got.Legacy()
	if !reflect.DeepEqual(wl.InitKeys, gl.InitKeys) {
		t.Fatal("InitKeys differ")
	}
}

func workerCounts() []int {
	counts := []int{1, 4}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 4 {
		counts = append(counts, gm)
	}
	return counts
}

// TestShardedLegacyGraphEquivalence: full explorations over the nine-model
// zoo are bit-identical across {sharded, legacy} × worker counts, with the
// legacy single-worker run as the reference.
func TestShardedLegacyGraphEquivalence(t *testing.T) {
	for _, tc := range equivZoo() {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := core.ExploreIDWith(newCache("legacy", tc.m), tc.m, tc.depth, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Len() == 0 {
				t.Fatal("empty reference graph")
			}
			for _, impl := range []string{"legacy", "sharded"} {
				for _, w := range workerCounts() {
					g, err := core.ExploreIDWith(newCache(impl, tc.m), tc.m, tc.depth, 0, w)
					if err != nil {
						t.Fatalf("%s/w=%d: %v", impl, w, err)
					}
					sameGraph(t, ref, g)
				}
			}
		})
	}
}

// TestShardedLegacyBudgetEquivalence: a node budget must cut both
// implementations at the identical point — same partial graph, same
// ErrNodeBudget verdict — because the budget check sits in the
// deterministic merge, not in the cache.
func TestShardedLegacyBudgetEquivalence(t *testing.T) {
	for _, tc := range equivZoo() {
		t.Run(tc.name, func(t *testing.T) {
			full, err := core.ExploreIDWith(newCache("legacy", tc.m), tc.m, tc.depth, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			budget := full.Len() / 2
			if budget == 0 {
				t.Skip("graph too small to cut")
			}
			ref, rerr := core.ExploreIDWith(newCache("legacy", tc.m), tc.m, tc.depth, budget, 1)
			if !errors.Is(rerr, core.ErrNodeBudget) {
				t.Fatalf("reference budget run: %v, want ErrNodeBudget", rerr)
			}
			for _, impl := range []string{"legacy", "sharded"} {
				for _, w := range workerCounts() {
					g, err := core.ExploreIDWith(newCache(impl, tc.m), tc.m, tc.depth, budget, w)
					if !errors.Is(err, core.ErrNodeBudget) {
						t.Fatalf("%s/w=%d: %v, want ErrNodeBudget", impl, w, err)
					}
					if g.Len() != budget {
						t.Fatalf("%s/w=%d: cut at %d nodes, want %d", impl, w, g.Len(), budget)
					}
					sameGraph(t, ref, g)
				}
			}
		})
	}
}

// TestShardedResumeEquivalence interrupts sharded-cache explorations at
// every layer boundary (explore.layer chaos cancel), persists the
// checkpoint through the binary container, resumes on the same cache, and
// asserts the finished graph is bit-identical to the legacy reference —
// the checkpoint/resume face of the equivalence property. The full zoo
// already pins graph equality; the resume machinery is model-independent,
// so one light and one heavy family keep this sub-test fast.
func TestShardedResumeEquivalence(t *testing.T) {
	zoo := equivZoo()
	for _, tc := range []equivCase{zoo[0], zoo[4]} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := core.ExploreIDWith(newCache("legacy", tc.m), tc.m, tc.depth, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < tc.depth; cut++ {
				for _, w := range workerCounts() {
					c := newCache("sharded", tc.m)
					chaos.Arm(chaos.NewPlan().Set("explore.layer", chaos.Rule{Hit: uint64(cut + 1), Kind: chaos.KindCancel}))
					partial, perr := core.ExploreIDCtxWith(nil, c, tc.m, tc.depth, 0, w)
					chaos.Disarm()
					if !errors.Is(perr, resilient.ErrPartial) {
						t.Fatalf("cut=%d w=%d: %v, want ErrPartial family", cut, w, perr)
					}
					if partial.ReachedDepth() > cut {
						t.Fatalf("cut=%d: partial graph reached depth %d past the cut", cut, partial.ReachedDepth())
					}
					ck, ok := resilient.CheckpointFrom(perr)
					if !ok {
						t.Fatalf("cut=%d w=%d: no checkpoint attached", cut, w)
					}
					sections, serr := ck.Sections()
					if serr != nil {
						t.Fatal(serr)
					}
					ctx := resilient.Background()
					ctx.SetResume(sections)
					resumed, rerr := core.ExploreIDCtxWith(ctx, c, tc.m, tc.depth, 0, w)
					if rerr != nil {
						t.Fatalf("cut=%d w=%d: resume failed: %v", cut, w, rerr)
					}
					sameGraph(t, ref, resumed)
				}
			}
		})
	}
}
