package layers_test

// The experiment suite through the public API: fast configurations of
// E1..E10 as tests, so `go test .` replays the paper's claims end to end
// using only exported identifiers. The heavier parameter sweeps live in the
// internal packages' tests and in bench_test.go.

import (
	"strings"
	"testing"

	layers "repro"
	"repro/internal/valence"
)

func TestPublicAPIMobileStory(t *testing.T) {
	const n, rounds = 3, 2
	m := layers.MobileS1(layers.FloodSet{Rounds: rounds}, n)
	o := layers.NewOracle(m)

	// E1: Con_0 structure.
	bivalent := 0
	for _, x := range m.Inits() {
		if o.Bivalent(x, rounds) {
			bivalent++
		}
	}
	if bivalent == 0 {
		t.Fatal("no bivalent initial state (Lemma 3.6)")
	}

	// E2: layer connectivity + refutation.
	for _, x := range m.Inits() {
		r := layers.AnalyzeLayer(m, o, x, rounds)
		if !r.SimilarityConnected || !r.ValenceConnected {
			t.Fatal("S1 layer connectivity failed (Lemma 5.1)")
		}
	}
	w, err := layers.Certify(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == layers.OK {
		t.Fatal("consensus certified in M^mf (Corollary 5.2)")
	}
	// The witness formats and replays.
	if out := layers.FormatExecution(w.Exec); !strings.Contains(out, "layer 0:") {
		t.Error("witness did not format")
	}
	run := &layers.Runner{Model: m, MaxLayers: w.Exec.Len()}
	outc, err := run.Run(w.Exec.Init, layers.NewScriptScheduler(w.Exec.Actions()))
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == layers.AgreementViolation && outc.Agreement {
		t.Error("replayed witness did not violate agreement")
	}
}

func TestPublicAPISyncLowerBound(t *testing.T) {
	const n, tt = 3, 1
	good := layers.SyncSt(layers.FloodSet{Rounds: tt + 1}, n, tt)
	w, err := layers.Certify(good, tt+1, 0)
	if err != nil || w.Kind != layers.OK {
		t.Fatalf("FloodSet(t+1): %v %v", w.Kind, err)
	}
	fast := layers.SyncSt(layers.FloodSet{Rounds: tt}, n, tt)
	w, err = layers.Certify(fast, tt, 0)
	if err != nil || w.Kind == layers.OK {
		t.Fatalf("FloodSet(t): %v %v (Corollary 6.3)", w.Kind, err)
	}
	// E9b through the facade.
	early := layers.SyncSt(layers.EarlyFloodSet{MaxRounds: tt + 1}, n, tt)
	w, err = layers.Certify(early, tt+1, 0)
	if err != nil || w.Kind != layers.OK {
		t.Fatalf("EarlyFloodSet: %v %v", w.Kind, err)
	}
	// EIG through the facade.
	eig := layers.SyncSt(layers.EIG{Rounds: tt + 1}, n, tt)
	w, err = layers.Certify(eig, tt+1, 0)
	if err != nil || w.Kind != layers.OK {
		t.Fatalf("EIG: %v %v", w.Kind, err)
	}
}

func TestPublicAPIAsyncModels(t *testing.T) {
	const n = 3
	for _, tc := range []struct {
		name string
		m    layers.Model
	}{
		{"shmem", layers.SharedMemory(layers.SMVote{Phases: 1}, n)},
		{"asyncmp", layers.AsyncMessagePassing(layers.MPFlood{Phases: 1}, n)},
		{"iis", layers.IteratedImmediateSnapshot(layers.SMVote{Phases: 1}, n)},
		{"snapshot", layers.SnapshotMemory(layers.SMVote{Phases: 1}, n)},
	} {
		w, err := layers.Certify(tc.m, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if w.Kind == layers.OK {
			t.Errorf("%s: consensus certified (Corollary 5.4 family)", tc.name)
		}
	}
}

func TestPublicAPIBivalentChain(t *testing.T) {
	const n, rounds = 3, 3
	m := layers.MobileS1(layers.FloodSet{Rounds: rounds}, n)
	o := layers.NewOracle(m)
	ch, err := layers.BivalentChain(m, o, layers.DecreasingHorizon(rounds, 1), rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stuck != nil || ch.Reached != rounds-1 {
		t.Fatalf("chain reached %d (stuck=%v)", ch.Reached, ch.Stuck != nil)
	}
}

func TestPublicAPITasks(t *testing.T) {
	const n = 3
	for _, task := range layers.TaskZoo(n) {
		budget := task.SubproblemBudget
		if budget == 0 {
			budget = 1_000_000
		}
		_, ok, err := task.Problem.KThickConnected(1, budget)
		if err != nil {
			t.Fatalf("%s: %v", task.Problem.Name, err)
		}
		if ok != task.Solvable1Resilient {
			t.Errorf("%s: verdict %v, want %v", task.Problem.Name, ok, task.Solvable1Resilient)
		}
	}
	// E10 through the facade: 2-set agreement certifies in M^mf.
	m := layers.MobileS1(layers.FloodSet{Rounds: 1}, n)
	delta := layers.TaskZoo(n)[1].Problem.Delta // 2-set agreement
	var inits []layers.State
	for _, x := range m.Inits() {
		inits = append(inits, x)
	}
	w, err := layers.CertifyTask(m, inits, delta, 1, 0)
	if err != nil || w.Kind != layers.TaskOK {
		t.Fatalf("2-set in M^mf: %v %v", w.Kind, err)
	}
}

func TestPublicAPICluster(t *testing.T) {
	c := layers.NewCluster(layers.FloodSet{Rounds: 2}, []int{0, 1, 1})
	defer c.Close()
	decisions, err := c.RunRounds(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range decisions {
		if v != 0 {
			t.Errorf("process %d decided %d, want 0", i, v)
		}
	}
}

func TestPublicAPIWitnessKindsComplete(t *testing.T) {
	// Every witness kind is reachable through the facade's protocol zoo.
	kinds := map[layers.WitnessKind]bool{}
	cases := []struct {
		m     layers.Model
		bound int
	}{
		{layers.SyncSt(layers.FloodSet{Rounds: 2}, 3, 1), 2},       // OK
		{layers.SyncSt(layers.FloodSet{Rounds: 1}, 3, 1), 1},       // agreement
		{layers.SyncSt(layers.ConstantDecider{Value: 0}, 3, 1), 1}, // validity
		{layers.SyncSt(layers.FlickerDecider{}, 3, 1), 2},          // write-once
		{layers.SharedMemory(layers.SMVote{Phases: 1}, 3), 1},      // undecided
	}
	for _, c := range cases {
		w, err := layers.Certify(c.m, c.bound, 0)
		if err != nil {
			t.Fatal(err)
		}
		kinds[w.Kind] = true
	}
	for _, want := range []layers.WitnessKind{
		layers.OK, layers.AgreementViolation, layers.ValidityViolation,
		layers.UndecidedAtBound, layers.DecisionChanged,
	} {
		if !kinds[want] {
			t.Errorf("witness kind %v not exercised", want)
		}
	}
	// Kind stringers are stable.
	if valence.OK.String() != "ok" {
		t.Error("stringer changed")
	}
}
