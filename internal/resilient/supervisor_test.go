package resilient_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/resilient"
)

// noSleep is the Sleep hook tests inject so retries don't wall-clock wait;
// it records each backoff for schedule assertions.
func noSleep(into *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *into = append(*into, d) }
}

// TestSupervisorRetriesTransient: a fault from the ErrPartial family is
// retried until the op succeeds, and RunStats reflects the attempts.
func TestSupervisorRetriesTransient(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 5,
		Sleep:       noSleep(&slept),
	}}
	fails := 3
	stats, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		if a.N <= fails {
			return fmt.Errorf("transient: %w", resilient.ErrCanceled)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Attempts != 4 || stats.Retries != 3 {
		t.Errorf("stats = %+v, want 4 attempts / 3 retries", stats)
	}
	if len(slept) != 3 {
		t.Errorf("slept %d times, want 3", len(slept))
	}
}

// TestSupervisorContainsPanic: a panic inside the op is converted to a
// *PanicError (which wraps ErrPartial) and retried like any transient.
func TestSupervisorContainsPanic(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 3,
		Sleep:       noSleep(&slept),
	}}
	stats, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		if a.N == 1 {
			panic("kernel blew up")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", stats.Attempts)
	}
}

// TestSupervisorPanicExhaustionWrapsPanicError: when every attempt panics,
// the final error still exposes the *PanicError via errors.As.
func TestSupervisorPanicExhaustionWrapsPanicError(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 2,
		Sleep:       noSleep(&slept),
	}}
	stats, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
		panic("always")
	})
	if err == nil {
		t.Fatal("Run succeeded, want exhaustion")
	}
	var pe *resilient.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want to wrap *PanicError", err)
	}
	if pe.Value != "always" {
		t.Errorf("panic value = %v, want %q", pe.Value, "always")
	}
	if stats.Attempts != 2 || stats.Retries != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 retry", stats)
	}
}

// TestSupervisorFailFast: corruption and non-partial errors are never
// retried — one attempt, error returned verbatim.
func TestSupervisorFailFast(t *testing.T) {
	for name, cause := range map[string]error{
		"corrupt checkpoint": fmt.Errorf("load: %w", resilient.ErrCorruptCheckpoint),
		"bad checkpoint":     fmt.Errorf("load: %w", resilient.ErrBadCheckpoint),
		"plain error":        errors.New("not in the partial family"),
	} {
		var slept []time.Duration
		sup := &resilient.Supervisor{Policy: resilient.Policy{
			MaxAttempts: 5,
			Sleep:       noSleep(&slept),
		}}
		calls := 0
		stats, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
			calls++
			return cause
		})
		if !errors.Is(err, cause) {
			t.Errorf("%s: err = %v, want %v", name, err, cause)
		}
		if calls != 1 || stats.Attempts != 1 || stats.Retries != 0 {
			t.Errorf("%s: %d calls, stats %+v — want exactly one attempt", name, calls, stats)
		}
	}
}

// TestSupervisorGiveUp: exhausting MaxAttempts wraps the last error so
// errors.Is against the underlying sentinel still holds.
func TestSupervisorGiveUp(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 3,
		Sleep:       noSleep(&slept),
	}}
	stats, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
		return fmt.Errorf("still down: %w", resilient.ErrDeadline)
	})
	if err == nil || !errors.Is(err, resilient.ErrDeadline) {
		t.Fatalf("err = %v, want wrapped ErrDeadline", err)
	}
	if stats.Attempts != 3 || stats.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", stats)
	}
}

// TestSupervisorDeterministicBackoff: equal seeds give byte-identical
// backoff schedules; the schedule is exponential-with-jitter within
// [base/2, cap] and capped at MaxBackoff.
func TestSupervisorDeterministicBackoff(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var slept []time.Duration
		sup := &resilient.Supervisor{Policy: resilient.Policy{
			MaxAttempts: 8,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  80 * time.Millisecond,
			Seed:        seed,
			Sleep:       noSleep(&slept),
		}}
		_, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
			return resilient.ErrCanceled
		})
		if err == nil {
			t.Fatal("want exhaustion")
		}
		return slept
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 7 {
		t.Fatalf("schedule length = %d, want 7", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 schedules diverge at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := schedule(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter — stream not seeded")
	}
	// Envelope: retry n draws from [cap/2, cap] where cap = min(base<<(n-1), max).
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for i, d := range a {
		cap := base << i
		if cap > max {
			cap = max
		}
		if d < cap/2 || d > cap {
			t.Errorf("retry %d backoff %v outside [%v, %v]", i+1, d, cap/2, cap)
		}
	}
}

// TestSupervisorDegradationLadder: resource errors step the attempt width
// down 8→4→2→1, then flip to scalar kernels, then keep retrying at the
// bottom rung.
func TestSupervisorDegradationLadder(t *testing.T) {
	budget := resilient.Sentinel("test: node budget")
	var slept []time.Duration
	sup := &resilient.Supervisor{
		Policy: resilient.Policy{
			MaxAttempts: 7,
			DegradeOn:   []error{budget},
			Sleep:       noSleep(&slept),
		},
		Workers: 8,
	}
	type rung struct {
		workers int
		scalar  bool
	}
	var seen []rung
	stats, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		seen = append(seen, rung{a.Workers, a.Scalar})
		if a.N < 7 {
			return fmt.Errorf("oom at width %d: %w", a.Workers, budget)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []rung{{8, false}, {4, false}, {2, false}, {1, false}, {1, true}, {1, true}, {1, true}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d attempts, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("attempt %d ran at %+v, want %+v", i+1, seen[i], want[i])
		}
	}
	if stats.Degrades != 4 {
		t.Errorf("degrades = %d, want 4 (no step counted once the ladder is exhausted)", stats.Degrades)
	}
}

// TestSupervisorMemoryPressureDegrades: ErrMemory lands on the Degrade
// branch of the default classifier without any DegradeOn configuration.
func TestSupervisorMemoryPressureDegrades(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{
		Policy:  resilient.Policy{MaxAttempts: 3, Sleep: noSleep(&slept)},
		Workers: 4,
	}
	var widths []int
	_, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		widths = append(widths, a.Workers)
		if a.N == 1 {
			return fmt.Errorf("sweep: %w", resilient.ErrMemory)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(widths) != 2 || widths[0] != 4 || widths[1] != 2 {
		t.Errorf("widths = %v, want [4 2]", widths)
	}
}

// TestSupervisorResumeFlow: the checkpoint attached to a failed attempt's
// error arrives as the next attempt's resume snapshot, Resumed is set, and
// the sections survive the hand-off byte-for-byte.
func TestSupervisorResumeFlow(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 3,
		Sleep:       noSleep(&slept),
	}}
	snap := []resilient.Section{
		{Tag: resilient.TagExplore, Data: []byte("partial graph")},
		{Tag: resilient.TagField, Data: []byte("masks")},
	}
	var resumedWith []resilient.Section
	stats, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		switch a.N {
		case 1:
			if a.Resumed {
				t.Error("first attempt claims to be resumed")
			}
			return resilient.WithCheckpoint(fmt.Errorf("interrupted: %w", resilient.ErrCanceled), ckpt{snap})
		default:
			if !a.Resumed {
				t.Error("second attempt not marked resumed")
			}
			resumedWith = a.Ctx.ResumeSections()
			return nil
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", stats.Resumes)
	}
	if len(resumedWith) != 2 || string(resumedWith[0].Data) != "partial graph" || resumedWith[1].Tag != resilient.TagField {
		t.Errorf("resume sections = %+v, want the checkpointed snapshot", resumedWith)
	}
}

// TestSupervisorResumeFromParentCtx: sections pre-seeded on the parent ctx
// (a CLI -resume) reach the FIRST attempt, which counts as a resume.
func TestSupervisorResumeFromParentCtx(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 2,
		Sleep:       noSleep(&slept),
	}}
	ctx, cancel := resilient.WithCancel()
	defer cancel()
	ctx.SetResume([]resilient.Section{{Tag: resilient.TagCertify, Data: []byte("dfs")}})
	stats, err := sup.Run(ctx, "op", func(a *resilient.Attempt) error {
		if !a.Resumed {
			t.Error("attempt 1 should resume from the parent snapshot")
		}
		if got := a.Ctx.TakeResume(resilient.TagCertify); string(got) != "dfs" {
			t.Errorf("resume payload = %q, want %q", got, "dfs")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", stats.Resumes)
	}
}

// TestSupervisorCancelDuringBackoffKeepsCheckpoint: a parent cancellation
// during the backoff sleep must not reduce the run to a bare ctx error —
// the returned error still wraps the last attempt's error and carries its
// checkpoint, so callers can save the harvested progress on the way out.
func TestSupervisorCancelDuringBackoffKeepsCheckpoint(t *testing.T) {
	ctx, cancel := resilient.WithCancel()
	defer cancel()
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) { cancel() },
	}}
	snap := []resilient.Section{{Tag: resilient.TagExplore, Data: []byte("harvested")}}
	stats, err := sup.Run(ctx, "op", func(*resilient.Attempt) error {
		return resilient.WithCheckpoint(fmt.Errorf("interrupted: %w", resilient.ErrDeadline), ckpt{snap})
	})
	if err == nil {
		t.Fatal("Run succeeded, want cancellation")
	}
	if !errors.Is(err, resilient.ErrDeadline) {
		t.Errorf("err = %v, want to wrap the last attempt's ErrDeadline", err)
	}
	ck, ok := resilient.CheckpointFrom(err)
	if !ok {
		t.Fatal("returned error lost the harvested checkpoint")
	}
	sections, serr := ck.Sections()
	if serr != nil || len(sections) != 1 || string(sections[0].Data) != "harvested" {
		t.Errorf("checkpoint sections = %+v (%v), want the harvested snapshot", sections, serr)
	}
	if stats.Attempts != 1 || stats.Retries != 1 {
		t.Errorf("stats = %+v, want 1 attempt / 1 retry", stats)
	}
}

// TestSupervisorStorePersistsCheckpoints: with a Store attached, each
// harvested checkpoint also becomes a durable generation on disk.
func TestSupervisorStorePersistsCheckpoints(t *testing.T) {
	var slept []time.Duration
	store := &resilient.Store{Path: t.TempDir() + "/sup.ckpt", Keep: 2}
	sup := &resilient.Supervisor{
		Policy: resilient.Policy{MaxAttempts: 3, Sleep: noSleep(&slept)},
		Store:  store,
	}
	snap := []resilient.Section{{Tag: resilient.TagExplore, Data: []byte("gen")}}
	_, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		if a.N == 1 {
			return resilient.WithCheckpoint(fmt.Errorf("x: %w", resilient.ErrCanceled), ckpt{snap})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sections, gen, err := store.Load()
	if err != nil {
		t.Fatalf("Load after supervised run: %v", err)
	}
	if gen != 0 || len(sections) != 1 || string(sections[0].Data) != "gen" {
		t.Errorf("Load = gen %d, %+v", gen, sections)
	}
}

// TestSupervisorWallClockBudget: once Budget is exhausted the next failure
// is final even with attempts remaining.
func TestSupervisorWallClockBudget(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 100,
		Budget:      time.Nanosecond,
		Sleep:       noSleep(&slept),
	}}
	calls := 0
	_, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
		calls++
		time.Sleep(time.Millisecond)
		return resilient.ErrCanceled
	})
	if err == nil || !errors.Is(err, resilient.ErrCanceled) {
		t.Fatalf("err = %v, want wrapped ErrCanceled", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (budget spent after the first)", calls)
	}
}

// TestSupervisorParentCancelStops: a canceled parent context forces Fail
// regardless of the attempt error's class, and a pre-canceled parent never
// runs the op at all.
func TestSupervisorParentCancelStops(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 10,
		Sleep:       noSleep(&slept),
	}}
	ctx, cancel := resilient.WithCancel()
	calls := 0
	_, err := sup.Run(ctx, "op", func(a *resilient.Attempt) error {
		calls++
		cancel()
		return a.Ctx.Err()
	})
	if err == nil || !errors.Is(err, resilient.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times after parent cancel, want 1", calls)
	}

	calls = 0
	if _, err := sup.Run(ctx, "op", func(*resilient.Attempt) error { calls++; return nil }); !errors.Is(err, resilient.ErrCanceled) {
		t.Errorf("pre-canceled parent: err = %v, want ErrCanceled", err)
	}
	if calls != 0 {
		t.Errorf("op ran %d times under a pre-canceled parent, want 0", calls)
	}
}

// TestSupervisorAttemptTimeout: AttemptTimeout cancels the attempt's child
// ctx with ErrDeadline; the supervisor classifies that as transient and the
// retry succeeds.
func TestSupervisorAttemptTimeout(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts:    3,
		AttemptTimeout: 5 * time.Millisecond,
		Sleep:          noSleep(&slept),
	}}
	stats, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		if a.N == 1 {
			// Engine-style poll loop: wait for the deadline to cancel us.
			for a.Ctx.Err() == nil {
				time.Sleep(100 * time.Microsecond)
			}
			return a.Ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", stats.Attempts)
	}
}

// TestSupervisorCustomClassify: a Classify override wins over the default
// taxonomy — here inverting corruption into a retry.
func TestSupervisorCustomClassify(t *testing.T) {
	var slept []time.Duration
	sup := &resilient.Supervisor{Policy: resilient.Policy{
		MaxAttempts: 2,
		Classify:    func(error) resilient.Decision { return resilient.Retry },
		Sleep:       noSleep(&slept),
	}}
	calls := 0
	_, err := sup.Run(resilient.Background(), "op", func(*resilient.Attempt) error {
		calls++
		return resilient.ErrCorruptCheckpoint
	})
	if err == nil {
		t.Fatal("want exhaustion")
	}
	if calls != 2 {
		t.Errorf("op ran %d times, want 2 (Classify forces retry)", calls)
	}
}
