package resilient

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/obs"
)

// Store manages crash-durable checkpoint generations rooted at a base
// path. Generation 0 (the newest) lives at Path itself, generation 1 at
// Path+".1", and so on up to Keep-1 — the same naming scheme as rotated
// logs, so the resume flag of every CLI keeps pointing at the plain path.
//
// Save is crash-safe at every step: existing generations are rotated by
// rename (oldest first, skipped entirely for Keep=1), then the new
// snapshot is written to a temp file, fsynced, and renamed into place. A
// SIGKILL or write failure at any instant leaves either the new generation
// complete or the previous one intact (at Path+".1" after rotation, at
// Path itself for Keep=1, where the final rename alone replaces it);
// never a half-written file that Load would trust, because Load verifies
// each candidate's per-section CRCs (RSCK v2) and falls back to the next
// older generation when the newer one is torn or corrupt.
type Store struct {
	// Path is the base checkpoint path (generation 0).
	Path string
	// Keep is how many generations to retain; values below 1 act as 1
	// (a single generation, overwritten atomically on each Save).
	Keep int
}

// genPath returns the file path of generation gen (0 = newest).
func (s *Store) genPath(gen int) string {
	if gen <= 0 {
		return s.Path
	}
	return s.Path + "." + strconv.Itoa(gen)
}

// keep returns the effective retention count.
func (s *Store) keep() int {
	if s.Keep < 1 {
		return 1
	}
	return s.Keep
}

// Save persists sections as the new generation 0, rotating existing
// generations back by one and dropping any beyond Keep. The write is
// atomic: temp file in the same directory, fsync, rename.
func (s *Store) Save(sections []Section) error {
	if s.Path == "" {
		return errors.New("resilient: store has no path")
	}
	rec := obs.Active()
	defer obs.Span(rec, "checkpoint.save.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("checkpoint.save", 0))
	}
	k := s.keep()
	if k > 1 {
		// Rotate oldest-first so each rename's target slot is already free.
		// A crash between renames only shifts which slot holds which
		// snapshot; every file on disk stays a complete, CRC-valid
		// container. With Keep=1 there is nothing to rotate: the final
		// rename below atomically replaces the live file, so the previous
		// snapshot stays intact until the new one is durable.
		os.Remove(s.genPath(k - 1))
		for gen := k - 2; gen >= 0; gen-- {
			if err := os.Rename(s.genPath(gen), s.genPath(gen+1)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("resilient: rotating checkpoint generation %d: %w", gen, err)
			}
		}
	}
	tmp := s.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	werr := WriteSections(f, sections)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, s.Path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(s.Path))
	if rec != nil {
		rec.Add("checkpoint.saves", 1)
		var bytes int64
		for _, sec := range sections {
			bytes += int64(len(sec.Data))
		}
		rec.Record("checkpoint.save.bytes", bytes)
	}
	return nil
}

// SaveError extracts the Checkpointer attached to err (if any) and Saves
// its sections. It reports (false, nil) when err carries no checkpoint.
func (s *Store) SaveError(err error) (bool, error) {
	ck, ok := CheckpointFrom(err)
	if !ok {
		return false, nil
	}
	sections, serr := ck.Sections()
	if serr != nil {
		return false, serr
	}
	if serr := s.Save(sections); serr != nil {
		return false, serr
	}
	return true, nil
}

// Load returns the sections of the newest generation that parses and
// CRC-verifies, together with its generation number (0 = Path itself).
// A torn or corrupt newer generation is skipped — that is the fallback
// SIGKILL recovery relies on. A single missing slot is tolerated too: a
// crash between Save's renames can leave exactly one hole in the chain
// (e.g. generation 0 already rotated away, its replacement not yet renamed
// into place), so the scan only ends at two consecutive missing files. It
// walks generations regardless of Keep, so a store written with a larger
// retention is still fully readable. With no generation present the error
// wraps fs.ErrNotExist; with only corrupt generations it wraps
// ErrCorruptCheckpoint.
func (s *Store) Load() ([]Section, int, error) {
	if s.Path == "" {
		return nil, 0, errors.New("resilient: store has no path")
	}
	var lastErr error
	misses := 0
	for gen := 0; gen < 1024 && misses < 2; gen++ {
		sections, err := LoadFile(s.genPath(gen))
		if err == nil {
			if gen > 0 {
				if rec := obs.Active(); rec != nil {
					rec.Add("checkpoint.fallbacks", 1)
					rec.Event("checkpoint.fallback", obs.F{Key: "path", Value: s.Path}, obs.F{Key: "generation", Value: gen})
				}
			}
			return sections, gen, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			misses++
			continue
		}
		misses = 0
		lastErr = err
	}
	if lastErr != nil {
		return nil, 0, fmt.Errorf("resilient: no loadable checkpoint generation at %s: %w", s.Path, lastErr)
	}
	return nil, 0, fmt.Errorf("resilient: no checkpoint at %s: %w", s.Path, fs.ErrNotExist)
}

// syncDir best-effort fsyncs a directory so a just-renamed checkpoint
// survives power loss. Errors are ignored: some filesystems reject
// directory fsync and the rename itself is already ordered on the ones
// that matter.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
