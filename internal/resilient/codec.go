package resilient

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc serializes checkpoint payloads into a growable byte slice using
// little-endian fixed-width integers for dense arrays and uvarints for
// lengths. It has no error state: encoding into memory cannot fail.
type Enc struct{ buf []byte }

// NewEnc returns an encoder pre-sized for sizeHint bytes.
func NewEnc(sizeHint int) *Enc { return &Enc{buf: make([]byte, 0, sizeHint)} }

// Bytes returns the encoded payload (shared; callers must not modify after
// further writes).
func (e *Enc) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a non-negative int as a uvarint.
func (e *Enc) Int(v int) { e.Uvarint(uint64(v)) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U32s appends a length-prefixed []uint32.
func (e *Enc) U32s(vs []uint32) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// I32s appends a length-prefixed []int32 (two's-complement as uint32).
func (e *Enc) I32s(vs []int32) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// Raw appends a length-prefixed raw byte slice.
func (e *Enc) Raw(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Strs appends a length-prefixed []string with per-element prefixes.
func (e *Enc) Strs(vs []string) {
	e.Uvarint(uint64(len(vs)))
	for _, s := range vs {
		e.Str(s)
	}
}

// Dec decodes payloads written by Enc. Errors are sticky: after the first
// malformed read every accessor returns zero values, and Err reports the
// failure, so decode sequences read linearly without per-call checks.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// err2 records a truncation error once, keeping the first offset.
func (d *Dec) err2(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("resilient: truncated checkpoint reading %s at offset %d", what, d.off)
	}
}

// Err returns the sticky decode error.
func (d *Dec) Err() error { return d.err }

// Done reports whether the whole payload was consumed without error.
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.buf) }

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err2("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a non-negative int, rejecting values that overflow int.
func (d *Dec) Int() int {
	v := d.Uvarint()
	if v > math.MaxInt32 {
		// Checkpoint cardinalities are node/edge counts; anything larger
		// than int32 range is corruption, not scale.
		d.err2("int (out of range)")
		return 0
	}
	return int(v)
}

// U32 reads a fixed-width uint32.
func (d *Dec) U32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.err2("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a fixed-width uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err2("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.err2("string body")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// U32s reads a length-prefixed []uint32.
func (d *Dec) U32s() []uint32 {
	n := d.Int()
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+4*n > len(d.buf) {
		d.err2("[]uint32 body")
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.buf[d.off+4*i:])
	}
	d.off += 4 * n
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.Int()
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+4*n > len(d.buf) {
		d.err2("[]int32 body")
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.buf[d.off+4*i:]))
	}
	d.off += 4 * n
	return out
}

// Raw reads a length-prefixed byte slice (copied).
func (d *Dec) Raw() []byte {
	n := d.Int()
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err2("raw body")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out
}

// Strs reads a length-prefixed []string.
func (d *Dec) Strs() []string {
	n := d.Int()
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	return out
}
