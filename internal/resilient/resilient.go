// Package resilient is the engine's resilient-execution layer: lightweight
// cancellation contexts with deadlines, a family of errors.Is-consistent
// degradation sentinels, a panic-safe worker pool, and a versioned binary
// checkpoint format that long-running analyses use to survive interruption
// and resume bit-for-bit.
//
// The package is deliberately stdlib-only (plus internal/obs for counter
// snapshots in panic reports) and sits below core, valence, decision, and
// knowledge in the import graph, so every engine can accept a *Ctx and wrap
// its budget sentinels around ErrPartial without cycles.
//
// Design rules:
//
//   - Cancellation is polled, not pushed: engines call Ctx.Err at layer,
//     shard, or every-K-visits granularity, so the hot loops pay one atomic
//     load per check and nothing per node.
//   - Every error that leaves an engine with usable partial state —
//     ErrCanceled, ErrDeadline, core.ErrNodeBudget, valence.ErrBudget —
//     wraps ErrPartial, so callers have a single errors.Is degradation
//     check.
//   - A resumable interruption attaches a Checkpointer to the returned
//     error (see WithCheckpoint); callers that hold a -checkpoint path
//     extract it with CheckpointFrom and write the snapshot.
package resilient

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPartial is the root of the degradation-sentinel family: every error
// that reports an interrupted-but-usable computation (canceled, past
// deadline, out of budget) wraps it, so a single
//
//	errors.Is(err, resilient.ErrPartial)
//
// distinguishes "stopped early with partial state" from a genuine failure.
var ErrPartial = errors.New("resilient: partial result")

// sentinel is a named degradation error. Comparing the sentinel itself with
// errors.Is matches by identity; unwrapping reaches ErrPartial.
type sentinel struct{ msg string }

func (s *sentinel) Error() string { return s.msg }
func (s *sentinel) Unwrap() error { return ErrPartial }

// Sentinel returns a new named degradation sentinel wrapping ErrPartial.
// Engines use it for their budget errors so errors.Is(err, theirSentinel)
// and errors.Is(err, resilient.ErrPartial) both hold.
func Sentinel(msg string) error { return &sentinel{msg: msg} }

// ErrCanceled is returned (wrapped) by engine entry points when their Ctx
// was canceled. Like a budget error, it arrives alongside the partial
// result computed so far.
var ErrCanceled = Sentinel("resilient: canceled")

// ErrDeadline is ErrCanceled's cause-specific sibling for Ctx deadlines.
var ErrDeadline = Sentinel("resilient: deadline exceeded")

// Ctx is a lightweight cancellation context: a cancel flag, an optional
// deadline, and an optional parent. It is not context.Context — engines
// poll Err at coarse granularity instead of selecting on a channel, so the
// disabled/hot path costs one atomic load (plus one per ancestor, and the
// engines are handed roots or first-level children).
//
// A nil *Ctx is valid and never canceled, so plumbing can default to nil.
type Ctx struct {
	parent *Ctx
	flag   atomic.Bool
	err    atomic.Pointer[error]
	done   chan struct{}
	// timer is atomic because a short deadline can fire (and Cancel can
	// read it) before WithDeadline's store completes.
	timer atomic.Pointer[time.Timer]

	mu     sync.Mutex
	resume []Section
}

// Background returns a fresh never-canceled root context. Most callers can
// simply pass nil; Background exists for call sites that want a
// non-nil handle to attach a resume snapshot to.
func Background() *Ctx { return &Ctx{done: make(chan struct{})} }

// WithCancel returns a context canceled by the returned function (with
// ErrCanceled). The cancel function is idempotent and safe for concurrent
// use.
func WithCancel() (*Ctx, func()) {
	c := &Ctx{done: make(chan struct{})}
	return c, func() { c.Cancel(ErrCanceled) }
}

// WithDeadline returns a context that cancels itself with ErrDeadline after
// d, plus a stop function that releases the timer without canceling.
func WithDeadline(d time.Duration) (*Ctx, func()) {
	c := &Ctx{done: make(chan struct{})}
	c.timer.Store(time.AfterFunc(d, func() { c.Cancel(ErrDeadline) }))
	return c, func() {
		if t := c.timer.Load(); t != nil {
			t.Stop()
		}
	}
}

// Child returns a context canceled when either its parent is canceled or
// its own cancel function runs. The worker pool uses children so one
// failing shard can stop its siblings without touching the caller's
// context.
func (c *Ctx) Child() (*Ctx, func()) {
	child := &Ctx{parent: c, done: make(chan struct{})}
	return child, func() { child.Cancel(ErrCanceled) }
}

// Cancel cancels the context with the given cause (ErrCanceled when cause
// is nil). Later calls are no-ops; the first cause wins.
func (c *Ctx) Cancel(cause error) {
	if c == nil {
		return
	}
	if cause == nil {
		cause = ErrCanceled
	}
	c.err.CompareAndSwap(nil, &cause)
	if c.flag.CompareAndSwap(false, true) {
		if t := c.timer.Load(); t != nil {
			t.Stop()
		}
		close(c.done)
	}
}

// Err returns nil while the context is live, and the cancellation cause
// (ErrCanceled, ErrDeadline, or a Pool worker's panic error) afterwards.
// The live path is one atomic load per ancestor; engines call it at layer,
// shard, or every-K-visits granularity.
func (c *Ctx) Err() error {
	if c == nil {
		return nil
	}
	if c.flag.Load() {
		if p := c.err.Load(); p != nil {
			return *p
		}
		return ErrCanceled
	}
	return c.parent.Err()
}

// Done returns a channel closed when this context (not an ancestor) is
// canceled — for the rare blocking waiter; polling Err is the primary
// protocol and the only one that observes ancestor cancellation.
func (c *Ctx) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.done
}

// SetResume attaches a parsed checkpoint's sections to the context. Engine
// entry points that support resuming consume their section with
// TakeResume; sections nobody claims are simply ignored.
func (c *Ctx) SetResume(sections []Section) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.resume = append([]Section(nil), sections...)
	c.mu.Unlock()
}

// PeekResume returns the first attached resume section with the given tag
// without consuming it, or nil. Engines peek, validate the snapshot
// against their arguments (model name, depth), and only then Take it, so a
// snapshot for a different model is left for the call it belongs to.
func (c *Ctx) PeekResume(tag byte) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.resume {
		if s.Tag == tag {
			return s.Data
		}
	}
	return nil
}

// ResumeSections returns a copy of every attached resume section. The
// Supervisor uses it to carry a caller-provided snapshot into the first
// attempt's child context (children do not inherit resume sections).
func (c *Ctx) ResumeSections() []Section {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Section(nil), c.resume...)
}

// TakeResume removes and returns the first attached resume section with the
// given tag, or nil when the context carries none. Consuming the section
// makes resume one-shot: a second engine call with the same tag starts
// fresh.
func (c *Ctx) TakeResume(tag byte) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.resume {
		if s.Tag == tag {
			c.resume = append(c.resume[:i:i], c.resume[i+1:]...)
			return s.Data
		}
	}
	return nil
}

// PanicError reports a worker panic contained by a Pool: the panic value,
// the shard that raised it, the worker's stack, and a snapshot of the obs
// counters at recovery time (nil when instrumentation was off). It wraps
// ErrPartial: a contained panic degrades the call, it does not crash the
// process.
type PanicError struct {
	// Shard is the index of the work item whose worker panicked.
	Shard int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// Counters is the obs counter/gauge snapshot at recovery, when a
	// metrics recorder was active.
	Counters map[string]int64
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilient: worker panic on shard %d: %v", e.Shard, e.Value)
}

// Unwrap makes errors.Is(err, ErrPartial) hold for contained panics.
func (e *PanicError) Unwrap() error { return ErrPartial }
