package resilient

import (
	"fmt"
	"runtime/metrics"
	"sync/atomic"
)

// ErrMemory reports that the process heap crossed the configured soft
// memory limit. It wraps ErrPartial — the engine that observed it stops at
// a checkpointable boundary with its partial state intact — and the
// Supervisor's default classifier treats it as a degradation signal:
// step down workers, then fall back to scalar kernels, rather than retry
// at full width into the same wall.
var ErrMemory = Sentinel("resilient: memory pressure")

// softMemLimit holds the soft heap limit in bytes; 0 (the default)
// disables the gate entirely.
var softMemLimit atomic.Int64

// SetSoftMemLimit arms (or, with 0, disarms) the soft heap limit that
// MemPressure checks. The limit is advisory — nothing is freed and no
// allocation fails; engines polling MemPressure at layer boundaries stop
// with a checkpoint once the live heap exceeds it.
func SetSoftMemLimit(bytes int64) { softMemLimit.Store(bytes) }

// SoftMemLimit returns the current soft heap limit (0 = disabled).
func SoftMemLimit() int64 { return softMemLimit.Load() }

// heapMetric is the runtime/metrics series MemPressure reads — live heap
// object bytes, the same series the obs runtime sampler exports as
// runtime.heap_bytes.
const heapMetric = "/memory/classes/heap/objects:bytes"

// MemPressure reports whether the live heap currently exceeds the soft
// limit: nil when the gate is disarmed or the heap is under it, an error
// wrapping ErrMemory otherwise. The disarmed path is a single atomic load,
// so engines poll it wherever they already poll their Ctx.
func MemPressure() error {
	lim := softMemLimit.Load()
	if lim <= 0 {
		return nil
	}
	sample := [1]metrics.Sample{{Name: heapMetric}}
	metrics.Read(sample[:])
	heap := int64(sample[0].Value.Uint64())
	if heap <= lim {
		return nil
	}
	return fmt.Errorf("%w: heap %d B over soft limit %d B", ErrMemory, heap, lim)
}
