package resilient

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// Decision is the Supervisor's classification of one attempt's error.
type Decision uint8

const (
	// Fail stops the run: the error is permanent (corruption, an
	// invalid-model mismatch, or anything outside the ErrPartial family)
	// and retrying would repeat it.
	Fail Decision = iota
	// Retry backs off and runs another attempt, resuming from the
	// checkpoint the failed attempt attached.
	Retry
	// Degrade steps down the degradation ladder — halve the workers, and
	// once at one worker fall back to scalar kernels — before retrying.
	// Resource errors (memory pressure, node/valence budgets) land here:
	// retrying at full width would hit the same wall.
	Degrade
)

// Policy configures a Supervisor's retry behavior. The zero value gives a
// usable conservative policy: 3 attempts, 50ms base backoff capped at 30s,
// no wall-clock budget, default classification.
type Policy struct {
	// MaxAttempts bounds the total number of attempts, the first
	// included; values below 1 act as 3.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// retry up to MaxBackoff. Values below 1ns act as 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; values below 1ns act as 30s.
	MaxBackoff time.Duration
	// Budget, when positive, is a wall-clock ceiling across all attempts
	// and backoffs: once exceeded, the next failure is final.
	Budget time.Duration
	// AttemptTimeout, when positive, is a per-attempt deadline: the
	// attempt's child context is canceled with ErrDeadline, the engine
	// stops at its next poll with a checkpoint, and the supervisor
	// retries from it.
	AttemptTimeout time.Duration
	// Seed drives the deterministic jitter stream: equal seeds give equal
	// backoff schedules, which the chaos campaign relies on for
	// reproducible reports.
	Seed uint64
	// Classify overrides the default error classification when non-nil.
	Classify func(error) Decision
	// DegradeOn lists additional sentinels the default classifier maps to
	// Degrade — callers pass their engine budget errors
	// (core.ErrNodeBudget, valence.ErrBudget), which this package cannot
	// name without an import cycle.
	DegradeOn []error
	// Sleep replaces the backoff sleep (tests inject a recorder here).
	// The production sleep aborts early when ctx is canceled.
	Sleep func(time.Duration)
}

// Supervisor runs checkpointable engine ops under a retry policy: each
// failed attempt's checkpoint (attached to its error via WithCheckpoint)
// becomes the next attempt's resume snapshot, so no attempt repeats work a
// previous one finished. A Supervisor is stateless across Run calls and
// safe for sequential reuse; the degradation ladder resets per Run.
type Supervisor struct {
	Policy
	// Store, when non-nil, additionally persists each harvested
	// checkpoint to disk (rotating generations), so a crash of this
	// process resumes where the supervisor had gotten to.
	Store *Store
	// Workers is the full-width worker count attempts start from; values
	// below 1 act as GOMAXPROCS.
	Workers int
}

// Attempt is what a supervised op receives: the attempt's own child
// context (carrying the resume snapshot, if any) and the degradation
// parameters the op should honor.
type Attempt struct {
	// Ctx is canceled when the parent cancels, when AttemptTimeout fires,
	// or when the attempt ends; it carries the previous attempt's
	// checkpoint sections for the engines to Peek/TakeResume.
	Ctx *Ctx
	// N is the attempt number, starting at 1.
	N int
	// Workers is the worker count after degradation steps.
	Workers int
	// Scalar directs the op to use scalar kernels instead of the
	// bit-plane ones — the ladder's last rung.
	Scalar bool
	// Resumed reports whether Ctx carries a resume snapshot.
	Resumed bool
}

// RunStats summarizes one Run for reports: how many attempts ran, how many
// were retries resp. resumed from a checkpoint, how many degradation steps
// were taken, and the total backoff slept.
type RunStats struct {
	Attempts int
	Retries  int
	Resumes  int
	Degrades int
	Backoff  time.Duration
}

// Run executes op under the policy until it succeeds, fails permanently,
// or exhausts its attempt/wall-clock budget. The returned error is nil on
// success; on exhaustion it wraps the last attempt's error (so errors.Is
// against the underlying sentinel still holds). Panics inside op are
// contained into *PanicError and classified like any other error.
func (s *Supervisor) Run(ctx *Ctx, name string, op func(*Attempt) error) (RunStats, error) {
	maxAttempts := s.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}
	base := s.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxBackoff := s.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 30 * time.Second
	}
	workers := s.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	scalar := false
	jitter := s.Seed
	rec := obs.Active()
	tr := obs.Trace()
	var root obs.TraceSpan
	if tr != nil {
		root = tr.Begin("supervisor", 0)
		defer tr.End(root)
	}
	start := time.Now()
	var stats RunStats
	var lastErr error
	pending := ctx.ResumeSections()
	for n := 1; ; n++ {
		if perr := ctx.Err(); perr != nil {
			// Canceled during the previous backoff: wrap the last
			// attempt's error instead of returning the bare cancellation,
			// so its attached checkpoint — the harvested progress — still
			// reaches callers that save on the way out.
			if lastErr != nil {
				return stats, fmt.Errorf("resilient: supervisor canceled before retry (%v): %w", perr, lastErr)
			}
			return stats, perr
		}
		attempt := &Attempt{N: n, Workers: workers, Scalar: scalar, Resumed: len(pending) > 0}
		stats.Attempts++
		if attempt.Resumed {
			stats.Resumes++
		}
		if rec != nil {
			rec.Add("supervisor.attempts", 1)
			if attempt.Resumed {
				rec.Add("supervisor.resumes", 1)
			}
		}
		err := s.runAttempt(ctx, tr, root, op, attempt, pending)
		if err == nil {
			if rec != nil {
				rec.Event("supervisor.done",
					obs.F{Key: "op", Value: name},
					obs.F{Key: "attempts", Value: n},
					obs.F{Key: "workers", Value: workers},
					obs.F{Key: "scalar", Value: scalar})
			}
			return stats, nil
		}
		lastErr = err
		decision := s.decide(err)
		if perr := ctx.Err(); perr != nil {
			// The parent was canceled (possibly mid-attempt): whatever the
			// attempt reported, retrying against a dead context only spins.
			decision = Fail
		}
		if decision == Fail {
			if rec != nil {
				rec.Add("supervisor.failfast", 1)
				rec.Event("supervisor.fail",
					obs.F{Key: "op", Value: name},
					obs.F{Key: "attempt", Value: n},
					obs.F{Key: "cause", Value: err.Error()})
			}
			return stats, err
		}
		if n >= maxAttempts {
			if rec != nil {
				rec.Event("supervisor.giveup",
					obs.F{Key: "op", Value: name},
					obs.F{Key: "attempts", Value: n},
					obs.F{Key: "cause", Value: err.Error()})
			}
			return stats, fmt.Errorf("resilient: supervisor gave up after %d attempts: %w", n, err)
		}
		if s.Budget > 0 && time.Since(start) >= s.Budget {
			if rec != nil {
				rec.Event("supervisor.giveup",
					obs.F{Key: "op", Value: name},
					obs.F{Key: "attempts", Value: n},
					obs.F{Key: "cause", Value: "wall-clock budget"})
			}
			return stats, fmt.Errorf("resilient: supervisor wall-clock budget %s exhausted after %d attempts: %w", s.Budget, n, err)
		}
		if decision == Degrade {
			stepped := true
			switch {
			case workers > 1:
				workers /= 2
			case !scalar:
				scalar = true
			default:
				// Ladder exhausted (already serial scalar): keep retrying
				// within the attempt budget — the fault may still be
				// transient — but no step was taken, so none is counted.
				stepped = false
			}
			if stepped {
				stats.Degrades++
				if rec != nil {
					rec.Add("supervisor.degrades", 1)
					rec.Event("supervisor.degrade",
						obs.F{Key: "op", Value: name},
						obs.F{Key: "attempt", Value: n},
						obs.F{Key: "workers", Value: workers},
						obs.F{Key: "scalar", Value: scalar},
						obs.F{Key: "cause", Value: err.Error()})
				}
			}
		}
		// Harvest the failed attempt's checkpoint: it becomes the next
		// attempt's resume snapshot (and a durable generation, with a
		// Store), so the retry continues instead of restarting.
		pending = nil
		if ck, ok := CheckpointFrom(err); ok {
			if sections, serr := ck.Sections(); serr == nil {
				pending = sections
				if s.Store != nil {
					if serr := s.Store.Save(sections); serr != nil && rec != nil {
						rec.Event("supervisor.store.error",
							obs.F{Key: "op", Value: name},
							obs.F{Key: "error", Value: serr.Error()})
					}
				}
			}
		}
		backoff := s.backoff(n, base, maxBackoff, &jitter)
		stats.Retries++
		stats.Backoff += backoff
		if rec != nil {
			rec.Add("supervisor.retries", 1)
			rec.Record("supervisor.backoff.ns", backoff.Nanoseconds())
			rec.Event("supervisor.retry",
				obs.F{Key: "op", Value: name},
				obs.F{Key: "attempt", Value: n},
				obs.F{Key: "backoff_ns", Value: backoff.Nanoseconds()},
				obs.F{Key: "resumed", Value: len(pending) > 0},
				obs.F{Key: "workers", Value: workers},
				obs.F{Key: "scalar", Value: scalar},
				obs.F{Key: "cause", Value: err.Error()})
		}
		s.sleep(ctx, backoff)
	}
}

// runAttempt executes op on a child context under a recover barrier, with
// the per-attempt deadline armed and — for retries — a span.retry trace
// covering the attempt.
func (s *Supervisor) runAttempt(ctx *Ctx, tr *obs.Tracer, root obs.TraceSpan, op func(*Attempt) error, attempt *Attempt, pending []Section) (err error) {
	child, stop := ctx.Child()
	defer stop()
	if s.AttemptTimeout > 0 {
		t := time.AfterFunc(s.AttemptTimeout, func() { child.Cancel(ErrDeadline) })
		defer t.Stop()
	}
	if len(pending) > 0 {
		child.SetResume(pending)
	}
	attempt.Ctx = child
	if tr != nil && attempt.N > 1 {
		span := tr.Begin("retry", root.ID)
		defer tr.End(span)
	}
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Shard: -1, Value: r, Stack: debug.Stack()}
			if m, ok := obs.Active().(*obs.Metrics); ok && m != nil {
				pe.Counters = m.Snapshot()
			}
			err = pe
		}
	}()
	return op(attempt)
}

// decide classifies an attempt error.
func (s *Supervisor) decide(err error) Decision {
	if s.Classify != nil {
		return s.Classify(err)
	}
	// Corruption (a torn or mutated checkpoint) and invalid-model
	// mismatches (a checkpoint that does not replay) both wrap
	// ErrBadCheckpoint; retrying re-reads the same bytes.
	if errors.Is(err, ErrBadCheckpoint) {
		return Fail
	}
	if errors.Is(err, ErrMemory) {
		return Degrade
	}
	for _, d := range s.DegradeOn {
		if d != nil && errors.Is(err, d) {
			return Degrade
		}
	}
	// The ErrPartial family — cancellation, deadlines, chaos faults,
	// contained panics — left usable partial state behind: retry.
	if errors.Is(err, ErrPartial) {
		return Retry
	}
	return Fail
}

// backoff returns the delay before retry n (1-based): exponential from
// base, capped, with deterministic jitter in [d/2, d] drawn from the
// seeded splitmix64 stream.
func (s *Supervisor) backoff(n int, base, max time.Duration, jitter *uint64) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(splitmix64(jitter)%uint64(half+1))
	}
	return d
}

// sleep waits for the backoff duration, aborting early when ctx cancels.
func (s *Supervisor) sleep(ctx *Ctx, d time.Duration) {
	if s.Sleep != nil {
		s.Sleep(d)
		return
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// splitmix64 advances the jitter stream — the same generator
// internal/chaos uses for plan derivation, duplicated here because chaos
// imports resilient.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
