package resilient_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilient"
)

func testSections() []resilient.Section {
	return []resilient.Section{
		{Tag: resilient.TagExplore, Data: []byte("partial exploration state")},
		{Tag: resilient.TagCertify, Data: []byte{0, 1, 2, 3, 0xff}},
		{Tag: resilient.TagField, Data: []byte{}},
	}
}

func encode(t *testing.T, sections []resilient.Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := resilient.WriteSections(&buf, sections); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadSectionsV1Compat: a hand-built version-1 container (no per-section
// CRC) still parses, so checkpoints written before the CRC upgrade remain
// resumable.
func TestReadSectionsV1Compat(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("RSCK")
	buf.WriteByte(1)
	for _, s := range testSections() {
		buf.WriteByte(s.Tag)
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s.Data)))
		buf.Write(n[:])
		buf.Write(s.Data)
	}
	got, err := resilient.ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 container rejected: %v", err)
	}
	want := testSections()
	if len(got) != len(want) {
		t.Fatalf("got %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Tag != want[i].Tag || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("section %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCheckpointMutationDetected: every single-byte mutation of a valid v2
// container — bit flip or increment, at every offset past the version byte —
// is rejected. The header bytes are covered by the magic/version checks
// instead, which may reject with the coarser ErrBadCheckpoint.
func TestCheckpointMutationDetected(t *testing.T) {
	orig := encode(t, testSections())
	for off := 0; off < len(orig); off++ {
		for _, mutate := range []func(byte) byte{
			func(b byte) byte { return b ^ 0x80 },
			func(b byte) byte { return b + 1 },
		} {
			data := bytes.Clone(orig)
			data[off] = mutate(data[off])
			got, err := resilient.ReadSections(bytes.NewReader(data))
			if err == nil {
				t.Fatalf("mutation at offset %d (%#02x -> %#02x) parsed %d sections undetected",
					off, orig[off], data[off], len(got))
			}
			if !errors.Is(err, resilient.ErrBadCheckpoint) {
				t.Fatalf("mutation at offset %d: err = %v, want ErrBadCheckpoint family", off, err)
			}
			if off >= 5 && !errors.Is(err, resilient.ErrCorruptCheckpoint) {
				t.Fatalf("body mutation at offset %d: err = %v, want ErrCorruptCheckpoint", off, err)
			}
		}
	}
}

// TestLoadFileCorruptSentinel: truncated and garbage files at the LoadFile
// boundary satisfy errors.Is(err, ErrCorruptCheckpoint); a missing file
// stays an fs.ErrNotExist, not a corruption report.
func TestLoadFileCorruptSentinel(t *testing.T) {
	dir := t.TempDir()
	valid := encode(t, testSections())
	cases := map[string][]byte{
		"garbage":   []byte("this is not a checkpoint at all"),
		"truncated": valid[:len(valid)/2],
		"empty":     {},
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := resilient.LoadFile(path); !errors.Is(err, resilient.ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
	if _, err := resilient.LoadFile(filepath.Join(dir, "absent")); !errors.Is(err, fs.ErrNotExist) || errors.Is(err, resilient.ErrCorruptCheckpoint) {
		t.Errorf("missing file: err = %v, want bare fs.ErrNotExist", err)
	}
}

// TestStoreSaveAtomic: a Save never leaves its temp file behind and the
// stored bytes round-trip exactly.
func TestStoreSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "a.ckpt"), Keep: 1}
	if err := st.Save(testSections()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind after Save", e.Name())
		}
	}
	sections, gen, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || len(sections) != 3 || string(sections[0].Data) != "partial exploration state" {
		t.Errorf("Load = gen %d, %d sections", gen, len(sections))
	}
}

// TestStoreKeep1FailedSaveKeepsPrevious: with Keep=1 a Save that fails
// mid-write must leave the previous checkpoint intact at Path — rotation
// must never delete the only copy before its replacement is durable.
func TestStoreKeep1FailedSaveKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "a.ckpt"), Keep: 1}
	if err := st.Save(testSections()); err != nil {
		t.Fatal(err)
	}
	// Block the temp file slot with a directory so the next Save's write
	// fails before anything can be renamed into place.
	if err := os.Mkdir(st.Path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSections()); err == nil {
		t.Fatal("Save succeeded despite blocked temp file")
	}
	if err := os.Remove(st.Path + ".tmp"); err != nil {
		t.Fatal(err)
	}
	sections, gen, err := st.Load()
	if err != nil {
		t.Fatalf("previous checkpoint lost after failed Save: %v", err)
	}
	if gen != 0 || len(sections) != 3 {
		t.Errorf("Load = gen %d, %d sections; want the original at gen 0", gen, len(sections))
	}
}

// TestStoreRotationKeepsK: with Keep=3, the three newest snapshots survive
// in order (gen 0 newest) and older ones are dropped.
func TestStoreRotationKeepsK(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "r.ckpt"), Keep: 3}
	for i := 0; i < 5; i++ {
		snap := []resilient.Section{{Tag: resilient.TagExplore, Data: []byte{byte('a' + i)}}}
		if err := st.Save(snap); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	// Saves wrote a..e; generations should now hold e, d, c.
	for gen, want := range map[int]byte{0: 'e', 1: 'd', 2: 'c'} {
		path := st.Path
		if gen > 0 {
			path = st.Path + "." + string(rune('0'+gen))
		}
		sections, err := resilient.LoadFile(path)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if len(sections) != 1 || sections[0].Data[0] != want {
			t.Errorf("generation %d holds %q, want %q", gen, sections[0].Data, want)
		}
	}
	if _, err := os.Stat(st.Path + ".3"); !errors.Is(err, fs.ErrNotExist) {
		t.Error("generation 3 should have been dropped (Keep=3)")
	}
}

// TestStoreLoadFallsBackPastCorruption: when generation 0 is torn or
// bit-rotted, Load skips it and returns the intact generation 1.
func TestStoreLoadFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "f.ckpt"), Keep: 2}
	old := []resilient.Section{{Tag: resilient.TagField, Data: []byte("older but intact")}}
	if err := st.Save(old); err != nil {
		t.Fatal(err)
	}
	if err := st.Save([]resilient.Section{{Tag: resilient.TagField, Data: []byte("newest")}}); err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"torn":    func(b []byte) []byte { return b[:len(b)/2] },
		"bit rot": func(b []byte) []byte { b[len(b)-6] ^= 0x40; return b },
	} {
		data, err := os.ReadFile(st.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.Path, mangle(bytes.Clone(data)), 0o644); err != nil {
			t.Fatal(err)
		}
		sections, gen, lerr := st.Load()
		if lerr != nil {
			t.Fatalf("%s: Load: %v", name, lerr)
		}
		if gen != 1 || string(sections[0].Data) != "older but intact" {
			t.Errorf("%s: Load = gen %d %q, want gen 1 fallback", name, gen, sections[0].Data)
		}
		// Restore the intact newest for the next case.
		if err := os.WriteFile(st.Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreLoadToleratesOneHole: a crash between Save's renames leaves
// exactly one missing slot; Load must scan past a single hole to the next
// generation, but stop after two consecutive misses.
func TestStoreLoadToleratesOneHole(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "h.ckpt"), Keep: 3}
	for i := 0; i < 3; i++ {
		if err := st.Save([]resilient.Section{{Tag: resilient.TagExplore, Data: []byte{byte('a' + i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate SIGKILL after rotation, before the tmp→gen0 rename: gen 0
	// is missing, gen 1 holds the most recent completed snapshot ("b",
	// since "c" was the write the crash interrupted).
	if err := os.Remove(st.Path); err != nil {
		t.Fatal(err)
	}
	sections, gen, err := st.Load()
	if err != nil {
		t.Fatalf("Load with one hole: %v", err)
	}
	if gen != 1 || sections[0].Data[0] != 'b' {
		t.Errorf("Load = gen %d %q, want gen 1 %q", gen, sections[0].Data, "b")
	}
	// Two consecutive holes end the scan even with an intact file beyond.
	if err := os.Remove(st.Path + ".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.Path+".2", st.Path+".3"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Load past two holes = %v, want fs.ErrNotExist", err)
	}
}

// TestStoreLoadAllCorrupt: with every generation corrupt the error reports
// corruption (not absence), so callers know a checkpoint existed.
func TestStoreLoadAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st := &resilient.Store{Path: filepath.Join(dir, "c.ckpt"), Keep: 2}
	if err := st.Save(testSections()); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSections()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{st.Path, st.Path + ".1"} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := st.Load()
	if !errors.Is(err, resilient.ErrCorruptCheckpoint) {
		t.Errorf("Load over corrupt chain = %v, want ErrCorruptCheckpoint", err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Error("corrupt chain misreported as absent")
	}
}

// TestStoreLoadEmpty: a store with nothing on disk wraps fs.ErrNotExist.
func TestStoreLoadEmpty(t *testing.T) {
	st := &resilient.Store{Path: filepath.Join(t.TempDir(), "nope.ckpt")}
	if _, _, err := st.Load(); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("empty store Load = %v, want fs.ErrNotExist", err)
	}
}

// TestWriteSectionsCRCMatchesReference: the trailer is a plain CRC32C over
// tag+len+payload — pin it against an independent computation so the
// on-disk format can't silently drift.
func TestWriteSectionsCRCMatchesReference(t *testing.T) {
	sec := resilient.Section{Tag: resilient.TagCertify, Data: []byte("pinned")}
	data := encode(t, []resilient.Section{sec})
	table := crc32.MakeTable(crc32.Castagnoli)
	var frame [9]byte
	frame[0] = sec.Tag
	binary.LittleEndian.PutUint64(frame[1:], uint64(len(sec.Data)))
	want := crc32.Update(crc32.Update(0, table, frame[:]), table, sec.Data)
	got := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got != want {
		t.Fatalf("trailer CRC = %08x, want %08x", got, want)
	}
}

// FuzzDecodeCheckpoint: ReadSections must never panic on arbitrary bytes,
// any rejection must satisfy the ErrBadCheckpoint family, and anything
// accepted must re-encode and re-parse to the same sections.
func FuzzDecodeCheckpoint(f *testing.F) {
	var valid bytes.Buffer
	if err := resilient.WriteSections(&valid, testSections()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("RSCK\x01\x01\x03\x00\x00\x00\x00\x00\x00\x00abc"))
	f.Add([]byte("RSCK\x02"))
	f.Add([]byte("RSCK"))
	f.Add([]byte{})
	f.Add([]byte("garbage input"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := resilient.ReadSections(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, resilient.ErrBadCheckpoint) {
				t.Fatalf("decode error outside the checkpoint family: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if werr := resilient.WriteSections(&buf, sections); werr != nil {
			t.Fatalf("re-encode of accepted input: %v", werr)
		}
		again, rerr := resilient.ReadSections(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("re-parse of re-encoded input: %v", rerr)
		}
		if len(again) != len(sections) {
			t.Fatalf("round trip changed section count: %d -> %d", len(sections), len(again))
		}
		for i := range sections {
			if again[i].Tag != sections[i].Tag || !bytes.Equal(again[i].Data, sections[i].Data) {
				t.Fatalf("round trip changed section %d", i)
			}
		}
	})
}
