package resilient

import (
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/obs"
)

// Pool runs a batch of independent shards across worker goroutines with
// panic containment: a panicking worker is recovered into a *PanicError
// carrying the shard id, the stack, and an obs counter snapshot; the
// remaining shards are abandoned (siblings observe cancellation through the
// child context passed to fn) and the call fails instead of the process.
//
// Shards are claimed from a shared cursor, so the pool load-balances
// uneven shards the way the parallel certifier does. When several shards
// fail, the lowest shard index wins, keeping the reported error
// deterministic under scheduling.
type Pool struct {
	// Workers bounds the goroutine count (<= 0 means GOMAXPROCS).
	Workers int
}

// Run executes fn(ctx, shard) for shard in [0, n). The ctx handed to fn is
// a child of the pool's argument: it reports cancellation as soon as the
// parent is canceled or any sibling has failed, so long-running shards can
// poll it at their own granularity. Run returns the error of the
// lowest-indexed failing shard, or parent.Err() when the batch was
// canceled from outside, or nil.
func (p *Pool) Run(parent *Ctx, n int, fn func(ctx *Ctx, shard int) error) error {
	if n <= 0 {
		return parent.Err()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: same containment, no goroutines.
		for shard := 0; shard < n; shard++ {
			if err := parent.Err(); err != nil {
				return err
			}
			if err := runShard(parent, shard, fn); err != nil {
				return err
			}
		}
		return nil
	}

	child, stop := parent.Child()
	defer stop()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		next   int
		failed = -1
		first  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				shard := next
				next++
				mu.Unlock()
				if shard >= n || child.Err() != nil {
					return
				}
				if err := runShard(child, shard, fn); err != nil {
					mu.Lock()
					if failed < 0 || shard < failed {
						failed, first = shard, err
					}
					mu.Unlock()
					child.Cancel(err)
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return parent.Err()
}

// runShard runs one shard under a recover barrier, converting a panic into
// a *PanicError.
func runShard(ctx *Ctx, shard int, fn func(*Ctx, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Shard: shard, Value: r, Stack: debug.Stack()}
			if rec := obs.Active(); rec != nil {
				if snap, ok := rec.(interface{ Snapshot() map[string]int64 }); ok {
					pe.Counters = snap.Snapshot()
				}
				rec.Add("resilient.pool.panics", 1)
				rec.Event("pool.panic",
					obs.F{Key: "shard", Value: shard},
					obs.F{Key: "value", Value: pe.Error()})
			}
			err = pe
		}
	}()
	return fn(ctx, shard)
}
