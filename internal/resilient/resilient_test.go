package resilient_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilient"
)

// TestCtxNilSafe: a nil *Ctx is a valid never-canceled context for every
// method the engines call.
func TestCtxNilSafe(t *testing.T) {
	var ctx *resilient.Ctx
	if err := ctx.Err(); err != nil {
		t.Fatalf("nil ctx Err = %v", err)
	}
	ctx.Cancel(resilient.ErrCanceled) // must not panic
	ctx.SetResume([]resilient.Section{{Tag: resilient.TagExplore}})
	if ctx.PeekResume(resilient.TagExplore) != nil || ctx.TakeResume(resilient.TagExplore) != nil {
		t.Fatal("nil ctx returned a resume section")
	}
	if ctx.Done() != nil {
		t.Fatal("nil ctx Done channel is non-nil")
	}
}

// TestCtxCancelSemantics: first cause wins, cancel is idempotent, Done
// closes, and the family sentinels hold under errors.Is.
func TestCtxCancelSemantics(t *testing.T) {
	ctx, cancel := resilient.WithCancel()
	if ctx.Err() != nil {
		t.Fatal("fresh ctx already canceled")
	}
	first := fmt.Errorf("%w: shard 3 failed", resilient.ErrCanceled)
	ctx.Cancel(first)
	ctx.Cancel(errors.New("late cause must lose"))
	cancel()
	if got := ctx.Err(); got != first {
		t.Fatalf("Err = %v, want the first cause", got)
	}
	if !errors.Is(ctx.Err(), resilient.ErrCanceled) || !errors.Is(ctx.Err(), resilient.ErrPartial) {
		t.Fatalf("cause %v not in the ErrCanceled/ErrPartial family", ctx.Err())
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Done channel still open after cancel")
	}
}

// TestCtxDeadline: the deadline fires with ErrDeadline; the stop function
// releases a timer that has not fired yet.
func TestCtxDeadline(t *testing.T) {
	ctx, stop := resilient.WithDeadline(time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(ctx.Err(), resilient.ErrDeadline) || !errors.Is(ctx.Err(), resilient.ErrPartial) {
		t.Fatalf("deadline cause = %v", ctx.Err())
	}

	live, stop2 := resilient.WithDeadline(time.Hour)
	stop2()
	if live.Err() != nil {
		t.Fatal("stopped deadline ctx reports canceled")
	}
}

// TestCtxChildPropagation: a child observes parent cancellation through
// Err (polling protocol), and a child's own cancel leaves the parent live.
func TestCtxChildPropagation(t *testing.T) {
	parent, cancel := resilient.WithCancel()
	child, _ := parent.Child()
	cancel()
	if !errors.Is(child.Err(), resilient.ErrCanceled) {
		t.Fatalf("child did not observe parent cancel: %v", child.Err())
	}

	parent2 := resilient.Background()
	child2, stop := parent2.Child()
	stop()
	if child2.Err() == nil {
		t.Fatal("child cancel not observed by child")
	}
	if parent2.Err() != nil {
		t.Fatal("child cancel leaked into the parent")
	}
}

// TestResumeSections: Peek does not consume, Take is one-shot, unclaimed
// tags return nil.
func TestResumeSections(t *testing.T) {
	ctx := resilient.Background()
	ctx.SetResume([]resilient.Section{
		{Tag: resilient.TagExplore, Data: []byte{1}},
		{Tag: resilient.TagCertify, Data: []byte{2}},
	})
	if got := ctx.PeekResume(resilient.TagCertify); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("Peek = %v", got)
	}
	if got := ctx.TakeResume(resilient.TagCertify); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("Take = %v", got)
	}
	if ctx.TakeResume(resilient.TagCertify) != nil {
		t.Fatal("Take is not one-shot")
	}
	if ctx.PeekResume(resilient.TagField) != nil {
		t.Fatal("unclaimed tag returned data")
	}
	if got := ctx.TakeResume(resilient.TagExplore); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("sibling section lost: %v", got)
	}
}

// TestSentinelFamily: Sentinel errors match themselves by identity and
// unwrap to ErrPartial; distinct sentinels do not cross-match.
func TestSentinelFamily(t *testing.T) {
	budget := resilient.Sentinel("test: budget")
	wrapped := fmt.Errorf("engine: %w", budget)
	if !errors.Is(wrapped, budget) || !errors.Is(wrapped, resilient.ErrPartial) {
		t.Fatalf("sentinel family broken: %v", wrapped)
	}
	if errors.Is(wrapped, resilient.ErrCanceled) {
		t.Fatal("distinct sentinels cross-match")
	}
}

// TestCheckpointContainerRoundTrip: sections survive the binary container
// byte-for-byte, including empty payloads, and re-encoding is
// deterministic.
func TestCheckpointContainerRoundTrip(t *testing.T) {
	sections := []resilient.Section{
		{Tag: resilient.TagExplore, Data: []byte("partial graph")},
		{Tag: resilient.TagCertify, Data: nil},
		{Tag: resilient.TagField, Data: bytes.Repeat([]byte{0xab}, 1<<12)},
	}
	var buf bytes.Buffer
	if err := resilient.WriteSections(&buf, sections); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	back, err := resilient.ReadSections(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sections) {
		t.Fatalf("got %d sections, want %d", len(back), len(sections))
	}
	for i := range back {
		if back[i].Tag != sections[i].Tag || !bytes.Equal(back[i].Data, sections[i].Data) {
			t.Fatalf("section %d differs after round trip", i)
		}
	}
	var again bytes.Buffer
	if err := resilient.WriteSections(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("container encoding is not deterministic")
	}
}

// TestCheckpointContainerRejects: wrong magic, future version, and
// truncated frames all fail with ErrBadCheckpoint; the torn/corrupt
// subset (everything except an unsupported version) additionally
// satisfies the finer ErrCorruptCheckpoint sentinel.
func TestCheckpointContainerRejects(t *testing.T) {
	var good bytes.Buffer
	if err := resilient.WriteSections(&good, []resilient.Section{{Tag: resilient.TagExplore, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"wrong magic":       []byte("NOPE\x01"),
		"future version":    []byte("RSCK\x03"),
		"truncated header":  good.Bytes()[:7],
		"truncated payload": good.Bytes()[:len(good.Bytes())-1],
		"missing crc":       good.Bytes()[:len(good.Bytes())-4],
	}
	for name, data := range cases {
		_, err := resilient.ReadSections(bytes.NewReader(data))
		if !errors.Is(err, resilient.ErrBadCheckpoint) {
			t.Errorf("%s: err = %v, want ErrBadCheckpoint", name, err)
		}
		if name != "future version" && !errors.Is(err, resilient.ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
	if _, err := resilient.ReadSections(bytes.NewReader([]byte("RSCK\x03"))); errors.Is(err, resilient.ErrCorruptCheckpoint) {
		t.Error("unsupported version misclassified as corruption")
	}
}

// ckpt is a test Checkpointer with a fixed section list.
type ckpt struct{ sections []resilient.Section }

func (c ckpt) Sections() ([]resilient.Section, error) { return c.sections, nil }

// TestCheckpointFromInnermostWins: stacked WithCheckpoint wrappers resolve
// to the innermost Checkpointer (the engine closest to the interruption),
// and errors.Is still sees through the decoration.
func TestCheckpointFromInnermostWins(t *testing.T) {
	inner := resilient.WithCheckpoint(resilient.ErrCanceled, ckpt{[]resilient.Section{{Tag: resilient.TagCertify}}})
	outer := resilient.WithCheckpoint(fmt.Errorf("outer: %w", inner), ckpt{[]resilient.Section{{Tag: resilient.TagExplore}}})
	ck, ok := resilient.CheckpointFrom(outer)
	if !ok {
		t.Fatal("no checkpointer found")
	}
	sections, err := ck.Sections()
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 1 || sections[0].Tag != resilient.TagCertify {
		t.Fatalf("outer wrapper won: %+v", sections)
	}
	if !errors.Is(outer, resilient.ErrCanceled) || !errors.Is(outer, resilient.ErrPartial) {
		t.Fatal("decoration hid the error chain")
	}
	if _, ok := resilient.CheckpointFrom(resilient.ErrCanceled); ok {
		t.Fatal("plain error reported a checkpointer")
	}
	if resilient.WithCheckpoint(nil, ckpt{}) != nil {
		t.Fatal("WithCheckpoint(nil, ck) != nil")
	}
}

// TestSaveAndLoadCheckpoint: SaveCheckpoint writes the attached snapshot to
// disk and LoadFile reads it back; an error without a checkpoint saves
// nothing.
func TestSaveAndLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	err := resilient.WithCheckpoint(resilient.ErrDeadline,
		ckpt{[]resilient.Section{{Tag: resilient.TagField, Data: []byte{7, 7}}}})
	saved, serr := resilient.SaveCheckpoint(path, err)
	if serr != nil || !saved {
		t.Fatalf("SaveCheckpoint = %v, %v", saved, serr)
	}
	sections, lerr := resilient.LoadFile(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(sections) != 1 || sections[0].Tag != resilient.TagField || !bytes.Equal(sections[0].Data, []byte{7, 7}) {
		t.Fatalf("loaded sections %+v", sections)
	}
	if saved, serr := resilient.SaveCheckpoint(filepath.Join(t.TempDir(), "no.ckpt"), resilient.ErrCanceled); saved || serr != nil {
		t.Fatalf("checkpoint-less error saved a file: %v, %v", saved, serr)
	}
	if _, lerr := resilient.LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); !errors.Is(lerr, os.ErrNotExist) {
		t.Fatalf("missing file: %v", lerr)
	}
}

// TestCodecRoundTrip drives every Enc writer through Dec and requires exact
// values and full consumption.
func TestCodecRoundTrip(t *testing.T) {
	e := resilient.NewEnc(64)
	e.Uvarint(0)
	e.Uvarint(1<<40 + 3)
	e.Int(123456)
	e.U32(0xdeadbeef)
	e.U64(0x0102030405060708)
	e.Str("layered consensus")
	e.U32s([]uint32{1, 2, 3})
	e.U32s(nil)
	e.I32s([]int32{-1, 0, 7})
	e.Raw([]byte{9, 8})
	e.Strs([]string{"a", "", "bc"})

	d := resilient.NewDec(e.Bytes())
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<40+3 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Fatalf("int = %d", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("u32 = %x", v)
	}
	if v := d.U64(); v != 0x0102030405060708 {
		t.Fatalf("u64 = %x", v)
	}
	if v := d.Str(); v != "layered consensus" {
		t.Fatalf("str = %q", v)
	}
	if v := d.U32s(); !reflect.DeepEqual(v, []uint32{1, 2, 3}) {
		t.Fatalf("u32s = %v", v)
	}
	if v := d.U32s(); v != nil {
		t.Fatalf("empty u32s = %v", v)
	}
	if v := d.I32s(); !reflect.DeepEqual(v, []int32{-1, 0, 7}) {
		t.Fatalf("i32s = %v", v)
	}
	if v := d.Raw(); !bytes.Equal(v, []byte{9, 8}) {
		t.Fatalf("raw = %v", v)
	}
	if v := d.Strs(); !reflect.DeepEqual(v, []string{"a", "", "bc"}) {
		t.Fatalf("strs = %v", v)
	}
	if !d.Done() {
		t.Fatalf("payload not fully consumed: %v", d.Err())
	}
}

// TestCodecStickyErrors: a truncated read poisons the decoder; later reads
// return zero values and the first error is kept.
func TestCodecStickyErrors(t *testing.T) {
	e := resilient.NewEnc(8)
	e.U64(42)
	d := resilient.NewDec(e.Bytes()[:4])
	if v := d.U64(); v != 0 {
		t.Fatalf("truncated u64 = %d", v)
	}
	first := d.Err()
	if first == nil {
		t.Fatal("truncation not reported")
	}
	if v := d.Str(); v != "" || d.U32() != 0 || d.U32s() != nil {
		t.Fatal("poisoned decoder returned data")
	}
	if d.Err() != first {
		t.Fatal("first error not sticky")
	}
	if d.Done() {
		t.Fatal("Done on a poisoned decoder")
	}

	// Oversized cardinality is corruption, not scale.
	e2 := resilient.NewEnc(8)
	e2.Uvarint(1 << 40)
	d2 := resilient.NewDec(e2.Bytes())
	if d2.Int() != 0 || d2.Err() == nil {
		t.Fatal("out-of-range int accepted")
	}
}

// TestPoolRunsAllShards: every shard runs exactly once for serial and
// parallel worker counts, including workers > shards.
func TestPoolRunsAllShards(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var ran [9]atomic.Int32
		p := &resilient.Pool{Workers: workers}
		if err := p.Run(nil, len(ran), func(ctx *resilient.Ctx, shard int) error {
			ran[shard].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestPoolPanicContained: a panicking shard becomes a *PanicError carrying
// the shard id and stack, wrapping ErrPartial, for both the serial fast
// path and the goroutine pool.
func TestPoolPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := &resilient.Pool{Workers: workers}
		err := p.Run(nil, 8, func(ctx *resilient.Ctx, shard int) error {
			if shard == 2 {
				panic("boom on shard 2")
			}
			return nil
		})
		var pe *resilient.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", workers, err)
		}
		if pe.Shard != 2 || pe.Value != "boom on shard 2" {
			t.Fatalf("workers=%d: wrong panic report: %+v", workers, pe)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TestPoolPanicContained") {
			t.Fatalf("workers=%d: stack missing the panic site", workers)
		}
		if !errors.Is(err, resilient.ErrPartial) {
			t.Fatalf("workers=%d: PanicError not in the ErrPartial family", workers)
		}
	}
}

// TestPoolLowestShardErrorWins: when several shards fail, the reported
// error is deterministically the lowest-indexed one.
func TestPoolLowestShardErrorWins(t *testing.T) {
	p := &resilient.Pool{Workers: 4}
	var gate atomic.Int32
	err := p.Run(nil, 4, func(ctx *resilient.Ctx, shard int) error {
		// Hold every shard at the gate so all four fail together.
		gate.Add(1)
		for gate.Load() < 4 {
			time.Sleep(time.Microsecond)
		}
		return fmt.Errorf("shard %d: %w", shard, resilient.ErrCanceled)
	})
	if err == nil || !strings.HasPrefix(err.Error(), "shard 0:") {
		t.Fatalf("err = %v, want shard 0's", err)
	}
}

// TestPoolSiblingCancellation: one failing shard cancels the child ctx its
// siblings poll, and the caller's parent stays live.
func TestPoolSiblingCancellation(t *testing.T) {
	parent := resilient.Background()
	p := &resilient.Pool{Workers: 2}
	failing := errors.New("shard 0 gave up")
	err := p.Run(parent, 2, func(ctx *resilient.Ctx, shard int) error {
		if shard == 0 {
			return failing
		}
		// The sibling polls until it observes the failure.
		for ctx.Err() == nil {
			time.Sleep(time.Microsecond)
		}
		return nil
	})
	if !errors.Is(err, failing) {
		t.Fatalf("err = %v", err)
	}
	if parent.Err() != nil {
		t.Fatal("shard failure canceled the caller's context")
	}
}

// TestPoolPanicDuringChildCancellation: a shard that panics AFTER observing
// the cancellation a failing sibling triggered must not win error selection
// (lowest shard still does), must stay contained, and must not wedge Run or
// cancel the caller's parent.
func TestPoolPanicDuringChildCancellation(t *testing.T) {
	parent := resilient.Background()
	p := &resilient.Pool{Workers: 2}
	failing := fmt.Errorf("shard 0 failed first: %w", resilient.ErrCanceled)
	var sawCancel atomic.Bool
	var started atomic.Bool
	err := p.Run(parent, 2, func(ctx *resilient.Ctx, shard int) error {
		if shard == 0 {
			// Let shard 1 start before failing, so the panic genuinely
			// races the cancellation teardown rather than never running.
			for !started.Load() {
				time.Sleep(time.Microsecond)
			}
			return failing
		}
		started.Store(true)
		for ctx.Err() == nil {
			time.Sleep(time.Microsecond)
		}
		sawCancel.Store(true)
		panic("shard 1 died while unwinding from cancellation")
	})
	if !sawCancel.Load() {
		t.Fatal("shard 1 never observed the sibling cancellation")
	}
	if !errors.Is(err, failing) {
		t.Fatalf("err = %v, want shard 0's error to win over the later panic", err)
	}
	var pe *resilient.PanicError
	if errors.As(err, &pe) {
		t.Fatalf("panic from the canceled shard won error selection: %+v", pe)
	}
	if parent.Err() != nil {
		t.Fatal("contained panic canceled the caller's context")
	}
}

// TestPoolParentCancellation: a canceled parent stops the batch and Run
// returns the parent's cause.
func TestPoolParentCancellation(t *testing.T) {
	parent, cancel := resilient.WithCancel()
	cancel()
	var ran atomic.Int32
	p := &resilient.Pool{Workers: 2}
	err := p.Run(parent, 100, func(ctx *resilient.Ctx, shard int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, resilient.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("%d shards ran under a pre-canceled parent", n)
	}
}
