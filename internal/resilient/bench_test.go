package resilient_test

import (
	"testing"

	"repro/internal/resilient"
)

// BenchmarkMemPressureDisabled pins the cost of the soft memory gate when no
// limit is set — the state every hot engine loop pays on every poll. It must
// stay a single atomic load (≲2 ns/op): the gate sits next to Ctx.Err in
// stopPoint and the field sweep's layer loop.
func BenchmarkMemPressureDisabled(b *testing.B) {
	resilient.SetSoftMemLimit(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := resilient.MemPressure(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCtxErrWithMemGate measures the combined per-iteration poll an
// engine loop actually executes: cancellation flag plus disabled memory
// gate.
func BenchmarkCtxErrWithMemGate(b *testing.B) {
	resilient.SetSoftMemLimit(0)
	ctx, cancel := resilient.WithCancel()
	defer cancel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ctx.Err() != nil || resilient.MemPressure() != nil {
			b.Fatal("live context reported done")
		}
	}
}

// BenchmarkSupervisorNoRetryOverhead measures what wrapping an op in a
// supervised Run costs when the op succeeds first try — the common case a
// CLI pays for `-retries 0`... compared against calling the op directly.
func BenchmarkSupervisorNoRetryOverhead(b *testing.B) {
	sup := &resilient.Supervisor{Policy: resilient.Policy{MaxAttempts: 1}, Workers: 1}
	ctx := resilient.Background()
	op := func(*resilient.Attempt) error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sup.Run(ctx, "bench", op); err != nil {
			b.Fatal(err)
		}
	}
}
