package resilient

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Checkpoint file format: a 4-byte magic, one version byte, then a sequence
// of length-prefixed sections, each [1-byte tag][uint64 LE length][payload].
// Section payloads are engine-owned (core writes the explore section,
// valence the certify and field sections); the container only frames them,
// so one file can carry a partial graph, the certifier state over it, and
// the valence masks together.
const (
	ckptMagic   = "RSCK"
	ckptVersion = 1
)

// Section tags. Tag values are part of the on-disk format; never renumber.
const (
	// TagExplore is core's partial-exploration snapshot (CSR graph, intern
	// keys, frontier depth).
	TagExplore byte = 1
	// TagCertify is valence's graph-certifier snapshot (visited bitsets,
	// DFS stack, root cursor).
	TagCertify byte = 2
	// TagField is valence's field-sweep snapshot (masks, next layer).
	TagField byte = 3
)

// Section is one tagged payload of a checkpoint file.
type Section struct {
	Tag  byte
	Data []byte
}

// WriteSections writes a checkpoint file containing the given sections.
func WriteSections(w io.Writer, sections []Section) error {
	var hdr [5]byte
	copy(hdr[:], ckptMagic)
	hdr[4] = ckptVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var frame [9]byte
	for _, s := range sections {
		frame[0] = s.Tag
		binary.LittleEndian.PutUint64(frame[1:], uint64(len(s.Data)))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.Data); err != nil {
			return err
		}
	}
	return nil
}

// ErrBadCheckpoint reports a file that is not a checkpoint or has an
// unsupported version.
var ErrBadCheckpoint = errors.New("resilient: not a checkpoint file")

// ReadSections parses a checkpoint file written by WriteSections.
func ReadSections(r io.Reader) ([]Section, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 5 || string(data[:4]) != ckptMagic {
		return nil, ErrBadCheckpoint
	}
	if data[4] != ckptVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadCheckpoint, data[4], ckptVersion)
	}
	var out []Section
	off := 5
	for off < len(data) {
		if off+9 > len(data) {
			return nil, fmt.Errorf("%w: truncated section header at offset %d", ErrBadCheckpoint, off)
		}
		tag := data[off]
		n := binary.LittleEndian.Uint64(data[off+1 : off+9])
		off += 9
		if uint64(len(data)-off) < n {
			return nil, fmt.Errorf("%w: section %d body truncated at offset %d", ErrBadCheckpoint, tag, off)
		}
		out = append(out, Section{Tag: tag, Data: data[off : off+int(n)]})
		off += int(n)
	}
	return out, nil
}

// LoadFile reads and parses the checkpoint file at path.
func LoadFile(path string) ([]Section, error) {
	rec := obs.Active()
	defer obs.Span(rec, "checkpoint.load.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("checkpoint.load", 0))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sections, err := ReadSections(f)
	if rec != nil && err == nil {
		rec.Add("checkpoint.loads", 1)
	}
	return sections, err
}

// Checkpointer is implemented by the snapshot types an interrupted engine
// attaches to its error; Sections renders the snapshot as checkpoint-file
// sections.
type Checkpointer interface {
	Sections() ([]Section, error)
}

// ckptError decorates an interruption error with the Checkpointer able to
// persist the partial state it reports.
type ckptError struct {
	err error
	ck  Checkpointer
}

func (e *ckptError) Error() string              { return e.err.Error() }
func (e *ckptError) Unwrap() error              { return e.err }
func (e *ckptError) Checkpointer() Checkpointer { return e.ck }

// WithCheckpoint returns err decorated with ck. errors.Is/As still see the
// underlying chain; CheckpointFrom recovers ck.
func WithCheckpoint(err error, ck Checkpointer) error {
	if err == nil || ck == nil {
		return err
	}
	return &ckptError{err: err, ck: ck}
}

// CheckpointFrom returns the innermost Checkpointer attached to err's
// chain, if any — the engine closest to the interruption wins when
// wrappers stack.
func CheckpointFrom(err error) (Checkpointer, bool) {
	var found Checkpointer
	for err != nil {
		if ce, ok := err.(interface{ Checkpointer() Checkpointer }); ok {
			found = ce.Checkpointer()
		}
		err = errors.Unwrap(err)
	}
	return found, found != nil
}

// SaveCheckpoint writes the sections of an error's attached Checkpointer to
// path. It reports (false, nil) when err carries no checkpoint.
func SaveCheckpoint(path string, err error) (bool, error) {
	ck, ok := CheckpointFrom(err)
	if !ok {
		return false, nil
	}
	rec := obs.Active()
	defer obs.Span(rec, "checkpoint.save.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("checkpoint.save", 0))
	}
	sections, serr := ck.Sections()
	if serr != nil {
		return false, serr
	}
	f, ferr := os.Create(path)
	if ferr != nil {
		return false, ferr
	}
	if werr := WriteSections(f, sections); werr != nil {
		f.Close()
		return false, werr
	}
	if rec != nil {
		var bytes int64
		for _, s := range sections {
			bytes += int64(len(s.Data))
		}
		rec.Add("checkpoint.saves", 1)
		rec.Record("checkpoint.save.bytes", bytes)
	}
	return true, f.Close()
}
