package resilient

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/obs"
)

// Checkpoint file format (RSCK v2): a 4-byte magic, one version byte, then
// a sequence of CRC-guarded length-prefixed sections, each
//
//	[1-byte tag][uint64 LE length][payload][uint32 LE CRC32C]
//
// where the CRC32C (Castagnoli) covers the tag, the length bytes, and the
// payload, so a torn or bit-flipped frame — header or body — is detected
// before a payload ever reaches an engine decoder. Version-1 files (no
// per-section CRC) remain readable; WriteSections always emits v2.
//
// Section payloads are engine-owned (core writes the explore section,
// valence the certify and field sections); the container only frames them,
// so one file can carry a partial graph, the certifier state over it, and
// the valence masks together.
const (
	ckptMagic   = "RSCK"
	ckptV1      = 1
	ckptVersion = 2
)

// castagnoli is the CRC32C table shared by the writer and the reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section tags. Tag values are part of the on-disk format; never renumber.
const (
	// TagExplore is core's partial-exploration snapshot (CSR graph, intern
	// keys, frontier depth).
	TagExplore byte = 1
	// TagCertify is valence's graph-certifier snapshot (visited bitsets,
	// DFS stack, root cursor).
	TagCertify byte = 2
	// TagField is valence's field-sweep snapshot (masks, next layer).
	TagField byte = 3
)

// Section is one tagged payload of a checkpoint file.
type Section struct {
	Tag  byte
	Data []byte
}

// ErrBadCheckpoint reports a file that is not a checkpoint or has an
// unsupported version.
var ErrBadCheckpoint = errors.New("resilient: not a checkpoint file")

// ErrCorruptCheckpoint reports a checkpoint file that is torn, truncated,
// or bit-rotted: wrong magic, a truncated frame, or a CRC mismatch. It
// wraps ErrBadCheckpoint, so callers with the older, coarser check keep
// working; the Supervisor and the generation Store match it specifically —
// corruption is fail-fast for a retry policy but "fall back to the previous
// generation" for a Store.
var ErrCorruptCheckpoint = fmt.Errorf("%w: corrupt or torn container", ErrBadCheckpoint)

// WriteSections writes a checkpoint (v2, CRC-guarded) containing the given
// sections.
func WriteSections(w io.Writer, sections []Section) error {
	var hdr [5]byte
	copy(hdr[:], ckptMagic)
	hdr[4] = ckptVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var frame [9]byte
	var trailer [4]byte
	for _, s := range sections {
		frame[0] = s.Tag
		binary.LittleEndian.PutUint64(frame[1:], uint64(len(s.Data)))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.Data); err != nil {
			return err
		}
		crc := crc32.Update(0, castagnoli, frame[:])
		crc = crc32.Update(crc, castagnoli, s.Data)
		binary.LittleEndian.PutUint32(trailer[:], crc)
		if _, err := w.Write(trailer[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSections parses a checkpoint file written by WriteSections: v2 frames
// are CRC-verified, v1 files (pre-CRC) parse as before. Torn, truncated, or
// mutated input fails with a wrapped ErrCorruptCheckpoint.
func ReadSections(r io.Reader) ([]Section, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 5 || string(data[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic or short file (%d bytes)", ErrCorruptCheckpoint, len(data))
	}
	version := data[4]
	if version != ckptV1 && version != ckptVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d, %d)", ErrBadCheckpoint, version, ckptV1, ckptVersion)
	}
	var out []Section
	off := 5
	for off < len(data) {
		if off+9 > len(data) {
			return nil, fmt.Errorf("%w: truncated section header at offset %d", ErrCorruptCheckpoint, off)
		}
		frame := data[off : off+9]
		tag := frame[0]
		n := binary.LittleEndian.Uint64(frame[1:])
		off += 9
		if uint64(len(data)-off) < n {
			return nil, fmt.Errorf("%w: section %d body truncated at offset %d", ErrCorruptCheckpoint, tag, off)
		}
		body := data[off : off+int(n)]
		off += int(n)
		if version >= ckptVersion {
			if off+4 > len(data) {
				return nil, fmt.Errorf("%w: section %d missing CRC trailer at offset %d", ErrCorruptCheckpoint, tag, off)
			}
			want := binary.LittleEndian.Uint32(data[off:])
			off += 4
			crc := crc32.Update(0, castagnoli, frame)
			crc = crc32.Update(crc, castagnoli, body)
			if crc != want {
				return nil, fmt.Errorf("%w: section %d CRC mismatch (got %08x, want %08x)", ErrCorruptCheckpoint, tag, crc, want)
			}
		}
		out = append(out, Section{Tag: tag, Data: body})
	}
	return out, nil
}

// LoadFile reads and parses the checkpoint file at path. A truncated,
// garbage, or bit-rotted file fails with a wrapped ErrCorruptCheckpoint
// (satisfying errors.Is), never a raw decode error, so callers — and the
// Supervisor's error classifier — can tell corruption from a transient
// fault. To fall back across saved generations instead, use Store.Load.
func LoadFile(path string) ([]Section, error) {
	rec := obs.Active()
	defer obs.Span(rec, "checkpoint.load")()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sections, err := ReadSections(f)
	if rec != nil && err == nil {
		rec.Add("checkpoint.loads", 1)
	}
	return sections, err
}

// Checkpointer is implemented by the snapshot types an interrupted engine
// attaches to its error; Sections renders the snapshot as checkpoint-file
// sections.
type Checkpointer interface {
	Sections() ([]Section, error)
}

// ckptError decorates an interruption error with the Checkpointer able to
// persist the partial state it reports.
type ckptError struct {
	err error
	ck  Checkpointer
}

func (e *ckptError) Error() string              { return e.err.Error() }
func (e *ckptError) Unwrap() error              { return e.err }
func (e *ckptError) Checkpointer() Checkpointer { return e.ck }

// WithCheckpoint returns err decorated with ck. errors.Is/As still see the
// underlying chain; CheckpointFrom recovers ck.
func WithCheckpoint(err error, ck Checkpointer) error {
	if err == nil || ck == nil {
		return err
	}
	return &ckptError{err: err, ck: ck}
}

// CheckpointFrom returns the innermost Checkpointer attached to err's
// chain, if any — the engine closest to the interruption wins when
// wrappers stack.
func CheckpointFrom(err error) (Checkpointer, bool) {
	var found Checkpointer
	for err != nil {
		if ce, ok := err.(interface{ Checkpointer() Checkpointer }); ok {
			found = ce.Checkpointer()
		}
		err = errors.Unwrap(err)
	}
	return found, found != nil
}

// SaveCheckpoint writes the sections of an error's attached Checkpointer to
// path, atomically (write-temp, fsync, rename). It reports (false, nil)
// when err carries no checkpoint. Callers that want to retain previous
// snapshots use a Store with Keep > 1 instead.
func SaveCheckpoint(path string, err error) (bool, error) {
	return (&Store{Path: path, Keep: 1}).SaveError(err)
}
