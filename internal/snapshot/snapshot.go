// Package snapshot implements the atomic-snapshot shared-memory model —
// the remaining extension model named by Corollary 7.3 — under the
// permutation layering. A local phase of process i is: update the i-th
// segment of the snapshot object (with the value computed from the state at
// the start of the phase), then take one atomic scan of all segments.
//
// Layer actions mirror the message-passing permutation layering S^per
// exactly: full permutations [p1..pn] (phases executed sequentially),
// drop-one sequences [p1..p_{n-1}], and concurrent pairs
// [..,{pk,pk+1},..] in which both block members update before either
// scans — the immediate-snapshot block, under which each sees the other.
// Together with internal/asyncmp this demonstrates the paper's point that
// the same layering analysis is model-independent: the package tests check
// the identical transposition-similarity chain and certify the identical
// refutation.
//
// The environment's local state is the snapshot object's segments. Unlike
// the cumulative message histories of asyncmp, segments are overwritten in
// place, so the state stays small.
package snapshot

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// State is a global state of the snapshot model. Immutable after
// construction.
type State struct {
	n       int
	segs    []string // the snapshot object's segments (environment)
	locals  []string
	decided []int
	inputs  []int
	key     string
	envKey  string
}

var (
	_ core.State = (*State)(nil)
	_ core.Input = (*State)(nil)
)

// NewState assembles an immutable snapshot-model state.
func NewState(p proto.Decider, segs, locals []string, inputs []int) *State {
	n := len(locals)
	s := &State{
		n:       n,
		segs:    append([]string(nil), segs...),
		locals:  append([]string(nil), locals...),
		decided: make([]int, n),
		inputs:  append([]int(nil), inputs...),
	}
	for i, l := range locals {
		if v, ok := p.Decide(l); ok {
			s.decided[i] = v
		} else {
			s.decided[i] = core.Undecided
		}
	}
	s.envKey = proto.Join(s.segs...)
	fields := make([]string, 0, n+1)
	fields = append(fields, s.envKey)
	fields = append(fields, s.locals...)
	s.key = proto.Join(fields...)
	return s
}

// N implements core.State.
func (s *State) N() int { return s.n }

// Key implements core.State.
func (s *State) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s *State) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// EnvKey implements core.State.
func (s *State) EnvKey() string { return s.envKey }

// Local implements core.State.
func (s *State) Local(i int) string { return s.locals[i] }

// Decided implements core.State.
func (s *State) Decided(i int) (int, bool) {
	if s.decided[i] == core.Undecided {
		return core.Undecided, false
	}
	return s.decided[i], true
}

// FailedAt implements core.State: the model displays no finite failure.
func (s *State) FailedAt(int) bool { return false }

// InputOf implements core.Input.
func (s *State) InputOf(i int) int { return s.inputs[i] }

// Segments returns a copy of the snapshot object's segments.
func (s *State) Segments() []string { return append([]string(nil), s.segs...) }

// Model is the snapshot model with the permutation layering. It implements
// core.Model and reuses the shared-memory protocol interface. Successor
// enumeration is memoized in an embedded per-model cache shared by every
// analysis pass over the same model value.
type Model struct {
	*core.SuccessorCache
	p     proto.SMProtocol
	n     int
	name  string
	inits core.InitMemo
}

var _ core.Model = (*Model)(nil)

// New returns the snapshot model for protocol p on n processes.
func New(p proto.SMProtocol, n int) *Model {
	m := &Model{p: p, n: n, name: fmt.Sprintf("snapshot/Sper(n=%d,%s)", n, p.Name())}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.SMProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order, all
// segments empty.
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return NewState(m.p, make([]string, m.n), locals, inputs)
}

// Sequential applies whole update+scan phases in the given order.
func (m *Model) Sequential(x *State, order []int) *State {
	segs := append([]string(nil), x.segs...)
	locals := append([]string(nil), x.locals...)
	for _, i := range order {
		if v := m.p.WriteValue(x.locals[i]); v != "" {
			segs[i] = v
		}
		scan := append([]string(nil), segs...)
		locals[i] = m.p.Observe(x.locals[i], scan)
	}
	return NewState(m.p, segs, locals, x.inputs)
}

// WithPair applies the action with the processes at positions k and k+1
// run as an immediate-snapshot block: both update, then both scan.
func (m *Model) WithPair(x *State, order []int, k int) *State {
	segs := append([]string(nil), x.segs...)
	locals := append([]string(nil), x.locals...)
	for idx := 0; idx < len(order); idx++ {
		if idx == k {
			a, b := order[k], order[k+1]
			if v := m.p.WriteValue(x.locals[a]); v != "" {
				segs[a] = v
			}
			if v := m.p.WriteValue(x.locals[b]); v != "" {
				segs[b] = v
			}
			scan := append([]string(nil), segs...)
			locals[a] = m.p.Observe(x.locals[a], scan)
			locals[b] = m.p.Observe(x.locals[b], scan)
			idx++
			continue
		}
		i := order[idx]
		if v := m.p.WriteValue(x.locals[i]); v != "" {
			segs[i] = v
		}
		scan := append([]string(nil), segs...)
		locals[i] = m.p.Observe(x.locals[i], scan)
	}
	return NewState(m.p, segs, locals, x.inputs)
}

// successors enumerates asyncmp's action set; the embedded cache serves
// Successors.
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	var out []core.Succ
	perms := permutations(m.n)
	for _, p := range perms {
		out = append(out, core.Succ{Action: label(p, -1), State: m.Sequential(s, p)})
	}
	for _, p := range perms {
		out = append(out, core.Succ{Action: label(p[:m.n-1], -1), State: m.Sequential(s, p[:m.n-1])})
	}
	for _, p := range perms {
		for k := 0; k+1 < m.n; k++ {
			if p[k] > p[k+1] {
				continue
			}
			out = append(out, core.Succ{Action: label(p, k), State: m.WithPair(s, p, k)})
		}
	}
	return out
}

func label(order []int, pair int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < len(order); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if i == pair {
			b.WriteByte('{')
			b.WriteString(strconv.Itoa(order[i]))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(order[i+1]))
			b.WriteByte('}')
			i++
			continue
		}
		b.WriteString(strconv.Itoa(order[i]))
	}
	b.WriteByte(']')
	return b.String()
}

// permutations returns all permutations of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	for {
		out = append(out, append([]int(nil), cur...))
		i := n - 2
		for i >= 0 && cur[i] >= cur[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := n - 1
		for cur[j] <= cur[i] {
			j--
		}
		cur[i], cur[j] = cur[j], cur[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			cur[l], cur[r] = cur[r], cur[l]
		}
	}
}
