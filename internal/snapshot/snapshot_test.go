package snapshot_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/snapshot"
	"repro/internal/valence"
)

// TestTranspositionChainSnapshot: the identical similarity chain as in
// message passing holds in the snapshot model — the paper's layering
// analysis is model-independent.
func TestTranspositionChainSnapshot(t *testing.T) {
	const n = 3
	m := snapshot.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	perms := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}}
	for _, p := range perms {
		for k := 0; k+1 < n; k++ {
			seq := m.Sequential(x, p)
			conc := m.WithPair(x, p, k)
			swapped := append([]int(nil), p...)
			swapped[k], swapped[k+1] = swapped[k+1], swapped[k]
			seq2 := m.Sequential(x, swapped)
			if !core.AgreeModulo(seq, conc, p[k]) {
				t.Errorf("perm %v k=%d: seq and conc do not agree modulo %d", p, k, p[k])
			}
			if !core.AgreeModulo(conc, seq2, p[k+1]) {
				t.Errorf("perm %v k=%d: conc and swapped do not agree modulo %d", p, k, p[k+1])
			}
		}
	}
}

// TestDiamondIdentitySnapshot: the minimal FLP diamond is an exact state
// equality here as well.
func TestDiamondIdentitySnapshot(t *testing.T) {
	const n = 3
	m := snapshot.New(protocols.SMFullInfo{}, n)
	for a := 0; a < 1<<n; a++ {
		x := m.Initial([]int{a & 1, (a >> 1) & 1, (a >> 2) & 1})
		y := m.Sequential(m.Sequential(x, []int{0, 1, 2}), []int{0, 1})
		yp := m.Sequential(m.Sequential(x, []int{0, 1}), []int{2, 0, 1})
		if y.Key() != yp.Key() {
			t.Errorf("inputs %03b: diamond states differ", a)
		}
	}
}

// TestCertifySnapshotRefuted: consensus is impossible here too; the same
// flooding heuristic is refuted.
func TestCertifySnapshotRefuted(t *testing.T) {
	for _, phases := range []int{1, 2} {
		m := snapshot.New(protocols.SMVote{Phases: phases}, 3)
		w, err := valence.Certify(m, phases, 4_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: consensus certified in the snapshot model", phases)
		}
	}
}

// TestLayerValenceConnectedSnapshot: Lemma 4.1's precondition holds.
func TestLayerValenceConnectedSnapshot(t *testing.T) {
	const n, phases = 3, 2
	m := snapshot.New(protocols.SMVote{Phases: phases}, n)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		if r := valence.AnalyzeLayer(m, o, x, phases); !r.ValenceConnected {
			t.Errorf("init %q: snapshot layer not valence connected", x.Key())
		}
	}
}

// TestSegmentsAreEnvironment: the snapshot object lives in EnvKey; an
// unscheduled process's segment and local are untouched.
func TestSegmentsAreEnvironment(t *testing.T) {
	const n = 3
	m := snapshot.New(protocols.SMVote{Phases: 2}, n)
	x := m.Initial([]int{1, 1, 1})
	y := m.Sequential(x, []int{0, 1}) // 2 does not move
	if y.Local(2) != x.Local(2) {
		t.Error("unscheduled process's local changed")
	}
	if y.Segments()[2] != "" {
		t.Error("unscheduled process's segment changed")
	}
	if y.EnvKey() == x.EnvKey() {
		t.Error("updates did not reach the environment")
	}
}

// TestSnapshotMatchesAsyncmpActionCount: both permutation-layered models
// offer the same action set.
func TestSnapshotMatchesAsyncmpActionCount(t *testing.T) {
	const n = 3
	m := snapshot.New(protocols.SMVote{Phases: 2}, n)
	x := m.Initial([]int{0, 1, 1})
	fact := 6
	want := fact + fact + (n-1)*fact/2
	if got := len(m.Successors(x)); got != want {
		t.Errorf("|S(x)| = %d, want %d", got, want)
	}
}
