package trace_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/trace"
)

func exploreMobile(t *testing.T, depth int) *core.Graph {
	t.Helper()
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.Explore(m, depth, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphDOTBasics(t *testing.T) {
	g := exploreMobile(t, 1)
	dot := trace.GraphDOT(g, trace.DOTOptions{})
	if !strings.HasPrefix(dot, "digraph layers {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a DOT document:\n%.80s", dot)
	}
	if !strings.Contains(dot, "rank=same") {
		t.Error("missing depth ranking")
	}
	if !strings.Contains(dot, `label="noop"`) {
		t.Error("missing action edge labels")
	}
	// One node statement per graph node.
	if got := strings.Count(dot, "];\n") - strings.Count(dot, "-> "); got < g.Len() {
		t.Errorf("expected >= %d node statements", g.Len())
	}
}

func TestGraphDOTDeterministic(t *testing.T) {
	g := exploreMobile(t, 1)
	a := trace.GraphDOT(g, trace.DOTOptions{})
	b := trace.GraphDOT(g, trace.DOTOptions{})
	if a != b {
		t.Error("DOT rendering not deterministic")
	}
}

func TestGraphDOTTruncationAndHighlight(t *testing.T) {
	g := exploreMobile(t, 2)
	var some string
	for k := range g.Nodes {
		some = k
		break
	}
	dot := trace.GraphDOT(g, trace.DOTOptions{
		MaxNodes:      5,
		HighlightKeys: map[string]bool{some: true},
	})
	if !strings.Contains(dot, "ellipsis") {
		t.Error("truncated rendering missing ellipsis")
	}
	if strings.Count(dot, "n4 [") != 1 || strings.Contains(dot, "n5 [") {
		t.Error("MaxNodes not honored")
	}
}

func TestGraphDOTCustomLabel(t *testing.T) {
	g := exploreMobile(t, 0)
	dot := trace.GraphDOT(g, trace.DOTOptions{
		NodeLabel: func(core.State) string { return "CUSTOM" },
	})
	if !strings.Contains(dot, "CUSTOM") {
		t.Error("custom label ignored")
	}
}
