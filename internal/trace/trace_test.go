package trace_test

import (
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/trace"
	"repro/internal/valence"
)

func TestFormatExecution(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt}
	m := syncmp.NewSt(p, n, tt)
	w, err := valence.Certify(m, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.FormatExecution(w.Exec)
	if !strings.Contains(got, "layer 0:") {
		t.Errorf("missing layer 0 in:\n%s", got)
	}
	if !strings.Contains(got, "=⊥") {
		t.Errorf("expected undecided markers in:\n%s", got)
	}
	verbose := trace.FormatExecutionVerbose(w.Exec, 40)
	if !strings.Contains(verbose, "p0:") {
		t.Errorf("verbose output missing local digests:\n%s", verbose)
	}
}

func TestFormatStateFlags(t *testing.T) {
	p := protocols.FloodSet{Rounds: 1}
	m := syncmp.NewSt(p, 3, 1)
	x := m.Initial([]int{0, 1, 1})
	y := syncmp.ApplyAction(p, x, 0, syncmp.OmitMask(3), true, true)
	s := trace.FormatState(y)
	if !strings.Contains(s, "p0†") {
		t.Errorf("failed marker missing in %q", s)
	}
}

func TestCompare(t *testing.T) {
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, 3, 1)
	x := m.Initial([]int{0, 0, 0})
	y := m.Initial([]int{0, 0, 1})
	d := trace.Compare(x, y)
	if d.EnvDiffers {
		t.Error("initial environments must be equal")
	}
	if len(d.LocalDiffer) != 1 || d.LocalDiffer[0] != 2 {
		t.Errorf("LocalDiffer = %v, want [2]", d.LocalDiffer)
	}
	if d.SimilarVia != 2 {
		t.Errorf("SimilarVia = %d, want 2", d.SimilarVia)
	}
	if !strings.Contains(d.String(), "similar modulo 2") {
		t.Errorf("String() = %q", d.String())
	}
	// Self-compare.
	self := trace.Compare(x, x)
	if self.EnvDiffers || len(self.LocalDiffer) != 0 || self.SimilarVia < 0 {
		t.Errorf("self compare = %+v", self)
	}
}
