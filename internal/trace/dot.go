package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// DOTOptions configures GraphDOT rendering.
type DOTOptions struct {
	// MaxNodes truncates the rendering (0 = no limit); truncation adds an
	// ellipsis node.
	MaxNodes int
	// NodeLabel overrides the default label (decision flags) for a state.
	NodeLabel func(core.State) string
	// HighlightKeys are state keys to draw with a double border (e.g. a
	// witness run's states).
	HighlightKeys map[string]bool
}

// GraphDOT renders an explored state graph in Graphviz DOT format: one
// node per state (labeled with its decision/failure flags by default), one
// edge per layer action. Nodes are emitted in deterministic (key-sorted)
// order, ranked by depth.
func GraphDOT(g *core.Graph, opts DOTOptions) string {
	label := opts.NodeLabel
	if label == nil {
		label = FormatState
	}
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if g.DepthOf[keys[i]] != g.DepthOf[keys[j]] {
			return g.DepthOf[keys[i]] < g.DepthOf[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if opts.MaxNodes > 0 && len(keys) > opts.MaxNodes {
		keys = keys[:opts.MaxNodes]
	}
	kept := make(map[string]int, len(keys))
	for i, k := range keys {
		kept[k] = i
	}

	var b strings.Builder
	b.WriteString("digraph layers {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n")
	byDepth := make(map[int][]string)
	for _, k := range keys {
		byDepth[g.DepthOf[k]] = append(byDepth[g.DepthOf[k]], k)
	}
	var depths []int
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		fmt.Fprintf(&b, "  { rank=same;")
		for _, k := range byDepth[d] {
			fmt.Fprintf(&b, " n%d;", kept[k])
		}
		b.WriteString(" }\n")
	}
	for _, k := range keys {
		shape := ""
		if opts.HighlightKeys[k] {
			shape = ",peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", kept[k], fmt.Sprintf("d%d: %s", g.DepthOf[k], label(g.Nodes[k])), shape)
	}
	truncated := false
	for _, k := range keys {
		src := kept[k]
		for _, e := range g.Edges[k] {
			dst, ok := kept[e.To]
			if !ok {
				truncated = true
				continue
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", src, dst, e.Action)
		}
	}
	if truncated || (opts.MaxNodes > 0 && len(g.Nodes) > opts.MaxNodes) {
		b.WriteString("  ellipsis [label=\"…\",shape=plaintext];\n")
	}
	b.WriteString("}\n")
	return b.String()
}
