package trace

import (
	"strings"
	"testing"
)

func TestDigestClampsSmallWidths(t *testing.T) {
	const s = "abcdefghij"
	cases := []struct {
		max  int
		want string
	}{
		{-1, ""}, // previously panicked
		{0, ""},  // previously panicked
		{1, "a"},
		{2, "ab"},
		{3, "abc"},
		{4, "a..."},
		{7, "abcd..."},
		{len(s), s},
		{len(s) + 5, s},
	}
	for _, c := range cases {
		if got := digest(s, c.max); got != c.want {
			t.Errorf("digest(%q, %d) = %q, want %q", s, c.max, got, c.want)
		}
	}
}

func TestDigestShortStringUnchanged(t *testing.T) {
	// Strings within the width are returned verbatim, even at tiny widths.
	if got := digest("ab", 2); got != "ab" {
		t.Errorf("digest(ab, 2) = %q", got)
	}
	if got := digest("", 0); got != "" {
		t.Errorf("digest of empty = %q", got)
	}
}

func TestDigestNeverPanicsAcrossWidths(t *testing.T) {
	s := strings.Repeat("x", 64)
	for max := -4; max <= len(s)+4; max++ {
		got := digest(s, max)
		if len(got) > len(s)+3 {
			t.Fatalf("digest width %d returned %d bytes", max, len(got))
		}
	}
}
