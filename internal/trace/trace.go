// Package trace renders executions and state differences in human-readable
// form: witness runs from the certifier, bivalent chains, and
// indistinguishability diffs ("these two states agree modulo process j").
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// digest shortens a canonical state string for display. Widths too small
// to hold the "..." ellipsis degrade to a plain prefix cut.
func digest(s string, max int) string {
	if len(s) <= max {
		return s
	}
	if max <= 3 {
		if max < 0 {
			max = 0
		}
		return s[:max]
	}
	return s[:max-3] + "..."
}

// FormatState renders one state: per-process decision/failure flags and a
// digest of each local state.
func FormatState(x core.State) string {
	var b strings.Builder
	for i := 0; i < x.N(); i++ {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "p%d", i)
		if x.FailedAt(i) {
			b.WriteString("†")
		}
		if v, ok := x.Decided(i); ok {
			fmt.Fprintf(&b, "=%d", v)
		} else {
			b.WriteString("=⊥")
		}
	}
	return b.String()
}

// FormatExecution renders an execution layer by layer: the action taken
// and the resulting decision vector.
func FormatExecution(e *core.Execution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "layer 0: %s\n", FormatState(e.Init))
	for i, step := range e.Steps {
		fmt.Fprintf(&b, "layer %d: %-14s %s\n", i+1, step.Action, FormatState(step.State))
	}
	return b.String()
}

// FormatExecutionVerbose additionally shows a digest of every local state.
func FormatExecutionVerbose(e *core.Execution, localWidth int) string {
	var b strings.Builder
	writeState := func(label string, x core.State) {
		fmt.Fprintf(&b, "%s %s\n", label, FormatState(x))
		for i := 0; i < x.N(); i++ {
			fmt.Fprintf(&b, "    p%d: %s\n", i, digest(x.Local(i), localWidth))
		}
	}
	writeState("layer 0:", e.Init)
	for i, step := range e.Steps {
		writeState(fmt.Sprintf("layer %d: %s", i+1, step.Action), step.State)
	}
	return b.String()
}

// Diff describes how two states differ: which processes' locals differ,
// whether the environments differ, and — when the states are similar — the
// witnessing process.
type Diff struct {
	EnvDiffers  bool
	LocalDiffer []int
	SimilarVia  int // witnessing j if Similar, else -1
}

// Compare computes the Diff of two states of equal size.
func Compare(x, y core.State) Diff {
	d := Diff{EnvDiffers: x.EnvKey() != y.EnvKey(), SimilarVia: -1}
	for i := 0; i < x.N() && i < y.N(); i++ {
		if x.Local(i) != y.Local(i) {
			d.LocalDiffer = append(d.LocalDiffer, i)
		}
	}
	if j, ok := core.Similar(x, y); ok {
		d.SimilarVia = j
	}
	return d
}

// String implements fmt.Stringer.
func (d Diff) String() string {
	var parts []string
	if d.EnvDiffers {
		parts = append(parts, "env differs")
	} else {
		parts = append(parts, "env equal")
	}
	if len(d.LocalDiffer) == 0 {
		parts = append(parts, "all locals equal")
	} else {
		parts = append(parts, fmt.Sprintf("locals differ at %v", d.LocalDiffer))
	}
	if d.SimilarVia >= 0 {
		parts = append(parts, fmt.Sprintf("similar modulo %d", d.SimilarVia))
	} else {
		parts = append(parts, "not similar")
	}
	return strings.Join(parts, "; ")
}
