package shmem_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/shmem"
	"repro/internal/valence"
)

func newModel(n, phases int) *shmem.Model {
	return shmem.New(protocols.SMVote{Phases: phases}, n)
}

// TestActionJ0IndependentOfJ checks the paper's remark that x(j,0) is
// independent of j: all writes complete before all reads.
func TestActionJ0IndependentOfJ(t *testing.T) {
	const n = 3
	m := newModel(n, 4)
	x := m.Initial([]int{0, 1, 1})
	base := m.Apply(x, 0, 0)
	for j := 1; j < n; j++ {
		if got := m.Apply(x, j, 0); got.Key() != base.Key() {
			t.Errorf("x(%d,0) differs from x(0,0)", j)
		}
	}
}

// TestSynchronicSimilarityChain checks the Lemma 5.3 structure: x(j,k) and
// x(j,k+1) differ only in the local state of the boundary process, so they
// are similar; and consequently Y = {x(j,k)} is similarity connected.
func TestSynchronicSimilarityChain(t *testing.T) {
	const n = 3
	m := newModel(n, 4)
	x := m.Initial([]int{0, 1, 0})
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			a, b := m.Apply(x, j, k), m.Apply(x, j, k+1)
			if a.Key() == b.Key() {
				continue // boundary process k may be j itself
			}
			if !core.AgreeModulo(a, b, k) {
				t.Errorf("x(%d,%d) and x(%d,%d) do not agree modulo %d", j, k, j, k+1, k)
			}
			if _, ok := core.Similar(a, b); !ok {
				t.Errorf("x(%d,%d) !~s x(%d,%d)", j, k, j, k+1)
			}
		}
	}
}

// TestAbsentBridge checks the key identity in the proof of Lemma 5.3:
// y = x(j,n)(j,A) and y' = x(j,A)(j,0) agree modulo j, which yields
// x(j,n) ~v x(j,A).
func TestAbsentBridge(t *testing.T) {
	const n = 3
	m := newModel(n, 4)
	for a := 0; a < 1<<n; a++ {
		inputs := []int{a & 1, (a >> 1) & 1, (a >> 2) & 1}
		x := m.Initial(inputs)
		for j := 0; j < n; j++ {
			y := m.ApplyAbsent(m.Apply(x, j, n), j)
			yp := m.Apply(m.ApplyAbsent(x, j), j, 0)
			if !core.AgreeModulo(y, yp, j) {
				t.Errorf("inputs=%v j=%d: x(j,n)(j,A) and x(j,A)(j,0) do not agree modulo j", inputs, j)
			}
		}
	}
}

// TestLayerReport checks Lemma 5.3(iii) mechanically: every S^rw layer over
// every initial state is valence connected (for the SMVote protocol within
// its decision horizon), and the sequential part is similarity connected.
func TestLayerReport(t *testing.T) {
	const n, phases = 3, 2
	m := newModel(n, phases)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		r := valence.AnalyzeLayer(m, o, x, phases)
		if !r.ValenceConnected {
			t.Errorf("init %q: S^rw layer not valence connected", x.Key())
		}
		if len(r.NullValentIdx) > 0 {
			t.Errorf("init %q: null-valent layer states (horizon too small?)", x.Key())
		}
	}
}

// TestCertifySMVoteRefuted is Corollary 5.4: no protocol solves consensus
// 1-resiliently in M^rw, even in the synchronic submodel. SMVote with any
// phase bound must be refuted.
func TestCertifySMVoteRefuted(t *testing.T) {
	for _, phases := range []int{1, 2} {
		m := newModel(3, phases)
		w, err := valence.Certify(m, phases, 2_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: SMVote certified OK, contradicting Corollary 5.4", phases)
		}
	}
}

// TestRegistersAreEnvironment ensures the registers live in EnvKey and that
// an absent process's register and local are untouched.
func TestRegistersAreEnvironment(t *testing.T) {
	const n = 3
	m := newModel(n, 4)
	x := m.Initial([]int{1, 1, 1})
	y := m.ApplyAbsent(x, 2)
	if y.Local(2) != x.Local(2) {
		t.Error("absent process's local changed")
	}
	if y.Registers()[2] != "" {
		t.Error("absent process's register changed")
	}
	if y.EnvKey() == x.EnvKey() {
		t.Error("proper processes wrote but EnvKey did not change")
	}
}
