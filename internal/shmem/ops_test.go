package shmem_test

import (
	"errors"
	"testing"

	"repro/internal/protocols"
	"repro/internal/shmem"
)

// TestLayeringLegality is the executable content of Lemma 4.3 for S^rw:
// every synchronic action, applied to every initial state (under the
// full-information protocol — the strongest instance), must equal the
// op-level execution of its defining interleaving of legal local phases.
func TestLayeringLegality(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMFullInfo{}, n)
	for a := 0; a < 1<<n; a++ {
		inputs := []int{a & 1, (a >> 1) & 1, (a >> 2) & 1}
		x := m.Initial(inputs)
		for j := 0; j < n; j++ {
			for k := 0; k <= n; k++ {
				want := m.Apply(x, j, k)
				got, err := m.ApplyOps(x, m.StageOps(j, k))
				if err != nil {
					t.Fatalf("(%d,%d): %v", j, k, err)
				}
				if got.Key() != want.Key() {
					t.Errorf("inputs=%v action (%d,%d): stage and op semantics differ", inputs, j, k)
				}
			}
			want := m.ApplyAbsent(x, j)
			got, err := m.ApplyOps(x, m.AbsentOps(j))
			if err != nil {
				t.Fatalf("(%d,A): %v", j, err)
			}
			if got.Key() != want.Key() {
				t.Errorf("inputs=%v action (%d,A): stage and op semantics differ", inputs, j)
			}
		}
	}
}

// TestLayeringLegalityTwoLayers checks composition: two stacked synchronic
// actions equal the concatenated op sequences executed one layer at a time
// (phases never span layers).
func TestLayeringLegalityTwoLayers(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	mid := m.Apply(x, 1, 2)
	want := m.ApplyAbsent(mid, 0)
	got1, err := m.ApplyOps(x, m.StageOps(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ApplyOps(got1, m.AbsentOps(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != want.Key() {
		t.Error("two-layer composition differs between stage and op semantics")
	}
}

// TestApplyOpsRejectsIllegalPhases checks the phase legality guards.
func TestApplyOpsRejectsIllegalPhases(t *testing.T) {
	const n = 2
	m := shmem.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1})
	cases := [][]shmem.Op{
		{{Kind: shmem.ScanOp, P: 0}},                                                          // scan before write
		{{Kind: shmem.WriteOp, P: 0}, {Kind: shmem.WriteOp, P: 0}},                            // double write
		{{Kind: shmem.WriteOp, P: 0}, {Kind: shmem.ScanOp, P: 0}, {Kind: shmem.ScanOp, P: 0}}, // double scan
		{{Kind: shmem.WriteOp, P: 9}},                                                         // out of range
	}
	for i, ops := range cases {
		if _, err := m.ApplyOps(x, ops); !errors.Is(err, shmem.ErrBadOpSequence) {
			t.Errorf("case %d: err = %v, want ErrBadOpSequence", i, err)
		}
	}
}

// TestOpOrderWithinStageIrrelevant: writes within W1 touch disjoint
// registers and scans do not modify them, so permuting ops inside a stage
// must not change the outcome — the reason the four-stage presentation is
// well-defined.
func TestOpOrderWithinStageIrrelevant(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{1, 0, 1})
	// Action (0,A) with proper order 1,2 vs 2,1 in both stages.
	seqA := []shmem.Op{
		{Kind: shmem.WriteOp, P: 1}, {Kind: shmem.WriteOp, P: 2},
		{Kind: shmem.ScanOp, P: 1}, {Kind: shmem.ScanOp, P: 2},
	}
	seqB := []shmem.Op{
		{Kind: shmem.WriteOp, P: 2}, {Kind: shmem.WriteOp, P: 1},
		{Kind: shmem.ScanOp, P: 2}, {Kind: shmem.ScanOp, P: 1},
	}
	a, err := m.ApplyOps(x, seqA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ApplyOps(x, seqB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Error("intra-stage op order changed the outcome")
	}
}
