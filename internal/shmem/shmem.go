// Package shmem implements M^rw, the asynchronous single-writer/
// multi-reader shared-memory model, together with the paper's synchronic
// layering S^rw (Section 5.1).
//
// The shared registers V_0..V_{n-1} live in the environment's local state.
// A local phase of process i is: at most one write into V_i, followed by a
// maximal sequence of reads covering every register once. The synchronic
// layering organizes local phases into virtual rounds of four stages
//
//	W1, R1, W2, R2
//
// driven by environment actions of two kinds (0-based ids, k in 0..n):
//
//   - (j,A): every process except j ("the proper processes") writes in W1
//     and reads in R1; the slow process j neither writes nor reads.
//   - (j,k): proper processes write in W1 and j writes in W2; proper
//     processes with id < k read in R1 (seeing V_j's pre-round value), while
//     j and the proper processes with id >= k read in R2 (seeing j's fresh
//     write).
//
// Every S^rw-run is fair — all processes except at most one take infinitely
// many local phases — and the model displays no finite failure: FailedAt is
// always false.
package shmem

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/proto"
)

// State is a global state of M^rw: register contents (environment) plus
// per-process local states. Immutable after construction.
type State struct {
	n       int
	regs    []string
	locals  []string
	decided []int
	inputs  []int
	key     string
	envKey  string
}

var (
	_ core.State = (*State)(nil)
	_ core.Input = (*State)(nil)
)

// NewState assembles an immutable shared-memory state.
func NewState(p proto.Decider, regs, locals []string, inputs []int) *State {
	n := len(locals)
	s := &State{
		n:       n,
		regs:    append([]string(nil), regs...),
		locals:  append([]string(nil), locals...),
		decided: make([]int, n),
		inputs:  append([]int(nil), inputs...),
	}
	for i, l := range locals {
		if v, ok := p.Decide(l); ok {
			s.decided[i] = v
		} else {
			s.decided[i] = core.Undecided
		}
	}
	s.envKey = proto.Join(s.regs...)
	fields := make([]string, 0, n+1)
	fields = append(fields, s.envKey)
	fields = append(fields, s.locals...)
	s.key = proto.Join(fields...)
	return s
}

// N implements core.State.
func (s *State) N() int { return s.n }

// Key implements core.State.
func (s *State) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s *State) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// EnvKey implements core.State: the registers are the environment.
func (s *State) EnvKey() string { return s.envKey }

// Local implements core.State.
func (s *State) Local(i int) string { return s.locals[i] }

// Decided implements core.State.
func (s *State) Decided(i int) (int, bool) {
	if s.decided[i] == core.Undecided {
		return core.Undecided, false
	}
	return s.decided[i], true
}

// FailedAt implements core.State: M^rw displays no finite failure.
func (s *State) FailedAt(int) bool { return false }

// InputOf implements core.Input.
func (s *State) InputOf(i int) int { return s.inputs[i] }

// Registers returns a copy of the register contents.
func (s *State) Registers() []string { return append([]string(nil), s.regs...) }

// Model is M^rw with the synchronic layering S^rw. It implements
// core.Model. Successor enumeration is memoized in an embedded per-model
// cache shared by every analysis pass over the same model value.
type Model struct {
	*core.SuccessorCache
	p     proto.SMProtocol
	n     int
	name  string
	inits core.InitMemo
}

var _ core.Model = (*Model)(nil)

// New returns M^rw/S^rw for protocol p on n processes.
func New(p proto.SMProtocol, n int) *Model {
	m := &Model{p: p, n: n, name: fmt.Sprintf("shmem/Srw(n=%d,%s)", n, p.Name())}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.SMProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order, with all
// registers initially empty.
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return NewState(m.p, make([]string, m.n), locals, inputs)
}

// successors enumerates S^rw(x) = { x(j,k) } ∪ { x(j,A) }; the embedded
// cache serves Successors. Action labels are "(j,k)" and "(j,A)".
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	out := make([]core.Succ, 0, m.n*(m.n+2))
	for j := 0; j < m.n; j++ {
		for k := 0; k <= m.n; k++ {
			out = append(out, core.Succ{
				Action: "(" + strconv.Itoa(j) + "," + strconv.Itoa(k) + ")",
				State:  m.Apply(s, j, k),
			})
		}
		out = append(out, core.Succ{
			Action: "(" + strconv.Itoa(j) + ",A)",
			State:  m.ApplyAbsent(s, j),
		})
	}
	return out
}

// Apply performs the virtual round of action (j,k) on x.
func (m *Model) Apply(x *State, j, k int) *State {
	n := m.n
	// W1: proper processes write.
	regs := append([]string(nil), x.regs...)
	for i := 0; i < n; i++ {
		if i == j {
			continue
		}
		if v := m.p.WriteValue(x.locals[i]); v != "" {
			regs[i] = v
		}
	}
	afterW1 := append([]string(nil), regs...)
	// W2: the slow process j writes.
	if v := m.p.WriteValue(x.locals[j]); v != "" {
		regs[j] = v
	}
	// R1 readers see afterW1; R2 readers see regs (after W2).
	locals := make([]string, n)
	for i := 0; i < n; i++ {
		switch {
		case i == j:
			locals[i] = m.p.Observe(x.locals[i], regs)
		case i < k:
			locals[i] = m.p.Observe(x.locals[i], afterW1)
		default:
			locals[i] = m.p.Observe(x.locals[i], regs)
		}
	}
	return NewState(m.p, regs, locals, x.inputs)
}

// ApplyAbsent performs the virtual round of action (j,A) on x: the proper
// processes write in W1 and read in R1; j neither writes nor reads.
func (m *Model) ApplyAbsent(x *State, j int) *State {
	n := m.n
	regs := append([]string(nil), x.regs...)
	for i := 0; i < n; i++ {
		if i == j {
			continue
		}
		if v := m.p.WriteValue(x.locals[i]); v != "" {
			regs[i] = v
		}
	}
	locals := make([]string, n)
	for i := 0; i < n; i++ {
		if i == j {
			locals[i] = x.locals[i]
			continue
		}
		locals[i] = m.p.Observe(x.locals[i], regs)
	}
	return NewState(m.p, regs, locals, x.inputs)
}
