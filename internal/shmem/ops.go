package shmem

import (
	"errors"
	"fmt"
)

// The op-level executor gives M^rw its primitive semantics — individual
// write and scan events in an arbitrary interleaving — independently of the
// four-stage virtual rounds. It exists to make the layering claim of
// Lemma 4.3 executable: every S^rw action must coincide with a legal
// op-level interleaving of local phases (the package tests check this
// exactly, for every action, against the full-information protocol).

// OpKind distinguishes primitive M^rw events.
type OpKind int

// Primitive event kinds. A local phase of process P is WriteOp(P) followed
// later by ScanOp(P); the write stores the value computed from P's local
// state at the start of its phase.
const (
	// WriteOp writes process P's phase value into V_P.
	WriteOp OpKind = iota + 1
	// ScanOp performs P's maximal read sequence (every register once) and
	// completes P's local phase.
	ScanOp
	// SkipOp marks that P performs no phase at all in this span (used only
	// to document absence; it is a no-op).
	SkipOp
)

// Op is a primitive event.
type Op struct {
	Kind OpKind
	P    int
}

// ErrBadOpSequence is returned when an op sequence is not a legal set of
// local phases (e.g. a scan without a preceding write, or two phases for
// one process).
var ErrBadOpSequence = errors.New("shmem: op sequence is not a set of legal local phases")

// ApplyOps executes a primitive interleaving in which each process
// performs at most one local phase (one WriteOp then one ScanOp). Write
// values are computed from the local state at the start of the sequence
// (the phase start), matching the stage semantics where all writes precede
// the writer's own scan.
func (m *Model) ApplyOps(x *State, ops []Op) (*State, error) {
	regs := append([]string(nil), x.regs...)
	locals := append([]string(nil), x.locals...)
	wrote := make([]bool, m.n)
	scanned := make([]bool, m.n)
	for _, op := range ops {
		if op.P < 0 || op.P >= m.n {
			return nil, fmt.Errorf("process %d out of range: %w", op.P, ErrBadOpSequence)
		}
		switch op.Kind {
		case WriteOp:
			if wrote[op.P] || scanned[op.P] {
				return nil, fmt.Errorf("process %d writes twice: %w", op.P, ErrBadOpSequence)
			}
			wrote[op.P] = true
			if v := m.p.WriteValue(x.locals[op.P]); v != "" {
				regs[op.P] = v
			}
		case ScanOp:
			if scanned[op.P] {
				return nil, fmt.Errorf("process %d scans twice: %w", op.P, ErrBadOpSequence)
			}
			if !wrote[op.P] {
				return nil, fmt.Errorf("process %d scans before writing: %w", op.P, ErrBadOpSequence)
			}
			scanned[op.P] = true
			snapshot := append([]string(nil), regs...)
			locals[op.P] = m.p.Observe(x.locals[op.P], snapshot)
		case SkipOp:
			// No-op.
		default:
			return nil, fmt.Errorf("unknown op kind %d: %w", op.Kind, ErrBadOpSequence)
		}
	}
	return NewState(m.p, regs, locals, x.inputs), nil
}

// StageOps expands the synchronic action (j,k) into its defining op-level
// interleaving: W1 (proper writes), R1 (scans of proper processes with id <
// k), W2 (j's write), R2 (scans of j and the remaining proper processes).
func (m *Model) StageOps(j, k int) []Op {
	var ops []Op
	for i := 0; i < m.n; i++ {
		if i != j {
			ops = append(ops, Op{Kind: WriteOp, P: i})
		}
	}
	for i := 0; i < m.n; i++ {
		if i != j && i < k {
			ops = append(ops, Op{Kind: ScanOp, P: i})
		}
	}
	ops = append(ops, Op{Kind: WriteOp, P: j})
	for i := 0; i < m.n; i++ {
		if i != j && i >= k {
			ops = append(ops, Op{Kind: ScanOp, P: i})
		}
	}
	ops = append(ops, Op{Kind: ScanOp, P: j})
	return ops
}

// AbsentOps expands the synchronic action (j,A): the proper processes
// write in W1 and scan in R1; j performs nothing.
func (m *Model) AbsentOps(j int) []Op {
	var ops []Op
	for i := 0; i < m.n; i++ {
		if i != j {
			ops = append(ops, Op{Kind: WriteOp, P: i})
		}
	}
	for i := 0; i < m.n; i++ {
		if i != j {
			ops = append(ops, Op{Kind: ScanOp, P: i})
		}
	}
	return ops
}
