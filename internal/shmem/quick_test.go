package shmem_test

import (
	"testing"
	"testing/quick"

	"repro/internal/protocols"
	"repro/internal/shmem"
)

// TestQuickScheduleDeterminism: replaying any synchronic action sequence
// yields identical keys.
func TestQuickScheduleDeterminism(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMVote{Phases: 4}, n)
	f := func(inputBits uint8, choices []uint8) bool {
		if len(choices) > 3 {
			choices = choices[:3]
		}
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		run := func() string {
			cur := x
			for _, c := range choices {
				succs := m.Successors(cur)
				next, ok := succs[int(c)%len(succs)].State.(*shmem.State)
				if !ok {
					return "cast-failure"
				}
				cur = next
			}
			return cur.Key()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRegistersInEnv: any two reachable states with equal keys have
// equal registers and locals; differing registers force differing EnvKeys.
func TestQuickRegistersInEnv(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMVote{Phases: 4}, n)
	f := func(inputBits, c1, c2 uint8) bool {
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		succs := m.Successors(x)
		a, ok1 := succs[int(c1)%len(succs)].State.(*shmem.State)
		b, ok2 := succs[int(c2)%len(succs)].State.(*shmem.State)
		if !ok1 || !ok2 {
			return false
		}
		ra, rb := a.Registers(), b.Registers()
		regsEqual := true
		for i := range ra {
			if ra[i] != rb[i] {
				regsEqual = false
				break
			}
		}
		if (a.EnvKey() == b.EnvKey()) != regsEqual {
			return false
		}
		if a.Key() == b.Key() && a.EnvKey() != b.EnvKey() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickStageOpsLegality: StageOps/AbsentOps always produce legal op
// sequences.
func TestQuickStageOpsLegality(t *testing.T) {
	const n = 3
	m := shmem.New(protocols.SMFullInfo{}, n)
	f := func(inputBits, jj, kk uint8) bool {
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		j := int(jj) % n
		k := int(kk) % (n + 1)
		if _, err := m.ApplyOps(x, m.StageOps(j, k)); err != nil {
			return false
		}
		if _, err := m.ApplyOps(x, m.AbsentOps(j)); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
