// Package mobile implements M^mf, the synchronous model with a single mobile
// (omission) failure per round, due to Santoro & Widmayer and analyzed in
// Section 5 of the paper.
//
// In every round the environment performs an action (j, G): all messages
// sent in that round by process j to the processes in G are lost. The
// identity of the omitting process may change from round to round, nothing
// is recorded, and nobody is silenced: the environment's local state is
// constant (we keep only the round number). A process is faulty in a run
// exactly if it is silenced forever from some round on, so no process is
// ever failed at a finite state — the model displays no finite failure.
//
// The layering S1 restricts the environment to prefix omission sets:
// S1(x) = { x(j,[k]) : 1 <= j <= n, 0 <= k <= n }.
package mobile

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/syncmp"
)

// Model is M^mf with the S1 layering. It implements core.Model. Successor
// enumeration is memoized in an embedded per-model cache shared by every
// analysis pass over the same model value.
type Model struct {
	*core.SuccessorCache
	p     proto.SyncProtocol
	n     int
	name  string
	inits core.InitMemo
}

var _ core.Model = (*Model)(nil)

// New returns M^mf with the S1 layering for protocol p on n processes.
func New(p proto.SyncProtocol, n int) *Model {
	m := &Model{p: p, n: n, name: fmt.Sprintf("mobile/S1(n=%d,%s)", n, p.Name())}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.SyncProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order.
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *syncmp.State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return syncmp.NewState(m.p, 0, locals, 0, false, inputs)
}

// successors enumerates one successor per action (j,[k]); the embedded
// cache serves Successors. The failure-free successors x(j,[0]) coincide
// for all j and are emitted once, labeled "noop".
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*syncmp.State)
	if !ok {
		return nil
	}
	out := make([]core.Succ, 0, m.n*m.n+1)
	out = append(out, core.Succ{
		Action: "noop",
		State:  syncmp.ApplyAction(m.p, s, 0, 0, false, false),
	})
	for j := 0; j < m.n; j++ {
		for k := 1; k <= m.n; k++ {
			out = append(out, core.Succ{
				Action: "(" + strconv.Itoa(j) + ",[" + strconv.Itoa(k) + "])",
				State:  syncmp.ApplyAction(m.p, s, j, syncmp.OmitMask(k), false, false),
			})
		}
	}
	return out
}

// Apply exposes a single arbitrary environment action (j, G) of the full
// model M^mf (not restricted to the S1 prefix sets), for the layering
// legality tests: every S1 action must be an M^mf action, and sequences of
// M^mf actions generate the full model.
func (m *Model) Apply(x *syncmp.State, j int, omitTo uint64) *syncmp.State {
	return syncmp.ApplyAction(m.p, x, j, omitTo, false, false)
}

// FullModel is M^mf itself: every environment action (j, G) with an
// arbitrary omission set G, not only the prefix sets of S1. The S1
// submodel's layer is a subset of every FullModel layer (the executable
// content of "S1 is a layering of M^mf"), and impossibility established in
// the submodel holds a fortiori here — both are checked in the package
// tests.
type FullModel struct {
	*core.SuccessorCache
	inner *Model
	p     proto.SyncProtocol
	n     int
	name  string
}

var _ core.Model = (*FullModel)(nil)

// NewFull returns the unrestricted M^mf for protocol p on n processes.
func NewFull(p proto.SyncProtocol, n int) *FullModel {
	m := &FullModel{
		inner: New(p, n),
		p:     p,
		n:     n,
		name:  fmt.Sprintf("mobile/full(n=%d,%s)", n, p.Name()),
	}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *FullModel) Name() string { return m.name }

// N returns the number of processes.
func (m *FullModel) N() int { return m.n }

// Inits implements core.Model: the same Con_0 as the S1 submodel.
func (m *FullModel) Inits() []core.State { return m.inner.Inits() }

// Initial builds the initial state for an explicit input assignment.
func (m *FullModel) Initial(inputs []int) *syncmp.State { return m.inner.Initial(inputs) }

// successors enumerates one successor per (j, G) with G any non-empty
// subset, plus the failure-free action; the embedded cache serves
// Successors.
func (m *FullModel) successors(x core.State) []core.Succ {
	s, ok := x.(*syncmp.State)
	if !ok {
		return nil
	}
	out := []core.Succ{{
		Action: "noop",
		State:  syncmp.ApplyAction(m.p, s, 0, 0, false, false),
	}}
	for j := 0; j < m.n; j++ {
		for g := uint64(1); g < 1<<uint(m.n); g++ {
			out = append(out, core.Succ{
				Action: fmt.Sprintf("(%d,G=%0*b)", j, m.n, g),
				State:  syncmp.ApplyAction(m.p, s, j, g, false, false),
			})
		}
	}
	return out
}
