package mobile_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/valence"
)

// TestLemma51SimilarityChain checks the proof skeleton of Lemma 5.1(iii):
// x(j,[0]) coincides for all j, and x(j,[k]) ~s x(j,[k+1]) because the two
// states differ only in the state of the k-th process (0-based: the process
// with id k is the one added to the omission set).
func TestLemma51SimilarityChain(t *testing.T) {
	const n = 3
	m := mobile.New(protocols.FloodSet{Rounds: 3}, n)
	x := m.Initial([]int{0, 1, 0})
	for j := 0; j < n; j++ {
		prev := m.Apply(x, j, 0)
		noop := m.Apply(x, 0, 0)
		if prev.Key() != noop.Key() {
			t.Errorf("x(%d,[0]) differs from x(0,[0])", j)
		}
		for k := 0; k < n; k++ {
			next := m.Apply(x, j, (uint64(1)<<uint(k+1))-1)
			if prev.Key() != next.Key() {
				if !core.AgreeModulo(prev, next, k) {
					t.Errorf("x(%d,[%d]) and x(%d,[%d]) do not agree modulo %d", j, k, j, k+1, k)
				}
				if _, ok := core.Similar(prev, next); !ok {
					t.Errorf("x(%d,[%d]) !~s x(%d,[%d])", j, k, j, k+1)
				}
			}
			prev = next
		}
	}
}

// TestS1LayerSimilarityConnected checks Lemma 5.1(iii) wholesale: every S1
// layer over every initial state is similarity connected, hence (with the
// valence oracle) valence connected.
func TestS1LayerSimilarityConnected(t *testing.T) {
	const n, rounds = 3, 2
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		r := valence.AnalyzeLayer(m, o, x, rounds)
		if !r.SimilarityConnected {
			t.Errorf("init %q: S1 layer has %d similarity components, want 1",
				x.Key(), r.SimilarityComponents)
		}
		if !r.ValenceConnected {
			t.Errorf("init %q: S1 layer not valence connected", x.Key())
		}
	}
}

// TestLemma36InitialStates checks Lemma 3.6: Con_0 is similarity connected,
// and (for a protocol attempting consensus) contains a bivalent state.
func TestLemma36InitialStates(t *testing.T) {
	const n, rounds = 3, 2
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	inits := m.Inits()
	if d, conn := valence.SetSDiameter(inits); !conn {
		t.Error("Con_0 is not similarity connected")
	} else if d > n {
		t.Errorf("Con_0 s-diameter = %d, want <= n = %d", d, n)
	}
	o := valence.NewOracle(m)
	bivalent := false
	for _, x := range inits {
		if o.Bivalent(x, rounds) {
			bivalent = true
			break
		}
	}
	if !bivalent {
		t.Error("no bivalent initial state found (Lemma 3.6)")
	}
	// The all-0 and all-1 initial states are univalent by validity.
	if v, ok := o.Univalent(m.Initial([]int{0, 0, 0}), rounds); !ok || v != 0 {
		t.Errorf("all-0 initial state: univalent = (%d,%v), want (0,true)", v, ok)
	}
	if v, ok := o.Univalent(m.Initial([]int{1, 1, 1}), rounds); !ok || v != 1 {
		t.Errorf("all-1 initial state: univalent = (%d,%v), want (1,true)", v, ok)
	}
}

// TestBivalentChainMobile is the constructive core of Corollary 5.2: the
// bivalent chain of Theorem 4.2 extends up to the protocol's decision
// round. While the protocol has not yet decided (FloodSet decides exactly
// at its round bound) Lemma 3.2 holds along the chain: no process has
// decided at a bivalent state, since M^mf displays no finite failure. At
// the decision round itself, FloodSet — like any protocol in M^mf — must
// then break one of the requirements; for this chain's final state the
// decisions that appear one layer later disagree.
func TestBivalentChainMobile(t *testing.T) {
	const n, rounds = 3, 3
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	o := valence.NewOracle(m)
	target := rounds - 1
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(rounds, 1), target)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stuck != nil {
		t.Fatalf("chain stuck at depth %d: valence connectivity failed", ch.Reached)
	}
	if ch.Reached != target {
		t.Fatalf("chain reached %d, want %d", ch.Reached, target)
	}
	// Lemma 3.2: no process decided at any state of the chain.
	for d, x := range ch.Exec.States() {
		for i := 0; i < n; i++ {
			if _, ok := x.Decided(i); ok {
				t.Errorf("depth %d: process %d decided at a bivalent state (Lemma 3.2)", d, i)
			}
		}
	}
	// The final state is bivalent one layer before everyone decides: both
	// decision values occur among its one-layer extensions, i.e. FloodSet
	// breaks agreement right here. (Corollary 5.2: some requirement must
	// break; for FloodSet it is agreement.)
	last := ch.Exec.Last()
	if core.AllDecided(last) {
		t.Error("chain final state already decided; expected pre-decision bivalence")
	}
	var mask uint8
	for _, s := range m.Successors(last) {
		mask |= o.Valences(s.State, 0)
	}
	if mask != valence.V0|valence.V1 {
		t.Errorf("one-layer decisions from the final chain state = %02b, want both values", mask)
	}
}

// TestNoFiniteFailure checks that M^mf displays no finite failure: no
// process is failed at any reachable state.
func TestNoFiniteFailure(t *testing.T) {
	const n = 3
	m := mobile.New(protocols.FloodSet{Rounds: 2}, n)
	g, err := core.Explore(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range g.Nodes {
		for i := 0; i < n; i++ {
			if x.FailedAt(i) {
				t.Fatalf("process %d failed at state %q", i, x.Key())
			}
		}
	}
	if err := g.CheckDeterminism(m); err != nil {
		t.Error(err)
	}
}

// TestS1IsSubmodelOfFull: every S1 layer state appears in the full M^mf
// layer — the executable content of "S1 is a layering of M^mf" at the
// one-layer level (S1 actions ARE model actions).
func TestS1IsSubmodelOfFull(t *testing.T) {
	const n = 3
	p := protocols.FullInfo{}
	sub := mobile.New(p, n)
	full := mobile.NewFull(p, n)
	x := sub.Initial([]int{0, 1, 1})
	fullStates := make(map[string]bool)
	for _, s := range full.Successors(x) {
		fullStates[s.State.Key()] = true
	}
	// |full layer| = 1 + n*(2^n - 1) labeled actions.
	if want := 1 + n*((1<<n)-1); len(full.Successors(x)) != want {
		t.Errorf("full layer has %d actions, want %d", len(full.Successors(x)), want)
	}
	for _, s := range sub.Successors(x) {
		if !fullStates[s.State.Key()] {
			t.Errorf("S1 state via %q not reachable in the full model", s.Action)
		}
	}
}

// TestFullModelRefutation: impossibility holds a fortiori in the full
// model (more adversary freedom).
func TestFullModelRefutation(t *testing.T) {
	m := mobile.NewFull(protocols.FloodSet{Rounds: 2}, 3)
	w, err := valence.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Error("consensus certified in the full M^mf")
	}
}

func TestAccessors(t *testing.T) {
	p := protocols.FloodSet{Rounds: 2}
	m := mobile.New(p, 3)
	if m.N() != 3 || m.Protocol().Name() != p.Name() || m.Name() == "" {
		t.Error("accessor mismatch")
	}
	f := mobile.NewFull(p, 3)
	if f.N() != 3 || f.Name() == "" {
		t.Error("full-model accessor mismatch")
	}
	if f.Initial([]int{0, 1, 1}).Key() != m.Initial([]int{0, 1, 1}).Key() {
		t.Error("full model's initial states must match the submodel's")
	}
}
