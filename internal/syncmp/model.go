package syncmp

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/proto"
)

// Model is the t-resilient synchronous message-passing model equipped with
// one of the paper's layerings (S1 or S^t). It implements core.Model.
// Successor enumeration is memoized in an embedded per-model cache shared
// by every analysis pass over the same model value.
type Model struct {
	*core.SuccessorCache
	p       proto.SyncProtocol
	n       int
	t       int
	budget  bool // true for S^t: stop failing once t processes are failed
	general bool // general omission: failed processes also stop receiving
	name    string
	inits   core.InitMemo
}

var _ core.Model = (*Model)(nil)

// NewS1 returns the synchronous model with the S1 layering: every layer
// allows one process to omit an arbitrary prefix-set of its messages, with
// failures recorded and failed processes silenced forever. The number of
// failures is not capped (callers exploring d layers see at most d).
func NewS1(p proto.SyncProtocol, n int) *Model {
	return finishModel(&Model{
		p:    p,
		n:    n,
		t:    n,
		name: fmt.Sprintf("syncmp/S1(n=%d,%s)", n, p.Name()),
	})
}

// finishModel wires the model's embedded successor cache.
func finishModel(m *Model) *Model {
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// NewSt returns the synchronous model with the S^t layering of Section 6:
// S^t(x) = S1(x) while fewer than t processes are failed at x, and the
// single failure-free successor afterwards. Failures are sending
// omissions, the paper's model.
func NewSt(p proto.SyncProtocol, n, t int) *Model {
	return finishModel(&Model{
		p:      p,
		n:      n,
		t:      t,
		budget: true,
		name:   fmt.Sprintf("syncmp/St(n=%d,t=%d,%s)", n, t, p.Name()),
	})
}

// NewStGeneral is NewSt under general-omission failures: from the round
// after its failure a failed process neither sends nor receives (in its
// failure round only the chosen send prefix is blocked, as before). An
// ablation of the paper's sending-omission assumption: the analysis is
// insensitive to the change — the package tests certify and refute the
// same protocols.
func NewStGeneral(p proto.SyncProtocol, n, t int) *Model {
	return finishModel(&Model{
		p:       p,
		n:       n,
		t:       t,
		budget:  true,
		general: true,
		name:    fmt.Sprintf("syncmp/StGen(n=%d,t=%d,%s)", n, t, p.Name()),
	})
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.SyncProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// T returns the failure budget (for S^t; S1 reports n).
func (m *Model) T() int { return m.t }

// Inits implements core.Model: Con_0, one initial state per binary input
// assignment, enumerated in binary counting order (process 0 is the least
// significant bit).
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			out = append(out, m.Initial(binaryInputs(m.n, a)))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return NewState(m.p, 0, locals, 0, true, inputs)
}

// successors enumerates the labeled successors; the embedded cache serves
// Successors. Actions are labeled "noop" for the failure-free round and
// "(j,[k])" for process j omitting to the first k processes (k >= 1).
// Processes already failed generate no new actions: they are silenced
// regardless, so their actions would duplicate "noop".
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	out := make([]core.Succ, 0, m.n*m.n+1)
	out = append(out, core.Succ{
		Action: "noop",
		State:  ApplyActionMode(m.p, s, 0, 0, true, true, m.general),
	})
	if m.budget && s.FailedCount() >= m.t {
		return out
	}
	for j := 0; j < m.n; j++ {
		if s.FailedAt(j) {
			continue
		}
		for k := 1; k <= m.n; k++ {
			out = append(out, core.Succ{
				Action: "(" + strconv.Itoa(j) + ",[" + strconv.Itoa(k) + "])",
				State:  ApplyActionMode(m.p, s, j, OmitMask(k), true, true, m.general),
			})
		}
	}
	return out
}

// binaryInputs decodes assignment index a into a binary input vector.
func binaryInputs(n, a int) []int {
	in := make([]int, n)
	for i := 0; i < n; i++ {
		in[i] = (a >> uint(i)) & 1
	}
	return in
}
