package syncmp

import (
	"repro/internal/proto"
)

// DropFunc decides whether the message from process `from` to process `to`
// is lost in the current round.
type DropFunc func(from, to int) bool

// Round executes one synchronous round of protocol p from the given local
// states: every process emits its messages, drop filters them, and every
// process consumes what arrived. It returns the next local states.
func Round(p proto.SyncProtocol, locals []string, drop DropFunc) []string {
	n := len(locals)
	sends := make([][]string, n)
	for i, l := range locals {
		sends[i] = p.Send(l)
	}
	next := make([]string, n)
	in := make([]string, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			switch {
			case i == j:
				in[i] = ""
			case drop != nil && drop(i, j):
				in[i] = ""
			default:
				in[i] = sends[i][j]
			}
		}
		next[j] = p.Deliver(locals[j], in)
	}
	return next
}

// OmitMask returns the paper's omission set [k] = {first k processes} as a
// bitmask over 0-based ids: processes 0..k-1.
func OmitMask(k int) uint64 {
	return (uint64(1) << uint(k)) - 1
}

// ApplyAction applies the environment action (j, G) to state x under
// protocol p: messages from j to the processes in omitTo are lost this
// round. If silenceFailed is true, all messages from processes already
// recorded as failed in x are also lost (the Section-6 silencing rule). If
// record is true and omitTo is non-empty, j is recorded as failed in the
// successor's environment.
//
// j is a 0-based process id; omitTo is a bitmask of 0-based ids.
func ApplyAction(p proto.SyncProtocol, x *State, j int, omitTo uint64, record, silenceFailed bool) *State {
	return ApplyActionMode(p, x, j, omitTo, record, silenceFailed, false)
}

// ApplyActionMode is ApplyAction with an explicit failure mode: when
// generalOmission is true, processes already recorded as failed also lose
// their incoming messages (general omission) instead of only their
// outgoing ones (sending omission, the paper's model).
func ApplyActionMode(p proto.SyncProtocol, x *State, j int, omitTo uint64, record, silenceFailed, generalOmission bool) *State {
	drop := func(from, to int) bool {
		if silenceFailed && x.failed&(1<<uint(from)) != 0 {
			return true
		}
		if generalOmission && x.failed&(1<<uint(to)) != 0 {
			return true
		}
		return from == j && omitTo&(1<<uint(to)) != 0
	}
	next := Round(p, x.locals, drop)
	failed := x.failed
	if record && omitTo != 0 {
		failed |= 1 << uint(j)
	}
	return NewState(p, x.round+1, next, failed, x.trackEn, x.inputs)
}
