package syncmp_test

import (
	"testing"
	"testing/quick"

	"repro/internal/protocols"
	"repro/internal/syncmp"
)

// TestQuickReplayDeterminism: replaying any action sequence from any
// initial state yields byte-identical keys — the executable form of the
// admissibility (pasting) requirement.
func TestQuickReplayDeterminism(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	f := func(inputBits uint8, choices []uint8) bool {
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		run := func() string {
			var cur = x
			for _, c := range choices {
				succs := m.Successors(cur)
				next := succs[int(c)%len(succs)].State
				var ok bool
				cur, ok = next.(*syncmp.State)
				if !ok {
					return "cast-failure"
				}
			}
			return cur.Key()
		}
		return run() == run()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyComponents: two states are key-equal exactly if round,
// failed set, and all locals coincide.
func TestQuickKeyComponents(t *testing.T) {
	p := protocols.FullInfo{}
	f := func(roundA, roundB uint8, failedA, failedB uint8, l1, l2, l3 string) bool {
		a := syncmp.NewState(p, int(roundA%4), []string{l1, l2, l3}, uint64(failedA%8), true, nil)
		b := syncmp.NewState(p, int(roundB%4), []string{l1, l2, l3}, uint64(failedB%8), true, nil)
		wantEqual := roundA%4 == roundB%4 && failedA%8 == failedB%8
		return (a.Key() == b.Key()) == wantEqual
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickLocalKeyInjective: changing exactly one local changes the key.
func TestQuickLocalKeyInjective(t *testing.T) {
	p := protocols.FullInfo{}
	f := func(l1, l2, l3, alt string, which uint8) bool {
		locals := []string{l1, l2, l3}
		a := syncmp.NewState(p, 1, locals, 0, true, nil)
		mod := append([]string(nil), locals...)
		i := int(which) % 3
		mod[i] = alt
		b := syncmp.NewState(p, 1, mod, 0, true, nil)
		return (a.Key() == b.Key()) == (locals[i] == alt)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60}
}
