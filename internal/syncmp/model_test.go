package syncmp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

func TestFailureFreeFloodSetRun(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	x := m.Initial([]int{1, 0, 1})
	// Two failure-free rounds: everyone floods, everyone decides min = 0.
	for r := 0; r < 2; r++ {
		x = syncmp.ApplyAction(p, x, 0, 0, true, true)
	}
	for i := 0; i < n; i++ {
		v, ok := x.Decided(i)
		if !ok || v != 0 {
			t.Errorf("process %d decided (%d,%v), want (0,true)", i, v, ok)
		}
	}
	if x.Round() != 2 {
		t.Errorf("Round() = %d, want 2", x.Round())
	}
}

func TestOmissionDropsMessages(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	x := m.Initial([]int{0, 1, 1})
	// Process 0 omits to everyone: nobody learns input 0 this round.
	y := syncmp.ApplyAction(p, x, 0, syncmp.OmitMask(n), true, true)
	if !y.FailedAt(0) {
		t.Error("process 0 not recorded as failed after omission")
	}
	if y.FailedAt(1) || y.FailedAt(2) {
		t.Error("innocent process recorded as failed")
	}
	// Locals of 1 and 2 must not contain value 0: their W = {1}.
	if y.Local(1) != y.Local(2) {
		t.Errorf("locals of 1 and 2 differ: %q vs %q", y.Local(1), y.Local(2))
	}
	// Process 0 received everything, so its W = {0,1}: local differs.
	if y.Local(0) == y.Local(1) {
		t.Error("process 0's local should differ (it saw its own 0)")
	}
	// Second round: 0 is silenced forever, 1 and 2 exchange and decide 1.
	z := syncmp.ApplyAction(p, y, 0, 0, true, true)
	for _, i := range []int{1, 2} {
		v, ok := z.Decided(i)
		if !ok || v != 1 {
			t.Errorf("process %d decided (%d,%v), want (1,true)", i, v, ok)
		}
	}
	// Process 0 itself decides 0 — but it is failed, so agreement among
	// non-failed processes is intact.
	v, ok := z.Decided(0)
	if !ok || v != 0 {
		t.Errorf("failed process 0 decided (%d,%v), want (0,true)", v, ok)
	}
}

func TestAgreeModuloAndSimilar(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	x := m.Initial([]int{0, 0, 0})
	y := m.Initial([]int{0, 0, 1})
	if !core.AgreeModulo(x, y, 2) {
		t.Error("initial states differing only in input 2 must agree modulo 2")
	}
	if core.AgreeModulo(x, y, 1) {
		t.Error("states differing in local 2 must not agree modulo 1")
	}
	j, ok := core.Similar(x, y)
	if !ok || j != 2 {
		t.Errorf("Similar = (%d,%v), want (2,true)", j, ok)
	}
	if _, ok := core.Similar(x, x); !ok {
		t.Error("a state must be similar to itself (agree modulo any j)")
	}
}

func TestStLayeringCapsFailures(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, tt)
	x := m.Initial([]int{0, 1, 0})
	// Burn the failure budget.
	y := syncmp.ApplyAction(p, x, 1, syncmp.OmitMask(1), true, true)
	succs := m.Successors(y)
	if len(succs) != 1 || succs[0].Action != "noop" {
		t.Fatalf("S^t after t failures: got %d successors (first %q), want only noop",
			len(succs), succs[0].Action)
	}
}

func TestS1LayerSize(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewS1(p, n)
	x := m.Initial([]int{0, 1, 0})
	succs := m.Successors(x)
	// noop + n*n omission actions (j in 0..n-1, k in 1..n).
	if want := 1 + n*n; len(succs) != want {
		t.Errorf("len(S1(x)) = %d, want %d", len(succs), want)
	}
	seen := make(map[string]bool)
	for _, s := range succs {
		if seen[s.Action] {
			t.Errorf("duplicate action label %q", s.Action)
		}
		seen[s.Action] = true
	}
}

func TestInitsEnumerateCon0(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	inits := m.Inits()
	if len(inits) != 1<<n {
		t.Fatalf("len(Inits()) = %d, want %d", len(inits), 1<<n)
	}
	keys := make(map[string]bool)
	for _, x := range inits {
		if keys[x.Key()] {
			t.Errorf("duplicate initial state %q", x.Key())
		}
		keys[x.Key()] = true
		if x.EnvKey() != inits[0].EnvKey() {
			t.Error("initial states must share the environment state")
		}
		for i := 0; i < n; i++ {
			if x.FailedAt(i) {
				t.Error("no process may be failed at an initial state")
			}
		}
	}
}

func TestStateKeyDistinguishesFailedSet(t *testing.T) {
	p := protocols.FullInfo{}
	locals := []string{"a", "b", "c"}
	x := syncmp.NewState(p, 1, locals, 0b001, true, nil)
	y := syncmp.NewState(p, 1, locals, 0b010, true, nil)
	if x.Key() == y.Key() {
		t.Error("states with different failed sets must have different keys")
	}
	// In the mobile flavor (trackEnv=false) the failed set must be 0 and
	// the env key carries only the round.
	mx := syncmp.NewState(p, 1, locals, 0, false, nil)
	my := syncmp.NewState(p, 2, locals, 0, false, nil)
	if mx.EnvKey() == my.EnvKey() {
		t.Error("round must be part of the environment")
	}
}

// TestGeneralOmissionVariant: the S^t analysis is insensitive to whether
// failed processes also stop receiving — FloodSet(t+1) certifies, the
// t-round variant is refuted — while the failed process's own state
// genuinely differs between the two failure modes.
func TestGeneralOmissionVariant(t *testing.T) {
	const n, tt = 3, 1
	good := syncmp.NewStGeneral(protocols.FloodSet{Rounds: tt + 1}, n, tt)
	w, err := valence.Certify(good, tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.OK {
		t.Errorf("FloodSet(t+1) under general omission: %v (%s)", w.Kind, w.Detail)
	}
	fast := syncmp.NewStGeneral(protocols.FloodSet{Rounds: tt}, n, tt)
	w, err = valence.Certify(fast, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Error("FloodSet(t) certified under general omission")
	}

	// The failure modes differ observably at the failed process: under
	// sending omission it keeps receiving; under general omission its
	// round-2 inbox is empty. (Full information makes the difference
	// visible; FloodSet's saturated W would mask it.)
	p := protocols.FullInfo{}
	send := syncmp.NewSt(p, n, tt)
	x := send.Initial([]int{0, 1, 1})
	// Round 1: process 0 fails omitting to everyone; round 2: failure-free.
	y1 := syncmp.ApplyActionMode(p, x, 0, syncmp.OmitMask(n), true, true, false)
	y2 := syncmp.ApplyActionMode(p, y1, 0, 0, true, true, false)
	g1 := syncmp.ApplyActionMode(p, x, 0, syncmp.OmitMask(n), true, true, true)
	g2 := syncmp.ApplyActionMode(p, g1, 0, 0, true, true, true)
	if y2.Local(0) == g2.Local(0) {
		t.Error("failed process's state should differ between omission modes")
	}
	// Non-failed processes are unaffected by the mode.
	for i := 1; i < n; i++ {
		if y2.Local(i) != g2.Local(i) {
			t.Errorf("non-failed process %d differs across omission modes", i)
		}
	}
}
