package syncmp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// MultiModel generalizes the S^t layering to allow up to MaxPerRound new
// omission failures in a single round, as in the closing discussion of
// Section 6 (the Dwork–Moses "wasted faults" analysis): by failing k+w
// processes within the first k rounds the environment wastes w faults, and
// bivalence must end w rounds earlier. The failure budget t still caps the
// run's total failures.
type MultiModel struct {
	*core.SuccessorCache
	p           proto.SyncProtocol
	n           int
	t           int
	maxPerRound int
	name        string
	inits       core.InitMemo
}

var _ core.Model = (*MultiModel)(nil)

// NewStMulti returns the t-resilient synchronous model whose layers allow
// up to maxPerRound simultaneous new failures.
func NewStMulti(p proto.SyncProtocol, n, t, maxPerRound int) *MultiModel {
	m := &MultiModel{
		p:           p,
		n:           n,
		t:           t,
		maxPerRound: maxPerRound,
		name:        fmt.Sprintf("syncmp/StMulti(n=%d,t=%d,c=%d,%s)", n, t, maxPerRound, p.Name()),
	}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *MultiModel) Name() string { return m.name }

// N returns the number of processes.
func (m *MultiModel) N() int { return m.n }

// T returns the failure budget.
func (m *MultiModel) T() int { return m.t }

// Inits implements core.Model.
func (m *MultiModel) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			out = append(out, m.Initial(binaryInputs(m.n, a)))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *MultiModel) Initial(inputs []int) *State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return NewState(m.p, 0, locals, 0, true, inputs)
}

// Omission is one process's new failure in a round: j omits to the prefix
// set [K] (1 <= K <= n) and is silenced afterwards.
type Omission struct {
	J int
	K int
}

// ApplyMulti applies one round in which every listed process fails
// simultaneously (and previously-failed processes stay silenced).
func (m *MultiModel) ApplyMulti(x *State, oms []Omission) *State {
	failNow := uint64(0)
	masks := make(map[int]uint64, len(oms))
	for _, om := range oms {
		failNow |= 1 << uint(om.J)
		masks[om.J] = OmitMask(om.K)
	}
	drop := func(from, to int) bool {
		if x.failed&(1<<uint(from)) != 0 {
			return true
		}
		if mask, ok := masks[from]; ok {
			return mask&(1<<uint(to)) != 0
		}
		return false
	}
	next := Round(m.p, x.locals, drop)
	return NewState(m.p, x.round+1, next, x.failed|failNow, true, x.inputs)
}

// successors enumerates the failure-free round plus every combination of
// up to maxPerRound new failures within the remaining budget; the embedded
// cache serves Successors.
func (m *MultiModel) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	out := []core.Succ{{
		Action: "noop",
		State:  m.ApplyMulti(s, nil),
	}}
	budget := m.t - s.FailedCount()
	limit := m.maxPerRound
	if budget < limit {
		limit = budget
	}
	var alive []int
	for j := 0; j < m.n; j++ {
		if !s.FailedAt(j) {
			alive = append(alive, j)
		}
	}
	var build func(start int, oms []Omission)
	build = func(start int, oms []Omission) {
		if len(oms) > 0 {
			out = append(out, core.Succ{
				Action: omissionLabel(oms),
				State:  m.ApplyMulti(s, oms),
			})
		}
		if len(oms) == limit {
			return
		}
		for idx := start; idx < len(alive); idx++ {
			for k := 1; k <= m.n; k++ {
				next := append(append([]Omission(nil), oms...), Omission{J: alive[idx], K: k})
				build(idx+1, next)
			}
		}
	}
	build(0, nil)
	return out
}

func omissionLabel(oms []Omission) string {
	parts := make([]string, len(oms))
	for i, om := range oms {
		parts[i] = "(" + strconv.Itoa(om.J) + ",[" + strconv.Itoa(om.K) + "])"
	}
	return strings.Join(parts, "+")
}
