package syncmp_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestMultiSuccessorCount checks the action enumeration: noop + singles +
// pairs within the budget.
func TestMultiSuccessorCount(t *testing.T) {
	const n, tt, c = 4, 2, 2
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewStMulti(p, n, tt, c)
	x := m.Initial([]int{0, 1, 1, 1})
	succs := m.Successors(x)
	// noop + n*n singles + C(n,2)*n*n pairs.
	want := 1 + n*n + (n*(n-1)/2)*n*n
	if len(succs) != want {
		t.Errorf("|S(x)| = %d, want %d", len(succs), want)
	}
	seen := make(map[string]bool)
	for _, s := range succs {
		if seen[s.Action] {
			t.Errorf("duplicate action %q", s.Action)
		}
		seen[s.Action] = true
	}
	// After exhausting the budget in one round, only noop remains.
	y := m.ApplyMulti(x, []syncmp.Omission{{J: 0, K: n}, {J: 1, K: n}})
	if got := m.Successors(y); len(got) != 1 || got[0].Action != "noop" {
		t.Errorf("after budget exhausted: %d successors", len(got))
	}
}

// TestMultiMatchesSingleWhenC1: with maxPerRound=1 the multi model's layer
// must produce exactly the S^t layer states.
func TestMultiMatchesSingleWhenC1(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	single := syncmp.NewSt(p, n, tt)
	multi := syncmp.NewStMulti(p, n, tt, 1)
	xs := single.Initial([]int{0, 1, 1})
	xm := multi.Initial([]int{0, 1, 1})
	if xs.Key() != xm.Key() {
		t.Fatal("initial states differ")
	}
	keys := func(succs []core.Succ) map[string]bool {
		out := make(map[string]bool)
		for _, s := range succs {
			out[s.State.Key()] = true
		}
		return out
	}
	ks, km := keys(single.Successors(xs)), keys(multi.Successors(xm))
	if len(ks) != len(km) {
		t.Fatalf("layer sizes differ: %d vs %d", len(ks), len(km))
	}
	for k := range ks {
		if !km[k] {
			t.Fatal("multi layer missing an S^t state")
		}
	}
}

// TestWastedFaults is the Section 6 closing discussion (Dwork–Moses),
// measured: in the multi-failure model a bivalent state at round r must
// have failed count f with r <= f <= t-1 — each round of a bivalent prefix
// spends at least one failure, a state with t failures is univalent, and
// an environment that wasted w faults (f = r + w) loses exactly w rounds of
// bivalence (r <= t-1-w).
func TestWastedFaults(t *testing.T) {
	const n, tt, c = 4, 2, 2
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewStMulti(p, n, tt, c)
	g, err := core.Explore(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := valence.NewOracle(m)
	bivalentSeen := false
	wastedSeen := false
	for _, x := range g.Nodes {
		s := x.(*syncmp.State)
		r := s.Round()
		if !o.Bivalent(s, rounds-r) {
			continue
		}
		bivalentSeen = true
		f := s.FailedCount()
		if f < r {
			t.Errorf("bivalent state at round %d with only %d failures (needs >= %d)", r, f, r)
		}
		if f > tt-1 {
			t.Errorf("bivalent state with %d failures; budget-exhausted states are univalent", f)
		}
		if f > r {
			wastedSeen = true
		}
	}
	if !bivalentSeen {
		t.Error("no bivalent states found")
	}
	// At round 0 states with f=0 only; waste (f>r) first appears at round
	// 1 with a double failure — but then f=2=t makes it univalent for t=2.
	// So with t=2 no bivalent wasted state can exist; assert that.
	if wastedSeen {
		t.Error("t=2: a wasted-fault state stayed bivalent, contradicting the waste bound")
	}
}

// TestWastedFaultsWithSlack: with t=3 (n=5) a single wasted fault is
// affordable: bivalent states with f = r+1 exist at round 1 but none at
// round t-1 = 2 with f = 3.
func TestWastedFaultsWithSlack(t *testing.T) {
	if testing.Short() {
		t.Skip("larger exploration")
	}
	const n, tt, c = 5, 3, 2
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewStMulti(p, n, tt, c)
	g, err := core.Explore(m, 2, 0) // two rounds suffice for the claim
	if err != nil {
		t.Fatal(err)
	}
	o := valence.NewOracle(m)
	wasted := 0
	for _, x := range g.Nodes {
		s := x.(*syncmp.State)
		r := s.Round()
		if r == 0 || !o.Bivalent(s, rounds-r) {
			continue
		}
		f := s.FailedCount()
		if f < r || f > tt-1 {
			t.Errorf("bivalent at round %d with %d failures violates r <= f <= t-1", r, f)
		}
		if f == r+1 {
			wasted++
		}
	}
	if wasted == 0 {
		t.Error("expected bivalent states with one wasted fault at t=3")
	}
}

// TestMultiActionLabels sanity-checks the combined-action labels.
func TestMultiActionLabels(t *testing.T) {
	const n, tt, c = 4, 2, 2
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewStMulti(p, n, tt, c)
	x := m.Initial([]int{0, 1, 1, 1})
	found := false
	for _, s := range m.Successors(x) {
		if strings.Contains(s.Action, "+") {
			found = true
			st := s.State.(*syncmp.State)
			if st.FailedCount() != 2 {
				t.Errorf("double action %q recorded %d failures", s.Action, st.FailedCount())
			}
		}
	}
	if !found {
		t.Error("no double-failure actions emitted")
	}
}
