package syncmp

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/proto"
)

// State is a global state of a round-based synchronous message-passing
// system. It is immutable after construction: all derived fields (key,
// decisions) are precomputed.
type State struct {
	n       int
	round   int
	locals  []string
	failed  uint64 // bitmask of processes recorded as failed by the environment
	trackEn bool   // whether the failed set is part of the environment state
	decided []int  // per-process decision (core.Undecided if none)
	inputs  []int  // initial inputs of the run (reporting metadata; not in Key)
	key     string
	envKey  string
}

var (
	_ core.State = (*State)(nil)
	_ core.Input = (*State)(nil)
)

// NewState assembles an immutable state. When trackEnv is true (the
// t-resilient model of Section 6) the failed bitmask is part of the
// environment state; when false (the mobile model M^mf) the environment
// consists of the round number only and failed must be 0.
func NewState(p proto.Decider, round int, locals []string, failed uint64, trackEnv bool, inputs []int) *State {
	n := len(locals)
	s := &State{
		n:       n,
		round:   round,
		locals:  append([]string(nil), locals...),
		failed:  failed,
		trackEn: trackEnv,
		decided: make([]int, n),
		inputs:  append([]int(nil), inputs...),
	}
	for i, l := range locals {
		if v, ok := p.Decide(l); ok {
			s.decided[i] = v
		} else {
			s.decided[i] = core.Undecided
		}
	}
	if trackEnv {
		s.envKey = proto.Join("r"+strconv.Itoa(round), "f"+strconv.FormatUint(failed, 16))
	} else {
		s.envKey = proto.Join("r" + strconv.Itoa(round))
	}
	fields := make([]string, 0, n+1)
	fields = append(fields, s.envKey)
	fields = append(fields, s.locals...)
	s.key = proto.Join(fields...)
	return s
}

// N implements core.State.
func (s *State) N() int { return s.n }

// Key implements core.State.
func (s *State) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s *State) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// EnvKey implements core.State.
func (s *State) EnvKey() string { return s.envKey }

// Local implements core.State.
func (s *State) Local(i int) string { return s.locals[i] }

// Decided implements core.State.
func (s *State) Decided(i int) (int, bool) {
	if s.decided[i] == core.Undecided {
		return core.Undecided, false
	}
	return s.decided[i], true
}

// FailedAt implements core.State. In the t-resilient model a process
// recorded as failed is silenced forever and is therefore faulty in every
// run through this state. In the mobile model no process is ever failed at a
// state (the model displays no finite failure).
func (s *State) FailedAt(i int) bool {
	if !s.trackEn {
		return false
	}
	return s.failed&(1<<uint(i)) != 0
}

// InputOf implements core.Input.
func (s *State) InputOf(i int) int { return s.inputs[i] }

// Round returns the round number (the number of layers applied so far).
func (s *State) Round() int { return s.round }

// Failed returns the bitmask of processes recorded as failed.
func (s *State) Failed() uint64 { return s.failed }

// FailedCount returns the number of processes recorded as failed.
func (s *State) FailedCount() int {
	c := 0
	for f := s.failed; f != 0; f &= f - 1 {
		c++
	}
	return c
}

// Locals returns a copy of the per-process local states.
func (s *State) Locals() []string { return append([]string(nil), s.locals...) }
