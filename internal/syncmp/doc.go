// Package syncmp implements the round-based synchronous message-passing
// model of Section 6 of the paper: the standard t-resilient synchronous
// model with sending-omission/crash failures.
//
// The environment acts once per round with an action (j, G): all messages
// sent in the upcoming round by process j to processes in G are lost. Per
// the paper's Section-6 assumptions, (i) in the first round in which a
// process fails the environment blocks an arbitrary subset of its messages,
// (ii) the environment silences a faulty process forever in all later
// rounds, and (iii) the environment's local state keeps track of the failed
// processes (so the failed set is part of EnvKey and of the state Key).
//
// Two layerings are provided:
//
//   - S1: one omission per layer, S1(x) = { x(j,[k]) : 1<=j<=n, 0<=k<=n },
//     where [k] = {1,...,k} (processes 0..k-1 in 0-based indexing) and
//     (j,[0]) is the failure-free action.
//   - S^t: S1 while fewer than t processes are failed, and the single
//     failure-free action afterwards (Section 6).
//
// The round mechanics (ApplyAction, Round) are exported so that the mobile
// failure model M^mf (package mobile) can reuse them with its own failure
// semantics.
package syncmp
