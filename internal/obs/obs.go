// Package obs is the engine's zero-dependency observability layer: named
// atomic counters, gauges, and timers behind a Recorder interface, plus a
// structured JSONL run-event journal with monotonic timestamps.
//
// The package-level recorder is disabled by default. Hot paths load it once
// per operation (obs.Active()) and pay a single nil-check when
// instrumentation is off:
//
//	rec := obs.Active()
//	...
//	if rec != nil {
//		rec.Add("explore.nodes", int64(len(frontier)))
//	}
//
// Counter and gauge names are dotted lowercase paths grouped by subsystem
// (explore.*, cache.*, field.*, certify.*, oracle.*, knowledge.*, sim.*).
// Counters only ever grow; gauges are point-in-time snapshots; timers
// accumulate durations of span-scoped phases.
package obs

import (
	"sync/atomic"
	"time"
)

// Recorder receives engine instrumentation. Implementations must be safe
// for concurrent use: the parallel exploration and field sweeps record from
// worker goroutines.
type Recorder interface {
	// Add increments a named counter.
	Add(counter string, delta int64)
	// Set stores a named gauge value.
	Set(gauge string, v int64)
	// Observe accumulates one duration sample into a named timer's
	// latency histogram.
	Observe(timer string, d time.Duration)
	// Record accumulates one unitless sample (a width, a ratio, an
	// imbalance percentage) into a named value histogram.
	Record(sample string, v int64)
	// Event emits a structured run-event (journaled when a journal is
	// attached, dropped otherwise). Events are rare — per run phase, not
	// per state — so they may snapshot counters.
	Event(name string, fields ...F)
}

// F is one key/value field of a run event.
type F struct {
	Key   string
	Value any
}

// recorderBox wraps the active Recorder so atomic.Value can store a nil
// recorder (interfaces of differing dynamic type cannot be swapped in an
// atomic.Value directly).
type recorderBox struct{ r Recorder }

var active atomic.Value // recorderBox

// Active returns the process-wide recorder, or nil when instrumentation is
// disabled (the default).
func Active() Recorder {
	if b, ok := active.Load().(recorderBox); ok {
		return b.r
	}
	return nil
}

// Enable installs r as the process-wide recorder.
func Enable(r Recorder) { active.Store(recorderBox{r: r}) }

// Disable turns instrumentation off; Active returns nil afterwards.
func Disable() { active.Store(recorderBox{}) }

// Span starts a span-scoped phase probe: it returns a func that, when
// called, records the elapsed time into the named timer. Safe on a nil
// recorder (returns a no-op), so call sites can unconditionally
//
//	defer obs.Span(rec, "explore.time")()
func Span(r Recorder, timer string) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { r.Observe(timer, time.Since(t0)) }
}
