package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the standard Recorder: lock-free named atomic counters and
// gauges, log-bucketed latency histograms behind the timers, unitless
// value histograms behind Record, and an optional journal sink for
// events. The zero value is not usable; use NewMetrics.
//
// Metrics implements expvar.Var (String returns the JSON snapshot), so a
// command can expose it at /debug/vars with expvar.Publish without obs
// importing net/http.
type Metrics struct {
	counters sync.Map // string -> *int64
	gauges   sync.Map // string -> *int64
	timers   sync.Map // string -> *Histogram (ns samples)
	samples  sync.Map // string -> *Histogram (unitless samples)

	mu      sync.Mutex
	journal *Journal
}

// NewMetrics returns an empty recorder.
func NewMetrics() *Metrics { return &Metrics{} }

// SetJournal attaches (or detaches, with nil) the journal that Event writes
// to.
func (m *Metrics) SetJournal(j *Journal) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// SyncJournal flushes the attached journal's buffered tail to its sink;
// a no-op without a journal. Call it before reading the sink and on
// interrupt paths, where the tail holds the events explaining the stop.
func (m *Metrics) SyncJournal() error {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Sync()
}

// CloseJournal flushes and closes the attached journal; a no-op without
// one. Forced-exit paths (a second SIGINT) call it instead of SyncJournal
// so the buffered tail reaches the sink before the process dies and the
// journal stops accepting writes that would race the exit.
func (m *Metrics) CloseJournal() error {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// JournalErr returns the attached journal's sticky write error, or nil when
// no journal is attached or every emit succeeded.
func (m *Metrics) JournalErr() error {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Err()
}

// cell returns the *int64 registered under name in tab, creating it on
// first use.
func cell(tab *sync.Map, name string) *int64 {
	if p, ok := tab.Load(name); ok {
		return p.(*int64)
	}
	p, _ := tab.LoadOrStore(name, new(int64))
	return p.(*int64)
}

// Add implements Recorder.
func (m *Metrics) Add(counter string, delta int64) {
	atomic.AddInt64(cell(&m.counters, counter), delta)
}

// Set implements Recorder.
func (m *Metrics) Set(gauge string, v int64) {
	atomic.StoreInt64(cell(&m.gauges, gauge), v)
}

// hist returns the *Histogram registered under name in tab, creating it
// on first use.
func hist(tab *sync.Map, name string) *Histogram {
	if p, ok := tab.Load(name); ok {
		return p.(*Histogram)
	}
	p, _ := tab.LoadOrStore(name, &Histogram{})
	return p.(*Histogram)
}

// Observe implements Recorder: one duration sample into the timer's
// log-bucketed nanosecond histogram.
func (m *Metrics) Observe(timer string, d time.Duration) {
	hist(&m.timers, timer).Record(d.Nanoseconds())
}

// Record implements Recorder: one unitless sample into a value histogram.
func (m *Metrics) Record(sample string, v int64) {
	hist(&m.samples, sample).Record(v)
}

// Timer returns the latency histogram behind a timer name, or nil when the
// timer was never observed.
func (m *Metrics) Timer(name string) *Histogram {
	if p, ok := m.timers.Load(name); ok {
		return p.(*Histogram)
	}
	return nil
}

// Sample returns the value histogram behind a Record name, or nil when the
// name was never recorded.
func (m *Metrics) Sample(name string) *Histogram {
	if p, ok := m.samples.Load(name); ok {
		return p.(*Histogram)
	}
	return nil
}

// Event implements Recorder: when a journal is attached the event is
// written as one JSONL line carrying the fields and a snapshot of all
// counters and gauges; without a journal the event is dropped.
func (m *Metrics) Event(name string, fields ...F) {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return
	}
	j.Emit(name, fields, m.Snapshot())
}

// Counter returns the current value of a counter (0 if never touched).
func (m *Metrics) Counter(name string) int64 {
	if p, ok := m.counters.Load(name); ok {
		return atomic.LoadInt64(p.(*int64))
	}
	return 0
}

// Gauge returns the current value of a gauge (0 if never set).
func (m *Metrics) Gauge(name string) int64 {
	if p, ok := m.gauges.Load(name); ok {
		return atomic.LoadInt64(p.(*int64))
	}
	return 0
}

// Snapshot returns every counter and gauge by name. Timers contribute six
// derived entries — <name>.count, <name>.total_ns, <name>.max_ns, and the
// histogram quantiles <name>.p50_ns/.p90_ns/.p99_ns — and value
// histograms contribute <name>.count/.max/.p50/.p90/.p99, so the journal's
// per-event counter snapshots carry full latency distributions. When the
// attached journal has dropped events after a write error, the snapshot
// also reports journal.dropped.
func (m *Metrics) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	m.counters.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	m.gauges.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	m.timers.Range(func(k, v any) bool {
		h := v.(*Histogram)
		name := k.(string)
		out[name+".count"] = h.Count()
		out[name+".total_ns"] = h.Sum()
		out[name+".max_ns"] = h.Max()
		out[name+".p50_ns"] = h.Quantile(0.50)
		out[name+".p90_ns"] = h.Quantile(0.90)
		out[name+".p99_ns"] = h.Quantile(0.99)
		return true
	})
	m.samples.Range(func(k, v any) bool {
		h := v.(*Histogram)
		name := k.(string)
		out[name+".count"] = h.Count()
		out[name+".max"] = h.Max()
		out[name+".p50"] = h.Quantile(0.50)
		out[name+".p90"] = h.Quantile(0.90)
		out[name+".p99"] = h.Quantile(0.99)
		return true
	})
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j != nil {
		if d := j.Dropped(); d > 0 {
			out["journal.dropped"] = d
		}
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines.
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one sorted-key JSON object — the same
// shape expvar serves, so /debug/vars consumers can parse either.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// String implements expvar.Var.
func (m *Metrics) String() string {
	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}
