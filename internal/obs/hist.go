package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry. Values are bucketed log-linearly: exact below
// 2^histSubBits, then histSubBuckets sub-buckets per power of two, so the
// relative error of any reconstructed value is bounded by
// 1/histSubBuckets (~3% at 32 sub-buckets) while the whole int64 range
// fits in histBuckets counters. The index math is two shifts, a mask, and
// a bits.Len64 — no branches on the bucket table, no floats.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every value up to 2^63-1: one linear segment of
	// histSubBuckets exact buckets plus 64-histSubBits octaves of
	// histSubBuckets sub-buckets each (top-bit positions histSubBits..63).
	histBuckets = (64 - histSubBits + 1) << histSubBits
)

// Histogram is an atomic log-bucketed value distribution: concurrent
// Record calls from any number of goroutines, no locks, fixed memory
// (histBuckets counters). It replaces the scalar timer sums of obs v1:
// alongside count/sum/max it answers quantile queries (p50/p90/p99) with
// bounded relative error, which is what latency reporting actually needs —
// a mean hides the tail, the tail is the regression.
//
// The zero value is ready to use.
//
// There is deliberately no separate sample counter: the total is the sum
// of the bucket counters, recomputed by the (cold) reporting paths, so the
// (hot) Record pays one atomic add fewer.
type Histogram struct {
	counts [histBuckets]int64
	sum    int64
	max    int64
}

// histBucketOf maps a non-negative value to its bucket index. Values below
// histSubBuckets map to themselves (exact); a larger value with top bit e
// lands in octave e-histSubBits+1 at the sub-bucket given by its
// histSubBits bits below the top bit. Indexes are monotone in v.
func histBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	n := uint64(v)
	if n < histSubBuckets {
		return int(n)
	}
	e := bits.Len64(n) - 1 // position of the top set bit, >= histSubBits
	shift := uint(e - histSubBits)
	sub := (n >> shift) & (histSubBuckets - 1)
	return (e-histSubBits+1)<<histSubBits | int(sub)
}

// histBucketBounds returns the inclusive value range [lo, hi] of bucket i —
// the inverse of histBucketOf up to bucket resolution.
func histBucketBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i)
	}
	g := uint(i >> histSubBits) // octave, >= 1
	sub := int64(i & (histSubBuckets - 1))
	lo = (histSubBuckets + sub) << (g - 1)
	hi = lo + (int64(1)<<(g-1) - 1)
	return lo, hi
}

// Record adds one sample. Negative samples clamp to zero (durations and
// sizes are non-negative by construction; a clock hiccup must not corrupt
// the bucket table).
//lint:hotpath
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.counts[histBucketOf(v)], 1)
	atomic.AddInt64(&h.sum, v)
	for {
		cur := atomic.LoadInt64(&h.max)
		if v <= cur || atomic.CompareAndSwapInt64(&h.max, cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples: the sum of the bucket
// counters. Each bucket only grows, so successive Count calls are
// monotone non-decreasing even mid-hammer.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += atomic.LoadInt64(&h.counts[i])
	}
	return total
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return atomic.LoadInt64(&h.max) }

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded samples: the upper edge of the bucket holding the q-th sample,
// clamped to the recorded max. Empty histograms return 0. The estimate is
// exact below 2^histSubBits and within one sub-bucket (~3%) above.
//
// Concurrent Record calls may be mid-flight during the scan; the result is
// a consistent-enough snapshot for reporting (bucket counts are summed
// once, monotonically).
func (h *Histogram) Quantile(q float64) int64 {
	// One snapshot of the bucket table serves both the total and the rank
	// scan, so a sample landing between the two passes cannot skew the
	// rank past the table.
	var counts [histBuckets]int64
	var total int64
	for i := range h.counts {
		c := atomic.LoadInt64(&h.counts[i])
		counts[i] = c
		total += c
	}
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile lands on.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			_, hi := histBucketBounds(i)
			if max := atomic.LoadInt64(&h.max); hi > max {
				hi = max
			}
			return hi
		}
	}
	return atomic.LoadInt64(&h.max)
}

// Buckets calls fn for every non-empty bucket in increasing value order
// with the bucket's inclusive bounds and count. Used by the percentile
// tables and the monotonicity tests.
func (h *Histogram) Buckets(fn func(lo, hi, count int64)) {
	for i := range h.counts {
		c := atomic.LoadInt64(&h.counts[i])
		if c == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		fn(lo, hi, c)
	}
}
