package obs_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// Sinks keep the measured loads observable so the compiler cannot delete
// the disabled-path checks under test.
var (
	sinkTracer   *obs.Tracer
	sinkRecorder obs.Recorder
)

// BenchmarkObsDisabledSpan prices a span instrumentation site with tracing
// off: one atomic load plus a nil check. This is the cost every engine
// phase pays per operation when -trace is not given; the observability
// contract budgets it at <= 2 ns/op.
func BenchmarkObsDisabledSpan(b *testing.B) {
	obs.DisableTrace()
	for i := 0; i < b.N; i++ {
		if tr := obs.Trace(); tr != nil {
			sinkTracer = tr
		}
	}
}

// BenchmarkObsDisabledRecorder prices a counter site with instrumentation
// off — the same one-branch contract as the tracer.
func BenchmarkObsDisabledRecorder(b *testing.B) {
	obs.Disable()
	for i := 0; i < b.N; i++ {
		if rec := obs.Active(); rec != nil {
			sinkRecorder = rec
		}
	}
}

// BenchmarkObsHistogramRecord prices one enabled histogram sample: bucket
// index math plus three atomic adds and a CAS-max. Budget: <= 30 ns/op
// uncontended.
func BenchmarkObsHistogramRecord(b *testing.B) {
	var h obs.Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
	if h.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}

// BenchmarkObsHistogramRecordParallel hammers one histogram from all
// procs — the shape of per-shard intern latencies landing in one shared
// histogram.
func BenchmarkObsHistogramRecordParallel(b *testing.B) {
	var h obs.Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Record(v)
			v++
		}
	})
	if h.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}

// BenchmarkObsMetricsObserve prices one enabled timer observation through
// the Recorder interface: a sync.Map hit plus the histogram record.
func BenchmarkObsMetricsObserve(b *testing.B) {
	m := obs.NewMetrics()
	for i := 0; i < b.N; i++ {
		m.Observe("bench.time", time.Duration(i))
	}
}

// BenchmarkObsSpanPair prices one enabled begin/end span pair: two
// buffered journal lines plus one histogram record. This bounds how many
// spans a traced run can afford — per phase/layer/shard, never per node.
func BenchmarkObsSpanPair(b *testing.B) {
	m := obs.NewMetrics()
	tr := obs.NewTracer(m, obs.NewJournal(io.Discard))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.End(tr.Begin("bench", 0))
	}
}
