package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// runtimeSamples are the runtime/metrics series the sampler reads. The
// selection is deliberately small: the questions the journal answers are
// "was the run GC-bound", "how big did the heap get", and "did goroutines
// leak", not a full runtime dump.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// StartRuntimeSampler launches a goroutine that, every interval, reads the
// Go runtime's metrics (goroutine count, heap bytes, GC cycles, cumulative
// GC pause) into m's gauges and emits one runtime.sample journal event.
// The returned stop function ends the sampler after emitting one final
// sample, so the journal's tail reflects the run's end state.
func StartRuntimeSampler(m *Metrics, interval time.Duration) (stop func()) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	sampleOnce := func() {
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case "/sched/goroutines:goroutines":
				m.Set("runtime.goroutines", int64(s.Value.Uint64()))
			case "/memory/classes/heap/objects:bytes":
				m.Set("runtime.heap_bytes", int64(s.Value.Uint64()))
			case "/memory/classes/total:bytes":
				m.Set("runtime.total_bytes", int64(s.Value.Uint64()))
			case "/gc/cycles/total:gc-cycles":
				m.Set("runtime.gc_cycles", int64(s.Value.Uint64()))
			case "/gc/pauses:seconds":
				m.Set("runtime.gc_pause_total_ns", pauseTotalNs(s.Value.Float64Histogram()))
			}
		}
		m.Event("runtime.sample")
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				sampleOnce()
				return
			case <-t.C:
				sampleOnce()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// pauseTotalNs estimates the cumulative GC pause from the runtime's pause
// histogram: each bucket's count times its midpoint. The estimate's error
// is bounded by the runtime's own bucket resolution.
func pauseTotalNs(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// The outermost buckets are unbounded; fall back to the finite
		// edge.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(c) * mid
	}
	return int64(total * 1e9)
}
