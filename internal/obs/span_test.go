package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

func decodeJournal(t *testing.T, buf *bytes.Buffer) []journalLine {
	t.Helper()
	var lines []journalLine
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var l journalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("unparseable journal line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return lines
}

func TestTraceDefaultsToNil(t *testing.T) {
	obs.DisableTrace()
	if obs.Trace() != nil {
		t.Fatal("Trace() != nil with tracing disabled")
	}
}

func TestEnableDisableTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(nil, obs.NewJournal(&buf))
	obs.EnableTrace(tr)
	defer obs.DisableTrace()
	if obs.Trace() != tr {
		t.Fatal("Trace() did not return the enabled tracer")
	}
	obs.DisableTrace()
	if obs.Trace() != nil {
		t.Fatal("Trace() != nil after DisableTrace")
	}
}

func TestTracerSpanEvents(t *testing.T) {
	var buf bytes.Buffer
	m := obs.NewMetrics()
	j := obs.NewJournal(&buf)
	tr := obs.NewTracer(m, j)

	root := tr.Begin("explore", 0)
	child := tr.BeginLane("explore.warm.shard", root.ID, 3)
	tr.End(child)
	tr.End(root)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	lines := decodeJournal(t, &buf)
	if len(lines) != 4 {
		t.Fatalf("got %d journal lines, want 4 (2 begin + 2 end)", len(lines))
	}
	wantEvents := []string{"span.begin", "span.begin", "span.end", "span.end"}
	for i, w := range wantEvents {
		if lines[i].Event != w {
			t.Errorf("line %d event = %q, want %q", i, lines[i].Event, w)
		}
		if lines[i].Counters != nil {
			t.Errorf("span event %d carries a counter snapshot; spans must be cheap", i)
		}
	}

	rootBegin, childBegin, childEnd, rootEnd := lines[0], lines[1], lines[2], lines[3]
	rootID := rootBegin.Fields["span"].(float64)
	if rootID <= 0 {
		t.Fatalf("root span id = %v, want > 0", rootID)
	}
	if got := rootBegin.Fields["parent"].(float64); got != 0 {
		t.Errorf("root parent = %v, want 0", got)
	}
	if got := rootBegin.Fields["name"]; got != "explore" {
		t.Errorf("root name = %v", got)
	}
	if got := childBegin.Fields["parent"].(float64); got != rootID {
		t.Errorf("child parent = %v, want root id %v", got, rootID)
	}
	if got := childBegin.Fields["lane"].(float64); got != 3 {
		t.Errorf("child lane = %v, want 3", got)
	}
	if childBegin.Fields["span"].(float64) == rootID {
		t.Error("span ids must be unique")
	}
	if got := childEnd.Fields["span"]; got != childBegin.Fields["span"] {
		t.Errorf("child end id %v != begin id %v", got, childBegin.Fields["span"])
	}
	if rootEnd.Fields["dur_ns"].(float64) < 0 {
		t.Error("negative span duration")
	}

	// End feeds the span.<name> latency histogram.
	snap := m.Snapshot()
	if snap["span.explore.count"] != 1 || snap["span.explore.warm.shard.count"] != 1 {
		t.Errorf("span histograms not fed: %v", snap)
	}
}

func TestTracerEndOfZeroSpanIsNoOp(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	tr := obs.NewTracer(nil, j)
	tr.End(obs.TraceSpan{}) // a path that never began its span
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("End of the zero span emitted %d bytes", buf.Len())
	}
}

func TestTracerConcurrentIDsUnique(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	tr := obs.NewTracer(nil, j)
	const workers, per = 8, 200
	ids := make(chan obs.SpanID, workers*per)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(lane int) {
			for i := 0; i < per; i++ {
				s := tr.BeginLane("shard", 0, lane)
				ids <- s.ID
				tr.End(s)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(ids)
	seen := make(map[obs.SpanID]bool)
	for id := range ids {
		if id == 0 {
			t.Fatal("allocated span id 0 (reserved for the root)")
		}
		if seen[id] {
			t.Fatalf("span id %d allocated twice", id)
		}
		seen[id] = true
	}
}
