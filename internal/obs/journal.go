package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Journal writes a structured run-event stream as JSON Lines: one object
// per event with a sequence number, a monotonic timestamp (nanoseconds
// since the journal was opened — wall-clock adjustments cannot reorder
// it), the event's fields, and a snapshot of the recorder's counters and
// gauges at emission time. Lines are written under a mutex, so a Journal
// is safe for concurrent emitters.
//
// Lines are buffered: an emit costs a buffer append, not a syscall. The
// buffered tail reaches the sink only on Sync (or Close), so owners must
// Sync before reading the sink and before the process exits — including
// the signal-interrupt path, where the tail holds exactly the events that
// explain the interruption.
type Journal struct {
	mu      sync.Mutex
	w       *bufio.Writer
	start   time.Time
	seq     int64
	dropped int64
	err     error
	closed  bool
}

// eventJSON is the serialized form of one journal line.
type eventJSON struct {
	Event    string           `json:"event"`
	Seq      int64            `json:"seq"`
	TsNs     int64            `json:"ts_ns"`
	Fields   map[string]any   `json:"fields,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// NewJournal returns a journal writing to w. The caller owns w's lifetime
// (the journal never closes it) but must call Sync or Close before
// reading from or closing w, or the buffered tail is lost.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriterSize(w, 1<<16), start: time.Now()}
}

// Emit buffers one event line. Errors (marshal failures, or write errors
// surfaced by a buffer spill or Sync) are sticky: the first one is
// retained (see Err) and later emissions become no-ops, so instrumented
// code never has to handle journal failures inline. Every event lost that
// way — the one that hit the error and every one after it — is counted
// (see Dropped), so a truncated journal is detectable, not silent.
func (j *Journal) Emit(name string, fields []F, counters map[string]int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		j.dropped++
		return
	}
	ev := eventJSON{
		Event:    name,
		Seq:      j.seq,
		TsNs:     time.Since(j.start).Nanoseconds(),
		Counters: counters,
	}
	if len(fields) > 0 {
		ev.Fields = make(map[string]any, len(fields))
		for _, f := range fields {
			ev.Fields[f.Key] = f.Value
		}
	}
	data, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		j.dropped++
		return
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		j.err = err
		j.dropped++
		return
	}
	j.seq++
}

// Sync flushes every buffered line to the sink. A flush error becomes the
// journal's sticky error.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

// Close flushes the buffer and marks the journal closed; later emissions
// are dropped. Close does not close the sink (the caller owns it).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.flushLocked()
	j.closed = true
	return err
}

func (j *Journal) flushLocked() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
	}
	return j.err
}

// Dropped returns the number of events lost to the sticky error or to
// emission after Close — zero on a healthy journal.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Err returns the first write, flush, or marshal error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Len returns the number of events accepted into the journal. When a
// flush failed, the count may exceed the lines that reached the sink.
func (j *Journal) Len() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}
