package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Journal writes a structured run-event stream as JSON Lines: one object
// per event with a sequence number, a monotonic timestamp (nanoseconds
// since the journal was opened — wall-clock adjustments cannot reorder
// it), the event's fields, and a snapshot of the recorder's counters and
// gauges at emission time. Lines are written under a mutex, so a Journal
// is safe for concurrent emitters.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	seq   int64
	err   error
}

// eventJSON is the serialized form of one journal line.
type eventJSON struct {
	Event    string           `json:"event"`
	Seq      int64            `json:"seq"`
	TsNs     int64            `json:"ts_ns"`
	Fields   map[string]any   `json:"fields,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// NewJournal returns a journal writing to w. The caller owns w's lifetime
// (the journal never closes it).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, start: time.Now()}
}

// Emit writes one event line. Write errors are sticky: the first one is
// retained (see Err) and later emissions become no-ops, so instrumented
// code never has to handle journal failures inline.
func (j *Journal) Emit(name string, fields []F, counters map[string]int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	ev := eventJSON{
		Event:    name,
		Seq:      j.seq,
		TsNs:     time.Since(j.start).Nanoseconds(),
		Counters: counters,
	}
	if len(fields) > 0 {
		ev.Fields = make(map[string]any, len(fields))
		for _, f := range fields {
			ev.Fields[f.Key] = f.Value
		}
	}
	data, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		return
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		j.err = err
		return
	}
	j.seq++
}

// Err returns the first write or marshal error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Len returns the number of events successfully written.
func (j *Journal) Len() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}
