package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/obs"
)

// journalLine mirrors the serialized event shape for decoding in tests.
type journalLine struct {
	Event    string           `json:"event"`
	Seq      int64            `json:"seq"`
	TsNs     int64            `json:"ts_ns"`
	Fields   map[string]any   `json:"fields"`
	Counters map[string]int64 `json:"counters"`
}

func TestJournalJSONLines(t *testing.T) {
	var buf bytes.Buffer
	m := obs.NewMetrics()
	m.SetJournal(obs.NewJournal(&buf))

	m.Add("explore.nodes", 12)
	m.Event("explore.start", obs.F{Key: "depth", Value: 3})
	m.Add("explore.nodes", 8)
	m.Event("explore.done", obs.F{Key: "nodes", Value: 20}, obs.F{Key: "ok", Value: true})
	if err := m.SyncJournal(); err != nil {
		t.Fatalf("SyncJournal: %v", err)
	}

	var lines []journalLine
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l journalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("unparseable journal line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Event != "explore.start" || lines[0].Seq != 0 {
		t.Errorf("first line = %+v", lines[0])
	}
	if lines[0].Fields["depth"] != float64(3) {
		t.Errorf("fields = %v", lines[0].Fields)
	}
	if lines[0].Counters["explore.nodes"] != 12 {
		t.Errorf("first snapshot counters = %v", lines[0].Counters)
	}
	if lines[1].Counters["explore.nodes"] != 20 {
		t.Errorf("second snapshot counters = %v", lines[1].Counters)
	}
	if lines[1].Seq != 1 {
		t.Errorf("seq = %d, want 1", lines[1].Seq)
	}
	// Timestamps are monotonic non-decreasing.
	if lines[1].TsNs < lines[0].TsNs {
		t.Errorf("timestamps went backwards: %d then %d", lines[0].TsNs, lines[1].TsNs)
	}
}

func TestEventWithoutJournalIsDropped(t *testing.T) {
	m := obs.NewMetrics()
	m.Event("certify.done", obs.F{Key: "explored", Value: 1}) // must not panic
	if m.Counter("certify.done") != 0 {
		t.Error("events must not create counters")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestJournalStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	j := obs.NewJournal(failWriter{err: wantErr})
	j.Emit("a", nil, nil)
	j.Emit("b", nil, nil)
	// Lines are buffered; the sink error surfaces on Sync and sticks.
	if err := j.Sync(); !errors.Is(err, wantErr) {
		t.Errorf("Sync() = %v, want %v", err, wantErr)
	}
	if !errors.Is(j.Err(), wantErr) {
		t.Errorf("Err() = %v, want %v", j.Err(), wantErr)
	}
	j.Emit("c", nil, nil) // dropped: the error is sticky
	if j.Len() != 2 {
		t.Errorf("Len() = %d, want 2", j.Len())
	}
	if got := j.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1 (the post-error emit)", got)
	}
	j.Emit("d", nil, nil)
	if got := j.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
}

// TestSnapshotReportsDroppedEvents: a journal that lost events after a
// write error surfaces the loss as journal.dropped in the recorder
// snapshot, so -stats and the journal's own later snapshots reveal the
// truncation.
func TestSnapshotReportsDroppedEvents(t *testing.T) {
	m := obs.NewMetrics()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	m.SetJournal(j)
	if _, ok := m.Snapshot()["journal.dropped"]; ok {
		t.Fatal("healthy journal must not report journal.dropped")
	}
	j.Close()
	m.Event("lost") // dropped: emitted after Close
	snap := m.Snapshot()
	if snap["journal.dropped"] != 1 {
		t.Errorf("journal.dropped = %d, want 1", snap["journal.dropped"])
	}
}

func TestJournalCloseFlushesAndDrops(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	j.Emit("tail", nil, nil)
	if buf.Len() != 0 {
		t.Fatalf("line reached the sink before Sync/Close (%d bytes)", buf.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	flushed := buf.Len()
	if flushed == 0 {
		t.Fatal("Close did not flush the buffered tail")
	}
	j.Emit("late", nil, nil)
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
	if buf.Len() != flushed {
		t.Error("emit after Close reached the sink")
	}
	if j.Len() != 1 {
		t.Errorf("Len() = %d, want 1", j.Len())
	}
}
