package obs_test

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestHistogramExactBelowLinearRange(t *testing.T) {
	var h obs.Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	// Every sample below 2^5 is its own bucket: bounds collapse to the value.
	var seen int64
	h.Buckets(func(lo, hi, count int64) {
		if lo != hi {
			t.Errorf("bucket [%d,%d] below linear range is not exact", lo, hi)
		}
		if count != 1 {
			t.Errorf("bucket %d count = %d, want 1", lo, count)
		}
		seen += count
	})
	if seen != 32 {
		t.Errorf("bucket counts sum to %d, want 32", seen)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("p100 = %d, want 31", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// One sample per histogram across the full range: the quantile must
	// reconstruct the value within one sub-bucket (1/32 ~ 3.2%), and the
	// bucket bounds must bracket it.
	for _, v := range []int64{
		32, 33, 63, 64, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, math.MaxInt64,
	} {
		var h obs.Histogram
		h.Record(v)
		got := h.Quantile(0.5)
		if got != v && math.Abs(float64(got-v))/float64(v) > 1.0/32 {
			t.Errorf("Quantile after Record(%d) = %d: relative error > 1/32", v, got)
		}
		bracketed := false
		h.Buckets(func(lo, hi, count int64) {
			if lo <= v && v <= hi {
				bracketed = true
			}
		})
		if !bracketed {
			t.Errorf("no bucket brackets %d", v)
		}
		if h.Max() != v || h.Sum() != v || h.Count() != 1 {
			t.Errorf("Record(%d): count/sum/max = %d/%d/%d", v, h.Count(), h.Sum(), h.Max())
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h obs.Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("negative sample: count/sum/max = %d/%d/%d, want 1/0/0", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 of clamped sample = %d, want 0", got)
	}
}

func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	var h obs.Histogram
	// 100 samples 1..100: values this small are near-exact (error one
	// sub-bucket above 32).
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}} {
		got := h.Quantile(tc.q)
		if math.Abs(float64(got-tc.want))/float64(tc.want) > 1.0/16 {
			t.Errorf("p%v = %d, want ~%d", tc.q*100, got, tc.want)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.9) || h.Quantile(0.9) > h.Quantile(0.99) {
		t.Error("quantiles are not monotone in q")
	}
}

// TestHistogramConcurrentHammer drives one histogram from GOMAXPROCS
// goroutines under the race detector: the final count and sum must be
// exact, the per-bucket counts must sum to the total, and a concurrent
// reader must observe the count growing monotonically.
func TestHistogramConcurrentHammer(t *testing.T) {
	var h obs.Histogram
	workers := runtime.GOMAXPROCS(0)
	const per = 20000
	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var last int64
		for !stop.Load() {
			c := h.Count()
			if c < last {
				t.Errorf("Count went backwards: %d after %d", c, last)
				return
			}
			last = c
			// Quantile and Buckets must be safe to call mid-hammer; a
			// bucket scan started after a Count read can only see MORE
			// samples (buckets only grow), never fewer.
			h.Quantile(0.99)
			var bucketSum int64
			h.Buckets(func(lo, hi, count int64) { bucketSum += count })
			if bucketSum < c {
				t.Errorf("bucket sum %d fell below previously observed count %d", bucketSum, c)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var wantSum int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var localSum int64
			for i := 0; i < per; i++ {
				v := int64(w*per + i)
				h.Record(v)
				localSum += v
			}
			atomic.AddInt64(&wantSum, localSum)
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-readerDone

	want := int64(workers * per)
	if got := h.Count(); got != want {
		t.Fatalf("Count = %d, want %d (exactly)", got, want)
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d (exactly)", got, wantSum)
	}
	var bucketSum int64
	lastHi := int64(-1)
	h.Buckets(func(lo, hi, count int64) {
		if lo <= lastHi {
			t.Fatalf("buckets out of order: [%d,%d] after hi=%d", lo, hi, lastHi)
		}
		lastHi = hi
		bucketSum += count
	})
	if bucketSum != want {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, want)
	}
	if got, wantMax := h.Max(), int64(workers*per-1); got != wantMax {
		t.Fatalf("Max = %d, want %d", got, wantMax)
	}
}

func TestMetricsTimerAndSampleHistograms(t *testing.T) {
	m := obs.NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("sweep", time.Duration(i)*time.Microsecond)
		m.Record("width", int64(i))
	}
	if h := m.Timer("sweep"); h == nil || h.Count() != 100 {
		t.Fatal("Timer histogram missing or wrong count")
	}
	if h := m.Sample("width"); h == nil || h.Count() != 100 {
		t.Fatal("Sample histogram missing or wrong count")
	}
	if m.Timer("nope") != nil || m.Sample("nope") != nil {
		t.Error("unknown names must return nil")
	}
	snap := m.Snapshot()
	for _, key := range []string{
		"sweep.count", "sweep.total_ns", "sweep.max_ns", "sweep.p50_ns", "sweep.p90_ns", "sweep.p99_ns",
		"width.count", "width.max", "width.p50", "width.p90", "width.p99",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	p50 := snap["sweep.p50_ns"]
	if p50 < 40_000 || p50 > 60_000 {
		t.Errorf("sweep.p50_ns = %d, want ~50µs", p50)
	}
	if snap["width.p99"] < 95 || snap["width.p99"] > 100 {
		t.Errorf("width.p99 = %d, want ~99", snap["width.p99"])
	}
}
