package obs

import (
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a run. IDs come from a process-wide
// atomic allocator, so they are unique across goroutines and lanes; 0 is
// the root (no parent).
type SpanID uint64

// TraceSpan is one live span, returned by Tracer.Begin and handed back to
// Tracer.End. It is a value — beginning a span allocates nothing — and it
// is not shared: the goroutine that begins a span ends it. Pass span.ID to
// Begin on child work (possibly on another goroutine) to link the
// hierarchy.
type TraceSpan struct {
	// ID is the span's unique id; Parent is the enclosing span's (0 for a
	// root span).
	ID, Parent SpanID
	name       string
	lane       int
	t0         time.Time
}

// Tracer journals hierarchical spans as span.begin/span.end events and
// feeds each span's duration into the metrics' span.<name> latency
// histogram. Span events carry no counter snapshot — a span is cheap by
// design (two journal lines and one histogram record) so the engines can
// afford one per layer, shard, or phase.
//
// Lanes model the engine's worker structure: lane 0 is the coordinating
// goroutine, lane k a parallel worker/shard. The Chrome-trace exporter
// (cmd/obsreport -chrome) maps lanes to threads, so parallel shards render
// side by side in Perfetto.
//
// The process-wide tracer follows the Recorder contract exactly: Trace()
// returns nil when tracing is off, and the disabled cost at every
// instrumentation site is that one nil check.
type Tracer struct {
	next atomic.Uint64
	m    *Metrics
	j    *Journal
}

// NewTracer returns a tracer journaling spans to j (required) and feeding
// span-duration histograms into m (optional, may be nil).
func NewTracer(m *Metrics, j *Journal) *Tracer {
	return &Tracer{m: m, j: j}
}

// tracerBox mirrors recorderBox: atomic.Value cannot swap values of
// differing dynamic type, so the pointer is boxed.
type tracerBox struct{ t *Tracer }

var activeTracer atomic.Value // tracerBox

// Trace returns the process-wide tracer, or nil when span tracing is
// disabled (the default).
func Trace() *Tracer {
	if b, ok := activeTracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// EnableTrace installs t as the process-wide tracer.
func EnableTrace(t *Tracer) { activeTracer.Store(tracerBox{t: t}) }

// DisableTrace turns span tracing off; Trace returns nil afterwards.
func DisableTrace() { activeTracer.Store(tracerBox{}) }

// Begin starts a lane-0 span under parent (0 = root).
func (t *Tracer) Begin(name string, parent SpanID) TraceSpan {
	return t.BeginLane(name, parent, 0)
}

// BeginLane starts a span on the given lane. The span.begin event records
// the id, parent link, name, and lane; End completes the pair.
func (t *Tracer) BeginLane(name string, parent SpanID, lane int) TraceSpan {
	s := TraceSpan{
		ID:     SpanID(t.next.Add(1)),
		Parent: parent,
		name:   name,
		lane:   lane,
		t0:     time.Now(),
	}
	t.j.Emit("span.begin", []F{
		{Key: "span", Value: uint64(s.ID)},
		{Key: "parent", Value: uint64(s.Parent)},
		{Key: "name", Value: name},
		{Key: "lane", Value: lane},
	}, nil)
	return s
}

// End completes a span: it journals span.end with the measured duration
// and records the duration into the span.<name> latency histogram. Ending
// the zero TraceSpan is a no-op, so an early-return path that never began
// its span can End unconditionally.
func (t *Tracer) End(s TraceSpan) {
	if s.ID == 0 {
		return
	}
	d := time.Since(s.t0)
	t.j.Emit("span.end", []F{
		{Key: "span", Value: uint64(s.ID)},
		{Key: "name", Value: s.name},
		{Key: "lane", Value: s.lane},
		{Key: "dur_ns", Value: d.Nanoseconds()},
	}, nil)
	if t.m != nil {
		t.m.Observe("span."+s.name, d)
	}
}
