package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestActiveDefaultsToNil(t *testing.T) {
	obs.Disable()
	if obs.Active() != nil {
		t.Fatal("Active() != nil with instrumentation disabled")
	}
}

func TestEnableDisable(t *testing.T) {
	m := obs.NewMetrics()
	obs.Enable(m)
	defer obs.Disable()
	if obs.Active() != obs.Recorder(m) {
		t.Fatal("Active() did not return the enabled recorder")
	}
	obs.Disable()
	if obs.Active() != nil {
		t.Fatal("Active() != nil after Disable")
	}
}

func TestCountersGaugesTimers(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("a.count", 2)
	m.Add("a.count", 3)
	m.Set("a.gauge", 7)
	m.Set("a.gauge", 4)
	m.Observe("a.time", 10*time.Millisecond)
	m.Observe("a.time", 30*time.Millisecond)

	if got := m.Counter("a.count"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := m.Gauge("a.gauge"); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	snap := m.Snapshot()
	if snap["a.time.count"] != 2 {
		t.Errorf("timer count = %d, want 2", snap["a.time.count"])
	}
	if snap["a.time.max_ns"] != (30 * time.Millisecond).Nanoseconds() {
		t.Errorf("timer max = %d", snap["a.time.max_ns"])
	}
	if snap["a.time.total_ns"] != (40 * time.Millisecond).Nanoseconds() {
		t.Errorf("timer total = %d", snap["a.time.total_ns"])
	}
	if m.Counter("never.touched") != 0 || m.Gauge("never.touched") != 0 {
		t.Error("untouched names should read 0")
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := obs.NewMetrics()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add("c", 1)
				m.Set("g", int64(i))
				m.Observe("t", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c"); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if m.Snapshot()["t.count"] != workers*per {
		t.Error("timer sample count wrong")
	}
}

func TestSpan(t *testing.T) {
	m := obs.NewMetrics()
	done := obs.Span(m, "phase")
	time.Sleep(time.Millisecond)
	done()
	snap := m.Snapshot()
	if snap["phase.count"] != 1 || snap["phase.total_ns"] <= 0 {
		t.Errorf("span snapshot = %v", snap)
	}
	// Span on a nil recorder is a usable no-op.
	obs.Span(nil, "phase")()
}

func TestWriteTextSortedAndJSON(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("b.second", 2)
	m.Add("a.first", 1)
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Index(text, "a.first") > strings.Index(text, "b.second") {
		t.Errorf("text export not sorted:\n%s", text)
	}
	buf.Reset()
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["a.first"] != 1 || decoded["b.second"] != 2 {
		t.Errorf("json export = %v", decoded)
	}
	// String() is the expvar.Var form of the same snapshot.
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatal(err)
	}
}
