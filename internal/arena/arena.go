// Package arena provides a bump allocator for sweep-scratch word buffers.
//
// The valence hot loops (the bit-plane field sweep, the graph certifier's
// visited bitsets) need a handful of []uint64 buffers per sweep whose sizes
// are stable across sweeps of the same graph. An Arena hands those buffers
// out of reusable blocks: the first sweep over a graph grows the arena to
// its working-set size, and every later sweep that starts with Reset
// re-serves the same memory — zero allocations in steady state (verified
// with testing.AllocsPerRun in internal/valence).
//
// Lifetime rule: every slice returned by Words is valid only until the next
// Reset of the arena that produced it. Reset does not zero memory; Words
// zeroes each slice it returns, so a post-Reset grab is always clean. An
// Arena is not safe for concurrent use — one arena per sweeping goroutine.
// (Parallel field sweeps still work: the coordinator grabs the planes and
// the workers only write into disjoint word ranges of them.)
package arena

// blockMin is the smallest block the arena allocates; growth doubles the
// last block so a warming arena converges in O(log n) allocations.
const blockMin = 1024 // words (8 KiB)

// Arena is a chunked bump allocator of uint64 words. The zero value is
// ready to use.
type Arena struct {
	blocks [][]uint64
	// bi/off locate the bump cursor: blocks[bi][off:] is free, every
	// earlier block is fully served.
	bi  int
	off int
}

// Words returns a zeroed slice of n words, valid until the next Reset.
func (a *Arena) Words(n int) []uint64 {
	if n == 0 {
		return nil
	}
	for a.bi < len(a.blocks) {
		b := a.blocks[a.bi]
		if len(b)-a.off >= n {
			out := b[a.off : a.off+n : a.off+n]
			a.off += n
			clear(out)
			return out
		}
		a.bi++
		a.off = 0
	}
	size := blockMin
	if len(a.blocks) > 0 {
		size = 2 * len(a.blocks[len(a.blocks)-1])
	}
	if size < n {
		size = n
	}
	a.blocks = append(a.blocks, make([]uint64, size))
	a.bi = len(a.blocks) - 1
	out := a.blocks[a.bi][:n:n]
	a.off = n
	clear(out)
	return out
}

// Reset returns every served slice to the arena. Previously returned
// slices must not be used afterwards.
func (a *Arena) Reset() {
	a.bi = 0
	a.off = 0
}

// Bytes reports the arena's total capacity in bytes — the steady-state
// footprint a sweep holds on to, published as the arena.bytes gauge.
func (a *Arena) Bytes() int {
	total := 0
	for _, b := range a.blocks {
		total += 8 * len(b)
	}
	return total
}
