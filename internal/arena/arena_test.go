package arena_test

import (
	"testing"

	"repro/internal/arena"
)

func TestWordsZeroedAndDisjoint(t *testing.T) {
	var a arena.Arena
	x := a.Words(100)
	y := a.Words(100)
	for i := range x {
		x[i] = ^uint64(0)
	}
	for i, w := range y {
		if w != 0 {
			t.Fatalf("y[%d] = %x, want 0", i, w)
		}
	}
	// Dirty both, reset, and re-serve: the same memory comes back zeroed.
	for i := range y {
		y[i] = ^uint64(0)
	}
	a.Reset()
	z := a.Words(100)
	for i, w := range z {
		if w != 0 {
			t.Fatalf("post-reset z[%d] = %x, want 0", i, w)
		}
	}
	if &z[0] != &x[0] {
		t.Error("post-reset grab did not reuse the first block")
	}
}

func TestWordsLargerThanBlock(t *testing.T) {
	var a arena.Arena
	big := a.Words(1 << 16)
	if len(big) != 1<<16 {
		t.Fatalf("len = %d", len(big))
	}
	if a.Bytes() < 8<<16 {
		t.Fatalf("Bytes = %d, want >= %d", a.Bytes(), 8<<16)
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	var a arena.Arena
	grab := func() {
		a.Reset()
		a.Words(777)
		a.Words(333)
		a.Words(64)
	}
	grab() // warm
	if avg := testing.AllocsPerRun(100, grab); avg != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", avg)
	}
}

func TestWordsZeroLen(t *testing.T) {
	var a arena.Arena
	if got := a.Words(0); got != nil {
		t.Fatalf("Words(0) = %v, want nil", got)
	}
}
