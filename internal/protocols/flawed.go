package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// ConstantDecider is a deliberately invalid synchronous protocol: it
// ignores its input and decides Value after one round. It satisfies
// agreement and decision trivially and violates validity on runs where
// Value is nobody's input; the certifier must return a validity-violation
// witness. Used to exercise that analysis path.
type ConstantDecider struct {
	// Value is the constant decision.
	Value int
}

var _ proto.SyncProtocol = ConstantDecider{}

// Name implements proto.SyncProtocol.
func (c ConstantDecider) Name() string { return "constant(" + strconv.Itoa(c.Value) + ")" }

// Init implements proto.SyncProtocol.
func (c ConstantDecider) Init(n, id, input int) string {
	return proto.Join("0", strconv.Itoa(input))
}

// Send implements proto.SyncProtocol: nothing to say.
func (c ConstantDecider) Send(string) []string { return broadcast("") }

// Deliver implements proto.SyncProtocol: count the round.
func (c ConstantDecider) Deliver(state string, _ []string) string {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return state
	}
	round, err := strconv.Atoi(fields[0])
	if err != nil {
		return state
	}
	return proto.Join(strconv.Itoa(round+1), fields[1])
}

// Decide implements proto.SyncProtocol: the constant, after round 1.
func (c ConstantDecider) Decide(state string) (int, bool) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return 0, false
	}
	round, err := strconv.Atoi(fields[0])
	if err != nil || round < 1 {
		return 0, false
	}
	return c.Value, true
}

// FlickerDecider is a deliberately broken protocol whose decision variable
// is not write-once: from round 1 on it "decides" its own input on odd
// rounds and the flipped input on even rounds. On a constant-input run the
// round-1 decisions are valid and agreeing, so the first check to fire is
// the write-once check at the transition into round 2; the certifier must
// return a DecisionChanged witness.
type FlickerDecider struct{}

var _ proto.SyncProtocol = FlickerDecider{}

// Name implements proto.SyncProtocol.
func (FlickerDecider) Name() string { return "flicker" }

// Init implements proto.SyncProtocol.
func (FlickerDecider) Init(n, id, input int) string {
	return proto.Join("0", strconv.Itoa(input))
}

// Send implements proto.SyncProtocol.
func (FlickerDecider) Send(string) []string { return broadcast("") }

// Deliver implements proto.SyncProtocol.
func (FlickerDecider) Deliver(state string, _ []string) string {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return state
	}
	round, err := strconv.Atoi(fields[0])
	if err != nil {
		return state
	}
	return proto.Join(strconv.Itoa(round+1), fields[1])
}

// Decide implements proto.SyncProtocol: own input on odd rounds, flipped
// input on even rounds — NOT write-once.
func (FlickerDecider) Decide(state string) (int, bool) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return 0, false
	}
	round, err := strconv.Atoi(fields[0])
	if err != nil || round < 1 {
		return 0, false
	}
	input, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, false
	}
	return (input + round + 1) % 2, true
}
