package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// EarlyFloodSet is FloodSet with a naive early-stopping rule: alongside W
// it tracks which processes it heard from in the previous and current
// rounds, and decides min(W) at the end of the first round (>= 2) whose
// heard-from set equals the previous round's — i.e. the first round in
// which it detected no new failure. As a safety net it also decides at
// round MaxRounds regardless.
//
// Early stopping in the crash model is classically possible in min(f+2,
// t+1) rounds, but the naive "my heard-set was stable" rule is exactly the
// kind of plausible optimization the certifier exists to judge: whether it
// preserves agreement under the S^t environment (crash-with-prefix-delivery
// then permanent silence) is settled empirically in the package tests and
// recorded in EXPERIMENTS.md.
//
// Local state encoding: round | W | prevHeard | curHeard | dec, where dec
// is the decided value or -1.
type EarlyFloodSet struct {
	// MaxRounds is the fallback decision round (use t+2).
	MaxRounds int
}

var _ proto.SyncProtocol = EarlyFloodSet{}

// Name implements proto.SyncProtocol.
func (e EarlyFloodSet) Name() string { return "earlyflood(M=" + strconv.Itoa(e.MaxRounds) + ")" }

// Init implements proto.SyncProtocol.
func (e EarlyFloodSet) Init(n, id, input int) string {
	return proto.Join("0",
		proto.EncodeIntSet([]int{input}),
		"", // prevHeard: none yet
		"", // curHeard: none yet
		"-1")
}

// Send implements proto.SyncProtocol: broadcast W.
func (e EarlyFloodSet) Send(state string) []string {
	st, ok := parseEarly(state)
	if !ok {
		return broadcast("")
	}
	return broadcast(proto.EncodeIntSet(st.w))
}

// Deliver implements proto.SyncProtocol.
func (e EarlyFloodSet) Deliver(state string, in []string) string {
	st, ok := parseEarly(state)
	if !ok {
		return state
	}
	var heard []int
	for j, msg := range in {
		if msg == "" {
			continue
		}
		heard = append(heard, j)
		vs, err := proto.DecodeIntSet(msg)
		if err != nil {
			continue
		}
		st.w = append(st.w, vs...)
	}
	st.round++
	st.prevHeard = st.curHeard
	st.curHeard = proto.EncodeIntSet(heard)
	if st.dec < 0 {
		stable := st.round >= 2 && st.curHeard == st.prevHeard
		if stable || st.round >= e.MaxRounds {
			st.dec = minOf(st.w)
		}
	}
	return proto.Join(strconv.Itoa(st.round),
		proto.EncodeIntSet(st.w), st.prevHeard, st.curHeard, strconv.Itoa(st.dec))
}

// Decide implements proto.SyncProtocol.
func (e EarlyFloodSet) Decide(state string) (int, bool) {
	st, ok := parseEarly(state)
	if !ok || st.dec < 0 {
		return 0, false
	}
	return st.dec, true
}

type earlyState struct {
	round     int
	w         []int
	prevHeard string
	curHeard  string
	dec       int
}

func parseEarly(state string) (earlyState, bool) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 5 {
		return earlyState{}, false
	}
	round, err1 := strconv.Atoi(fields[0])
	w, err2 := proto.DecodeIntSet(fields[1])
	dec, err3 := strconv.Atoi(fields[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return earlyState{}, false
	}
	return earlyState{
		round:     round,
		w:         w,
		prevHeard: fields[2],
		curHeard:  fields[3],
		dec:       dec,
	}, true
}

func minOf(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}
