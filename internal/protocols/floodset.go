// Package protocols provides the concrete deterministic protocols the
// framework instantiates the paper's (universally quantified) theorems with:
// correct ones, which the analysis engine must certify, and deliberately
// too-fast or asynchronous heuristics, which the engine must refute with a
// concrete witness run.
package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// FloodSet is the classical t-resilient synchronous consensus protocol
// (Lynch, ch. 6): every process maintains the set W of input values it has
// seen, floods W every round, and after Rounds rounds decides min(W).
//
// With Rounds = t+1 it solves consensus in the t-resilient synchronous
// model with crash failures; the paper's Section 6 shows no protocol can do
// better, and the analysis engine refutes the Rounds = t variant.
//
// Under sending-omission failures (the Section 6 environment blocks an
// arbitrary subset of a faulty process's messages in its first faulty round)
// FloodSet still solves consensus with Rounds = t+1: the standard argument —
// some round is failure-free among t+1 rounds, after which all W sets are
// equal and stay equal — applies verbatim.
//
// Local state encoding: round | W (sorted int set). The id and n are not
// needed after Init.
type FloodSet struct {
	// Rounds is the round after which the process decides min(W).
	Rounds int
}

var _ proto.SyncProtocol = FloodSet{}

// Name implements proto.SyncProtocol.
func (f FloodSet) Name() string { return "floodset(R=" + strconv.Itoa(f.Rounds) + ")" }

// Init implements proto.SyncProtocol.
func (f FloodSet) Init(n, id, input int) string {
	return proto.Join("0", proto.EncodeIntSet([]int{input}))
}

// Send implements proto.SyncProtocol: broadcast W.
func (f FloodSet) Send(state string) []string {
	round, w := f.parse(state)
	_ = round
	msg := proto.EncodeIntSet(w)
	// The number of processes is not recorded in the state; emit a
	// broadcast vector sized by demand: the model only indexes out[j] for
	// j < n, so we use a self-describing broadcast.
	return broadcast(msg)
}

// Deliver implements proto.SyncProtocol.
func (f FloodSet) Deliver(state string, in []string) string {
	round, w := f.parse(state)
	for _, m := range in {
		if m == "" {
			continue
		}
		vs, err := proto.DecodeIntSet(m)
		if err != nil {
			continue // malformed messages are ignored
		}
		w = append(w, vs...)
	}
	return proto.Join(strconv.Itoa(round+1), proto.EncodeIntSet(w))
}

// Decide implements proto.SyncProtocol: after Rounds rounds, decide min(W).
func (f FloodSet) Decide(state string) (int, bool) {
	round, w := f.parse(state)
	if round < f.Rounds || len(w) == 0 {
		return 0, false
	}
	min := w[0]
	for _, v := range w[1:] {
		if v < min {
			min = v
		}
	}
	return min, true
}

func (f FloodSet) parse(state string) (round int, w []int) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return 0, nil
	}
	round, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, nil
	}
	w, err = proto.DecodeIntSet(fields[1])
	if err != nil {
		return round, nil
	}
	return round, w
}

// broadcast returns a virtual send vector that yields msg for every index.
// Models index send vectors with 0 <= j < n; broadcastVec supports any n up
// to maxProcs.
func broadcast(msg string) []string {
	out := make([]string, maxProcs)
	for i := range out {
		out[i] = msg
	}
	return out
}

// maxProcs bounds the broadcast vector size; the framework's exhaustive
// analyses are only tractable for small n, so 16 is generous.
const maxProcs = 16
