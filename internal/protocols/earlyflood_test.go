package protocols_test

import (
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestEarlyFloodSetCertified: the early-stopping variant is correct in the
// S^t submodel with worst-case t+1 rounds — matching the classical
// min(f+2, t+1) early-deciding results and respecting Corollary 6.3.
func TestEarlyFloodSetCertified(t *testing.T) {
	cases := []struct{ n, tt int }{
		{3, 1},
		{4, 2},
	}
	for _, c := range cases {
		bound := c.tt + 1
		p := protocols.EarlyFloodSet{MaxRounds: bound}
		m := syncmp.NewSt(p, c.n, c.tt)
		w, err := valence.Certify(m, bound, 0)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", c.n, c.tt, err)
		}
		if w.Kind != valence.OK {
			t.Errorf("n=%d t=%d: EarlyFloodSet refuted: %v (%s)", c.n, c.tt, w.Kind, w.Detail)
		}
	}
}

// TestEarlyFloodSetDecidesEarly: in the failure-free run it decides at
// layer 2 — strictly earlier than FloodSet's fixed t+1 — and after a fully
// silent crash the survivors also decide at layer 2. This is Lemma 6.4 in
// action: a failure-free round forces univalence, and the protocol
// capitalizes on detecting it.
func TestEarlyFloodSetDecidesEarly(t *testing.T) {
	const n, tt = 4, 2
	p := protocols.EarlyFloodSet{MaxRounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	r := &sim.Runner{Model: m, MaxLayers: tt + 2}

	out, err := r.Run(m.Initial([]int{0, 1, 1, 0}), sim.FirstAction{})
	if err != nil {
		t.Fatal(err)
	}
	if out.DecisionLayer != 2 {
		t.Errorf("failure-free decision layer = %d, want 2", out.DecisionLayer)
	}
	if !out.Agreement {
		t.Error("failure-free run disagreed")
	}

	out, err = r.Run(m.Initial([]int{0, 1, 1, 0}), &sim.Crash{Process: 0, AtLayer: 1, OmitTo: n})
	if err != nil {
		t.Fatal(err)
	}
	if out.DecisionLayer != 2 {
		t.Errorf("silent-crash decision layer = %d, want 2", out.DecisionLayer)
	}
	if !out.Agreement {
		t.Error("crash run disagreed among non-failed")
	}
}

// TestEarlyFloodSetCannotBeatLowerBound: forcing the fallback below t+1
// (MaxRounds = t) must be refuted — early stopping does not evade
// Corollary 6.3.
func TestEarlyFloodSetCannotBeatLowerBound(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.EarlyFloodSet{MaxRounds: tt}
	m := syncmp.NewSt(p, n, tt)
	w, err := valence.Certify(m, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Error("EarlyFloodSet with t-round fallback certified, contradicting Corollary 6.3")
	}
}

// TestEarlyFloodSetWorstCaseNeedsTPlus1: there IS a run that decides only
// at round t+1 (the adversary drips one partial failure per round), so the
// early decision does not make the t+1 bound slack.
func TestEarlyFloodSetWorstCaseNeedsTPlus1(t *testing.T) {
	const n, tt = 4, 2
	p := protocols.EarlyFloodSet{MaxRounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	o := valence.NewOracle(m)
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(tt+1, 1), tt-1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stuck != nil {
		t.Fatal("bivalent chain stuck")
	}
	// The chain's final state is bivalent after t-1 rounds: by Lemma 3.1
	// at least n-t non-failed processes are undecided there, so decision
	// has not completed before round t+1 in every run.
	last := ch.Exec.Last()
	undecided := 0
	for i := 0; i < n; i++ {
		if last.FailedAt(i) {
			continue
		}
		if _, ok := last.Decided(i); !ok {
			undecided++
		}
	}
	if undecided < n-tt {
		t.Errorf("only %d undecided at the bivalent state, want >= %d", undecided, n-tt)
	}
}
