package protocols_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asyncmp"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

func TestFloodSetFailureFree(t *testing.T) {
	p := protocols.FloodSet{Rounds: 2}
	locals := []string{p.Init(3, 0, 1), p.Init(3, 1, 0), p.Init(3, 2, 1)}
	for r := 0; r < 2; r++ {
		locals = syncmp.Round(p, locals, nil)
	}
	for i, l := range locals {
		v, ok := p.Decide(l)
		if !ok || v != 0 {
			t.Errorf("process %d: Decide = (%d,%v), want (0,true)", i, v, ok)
		}
	}
}

func TestFloodSetStateCanonical(t *testing.T) {
	// Two processes having seen the same value set in the same round have
	// equal states regardless of id — FloodSet is anonymous after Init.
	p := protocols.FloodSet{Rounds: 2}
	a := p.Init(3, 0, 1)
	b := p.Init(3, 2, 1)
	if a != b {
		t.Errorf("same-input initial states differ: %q vs %q", a, b)
	}
}

func TestFloodSetIgnoresMalformedMessages(t *testing.T) {
	p := protocols.FloodSet{Rounds: 1}
	st := p.Init(2, 0, 1)
	next := p.Deliver(st, []string{"", "garbage-not-an-intset-%%%"})
	if v, ok := p.Decide(next); !ok || v != 1 {
		t.Errorf("Decide after garbage = (%d,%v), want (1,true)", v, ok)
	}
}

func TestEIGMatchesFloodSetDecisions(t *testing.T) {
	// Under identical failure-free schedules EIG and FloodSet decide the
	// same value (min of all inputs).
	f := func(in0, in1, in2 bool) bool {
		inputs := []int{b2i(in0), b2i(in1), b2i(in2)}
		eig := protocols.EIG{Rounds: 2}
		fs := protocols.FloodSet{Rounds: 2}
		el := []string{}
		fl := []string{}
		for i, in := range inputs {
			el = append(el, eig.Init(3, i, in))
			fl = append(fl, fs.Init(3, i, in))
		}
		for r := 0; r < 2; r++ {
			el = syncmp.Round(eig, el, nil)
			fl = syncmp.Round(fs, fl, nil)
		}
		for i := range inputs {
			ev, eok := eig.Decide(el[i])
			fv, fok := fs.Decide(fl[i])
			if !eok || !fok || ev != fv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEIGCertifiedAndRefuted(t *testing.T) {
	const n, tt = 3, 1
	good := syncmp.NewSt(protocols.EIG{Rounds: tt + 1}, n, tt)
	w, err := valence.Certify(good, tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.OK {
		t.Errorf("EIG(t+1) refuted: %v (%s)", w.Kind, w.Detail)
	}
	fast := syncmp.NewSt(protocols.EIG{Rounds: tt}, n, tt)
	w, err = valence.Certify(fast, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Error("EIG(t) certified, contradicting Corollary 6.3")
	}
}

func TestEIGStateDistinguishesProvenance(t *testing.T) {
	// EIG's tree remembers who relayed what; two different-provenance
	// executions merge in FloodSet but stay distinct in EIG.
	eig := protocols.EIG{Rounds: 2}
	l := []string{eig.Init(3, 0, 0), eig.Init(3, 1, 1), eig.Init(3, 2, 1)}
	// Schedule A: process 1's message to 0 dropped in round 1.
	a := syncmp.Round(eig, l, func(from, to int) bool { return from == 1 && to == 0 })
	// Schedule B: process 2's message to 0 dropped in round 1.
	b := syncmp.Round(eig, l, func(from, to int) bool { return from == 2 && to == 0 })
	if a[0] == b[0] {
		t.Error("EIG states merged across different provenance")
	}
	fs := protocols.FloodSet{Rounds: 2}
	fl := []string{fs.Init(3, 0, 0), fs.Init(3, 1, 1), fs.Init(3, 2, 1)}
	fa := syncmp.Round(fs, fl, func(from, to int) bool { return from == 1 && to == 0 })
	fb := syncmp.Round(fs, fl, func(from, to int) bool { return from == 2 && to == 0 })
	if fa[0] != fb[0] {
		t.Error("FloodSet should merge these executions (same value sets)")
	}
}

func TestConstantDeciderValidityViolation(t *testing.T) {
	const n, tt = 3, 1
	m := syncmp.NewSt(protocols.ConstantDecider{Value: 0}, n, tt)
	w, err := valence.Certify(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.ValidityViolation {
		t.Errorf("Certify = %v, want validity violation", w.Kind)
	}
	if w.Exec == nil || !strings.Contains(w.Detail, "nobody's input") {
		t.Errorf("witness detail = %q", w.Detail)
	}
}

func TestFlickerDeciderWriteOnceViolation(t *testing.T) {
	const n, tt = 3, 1
	m := syncmp.NewSt(protocols.FlickerDecider{}, n, tt)
	w, err := valence.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.DecisionChanged {
		t.Errorf("Certify = %v, want write-once violation", w.Kind)
	}
}

func TestFullInfoDistinguishesEverything(t *testing.T) {
	// Full-information locals differ whenever any received message
	// differed — here, dropping different messages.
	p := protocols.FullInfo{}
	l := []string{p.Init(3, 0, 0), p.Init(3, 1, 1), p.Init(3, 2, 1)}
	a := syncmp.Round(p, l, func(from, to int) bool { return from == 1 && to == 0 })
	b := syncmp.Round(p, l, func(from, to int) bool { return from == 2 && to == 0 })
	if a[0] == b[0] {
		t.Error("full-information states merged")
	}
	if a[1] != b[1] {
		// Process 1 received the same messages in both schedules... except
		// schedule A dropped 1's message to 0, which does not affect 1.
		t.Error("unaffected process's state changed")
	}
}

func TestDecideRule(t *testing.T) {
	p := protocols.DecideRule{
		P:        protocols.FullInfo{},
		RuleName: "never",
		Rule:     func(string) (int, bool) { return 0, false },
	}
	if !strings.Contains(p.Name(), "fullinfo+never") {
		t.Errorf("Name() = %q", p.Name())
	}
	st := p.Init(2, 0, 1)
	if _, ok := p.Decide(st); ok {
		t.Error("never-rule decided")
	}
	if got := p.Deliver(st, []string{"", "x"}); got == st {
		t.Error("Deliver did not advance the state")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestMPCoordinatorRefuted: the rotating-coordinator heuristic is refuted
// under the permutation layering — like every deterministic asynchronous
// consensus candidate — with a concrete witness.
func TestMPCoordinatorRefuted(t *testing.T) {
	const n = 3
	for _, phases := range []int{1, 2} {
		m := asyncmp.New(protocols.MPCoordinator{Phases: phases}, n)
		w, err := valence.Certify(m, phases, 4_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: MPCoordinator certified, contradicting FLP", phases)
		}
	}
}

// TestMPCoordinatorAdoptsEstimate: in a clean sequential schedule the
// phase-0 coordinator's value propagates to everyone.
func TestMPCoordinatorAdoptsEstimate(t *testing.T) {
	const n, phases = 3, 3
	p := protocols.MPCoordinator{Phases: phases}
	m := asyncmp.New(p, n)
	x := m.Initial([]int{1, 0, 0})
	for r := 0; r < phases; r++ {
		x = m.Sequential(x, []int{0, 1, 2})
	}
	for i := 0; i < n; i++ {
		v, ok := p.Decide(x.ProtocolState(i))
		if !ok || v != 1 {
			t.Errorf("process %d decided (%d,%v), want (1,true): coordinator 0's value", i, v, ok)
		}
	}
}
