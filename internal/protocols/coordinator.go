package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// MPCoordinator is the classical rotating-coordinator heuristic for
// asynchronous message passing: in phase r the process with id r mod n
// broadcasts its current estimate; everyone who hears the coordinator
// adopts the estimate; after Phases local phases each process decides its
// estimate. Validity holds by construction (estimates are always somebody's
// input); agreement fails whenever the scheduler hides a coordinator from
// part of the system — a deterministic skeleton of the Ben-Or/rotating-
// coordinator family whose refutation witnesses differ in shape from the
// flooding protocols'.
//
// Local state encoding: phase | id | n | estimate | dec.
type MPCoordinator struct {
	// Phases is the local phase count after which the process decides.
	Phases int
}

var _ proto.MPProtocol = MPCoordinator{}

// Name implements proto.MPProtocol.
func (c MPCoordinator) Name() string { return "mpcoord(P=" + strconv.Itoa(c.Phases) + ")" }

// Init implements proto.MPProtocol.
func (c MPCoordinator) Init(n, id, input int) string {
	return proto.Join("0", strconv.Itoa(id), strconv.Itoa(n), strconv.Itoa(input), "-1")
}

// Send implements proto.MPProtocol: the phase's coordinator broadcasts its
// estimate.
func (c MPCoordinator) Send(state string) []string {
	st, ok := parseCoord(state)
	if !ok || st.phase%st.n != st.id {
		return broadcast("")
	}
	return broadcast(strconv.Itoa(st.estimate))
}

// Receive implements proto.MPProtocol: adopt the latest coordinator
// estimate heard (highest sender id breaks ties among backlogged phases),
// bump the phase, decide at the bound.
func (c MPCoordinator) Receive(state string, in [][]string) string {
	st, ok := parseCoord(state)
	if !ok {
		return state
	}
	for sender := 0; sender < len(in); sender++ {
		for _, msg := range in[sender] {
			if v, err := strconv.Atoi(msg); err == nil {
				st.estimate = v
			}
		}
	}
	st.phase++
	if st.dec < 0 && st.phase >= c.Phases {
		st.dec = st.estimate
	}
	return proto.Join(strconv.Itoa(st.phase), strconv.Itoa(st.id), strconv.Itoa(st.n),
		strconv.Itoa(st.estimate), strconv.Itoa(st.dec))
}

// Decide implements proto.MPProtocol.
func (c MPCoordinator) Decide(state string) (int, bool) {
	st, ok := parseCoord(state)
	if !ok || st.dec < 0 {
		return 0, false
	}
	return st.dec, true
}

type coordState struct {
	phase, id, n, estimate, dec int
}

func parseCoord(state string) (coordState, bool) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 5 {
		return coordState{}, false
	}
	var st coordState
	vals := []*int{&st.phase, &st.id, &st.n, &st.estimate, &st.dec}
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return coordState{}, false
		}
		*vals[i] = v
	}
	return st, true
}
