package protocols_test

import (
	"strings"
	"testing"

	"repro/internal/protocols"
)

func TestSMVoteDirect(t *testing.T) {
	p := protocols.SMVote{Phases: 1}
	if !strings.Contains(p.Name(), "smvote") {
		t.Errorf("Name() = %q", p.Name())
	}
	st := p.Init(3, 1, 1)
	if v := p.WriteValue(st); v != "1" {
		t.Errorf("WriteValue = %q, want \"1\"", v)
	}
	st = p.Observe(st, []string{"0", "", "garbage-%%"})
	if v, ok := p.Decide(st); !ok || v != 0 {
		t.Errorf("Decide = (%d,%v), want (0,true)", v, ok)
	}
	// Malformed state strings degrade gracefully.
	if v := p.WriteValue("not-an-encoding"); v != "" {
		t.Errorf("WriteValue(garbage) = %q", v)
	}
	if _, ok := p.Decide("not-an-encoding"); ok {
		t.Error("Decide(garbage) decided")
	}
}

func TestMPFloodDirect(t *testing.T) {
	p := protocols.MPFlood{Phases: 1}
	if !strings.Contains(p.Name(), "mpflood") {
		t.Errorf("Name() = %q", p.Name())
	}
	st := p.Init(3, 0, 1)
	outs := p.Send(st)
	if outs[1] != "1" || outs[2] != "1" {
		t.Errorf("Send = %v", outs[:3])
	}
	st = p.Receive(st, [][]string{nil, {"0"}, {"bad-%%"}})
	if v, ok := p.Decide(st); !ok || v != 0 {
		t.Errorf("Decide = (%d,%v), want (0,true)", v, ok)
	}
}

func TestFullInfoVariantsDirect(t *testing.T) {
	sm := protocols.SMFullInfo{}
	if sm.Name() != "smfullinfo" {
		t.Errorf("Name() = %q", sm.Name())
	}
	st := sm.Init(2, 0, 1)
	if sm.WriteValue(st) != st {
		t.Error("SMFullInfo must publish its whole state")
	}
	st2 := sm.Observe(st, []string{st, "other"})
	if st2 == st {
		t.Error("Observe did not advance")
	}
	if _, ok := sm.Decide(st2); ok {
		t.Error("full info decided")
	}

	mp := protocols.MPFullInfo{}
	if mp.Name() != "mpfullinfo" {
		t.Errorf("Name() = %q", mp.Name())
	}
	mst := mp.Init(2, 1, 0)
	if got := mp.Send(mst); got[0] != mst {
		t.Error("MPFullInfo must broadcast its whole state")
	}
	mst2 := mp.Receive(mst, [][]string{{"m"}, nil})
	if mst2 == mst {
		t.Error("Receive did not advance")
	}
	if _, ok := mp.Decide(mst2); ok {
		t.Error("full info decided")
	}
}

func TestEarlyFloodMalformedState(t *testing.T) {
	p := protocols.EarlyFloodSet{MaxRounds: 2}
	if got := p.Send("garbage"); got[0] != "" {
		t.Errorf("Send(garbage) = %q", got[0])
	}
	if got := p.Deliver("garbage", []string{""}); got != "garbage" {
		t.Errorf("Deliver(garbage) = %q", got)
	}
	if _, ok := p.Decide("garbage"); ok {
		t.Error("Decide(garbage) decided")
	}
}

func TestCoordinatorMalformedState(t *testing.T) {
	p := protocols.MPCoordinator{Phases: 2}
	if got := p.Send("garbage"); got[0] != "" {
		t.Errorf("Send(garbage) = %q", got[0])
	}
	if got := p.Receive("garbage", nil); got != "garbage" {
		t.Errorf("Receive(garbage) = %q", got)
	}
	if _, ok := p.Decide("garbage"); ok {
		t.Error("Decide(garbage) decided")
	}
}

func TestEIGMalformedState(t *testing.T) {
	p := protocols.EIG{Rounds: 1}
	if _, ok := p.Decide("garbage"); ok {
		t.Error("Decide(garbage) decided")
	}
	if got := p.Deliver(p.Init(2, 0, 1), []string{"", "not=tree=shaped"}); got == "" {
		t.Error("Deliver collapsed the state")
	}
}
