package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// FullInfo is the synchronous full-information protocol: every round each
// process broadcasts its entire local state, and its next state is its
// previous state together with the vector of states received. FullInfo
// distinguishes every pair of executions that is distinguishable by any
// protocol, so structural properties (similarity connectivity of layers,
// the diamond identity, diameter growth) checked on FullInfo are checked in
// their strongest instance.
//
// FullInfo by itself never decides; DecideRule wraps it with a decision
// rule to obtain a consensus protocol candidate.
//
// Local state encoding: a view tree. The initial view is "n|id|input"; the
// round-r view is Join("V", prev, in[0], ..., in[n-1]) where in[j] is the
// view received from j ("" if the message was lost).
type FullInfo struct{}

var _ proto.SyncProtocol = FullInfo{}

// Name implements proto.SyncProtocol.
func (FullInfo) Name() string { return "fullinfo" }

// Init implements proto.SyncProtocol.
func (FullInfo) Init(n, id, input int) string {
	return proto.Join("L", strconv.Itoa(n), strconv.Itoa(id), strconv.Itoa(input))
}

// Send implements proto.SyncProtocol: broadcast the whole view.
func (FullInfo) Send(state string) []string { return broadcast(state) }

// Deliver implements proto.SyncProtocol: append the received vector.
func (FullInfo) Deliver(state string, in []string) string {
	fields := make([]string, 0, len(in)+2)
	fields = append(fields, "V", state)
	fields = append(fields, in...)
	return proto.Join(fields...)
}

// Decide implements proto.SyncProtocol: FullInfo never decides.
func (FullInfo) Decide(string) (int, bool) { return 0, false }

// DecideRule turns a non-deciding synchronous protocol into a consensus
// candidate by adding an external decision rule evaluated on the local
// state.
type DecideRule struct {
	// P is the underlying protocol.
	P proto.SyncProtocol
	// RuleName identifies the rule in Name().
	RuleName string
	// Rule maps a local state to a decision.
	Rule func(state string) (int, bool)
}

var _ proto.SyncProtocol = DecideRule{}

// Name implements proto.SyncProtocol.
func (d DecideRule) Name() string { return d.P.Name() + "+" + d.RuleName }

// Init implements proto.SyncProtocol.
func (d DecideRule) Init(n, id, input int) string { return d.P.Init(n, id, input) }

// Send implements proto.SyncProtocol.
func (d DecideRule) Send(state string) []string { return d.P.Send(state) }

// Deliver implements proto.SyncProtocol.
func (d DecideRule) Deliver(state string, in []string) string { return d.P.Deliver(state, in) }

// Decide implements proto.SyncProtocol.
func (d DecideRule) Decide(state string) (int, bool) { return d.Rule(state) }
