package protocols

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/proto"
)

// EIG is Exponential Information Gathering consensus (Pease–Shostak–
// Lamport style, crash/omission variant): each process maintains a tree of
// values labeled by process-id strings; level r holds "p_k...p_1 reported
// that p_1's input is v". Every round the current frontier is relayed;
// after Rounds rounds the process decides the minimum value present in its
// tree. Under crash/omission failures this coincides with FloodSet's
// decision but exercises a structurally different state: the tree keeps
// per-path provenance, so EIG states distinguish executions that FloodSet
// merges. With Rounds = t+1 it is correct in the t-resilient synchronous
// model; with Rounds = t it is refuted.
//
// Local state encoding: round | id | sorted "path=value" entries, where a
// path is a "."-separated id chain, the empty path being the process's own
// input.
type EIG struct {
	// Rounds is the round after which the process decides.
	Rounds int
}

var _ proto.SyncProtocol = EIG{}

// Name implements proto.SyncProtocol.
func (e EIG) Name() string { return "eig(R=" + strconv.Itoa(e.Rounds) + ")" }

// Init implements proto.SyncProtocol.
func (e EIG) Init(n, id, input int) string {
	return encodeEIG(0, id, map[string]int{"": input})
}

// Send implements proto.SyncProtocol: relay the current frontier (entries
// whose path length equals the round), prefixed by the sender's id on
// delivery.
func (e EIG) Send(state string) []string {
	round, _, tree := parseEIG(state)
	frontier := make(map[string]int)
	for path, v := range tree {
		if pathLen(path) == round {
			frontier[path] = v
		}
	}
	return broadcast(encodeTree(frontier))
}

// Deliver implements proto.SyncProtocol: for each received frontier entry
// with path P from sender s, record path "s.P" (s prepended).
func (e EIG) Deliver(state string, in []string) string {
	round, id, tree := parseEIG(state)
	for sender, msg := range in {
		if msg == "" {
			continue
		}
		entries, err := decodeTree(msg)
		if err != nil {
			continue
		}
		for path, v := range entries {
			ext := strconv.Itoa(sender)
			if path != "" {
				ext = ext + "." + path
			}
			if _, dup := tree[ext]; !dup {
				tree[ext] = v
			}
		}
	}
	return encodeEIG(round+1, id, tree)
}

// Decide implements proto.SyncProtocol: after Rounds rounds, the minimum
// value in the tree.
func (e EIG) Decide(state string) (int, bool) {
	round, _, tree := parseEIG(state)
	if round < e.Rounds || len(tree) == 0 {
		return 0, false
	}
	first := true
	min := 0
	for _, v := range tree {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min, true
}

func pathLen(path string) int {
	if path == "" {
		return 0
	}
	return strings.Count(path, ".") + 1
}

func encodeEIG(round, id int, tree map[string]int) string {
	return proto.Join(strconv.Itoa(round), strconv.Itoa(id), encodeTree(tree))
}

func encodeTree(tree map[string]int) string {
	entries := make([]string, 0, len(tree))
	for path, v := range tree {
		entries = append(entries, path+"="+strconv.Itoa(v))
	}
	sort.Strings(entries)
	return strings.Join(entries, ";")
}

func decodeTree(s string) (map[string]int, error) {
	tree := make(map[string]int)
	if s == "" {
		return tree, nil
	}
	for _, entry := range strings.Split(s, ";") {
		eq := strings.LastIndexByte(entry, '=')
		if eq < 0 {
			return nil, proto.ErrBadEncoding
		}
		v, err := strconv.Atoi(entry[eq+1:])
		if err != nil {
			return nil, proto.ErrBadEncoding
		}
		tree[entry[:eq]] = v
	}
	return tree, nil
}

func parseEIG(state string) (round, id int, tree map[string]int) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 3 {
		return 0, 0, map[string]int{}
	}
	round, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, map[string]int{}
	}
	id, err = strconv.Atoi(fields[1])
	if err != nil {
		return round, 0, map[string]int{}
	}
	tree, err = decodeTree(fields[2])
	if err != nil {
		return round, id, map[string]int{}
	}
	return round, id, tree
}
