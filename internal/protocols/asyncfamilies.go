package protocols

import (
	"strconv"

	"repro/internal/proto"
)

// SMVote is a shared-memory consensus heuristic: each process keeps the set
// W of input values it has observed, publishes W in its register every
// phase, adopts the union of everything it reads, and decides min(W) after
// Phases local phases. It satisfies validity by construction and — per
// Corollary 5.4 — must fail agreement or decision under the synchronic
// layering; the analysis engine finds the witness.
//
// Local state encoding: phase | W.
type SMVote struct {
	// Phases is the local phase count after which the process decides.
	Phases int
}

var _ proto.SMProtocol = SMVote{}

// Name implements proto.SMProtocol.
func (s SMVote) Name() string { return "smvote(P=" + strconv.Itoa(s.Phases) + ")" }

// Init implements proto.SMProtocol.
func (s SMVote) Init(n, id, input int) string {
	return proto.Join("0", proto.EncodeIntSet([]int{input}))
}

// WriteValue implements proto.SMProtocol: publish W.
func (s SMVote) WriteValue(state string) string {
	_, w := parsePhaseSet(state)
	return proto.EncodeIntSet(w)
}

// Observe implements proto.SMProtocol: adopt the union of all registers.
func (s SMVote) Observe(state string, regs []string) string {
	phase, w := parsePhaseSet(state)
	for _, r := range regs {
		if r == "" {
			continue
		}
		vs, err := proto.DecodeIntSet(r)
		if err != nil {
			continue
		}
		w = append(w, vs...)
	}
	return proto.Join(strconv.Itoa(phase+1), proto.EncodeIntSet(w))
}

// Decide implements proto.SMProtocol.
func (s SMVote) Decide(state string) (int, bool) {
	return decideMinAfter(state, s.Phases)
}

// MPFlood is the message-passing analogue of SMVote for the permutation
// layering: flood the set of values seen, decide min(W) after Phases local
// phases. Corollary 5.4's message-passing analogue says it must fail; the
// engine finds the witness.
//
// Local state encoding: phase | W.
type MPFlood struct {
	// Phases is the local phase count after which the process decides.
	Phases int
}

var _ proto.MPProtocol = MPFlood{}

// Name implements proto.MPProtocol.
func (p MPFlood) Name() string { return "mpflood(P=" + strconv.Itoa(p.Phases) + ")" }

// Init implements proto.MPProtocol.
func (p MPFlood) Init(n, id, input int) string {
	return proto.Join("0", proto.EncodeIntSet([]int{input}))
}

// Send implements proto.MPProtocol: broadcast W.
func (p MPFlood) Send(state string) []string {
	_, w := parsePhaseSet(state)
	return broadcast(proto.EncodeIntSet(w))
}

// Receive implements proto.MPProtocol: union everything delivered.
func (p MPFlood) Receive(state string, in [][]string) string {
	phase, w := parsePhaseSet(state)
	for _, msgs := range in {
		for _, msg := range msgs {
			vs, err := proto.DecodeIntSet(msg)
			if err != nil {
				continue
			}
			w = append(w, vs...)
		}
	}
	return proto.Join(strconv.Itoa(phase+1), proto.EncodeIntSet(w))
}

// Decide implements proto.MPProtocol.
func (p MPFlood) Decide(state string) (int, bool) {
	return decideMinAfter(state, p.Phases)
}

// SMFullInfo is the shared-memory full-information protocol: publish the
// whole local state, adopt the vector read. Never decides; used for
// protocol-independent structural checks.
type SMFullInfo struct{}

var _ proto.SMProtocol = SMFullInfo{}

// Name implements proto.SMProtocol.
func (SMFullInfo) Name() string { return "smfullinfo" }

// Init implements proto.SMProtocol.
func (SMFullInfo) Init(n, id, input int) string {
	return proto.Join("L", strconv.Itoa(n), strconv.Itoa(id), strconv.Itoa(input))
}

// WriteValue implements proto.SMProtocol.
func (SMFullInfo) WriteValue(state string) string { return state }

// Observe implements proto.SMProtocol.
func (SMFullInfo) Observe(state string, regs []string) string {
	fields := make([]string, 0, len(regs)+2)
	fields = append(fields, "V", state)
	fields = append(fields, regs...)
	return proto.Join(fields...)
}

// Decide implements proto.SMProtocol: never.
func (SMFullInfo) Decide(string) (int, bool) { return 0, false }

// MPFullInfo is the message-passing full-information protocol: broadcast
// the whole local state, absorb everything delivered. Never decides.
type MPFullInfo struct{}

var _ proto.MPProtocol = MPFullInfo{}

// Name implements proto.MPProtocol.
func (MPFullInfo) Name() string { return "mpfullinfo" }

// Init implements proto.MPProtocol.
func (MPFullInfo) Init(n, id, input int) string {
	return proto.Join("L", strconv.Itoa(n), strconv.Itoa(id), strconv.Itoa(input))
}

// Send implements proto.MPProtocol.
func (MPFullInfo) Send(state string) []string { return broadcast(state) }

// Receive implements proto.MPProtocol.
func (MPFullInfo) Receive(state string, in [][]string) string {
	fields := []string{"V", state}
	for _, msgs := range in {
		fields = append(fields, proto.Join(msgs...))
	}
	return proto.Join(fields...)
}

// Decide implements proto.MPProtocol: never.
func (MPFullInfo) Decide(string) (int, bool) { return 0, false }

// parsePhaseSet decodes the "phase | W" state shared by the flooding
// protocols.
func parsePhaseSet(state string) (phase int, w []int) {
	fields, err := proto.Split(state)
	if err != nil || len(fields) != 2 {
		return 0, nil
	}
	phase, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, nil
	}
	w, err = proto.DecodeIntSet(fields[1])
	if err != nil {
		return phase, nil
	}
	return phase, w
}

// decideMinAfter decides min(W) once the phase counter reaches bound.
func decideMinAfter(state string, bound int) (int, bool) {
	phase, w := parsePhaseSet(state)
	if phase < bound || len(w) == 0 {
		return 0, false
	}
	min := w[0]
	for _, v := range w[1:] {
		if v < min {
			min = v
		}
	}
	return min, true
}
