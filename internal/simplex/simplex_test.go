package simplex

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRejectsDuplicateIDs(t *testing.T) {
	if _, err := New(Vertex{0, 1}, Vertex{0, 2}); err == nil {
		t.Error("want ErrDuplicateID")
	}
}

func TestSimplexCanonicalOrder(t *testing.T) {
	a := MustNew(Vertex{2, 5}, Vertex{0, 1}, Vertex{1, 3})
	b := MustNew(Vertex{0, 1}, Vertex{1, 3}, Vertex{2, 5})
	if a.Key() != b.Key() {
		t.Errorf("keys differ for same vertex set: %q vs %q", a.Key(), b.Key())
	}
	ids := a.Vertices()
	if ids[0].ID != 0 || ids[1].ID != 1 || ids[2].ID != 2 {
		t.Errorf("vertices not sorted: %v", ids)
	}
}

func TestContainsAndIntersect(t *testing.T) {
	s := FromValues([]int{0, 1, 0})
	face := MustNew(Vertex{0, 0}, Vertex{2, 0})
	if !s.Contains(face) {
		t.Error("face not contained")
	}
	other := FromValues([]int{0, 0, 0})
	got := s.Intersect(other)
	want := MustNew(Vertex{0, 0}, Vertex{2, 0})
	if got.Key() != want.Key() {
		t.Errorf("Intersect = %s, want %s", got, want)
	}
	if s.Contains(MustNew(Vertex{1, 0})) {
		t.Error("contains vertex with wrong value")
	}
}

func TestFacesCount(t *testing.T) {
	s := FromValues([]int{7, 8, 9, 10})
	// C(4,k) faces of each size.
	want := map[int]int{0: 1, 1: 4, 2: 6, 3: 4, 4: 1}
	for size, count := range want {
		if got := len(s.Faces(size)); got != count {
			t.Errorf("Faces(%d): %d, want %d", size, got, count)
		}
	}
	if s.Faces(5) != nil || s.Faces(-1) != nil {
		t.Error("out-of-range Faces should be nil")
	}
}

func TestFacesAreContainedProperty(t *testing.T) {
	f := func(vals []int8, size uint8) bool {
		if len(vals) > 6 {
			vals = vals[:6]
		}
		ints := make([]int, len(vals))
		for i, v := range vals {
			ints[i] = int(v)
		}
		s := FromValues(ints)
		k := int(size) % (len(vals) + 1)
		for _, face := range s.Faces(k) {
			if face.Size() != k || !s.Contains(face) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComplexClosure(t *testing.T) {
	c := NewComplex(FromValues([]int{0, 1}))
	if !c.Has(MustNew(Vertex{0, 0})) || !c.Has(MustNew(Vertex{1, 1})) {
		t.Error("faces missing from complex")
	}
	if c.Has(MustNew(Vertex{1, 0})) {
		t.Error("complex contains an absent vertex")
	}
	if c.MaxSize() != 2 {
		t.Errorf("MaxSize = %d, want 2", c.MaxSize())
	}
	if c.Len() != 3 { // 1 edge + 2 vertices
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestThickConnected(t *testing.T) {
	// Two disjoint triangles: not 1-thick connected (no shared 2-face).
	a := FromValues([]int{0, 0, 0})
	b := FromValues([]int{1, 1, 1})
	c := NewComplex(a, b)
	if c.ThickConnected(3, 1) {
		t.Error("disjoint constant simplexes must not be 1-thick connected")
	}
	if comps := c.ThickComponents(3, 1); len(comps) != 2 {
		t.Errorf("ThickComponents = %d, want 2", len(comps))
	}
	// They ARE 3-thick connected (empty intersection allowed: n-k = 0).
	if !c.ThickConnected(3, 3) {
		t.Error("any two simplexes are n-thick connected")
	}
	// Add the bridge simplexes of the binary cube: now 1-thick connected.
	cube := NewComplex()
	for m := 0; m < 8; m++ {
		cube.Add(FromValues([]int{m & 1, (m >> 1) & 1, (m >> 2) & 1}))
	}
	if !cube.ThickConnected(3, 1) {
		t.Error("binary cube complex must be 1-thick connected")
	}
	d, conn := cube.ThickDiameter(3, 1)
	if !conn || d != 3 {
		t.Errorf("cube thick diameter = %d,%v, want 3,true", d, conn)
	}
}

func TestUnion(t *testing.T) {
	a := NewComplex(FromValues([]int{0, 0}))
	b := NewComplex(FromValues([]int{1, 1}))
	u := a.Union(b)
	if !u.Has(FromValues([]int{0, 0})) || !u.Has(FromValues([]int{1, 1})) {
		t.Error("union missing a simplex")
	}
	if u.Has(FromValues([]int{0, 1})) {
		t.Error("union invented a simplex")
	}
}

func TestInputAdjacent(t *testing.T) {
	a := FromValues([]int{0, 0, 0})
	b := FromValues([]int{0, 1, 0})
	c := FromValues([]int{1, 1, 0})
	if !InputAdjacent(a, b) || !InputAdjacent(b, c) {
		t.Error("Hamming-1 inputs must be adjacent")
	}
	if InputAdjacent(a, c) {
		t.Error("Hamming-2 inputs must not be adjacent")
	}
	if InputAdjacent(a, a) {
		t.Error("a simplex is not adjacent to itself")
	}
}

func TestConnectedInputSubsets(t *testing.T) {
	p := &Problem{
		N: 2,
		Inputs: []Simplex{
			FromValues([]int{0, 0}),
			FromValues([]int{0, 1}),
			FromValues([]int{1, 0}),
			FromValues([]int{1, 1}),
		},
	}
	subsets, err := p.ConnectedInputSubsets()
	if err != nil {
		t.Fatal(err)
	}
	// The 4 binary inputs form a 4-cycle: connected subsets are the 4
	// singletons, 4 edges, 4 paths of length 2, and the full set plus the
	// 4 3-subsets = 4+4+4+4+1 = ... compute: all nonempty subsets of a
	// 4-cycle that induce a connected subgraph: 4 + 4 + 4 + 1 + 4 = ...
	// verify by brute reference below instead of a hand count.
	count := 0
	adj := func(i, j int) bool { return InputAdjacent(p.Inputs[i], p.Inputs[j]) }
	for mask := 1; mask < 16; mask++ {
		var members []int
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, i)
			}
		}
		// BFS on members.
		seen := map[int]bool{members[0]: true}
		stack := []int{members[0]}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range members {
				if !seen[v] && adj(u, v) {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		if len(seen) == len(members) {
			count++
		}
	}
	if len(subsets) != count {
		t.Errorf("ConnectedInputSubsets = %d subsets, reference says %d", len(subsets), count)
	}
	for _, idx := range subsets {
		if !sort.IntsAreSorted(idx) {
			t.Errorf("subset %v not sorted", idx)
		}
	}
}
