package simplex

import (
	"errors"
	"strings"
	"testing"
)

// miniConsensus is binary consensus for n processes, in-package (the tasks
// package depends on simplex, so the richer zoo lives there).
func miniConsensus(n int) *Problem {
	var inputs []Simplex
	for a := 0; a < 1<<uint(n); a++ {
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			vals[i] = (a >> uint(i)) & 1
		}
		inputs = append(inputs, FromValues(vals))
	}
	constant := func(v int) Simplex {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = v
		}
		return FromValues(vals)
	}
	return &Problem{
		Name:   "consensus",
		N:      n,
		Inputs: inputs,
		Delta: func(in Simplex) []Simplex {
			seen := map[int]bool{}
			var out []Simplex
			for _, v := range in.Vertices() {
				if !seen[v.Value] {
					seen[v.Value] = true
					out = append(out, constant(v.Value))
				}
			}
			return out
		},
	}
}

func TestProblemOutputComplex(t *testing.T) {
	p := miniConsensus(2)
	c := p.OutputComplex(p.Inputs)
	if got := len(c.Simplexes(2)); got != 2 {
		t.Errorf("output complex has %d top simplexes, want 2 (the constants)", got)
	}
}

func TestThickConnectedWith(t *testing.T) {
	p := miniConsensus(2)
	ok, err := p.ThickConnectedWith(p.Delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("consensus Δ reported 1-thick connected")
	}
	// A constant Δ' is connected.
	constDelta := func(Simplex) []Simplex { return []Simplex{FromValues([]int{0, 0})} }
	ok, err = p.ThickConnectedWith(constDelta, 1)
	if err != nil || !ok {
		t.Errorf("constant Δ' = (%v,%v), want connected", ok, err)
	}
}

func TestKThickConnectedVerdictAndBudget(t *testing.T) {
	p := miniConsensus(2)
	// Exhaustive: consensus is not 1-thick connected under any Δ'.
	if _, ok, err := p.KThickConnected(1, 0); err != nil || ok {
		t.Errorf("consensus KThickConnected = (%v,%v)", ok, err)
	}
	// A tight budget trips ErrBudget (the full Δ fails, the enumeration
	// then exceeds one candidate).
	if _, _, err := p.KThickConnected(1, 1); !errors.Is(err, ErrBudget) {
		t.Errorf("budget err = %v", err)
	}
	// Empty Δ is rejected.
	bad := &Problem{N: 2, Inputs: p.Inputs, Delta: func(Simplex) []Simplex { return nil }}
	if _, _, err := bad.KThickConnected(1, 0); err == nil {
		t.Error("empty Δ accepted")
	}
}

func TestMinThicknessInPackage(t *testing.T) {
	p := miniConsensus(2)
	k, err := p.MinThickness(0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("MinThickness = %d, want n = 2", k)
	}
}

func TestConnectedInputSubsetsCap(t *testing.T) {
	p := miniConsensus(5) // 32 inputs > 16
	if _, err := p.ConnectedInputSubsets(); !errors.Is(err, ErrTooManyInputs) {
		t.Errorf("err = %v, want ErrTooManyInputs", err)
	}
	if _, err := p.ThickConnectedWith(p.Delta, 1); err == nil {
		t.Error("ThickConnectedWith should propagate the cap error")
	}
}

func TestSimplexString(t *testing.T) {
	s := FromValues([]int{7, 8})
	if got := s.String(); !strings.Contains(got, "0=7") || !strings.Contains(got, "1=8") {
		t.Errorf("String() = %q", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on duplicate ids")
		}
	}()
	MustNew(Vertex{0, 1}, Vertex{0, 2})
}
