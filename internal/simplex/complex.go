package simplex

import (
	"sort"

	"repro/internal/graph"
)

// Complex is a set of simplexes closed under containment. Adding a simplex
// adds all of its faces. The zero value is not usable; use NewComplex.
type Complex struct {
	bySize map[int]map[string]Simplex
	max    int
}

// NewComplex returns an empty complex, optionally seeded with simplexes.
func NewComplex(simplexes ...Simplex) *Complex {
	c := &Complex{bySize: make(map[int]map[string]Simplex)}
	for _, s := range simplexes {
		c.Add(s)
	}
	return c
}

// Add inserts s and all of its faces.
func (c *Complex) Add(s Simplex) {
	size := s.Size()
	if c.has(s) {
		return
	}
	for k := 0; k <= size; k++ {
		m := c.bySize[k]
		if m == nil {
			m = make(map[string]Simplex)
			c.bySize[k] = m
		}
		for _, f := range s.Faces(k) {
			m[f.Key()] = f
		}
	}
	if size > c.max {
		c.max = size
	}
}

func (c *Complex) has(s Simplex) bool {
	m := c.bySize[s.Size()]
	if m == nil {
		return false
	}
	_, ok := m[s.Key()]
	return ok
}

// Has reports whether s is a simplex of the complex.
func (c *Complex) Has(s Simplex) bool { return c.has(s) }

// MaxSize returns the size of the largest simplex in the complex.
func (c *Complex) MaxSize() int { return c.max }

// Simplexes returns the simplexes of exactly the given size, sorted by Key
// for determinism.
func (c *Complex) Simplexes(size int) []Simplex {
	m := c.bySize[size]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Simplex, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Len returns the total number of simplexes (all sizes, excluding the empty
// simplex).
func (c *Complex) Len() int {
	total := 0
	for size, m := range c.bySize {
		if size == 0 {
			continue
		}
		total += len(m)
	}
	return total
}

// Union returns a new complex containing the simplexes of both.
func (c *Complex) Union(d *Complex) *Complex {
	out := NewComplex()
	for size := c.max; size >= 1; size-- {
		for _, s := range c.Simplexes(size) {
			out.Add(s)
		}
	}
	for size := d.max; size >= 1; size-- {
		for _, s := range d.Simplexes(size) {
			out.Add(s)
		}
	}
	return out
}

// ThickConnected reports whether the complex is k-thick-connected at
// dimension n: for every pair of n-size-simplexes there is a chain of
// n-size-simplexes from one to the other in which every two consecutive
// simplexes share an (n-k)-size face. An empty or singleton set of
// n-size-simplexes is trivially connected.
func (c *Complex) ThickConnected(n, k int) bool {
	g, _ := c.thickGraph(n, k)
	return g.Connected()
}

// ThickComponents returns the components of the k-thick adjacency graph on
// the n-size-simplexes, each as a sorted list of simplex keys.
func (c *Complex) ThickComponents(n, k int) [][]string {
	g, tops := c.thickGraph(n, k)
	var out [][]string
	for _, comp := range g.Components() {
		keys := make([]string, 0, len(comp))
		for _, v := range comp {
			keys = append(keys, tops[v].Key())
		}
		sort.Strings(keys)
		out = append(out, keys)
	}
	return out
}

func (c *Complex) thickGraph(n, k int) (*graph.Undirected, []Simplex) {
	tops := c.Simplexes(n)
	g := graph.NewUndirected(len(tops))
	need := n - k
	if need < 0 {
		need = 0
	}
	for i := 0; i < len(tops); i++ {
		for j := i + 1; j < len(tops); j++ {
			if tops[i].IntersectSize(tops[j]) >= need {
				g.AddEdge(i, j)
			}
		}
	}
	return g, tops
}
