// Package simplex implements the combinatorial-topology vocabulary of
// Section 7 of the paper: vertices, simplexes, complexes, k-thick
// connectivity, coverings, and decision problems ⟨I, O, Δ⟩.
//
// A vertex is a pair (process id, value); a simplex is a set of vertices
// with pairwise-distinct process ids; a complex is a set of simplexes
// closed under containment. An n-size-complex has maximal simplexes of n
// vertices.
package simplex

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// ErrDuplicateID is returned when a simplex is built with two vertices
// carrying the same process id.
var ErrDuplicateID = errors.New("simplex: duplicate process id")

// Vertex is a pair ⟨process id, value⟩.
type Vertex struct {
	ID    int
	Value int
}

// Simplex is a set of vertices with pairwise-distinct process ids, kept
// sorted by id. The zero value is the empty simplex. The canonical key is
// computed once at construction; copies share it.
type Simplex struct {
	verts []Vertex
	key   string
}

// newSimplex wraps an id-sorted, duplicate-free vertex slice, computing the
// canonical key eagerly (simplexes are used as map keys throughout the
// complex machinery, so the key is nearly always needed).
func newSimplex(vs []Vertex) Simplex {
	return Simplex{verts: vs, key: encodeKey(vs)}
}

func encodeKey(vs []Vertex) string {
	if len(vs) == 0 {
		return ""
	}
	b := make([]byte, 0, 8*len(vs))
	for i, v := range vs {
		if i > 0 {
			b = append(b, ';')
		}
		b = strconv.AppendInt(b, int64(v.ID), 10)
		b = append(b, '=')
		b = strconv.AppendInt(b, int64(v.Value), 10)
	}
	return string(b)
}

// New builds a simplex from vertices, sorting by process id. It returns
// ErrDuplicateID if two vertices share an id.
func New(verts ...Vertex) (Simplex, error) {
	vs := append([]Vertex(nil), verts...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	for i := 1; i < len(vs); i++ {
		if vs[i].ID == vs[i-1].ID {
			return Simplex{}, fmt.Errorf("id %d: %w", vs[i].ID, ErrDuplicateID)
		}
	}
	return newSimplex(vs), nil
}

// MustNew is New for statically-known vertex sets; it panics on duplicate
// ids and is intended for tests and task definitions.
func MustNew(verts ...Vertex) Simplex {
	s, err := New(verts...)
	if err != nil {
		panic(err)
	}
	return s
}

// FromValues builds the n-vertex simplex {⟨0,v0⟩,...,⟨n-1,v_{n-1}⟩}.
func FromValues(values []int) Simplex {
	vs := make([]Vertex, len(values))
	for i, v := range values {
		vs[i] = Vertex{ID: i, Value: v}
	}
	return newSimplex(vs)
}

// Size returns the number of vertices (the paper's k for a k-size-simplex).
func (s Simplex) Size() int { return len(s.verts) }

// Vertices returns the vertices in id order, as a fresh slice.
func (s Simplex) Vertices() []Vertex { return append([]Vertex(nil), s.verts...) }

// ValueOf returns the value of process id in the simplex.
func (s Simplex) ValueOf(id int) (int, bool) {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i].ID >= id })
	if i < len(s.verts) && s.verts[i].ID == id {
		return s.verts[i].Value, true
	}
	return 0, false
}

// Key returns a canonical encoding; two simplexes are equal exactly if
// their Keys are equal.
func (s Simplex) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s Simplex) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// String implements fmt.Stringer.
func (s Simplex) String() string { return "{" + s.Key() + "}" }

// ContainsVertex reports whether the simplex contains the exact vertex.
func (s Simplex) ContainsVertex(v Vertex) bool {
	got, ok := s.ValueOf(v.ID)
	return ok && got == v.Value
}

// Contains reports whether sub is a face of s (every vertex of sub is a
// vertex of s).
func (s Simplex) Contains(sub Simplex) bool {
	for _, v := range sub.verts {
		if !s.ContainsVertex(v) {
			return false
		}
	}
	return true
}

// Intersect returns the simplex of vertices common to s and t.
func (s Simplex) Intersect(t Simplex) Simplex {
	var common []Vertex
	for _, v := range s.verts {
		if t.ContainsVertex(v) {
			common = append(common, v)
		}
	}
	return newSimplex(common)
}

// IntersectSize returns the number of vertices common to s and t without
// materializing the intersection — the hot inner comparison of the k-thick
// adjacency graphs. Both vertex slices are id-sorted, so a single merge
// suffices.
func (s Simplex) IntersectSize(t Simplex) int {
	count, i, j := 0, 0, 0
	for i < len(s.verts) && j < len(t.verts) {
		a, b := s.verts[i], t.verts[j]
		switch {
		case a.ID < b.ID:
			i++
		case a.ID > b.ID:
			j++
		default:
			if a.Value == b.Value {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// Faces returns all faces of s of exactly the given size.
func (s Simplex) Faces(size int) []Simplex {
	if size < 0 || size > len(s.verts) {
		return nil
	}
	out := make([]Simplex, 0, binomial(len(s.verts), size))
	idx := make([]int, size)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == size {
			vs := make([]Vertex, size)
			for i, j := range idx {
				vs[i] = s.verts[j]
			}
			out = append(out, newSimplex(vs))
			return
		}
		for j := start; j <= len(s.verts)-(size-depth); j++ {
			idx[depth] = j
			rec(j+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// binomial returns C(n, k); the arguments here are vertex counts, far from
// overflow.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1
	for i := 1; i <= k; i++ {
		out = out * (n - k + i) / i
	}
	return out
}
