package simplex

import (
	"testing"
)

func binaryCube(n int) *Complex {
	c := NewComplex()
	for a := 0; a < 1<<uint(n); a++ {
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			vals[i] = (a >> uint(i)) & 1
		}
		c.Add(FromValues(vals))
	}
	return c
}

func BenchmarkComplexAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = binaryCube(4)
	}
}

func BenchmarkThickConnected(b *testing.B) {
	c := binaryCube(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.ThickConnected(4, 1) {
			b.Fatal("cube disconnected")
		}
	}
}

func BenchmarkKThickConnectedConsensusSearch(b *testing.B) {
	// Exhaustive subproblem search that must conclude "unsolvable".
	const n = 3
	p := consensusProblem(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, ok, err := p.KThickConnected(1, 0)
		if err != nil || ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// consensusProblem duplicates the tasks.BinaryConsensus construction
// locally to avoid an import cycle with the tasks package.
func consensusProblem(n int) *Problem {
	var inputs []Simplex
	for a := 0; a < 1<<uint(n); a++ {
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			vals[i] = (a >> uint(i)) & 1
		}
		inputs = append(inputs, FromValues(vals))
	}
	constant := func(v int) Simplex {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = v
		}
		return FromValues(vals)
	}
	return &Problem{
		Name:   "consensus",
		N:      n,
		Inputs: inputs,
		Delta: func(in Simplex) []Simplex {
			seen := map[int]bool{}
			var out []Simplex
			for _, v := range in.Vertices() {
				if !seen[v.Value] {
					seen[v.Value] = true
					out = append(out, constant(v.Value))
				}
			}
			return out
		},
	}
}
