package valence_test

import (
	"fmt"
	"testing"

	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestCertifyParallelMatchesSequential: verdict and witness must match the
// sequential certifier for every worker count.
func TestCertifyParallelMatchesSequential(t *testing.T) {
	mOK := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1)
	wOK, err := valence.Certify(mOK, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mBad := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	wBad, err := valence.Certify(mBad, 2, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 16} {
		pOK, err := valence.CertifyParallel(mOK, 2, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if pOK.Kind != wOK.Kind {
			t.Errorf("workers=%d ok-model: %v != %v", workers, pOK.Kind, wOK.Kind)
		}
		pBad, err := valence.CertifyParallel(mBad, 2, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if pBad.Kind != wBad.Kind {
			t.Errorf("workers=%d bad-model: %v != %v", workers, pBad.Kind, wBad.Kind)
		}
		// Deterministic witness: the parallel version must report the same
		// violating root as the sequential one (earliest in Inits order).
		if pBad.Exec.Init.Key() != wBad.Exec.Init.Key() {
			t.Errorf("workers=%d: witness root differs", workers)
		}
	}
}

// TestCertifyParallelBudget: the per-root budget propagates as an error.
func TestCertifyParallelBudget(t *testing.T) {
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 3}, 4, 2)
	if _, err := valence.CertifyParallel(m, 3, 5, 4); err == nil {
		t.Error("want budget error")
	}
}

func BenchmarkCertifyParallel(b *testing.B) {
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 3}, 4, 2)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := valence.CertifyParallel(m, 3, 0, workers)
				if err != nil || w.Kind != valence.OK {
					b.Fatal(err, w.Kind)
				}
			}
		})
	}
}
