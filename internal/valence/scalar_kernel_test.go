package valence_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/resilient"
	"repro/internal/valence"
)

func scalarKernelGraph(t *testing.T) *core.IDGraph {
	t.Helper()
	return ckptGraph(t, mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2)
}

// TestFieldScalarCtxMatchesParallel: the scalar-kernel field — the
// degradation ladder's last rung — produces bit-identical masks to the
// bit-plane engine and the retained scalar reference.
func TestFieldScalarCtxMatchesParallel(t *testing.T) {
	g := scalarKernelGraph(t)
	ref := valence.ScalarMasks(g)
	plane, err := valence.NewFieldParallelCtx(nil, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := valence.NewFieldScalarCtx(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plane.Masks(), ref) {
		t.Fatal("bit-plane field differs from scalar reference")
	}
	if !bytes.Equal(scalar.Masks(), ref) {
		t.Fatal("scalar-kernel field differs from scalar reference")
	}
}

// TestFieldResumeAcrossKernels: a sweep interrupted under one kernel
// resumes under the other — both directions — because both share the
// TagField layer-boundary checkpoint format. This is what makes the
// supervisor's plane→scalar fallback safe mid-run.
func TestFieldResumeAcrossKernels(t *testing.T) {
	g := scalarKernelGraph(t)
	ref := valence.ScalarMasks(g)
	cut := uint64(1 + g.NumLayers()/2)

	t.Run("plane-then-scalar", func(t *testing.T) {
		chaos.Arm(chaos.NewPlan().Set("field.layer", chaos.Rule{Hit: cut, Kind: chaos.KindCancel}))
		_, perr := valence.NewFieldParallelCtx(nil, g, 2)
		chaos.Disarm()
		if !errors.Is(perr, resilient.ErrPartial) {
			t.Fatalf("cut err = %v, want ErrPartial family", perr)
		}
		got, rerr := valence.NewFieldScalarCtx(resumeCtx(t, perr), g)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got.Masks(), ref) {
			t.Fatal("scalar resume of a plane-kernel cut differs from reference")
		}
	})

	t.Run("scalar-then-plane", func(t *testing.T) {
		chaos.Arm(chaos.NewPlan().Set("field.layer", chaos.Rule{Hit: cut, Kind: chaos.KindCancel}))
		_, perr := valence.NewFieldScalarCtx(nil, g)
		chaos.Disarm()
		if !errors.Is(perr, resilient.ErrPartial) {
			t.Fatalf("cut err = %v, want ErrPartial family", perr)
		}
		got, rerr := valence.NewFieldParallelCtx(resumeCtx(t, perr), g, 2)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got.Masks(), ref) {
			t.Fatal("plane resume of a scalar-kernel cut differs from reference")
		}
	})
}

// TestFieldScalarMemoryPressure: the scalar kernel polls the soft memory
// gate at the same layer boundary; clearing the limit and resuming
// completes to reference bits.
func TestFieldScalarMemoryPressure(t *testing.T) {
	g := scalarKernelGraph(t)
	ref := valence.ScalarMasks(g)

	resilient.SetSoftMemLimit(1)
	defer resilient.SetSoftMemLimit(0)
	_, perr := valence.NewFieldScalarCtx(nil, g)
	resilient.SetSoftMemLimit(0)

	if !errors.Is(perr, resilient.ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", perr)
	}
	got, rerr := valence.NewFieldScalarCtx(resumeCtx(t, perr), g)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got.Masks(), ref) {
		t.Fatal("resume after memory pressure differs from reference")
	}
}
