package valence_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

func BenchmarkOracleValences(b *testing.B) {
	for _, cfg := range []struct{ n, h int }{{3, 2}, {3, 3}, {4, 2}} {
		b.Run(fmt.Sprintf("mobile/n=%d/h=%d", cfg.n, cfg.h), func(b *testing.B) {
			m := mobile.New(protocols.FloodSet{Rounds: cfg.h}, cfg.n)
			x := m.Initial(mixedInputs(cfg.n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := valence.NewOracle(m)
				if o.Valences(x, cfg.h) != valence.V0|valence.V1 {
					b.Fatal("expected bivalent")
				}
			}
		})
	}
}

// BenchmarkAblationMemoization quantifies the DESIGN.md ablation: the
// memoized oracle vs. the naive DFS on the same query.
func BenchmarkAblationMemoization(b *testing.B) {
	const n, h = 3, 3
	m := mobile.New(protocols.FloodSet{Rounds: h}, n)
	x := m.Initial(mixedInputs(n))
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := valence.NewOracle(m)
			o.Valences(x, h)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			valence.NaiveValences(m, x, h)
		}
	})
}

func TestNaiveMatchesOracle(t *testing.T) {
	const n, rounds = 3, 2
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	g, err := core.Explore(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := valence.NewOracle(m)
	for _, x := range g.Nodes {
		for h := 0; h <= rounds; h++ {
			if got, want := valence.NaiveValences(m, x, h), o.Valences(x, h); got != want {
				t.Fatalf("naive %02b != memoized %02b at horizon %d", got, want, h)
			}
		}
	}
}

func BenchmarkAnalyzeLayer(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("syncmp/n=%d", n), func(b *testing.B) {
			m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, n, 1)
			x := m.Initial(mixedInputs(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := valence.NewOracle(m)
				valence.AnalyzeLayer(m, o, x, 2)
			}
		})
	}
}

func BenchmarkCertify(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 2}, {5, 1}} {
		b.Run(fmt.Sprintf("floodset/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			m := syncmp.NewSt(protocols.FloodSet{Rounds: cfg.t + 1}, cfg.n, cfg.t)
			b.ReportAllocs()
			var explored int
			for i := 0; i < b.N; i++ {
				w, err := valence.Certify(m, cfg.t+1, 0)
				if err != nil || w.Kind != valence.OK {
					b.Fatal(err, w.Kind)
				}
				explored = w.Explored
			}
			b.ReportMetric(float64(explored), "states")
		})
	}
}

// BenchmarkCertifyGraph is the sweep-based certifier over a pre-built CSR
// graph — the steady-state cost of re-certifying once the state graph is
// materialized (the recursive rows above pay successor enumeration and
// string-key memo lookups on every run). n=6 was impractical before.
func BenchmarkCertifyGraph(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 2}, {5, 1}, {6, 1}} {
		b.Run(fmt.Sprintf("floodset/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			m := syncmp.NewSt(protocols.FloodSet{Rounds: cfg.t + 1}, cfg.n, cfg.t)
			g, err := core.ExploreIDParallel(m, cfg.t+1, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var explored int
			for i := 0; i < b.N; i++ {
				w, err := valence.CertifyGraph(g, 0)
				if err != nil || w.Kind != valence.OK {
					b.Fatal(err, w.Kind)
				}
				explored = w.Explored
			}
			b.ReportMetric(float64(explored), "states")
		})
	}
}

// BenchmarkField is the whole-graph valence sweep itself: every node's
// mask in one pass over the CSR arrays.
func BenchmarkField(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{4, 2}, {6, 1}} {
		b.Run(fmt.Sprintf("floodset/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			m := syncmp.NewSt(protocols.FloodSet{Rounds: cfg.t + 1}, cfg.n, cfg.t)
			g, err := core.ExploreIDParallel(m, cfg.t+1, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := valence.NewField(g)
				if f.Len() != g.Len() {
					b.Fatal("field size mismatch")
				}
			}
			b.ReportMetric(float64(g.Len()), "states")
		})
	}
}

func BenchmarkBivalentChain(b *testing.B) {
	const n, rounds = 3, 4
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := valence.NewOracle(m)
		ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(rounds, 1), rounds-1)
		if err != nil || ch.Stuck != nil {
			b.Fatal("chain failed")
		}
	}
}

// mixedInputs has a single 0-holder: the bivalence-richest input for
// min-flooding protocols (silencing process 0 makes 1 reachable; the
// failure-free run decides 0).
func mixedInputs(n int) []int {
	in := make([]int, n)
	for i := 1; i < n; i++ {
		in[i] = 1
	}
	return in
}
