package valence_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/valence"
)

// quadraticSimilarityGraph is the original all-pairs construction, kept
// here as the differential reference for the bucketed SimilarityGraph.
func quadraticSimilarityGraph(states []core.State) *graph.Undirected {
	g := graph.NewUndirected(len(states))
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if _, ok := core.Similar(states[i], states[j]); ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// edgeSet normalizes a graph to its sorted, deduplicated edge list.
func edgeSet(g *graph.Undirected) []string {
	seen := make(map[string]bool)
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Neighbors(u) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			seen[fmt.Sprintf("%d-%d", a, b)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// TestSimilarityGraphMatchesQuadratic is the differential test for the
// bucketed SimilarityGraph: on the layer sets of the E1 experiment (initial
// layers of the synchronous mobile-failures model) and the E4 experiment
// (deep layers of the asynchronous message-passing model), the bucketed
// construction must produce exactly the edge set, components, and diameter
// of the all-pairs construction.
func TestSimilarityGraphMatchesQuadratic(t *testing.T) {
	var layerSets []struct {
		name   string
		states []core.State
	}
	// E1 layers: every depth of the mobile FloodSet graph at n=4.
	m1 := mobile.New(protocols.FloodSet{Rounds: 2}, 4)
	g1, err := core.ExploreID(m1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= g1.Depth; d++ {
		states := make([]core.State, 0, len(g1.Layer(d)))
		for _, u := range g1.Layer(d) {
			states = append(states, g1.States[u])
		}
		layerSets = append(layerSets, struct {
			name   string
			states []core.State
		}{fmt.Sprintf("e1-mobile-n4-d%d", d), states})
	}
	// E4 layers: the asynchronous message-passing model at n=3.
	m2 := asyncmp.New(protocols.MPFlood{Phases: 1}, 3)
	g2, err := core.ExploreID(m2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= g2.Depth; d++ {
		states := make([]core.State, 0, len(g2.Layer(d)))
		for _, u := range g2.Layer(d) {
			states = append(states, g2.States[u])
		}
		layerSets = append(layerSets, struct {
			name   string
			states []core.State
		}{fmt.Sprintf("e4-asyncmp-n3-d%d", d), states})
	}

	for _, ls := range layerSets {
		t.Run(ls.name, func(t *testing.T) {
			fast := valence.SimilarityGraph(ls.states)
			slow := quadraticSimilarityGraph(ls.states)
			fe, se := edgeSet(fast), edgeSet(slow)
			if len(fe) != len(se) {
				t.Fatalf("%d states: %d edges != %d (quadratic)", len(ls.states), len(fe), len(se))
			}
			for i := range fe {
				if fe[i] != se[i] {
					t.Fatalf("edge sets differ at %d: %s vs %s", i, fe[i], se[i])
				}
			}
			if fc, sc := len(fast.Components()), len(slow.Components()); fc != sc {
				t.Errorf("components %d != %d", fc, sc)
			}
			fd, fconn := fast.Diameter()
			sd, sconn := slow.Diameter()
			if fd != sd || fconn != sconn {
				t.Errorf("diameter (%d,%v) != (%d,%v)", fd, fconn, sd, sconn)
			}
		})
	}
}
