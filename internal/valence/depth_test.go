package valence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestDecisionDepthFloodSet: plain FloodSet always decides exactly at its
// round bound — a flat histogram at t+1.
func TestDecisionDepthFloodSet(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tt)
	inits := []core.State{m.Initial([]int{0, 1, 1})}
	d, err := valence.MeasureDecisionDepth(m, inits, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Undecided != 0 {
		t.Errorf("%d undecided runs for a certified protocol", d.Undecided)
	}
	if d.Min != rounds || d.Max != rounds {
		t.Errorf("decision depths [%d,%d], want exactly %d", d.Min, d.Max, rounds)
	}
}

// TestDecisionDepthEarlyFloodSet: the early-deciding variant shows the
// min(f+2, t+1) shape — some runs decide at layer 2, the worst case at
// t+1, and nothing beyond.
func TestDecisionDepthEarlyFloodSet(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	m := syncmp.NewSt(protocols.EarlyFloodSet{MaxRounds: rounds}, n, tt)
	inits := []core.State{m.Initial([]int{0, 1, 1})}
	d, err := valence.MeasureDecisionDepth(m, inits, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Undecided != 0 {
		t.Errorf("%d undecided runs for a certified protocol", d.Undecided)
	}
	if d.Min != 2 {
		t.Errorf("earliest decision at layer %d, want 2", d.Min)
	}
	if d.Max > rounds {
		t.Errorf("latest decision at layer %d, beyond the bound %d", d.Max, rounds)
	}
	if d.Histogram[2] == 0 {
		t.Error("no runs decided at layer 2; early stopping never fired")
	}
}

// TestDecisionDepthBudget: the run cap is honored.
func TestDecisionDepthBudget(t *testing.T) {
	const n, tt = 3, 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, n, tt)
	if _, err := valence.MeasureDecisionDepth(m, m.Inits(), 2, 3); err == nil {
		t.Error("want budget error")
	}
}

// TestCertifyFromMultivalued: ternary consensus obeys the same t+1 story —
// FloodSet(t+1) certifies over the 3^n ternary initial states, FloodSet(t)
// is refuted.
func TestCertifyFromMultivalued(t *testing.T) {
	const n, tt = 3, 1
	var inits []core.State
	build := func(m *syncmp.Model) []core.State {
		inits = inits[:0]
		for a := 0; a < 27; a++ {
			v := a
			in := make([]int, n)
			for i := 0; i < n; i++ {
				in[i] = v % 3
				v /= 3
			}
			inits = append(inits, m.Initial(in))
		}
		return inits
	}
	good := syncmp.NewSt(protocols.FloodSet{Rounds: tt + 1}, n, tt)
	w, err := valence.CertifyFrom(good, build(good), tt+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.OK {
		t.Errorf("ternary FloodSet(t+1): %v (%s)", w.Kind, w.Detail)
	}
	fast := syncmp.NewSt(protocols.FloodSet{Rounds: tt}, n, tt)
	w, err = valence.CertifyFrom(fast, build(fast), tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Error("ternary FloodSet(t) certified, contradicting Corollary 6.3")
	}
}
