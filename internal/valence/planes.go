package valence

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// This file derives the immutable per-graph bit tables the valence hot
// loops run on. Both tables are cached on the IDGraph through Aux, so the
// per-node and per-edge State interface calls they fold away are paid once
// per graph, not once per sweep: every later field sweep and graph
// certification over the same graph is pure integer work on the CSR
// arrays.

// fieldPlanesKey and certPlanesKey key the cached tables in IDGraph.Aux.
type (
	fieldPlanesKey struct{}
	certPlanesKey  struct{}
)

// fieldPlanes are the decided-bit planes of a graph: bit u of d0 (d1) is
// set when some process that is non-failed at node u's state has decided 0
// (1) there — DecidedValues(state)&0b11 transposed into two node-indexed
// bit-planes. They seed the field sweep's transfer function.
type fieldPlanes struct {
	d0, d1 []uint64
}

// fieldPlanesOf returns (building and caching on first use) g's decided
// planes.
func fieldPlanesOf(g *core.IDGraph) *fieldPlanes {
	return g.Aux(fieldPlanesKey{}, func() any {
		rec := obs.Active()
		defer obs.Span(rec, "field.planes.time")()
		if tr := obs.Trace(); tr != nil {
			defer tr.End(tr.Begin("field.planes", 0))
		}
		words := (g.Len() + 63) / 64
		fp := &fieldPlanes{d0: make([]uint64, words), d1: make([]uint64, words)}
		for u, x := range g.States {
			dv := core.DecidedValues(x)
			bit := uint64(1) << (uint(u) & 63)
			if dv&1 != 0 {
				fp.d0[u>>6] |= bit
			}
			if dv&2 != 0 {
				fp.d1[u>>6] |= bit
			}
		}
		if rec != nil {
			rec.Add("field.planes.builds", 1)
		}
		return fp
	}).(*fieldPlanes)
}

// certPlanes are the certifier's precomputed check tables: everything
// checkState, checkWriteOnce, and AllDecided can decide about a node or an
// edge independently of which root the DFS arrived from. The DFS consults
// these with one or two word operations per visit and re-runs the original
// interface-call check only on the rare dirty node/edge, to build the
// exact witness.
type certPlanes struct {
	// dvals[u] is DecidedValues of node u's state: the set of values in
	// [0,63) decided by processes non-failed there. A state fails the
	// validity check under root-input mask `inputs` exactly when
	// dvals[u] &^ inputs != 0.
	dvals []uint64
	// agreeBad bit u: checkState's agreement scan fires on node u's state
	// (two processes, scanned in index order with its exact seen-guard,
	// non-failed and decided on different values).
	agreeBad []uint64
	// allDec bit u: AllDecided holds at node u's state (the decision
	// requirement at the bound layer).
	allDec []uint64
	// anyDec bit u: some process — failed or not — has decided at node u.
	// checkWriteOnce can only fire on an edge whose source has a decided
	// process, so the edge pass skips sources without this bit.
	anyDec []uint64
	// woBad bit e (edge-indexed): checkWriteOnce fires on CSR edge e.
	woBad []uint64
	// rootInputs[i] is inputMask of g.Inits[i]'s state.
	rootInputs []uint64
}

func (cp *certPlanes) bit(plane []uint64, i uint32) bool {
	return plane[i>>6]&(1<<(i&63)) != 0
}

// certPlanesOf returns (building and caching on first use) g's certifier
// check tables. The build is one pass over nodes and one over edges — the
// same interface-call work a single certification used to spend per visit,
// spent once per graph.
func certPlanesOf(g *core.IDGraph) *certPlanes {
	return g.Aux(certPlanesKey{}, func() any {
		rec := obs.Active()
		defer obs.Span(rec, "certify.planes.time")()
		if tr := obs.Trace(); tr != nil {
			defer tr.End(tr.Begin("certify.planes", 0))
		}
		words := (g.Len() + 63) / 64
		cp := &certPlanes{
			dvals:      make([]uint64, g.Len()),
			agreeBad:   make([]uint64, words),
			allDec:     make([]uint64, words),
			anyDec:     make([]uint64, words),
			woBad:      make([]uint64, (g.NumEdges()+63)/64),
			rootInputs: make([]uint64, len(g.Inits)),
		}
		for u, x := range g.States {
			bit := uint64(1) << (uint(u) & 63)
			// One fused process scan per node, replicating checkState's
			// agreement sequence (including its seen >= 0 guard, which a
			// negative decided value resets) exactly.
			seen, agreeDirty, anyDecided, allDecided := -1, false, false, true
			var dv uint64
			for i := 0; i < x.N(); i++ {
				v, ok := x.Decided(i)
				if ok {
					anyDecided = true
				}
				if x.FailedAt(i) {
					continue
				}
				if !ok {
					allDecided = false
					continue
				}
				if v >= 0 && v < 63 {
					dv |= 1 << uint(v)
				}
				if seen >= 0 && v != seen {
					agreeDirty = true
				}
				seen = v
			}
			cp.dvals[u] = dv
			if agreeDirty {
				cp.agreeBad[u>>6] |= bit
			}
			if allDecided {
				cp.allDec[u>>6] |= bit
			}
			if anyDecided {
				cp.anyDec[u>>6] |= bit
			}
		}
		for u := 0; u < g.Len(); u++ {
			if !cp.bit(cp.anyDec, uint32(u)) {
				continue // no decided process: no edge out of u can fire
			}
			lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
			for e := lo; e < hi; e++ {
				if checkWriteOnce(g.States[u], g.States[g.EdgeTo[e]]) != nil {
					cp.woBad[e>>6] |= 1 << (e & 63)
				}
			}
		}
		for i, r := range g.Inits {
			cp.rootInputs[i] = inputMask(g.States[r])
		}
		if rec != nil {
			rec.Add("certify.planes.builds", 1)
		}
		return cp
	}).(*certPlanes)
}

// ScalarMasks computes the valence field of g with the original one-byte-
// per-node reverse sweep — the scalar reference engine the bit-plane field
// is pinned against by differential tests and benchmarked against by
// BenchmarkFieldSweep. Same transfer function, same layer order, same
// fixpoint fallback; no planes, no words, no caching.
func ScalarMasks(g *core.IDGraph) []uint8 {
	masks := make([]uint8, g.Len())
	node := func(u uint32) uint8 {
		m := uint8(core.DecidedValues(g.States[u]) & 0b11)
		lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
		for e := lo; e < hi && m != V0|V1; e++ {
			m |= masks[g.EdgeTo[e]]
		}
		return m
	}
	if g.Graded() {
		for d := g.NumLayers() - 1; d >= 0; d-- {
			for _, u := range g.Layer(d) {
				masks[u] = node(u)
			}
		}
		return masks
	}
	for changed := true; changed; {
		changed = false
		for u := g.Len() - 1; u >= 0; u-- {
			if m := node(uint32(u)) | masks[u]; m != masks[u] {
				masks[u] = m
				changed = true
			}
		}
	}
	return masks
}
