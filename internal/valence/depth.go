package valence

import (
	"fmt"

	"repro/internal/core"
)

// DecisionDepth reports the decision-time landscape of a (correct)
// protocol over a layered submodel: across all runs of at most `bound`
// layers from the given initial states, the earliest and latest layer at
// which every non-failed process has decided, and a histogram of
// first-all-decided layers over all run prefixes.
type DecisionDepth struct {
	// Min and Max are the extreme first-all-decided layers over all runs.
	Min, Max int
	// Histogram[d] counts the distinct (state-path) runs whose first
	// all-decided layer is d. Runs that never fully decide within the
	// bound are counted in Undecided.
	Histogram []int
	// Undecided counts runs still undecided at the bound.
	Undecided int
	// Runs is the total number of runs examined.
	Runs int
}

// MeasureDecisionDepth walks every run (action path) of length `bound`
// from each initial state and records when it first became fully decided.
// The path count grows as |S(x)|^bound; use small bounds. maxRuns caps the
// walk (0 = unbounded).
func MeasureDecisionDepth(m core.Model, inits []core.State, bound, maxRuns int) (*DecisionDepth, error) {
	d := &DecisionDepth{
		Min:       bound + 1,
		Histogram: make([]int, bound+1),
	}
	var walk func(x core.State, depth int, decidedAt int) error
	walk = func(x core.State, depth, decidedAt int) error {
		if decidedAt < 0 && core.AllDecided(x) {
			decidedAt = depth
		}
		if depth == bound {
			d.Runs++
			if maxRuns > 0 && d.Runs > maxRuns {
				return fmt.Errorf("after %d runs: %w", d.Runs, ErrBudget)
			}
			if decidedAt < 0 {
				d.Undecided++
				return nil
			}
			d.Histogram[decidedAt]++
			if decidedAt < d.Min {
				d.Min = decidedAt
			}
			if decidedAt > d.Max {
				d.Max = decidedAt
			}
			return nil
		}
		for _, s := range m.Successors(x) {
			if err := walk(s.State, depth+1, decidedAt); err != nil {
				return err
			}
		}
		return nil
	}
	for _, init := range inits {
		if err := walk(init, 0, -1); err != nil {
			return nil, err
		}
	}
	return d, nil
}
