// Package valence implements the paper's valence machinery: horizon-bounded
// valence of states (Section 3), connectivity analysis of layer sets
// (Lemmas 3.3–3.5, 5.1, 5.3), the bivalent-chain constructions behind
// Theorem 4.2 and Lemmas 6.1/7.1, and the consensus certifier that either
// certifies a protocol over a layered submodel or produces a concrete
// witness run (agreement violation, validity violation, undecided run, or
// broken write-once decision).
//
// # Horizon-bounded valence
//
// The paper defines x to be v-valent if some execution extending x has a
// nonfaulty process deciding v. For a protocol that decides within B layers
// of the initial state in every run, all decision events occur within the
// first B layers, so the valence of a state at depth d is determined by its
// extensions of length B-d. The Oracle computes exactly this bounded
// valence; callers pick horizons per depth. For impossibility arguments the
// bounded notion is the right one even without a proof of termination: a
// state with both decisions reachable in bounded futures is bivalent
// outright, and a bivalent state reached at the claimed decision bound is a
// witness that decision has not occurred (Lemmas 3.1/3.2).
package valence

import (
	"repro/internal/core"
)

// V0 and V1 are the bits of a valence mask.
const (
	V0 uint8 = 1 << 0 // 0-valent
	V1 uint8 = 1 << 1 // 1-valent
)

// Oracle computes horizon-bounded binary valence over a successor function,
// with memoization on (state id, horizon). States are interned to dense
// uint32 ids by the successor cache backing the oracle — the model's shared
// cache when the successor function carries one — so repeated analyses over
// the same model reuse both the enumeration work and the key space.
type Oracle struct {
	cache *core.SuccessorCache
	memo  map[memoKey]uint8
}

type memoKey struct {
	id      uint32
	horizon int32
}

// NewOracle returns an oracle over succ. When succ is (or wraps) a model
// with an embedded successor cache, the oracle draws from that shared
// cache; otherwise it builds a private one.
func NewOracle(succ core.Successor) *Oracle {
	return &Oracle{cache: core.CacheOf(succ), memo: make(map[memoKey]uint8)}
}

// Valences returns the valence mask of x within the given horizon: bit V0
// (V1) is set if some execution of at most horizon layers extending x
// reaches a state where a process that is non-failed there has decided 0
// (1).
func (o *Oracle) Valences(x core.State, horizon int) uint8 {
	return o.valences(o.cache.ID(x), x, horizon)
}

func (o *Oracle) valences(id uint32, x core.State, horizon int) uint8 {
	k := memoKey{id: id, horizon: int32(horizon)}
	if v, ok := o.memo[k]; ok {
		return v
	}
	mask := uint8(core.DecidedValues(x) & 0b11)
	if mask != V0|V1 && horizon > 0 {
		succs, sids := o.cache.SuccessorsOf(id, x)
		for i := range succs {
			mask |= o.valences(sids[i], succs[i].State, horizon-1)
			if mask == V0|V1 {
				break
			}
		}
	}
	o.memo[k] = mask
	return mask
}

// Bivalent reports whether x is bivalent within the horizon.
func (o *Oracle) Bivalent(x core.State, horizon int) bool {
	return o.Valences(x, horizon) == V0|V1
}

// Univalent reports whether x is v-univalent within the horizon: v-valent
// and not (1-v)-valent. Note that with a too-small horizon a state can be
// null-valent (no decisions reachable); Univalent is then false for both
// values.
func (o *Oracle) Univalent(x core.State, horizon int) (v int, ok bool) {
	switch o.Valences(x, horizon) {
	case V0:
		return 0, true
	case V1:
		return 1, true
	default:
		return 0, false
	}
}

// MemoLen reports the number of memoized (state, horizon) entries; used by
// benchmarks to report search effort.
func (o *Oracle) MemoLen() int { return len(o.memo) }

// SharedValence reports whether x ~v y within the horizon (Definition 3.1):
// some value w has both states w-valent.
func (o *Oracle) SharedValence(x, y core.State, horizon int) bool {
	return o.Valences(x, horizon)&o.Valences(y, horizon) != 0
}
