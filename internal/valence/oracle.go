// Package valence implements the paper's valence machinery: horizon-bounded
// valence of states (Section 3), connectivity analysis of layer sets
// (Lemmas 3.3–3.5, 5.1, 5.3), the bivalent-chain constructions behind
// Theorem 4.2 and Lemmas 6.1/7.1, and the consensus certifier that either
// certifies a protocol over a layered submodel or produces a concrete
// witness run (agreement violation, validity violation, undecided run, or
// broken write-once decision).
//
// # Horizon-bounded valence
//
// The paper defines x to be v-valent if some execution extending x has a
// nonfaulty process deciding v. For a protocol that decides within B layers
// of the initial state in every run, all decision events occur within the
// first B layers, so the valence of a state at depth d is determined by its
// extensions of length B-d. The Oracle computes exactly this bounded
// valence; callers pick horizons per depth. For impossibility arguments the
// bounded notion is the right one even without a proof of termination: a
// state with both decisions reachable in bounded futures is bivalent
// outright, and a bivalent state reached at the claimed decision bound is a
// witness that decision has not occurred (Lemmas 3.1/3.2).
package valence

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// V0 and V1 are the bits of a valence mask.
const (
	V0 uint8 = 1 << 0 // 0-valent
	V1 uint8 = 1 << 1 // 1-valent
)

// Oracle computes horizon-bounded binary valence over a successor function,
// with memoization on (state id, horizon). States are interned to dense
// uint32 ids by the successor cache backing the oracle — the model's shared
// cache when the successor function carries one — so repeated analyses over
// the same model reuse both the enumeration work and the key space.
type Oracle struct {
	cache *core.SuccessorCache
	memo  map[memoKey]uint8
	// Bivalence is monotone in the horizon: a state bivalent within h is
	// bivalent within every h' >= h (its h-futures are a subset of its
	// h'-futures). bivSet is a per-id bitset of states known bivalent at
	// some horizon, bivMin[id] the smallest such horizon; together they
	// answer larger-horizon queries before the (id, horizon) map is even
	// consulted, so re-analyses across a horizon schedule stop growing the
	// memo for bivalent states.
	bivSet []uint64
	bivMin []int32
	// field, when set, resolves queries for states of a materialized graph
	// directly from the whole-graph valence field.
	field *Field

	// stats counts where queries were answered. Plain ints: an Oracle,
	// like its memo map, is confined to one goroutine.
	stats OracleStats
}

// OracleStats breaks down how an oracle's queries were resolved — the
// explored-vs-pruned ledger of the lazy valence engine. Queries counts
// every valence computation including recursive self-calls, so
// Queries - (MemoHits + FieldHits + BivalentShortcuts) is the number of
// states whose successors were actually walked.
type OracleStats struct {
	// Queries counts valence computations, including recursive ones.
	Queries int64
	// MemoHits were answered from the (state, horizon) memo.
	MemoHits int64
	// FieldHits were answered from a registered whole-graph field.
	FieldHits int64
	// BivalentShortcuts were answered by bivalence monotonicity.
	BivalentShortcuts int64
	// MemoEntries is the current size of the (state, horizon) memo.
	MemoEntries int
}

type memoKey struct {
	id      uint32
	horizon int32
}

// NewOracle returns an oracle over succ. When succ is (or wraps) a model
// with an embedded successor cache, the oracle draws from that shared
// cache; otherwise it builds a private one.
func NewOracle(succ core.Successor) *Oracle {
	return &Oracle{cache: core.CacheOf(succ), memo: make(map[memoKey]uint8)}
}

// Valences returns the valence mask of x within the given horizon: bit V0
// (V1) is set if some execution of at most horizon layers extending x
// reaches a state where a process that is non-failed there has decided 0
// (1).
func (o *Oracle) Valences(x core.State, horizon int) uint8 {
	return o.valences(o.cache.ID(x), x, horizon)
}

func (o *Oracle) valences(id uint32, x core.State, horizon int) uint8 {
	o.stats.Queries++
	if o.bivalentShortcut(id, horizon) {
		o.stats.BivalentShortcuts++
		return V0 | V1
	}
	if o.field != nil {
		if m, ok := o.fieldLookup(id, horizon); ok {
			o.stats.FieldHits++
			return m
		}
	}
	k := memoKey{id: id, horizon: int32(horizon)}
	if v, ok := o.memo[k]; ok {
		o.stats.MemoHits++
		return v
	}
	mask := uint8(core.DecidedValues(x) & 0b11)
	if mask != V0|V1 && horizon > 0 {
		succs, sids := o.cache.SuccessorsOf(id, x)
		for i := range succs {
			mask |= o.valences(sids[i], succs[i].State, horizon-1)
			if mask == V0|V1 {
				break
			}
		}
	}
	o.memo[k] = mask
	if mask == V0|V1 {
		o.markBivalent(id, horizon)
	}
	return mask
}

// UseField registers a materialized valence field as a fast path: Valences
// queries for states of the field's graph are answered from the field when
// the horizon matches the node's residual depth exactly, or when
// monotonicity decides them (field mask bivalent and queried horizon at
// least the field's; field mask null and queried horizon at most it). The
// lazy recursive path remains for everything else. The field's graph must
// share the oracle's successor cache and be graded; otherwise the call is
// a no-op.
func (o *Oracle) UseField(f *Field) {
	if f == nil || f.g.Cache != o.cache || !f.g.Graded() {
		return
	}
	o.field = f
}

// fieldLookup answers a query from the registered field when it can do so
// exactly. Bivalent field nodes also feed the monotonicity bitset.
func (o *Oracle) fieldLookup(id uint32, horizon int) (uint8, bool) {
	u, ok := o.field.g.NodeOfCacheID(id)
	if !ok {
		return 0, false
	}
	fh := o.field.Horizon(u)
	m := o.field.Mask(u)
	if m == V0|V1 {
		o.markBivalent(id, fh)
	}
	switch {
	case horizon == fh:
		return m, true
	case m == V0|V1 && horizon >= fh:
		return V0 | V1, true
	case m == 0 && horizon <= fh:
		// No decision reachable within fh layers, so none within fewer.
		return 0, true
	}
	return 0, false
}

// bivalentShortcut reports whether id is already known bivalent at a
// horizon no larger than the queried one.
func (o *Oracle) bivalentShortcut(id uint32, horizon int) bool {
	w := int(id >> 6)
	return w < len(o.bivSet) && o.bivSet[w]&(1<<(id&63)) != 0 &&
		int32(horizon) >= o.bivMin[id]
}

// markBivalent records that id is bivalent within the given horizon.
func (o *Oracle) markBivalent(id uint32, horizon int) {
	for uint32(len(o.bivMin)) <= id {
		o.bivMin = append(o.bivMin, -1)
	}
	w := int(id >> 6)
	for len(o.bivSet) <= w {
		o.bivSet = append(o.bivSet, 0)
	}
	bit := uint64(1) << (id & 63)
	if o.bivSet[w]&bit == 0 || int32(horizon) < o.bivMin[id] {
		o.bivSet[w] |= bit
		o.bivMin[id] = int32(horizon)
	}
}

// Bivalent reports whether x is bivalent within the horizon.
func (o *Oracle) Bivalent(x core.State, horizon int) bool {
	return o.Valences(x, horizon) == V0|V1
}

// Univalent reports whether x is v-univalent within the horizon: v-valent
// and not (1-v)-valent. Note that with a too-small horizon a state can be
// null-valent (no decisions reachable); Univalent is then false for both
// values.
func (o *Oracle) Univalent(x core.State, horizon int) (v int, ok bool) {
	switch o.Valences(x, horizon) {
	case V0:
		return 0, true
	case V1:
		return 1, true
	default:
		return 0, false
	}
}

// MemoLen reports the number of memoized (state, horizon) entries; used by
// benchmarks to report search effort.
func (o *Oracle) MemoLen() int { return len(o.memo) }

// Stats returns the oracle's query-resolution counters.
func (o *Oracle) Stats() OracleStats {
	s := o.stats
	s.MemoEntries = len(o.memo)
	return s
}

// PublishStats pushes the oracle's counters into a recorder as gauges.
// Safe on a nil recorder.
func (o *Oracle) PublishStats(rec obs.Recorder) {
	if rec == nil {
		return
	}
	s := o.Stats()
	rec.Set("oracle.queries", s.Queries)
	rec.Set("oracle.memo_hits", s.MemoHits)
	rec.Set("oracle.field_hits", s.FieldHits)
	rec.Set("oracle.bivalent_shortcuts", s.BivalentShortcuts)
	rec.Set("oracle.memo_entries", int64(s.MemoEntries))
}

// SharedValence reports whether x ~v y within the horizon (Definition 3.1):
// some value w has both states w-valent.
func (o *Oracle) SharedValence(x, y core.State, horizon int) bool {
	return o.Valences(x, horizon)&o.Valences(y, horizon) != 0
}
