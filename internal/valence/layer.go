package valence

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// LayerReport is the result of analyzing one layer S(x): the distinct
// successor states of x, their similarity structure, and their valence
// structure within a horizon.
type LayerReport struct {
	// States are the distinct successor states, in first-occurrence order
	// of the successor enumeration.
	States []core.State
	// Actions[i] lists the action labels that produced States[i].
	Actions [][]string

	// SimilarityConnected reports whether (States, ~s) is connected.
	SimilarityConnected bool
	// SimilarityComponents is the number of connected components of
	// (States, ~s).
	SimilarityComponents int
	// SDiameter is the diameter of (States, ~s) (max over components if
	// disconnected).
	SDiameter int

	// Valences[i] is the horizon-bounded valence mask of States[i].
	Valences []uint8
	// ValenceConnected reports whether (States, ~v) is connected: either
	// some state is bivalent, or all states are univalent with the same
	// value. Null-valent states (no reachable decision within the horizon)
	// disconnect the valence graph unless they are the only state.
	ValenceConnected bool
	// BivalentIdx are the indices of bivalent states.
	BivalentIdx []int
	// NullValentIdx are the indices of null-valent states (horizon too
	// small to observe any decision).
	NullValentIdx []int
}

// Layer collects the distinct states of S(x) with their action labels.
func Layer(succ core.Successor, x core.State) (states []core.State, actions [][]string) {
	index := make(map[string]int)
	for _, s := range succ.Successors(x) {
		k := s.State.Key()
		i, seen := index[k]
		if !seen {
			i = len(states)
			index[k] = i
			states = append(states, s.State)
			actions = append(actions, nil)
		}
		actions[i] = append(actions[i], s.Action)
	}
	return states, actions
}

// SimilarityGraph builds the graph (states, ~s).
func SimilarityGraph(states []core.State) *graph.Undirected {
	g := graph.NewUndirected(len(states))
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if _, ok := core.Similar(states[i], states[j]); ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// ValenceConnected reports whether a set of valence masks forms a connected
// (X, ~v) graph. Per the paper: X is valence connected exactly if either all
// states are v-univalent for one common v, or some state is bivalent (and no
// state is null-valent, which can only arise here from a too-small horizon).
func ValenceConnected(masks []uint8) bool {
	if len(masks) == 0 {
		return true
	}
	var union uint8
	bivalent := false
	for _, m := range masks {
		if m == 0 {
			// Null-valent: no decision reachable within the horizon. The
			// state shares no valence with anything (itself included), so we
			// report the set as not valence connected to flag the horizon
			// problem.
			return false
		}
		if m == V0|V1 {
			bivalent = true
		}
		union |= m
	}
	return bivalent || union == V0 || union == V1
}

// AnalyzeLayer computes the full layer report for S(x) with the given
// valence horizon applied to the successor states.
func AnalyzeLayer(succ core.Successor, o *Oracle, x core.State, horizon int) *LayerReport {
	states, actions := Layer(succ, x)
	r := &LayerReport{States: states, Actions: actions}

	sg := SimilarityGraph(states)
	r.SimilarityConnected = sg.Connected()
	r.SimilarityComponents = len(sg.Components())
	r.SDiameter, _ = sg.Diameter()

	r.Valences = make([]uint8, len(states))
	for i, s := range states {
		r.Valences[i] = o.Valences(s, horizon)
		switch r.Valences[i] {
		case V0 | V1:
			r.BivalentIdx = append(r.BivalentIdx, i)
		case 0:
			r.NullValentIdx = append(r.NullValentIdx, i)
		}
	}
	r.ValenceConnected = ValenceConnected(r.Valences)
	return r
}

// SetSDiameter returns the s-diameter of an arbitrary set of states (the
// diameter of its similarity graph) and whether the set is similarity
// connected. Used for the Lemma 7.6 diameter-recurrence experiments.
func SetSDiameter(states []core.State) (diameter int, connected bool) {
	return SimilarityGraph(states).Diameter()
}
