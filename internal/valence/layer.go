package valence

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// LayerReport is the result of analyzing one layer S(x): the distinct
// successor states of x, their similarity structure, and their valence
// structure within a horizon.
type LayerReport struct {
	// States are the distinct successor states, in first-occurrence order
	// of the successor enumeration.
	States []core.State
	// Actions[i] lists the action labels that produced States[i].
	Actions [][]string

	// SimilarityConnected reports whether (States, ~s) is connected.
	SimilarityConnected bool
	// SimilarityComponents is the number of connected components of
	// (States, ~s).
	SimilarityComponents int
	// SDiameter is the diameter of (States, ~s) (max over components if
	// disconnected).
	SDiameter int

	// Valences[i] is the horizon-bounded valence mask of States[i].
	Valences []uint8
	// ValenceConnected reports whether (States, ~v) is connected: either
	// some state is bivalent, or all states are univalent with the same
	// value. Null-valent states (no reachable decision within the horizon)
	// disconnect the valence graph unless they are the only state.
	ValenceConnected bool
	// BivalentIdx are the indices of bivalent states.
	BivalentIdx []int
	// NullValentIdx are the indices of null-valent states (horizon too
	// small to observe any decision).
	NullValentIdx []int
}

// Layer collects the distinct states of S(x) with their action labels.
func Layer(succ core.Successor, x core.State) (states []core.State, actions [][]string) {
	index := make(map[string]int)
	for _, s := range succ.Successors(x) {
		k := s.State.Key()
		i, seen := index[k]
		if !seen {
			i = len(states)
			index[k] = i
			states = append(states, s.State)
			actions = append(actions, nil)
		}
		actions[i] = append(actions[i], s.Action)
	}
	return states, actions
}

// SimilarityGraph builds the graph (states, ~s). x ~s y requires the two
// states to agree on everything except one process j's component, so rather
// than testing all pairs, each state is hashed under its n projection keys
// (environment plus every local except process j's) and core.Similar runs
// only within buckets of states that already agree modulo one process —
// near-linear for the dispersed layers the experiments produce, and
// identical in output to the all-pairs construction (the in-bucket Similar
// call keeps key collisions and the non-failed-witness condition exact).
// similarityBucketMin is the set size below which the all-pairs loop beats
// building projection-key buckets (string hashing dominates on tiny sets).
const similarityBucketMin = 48

func SimilarityGraph(states []core.State) *graph.Undirected {
	g := graph.NewUndirected(len(states))
	if len(states) < 2 {
		return g
	}
	if len(states) < similarityBucketMin {
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				if _, ok := core.Similar(states[i], states[j]); ok {
					g.AddEdge(i, j)
				}
			}
		}
		return g
	}
	// Bucket keys are replayed in first-insertion order (a function of the
	// states slice), so the edge order — and with it the undirected graph's
	// adjacency lists — is deterministic across runs.
	buckets := make(map[string][]int, len(states))
	order := make([]string, 0, len(states))
	for idx, x := range states {
		for j := 0; j < x.N(); j++ {
			k := projectionKey(x, j)
			if _, ok := buckets[k]; !ok {
				order = append(order, k)
			}
			buckets[k] = append(buckets[k], idx)
		}
	}
	type pair struct{ a, b int }
	// A similar pair can share up to n buckets; record each edge once.
	seen := make(map[pair]bool)
	for _, k := range order {
		b := buckets[k]
		for i := 0; i < len(b); i++ {
			for j := i + 1; j < len(b); j++ {
				p := pair{b[i], b[j]}
				if seen[p] {
					continue
				}
				seen[p] = true
				if _, ok := core.Similar(states[p.a], states[p.b]); ok {
					g.AddEdge(p.a, p.b)
				}
			}
		}
	}
	return g
}

// projectionKey is state x with process j's local component masked out: two
// states agreeing modulo j hash to the same key. The removed position j is
// part of the key so different maskings never share a bucket.
func projectionKey(x core.State, j int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(j))
	b.WriteByte('\x1f')
	b.WriteString(x.EnvKey())
	for i := 0; i < x.N(); i++ {
		if i == j {
			continue
		}
		b.WriteByte('\x1f')
		b.WriteString(x.Local(i))
	}
	return b.String()
}

// ValenceConnected reports whether a set of valence masks forms a connected
// (X, ~v) graph. Per the paper: X is valence connected exactly if either all
// states are v-univalent for one common v, or some state is bivalent (and no
// state is null-valent, which can only arise here from a too-small horizon).
func ValenceConnected(masks []uint8) bool {
	if len(masks) == 0 {
		return true
	}
	var union uint8
	bivalent := false
	for _, m := range masks {
		if m == 0 {
			// Null-valent: no decision reachable within the horizon. The
			// state shares no valence with anything (itself included), so we
			// report the set as not valence connected to flag the horizon
			// problem.
			return false
		}
		if m == V0|V1 {
			bivalent = true
		}
		union |= m
	}
	return bivalent || union == V0 || union == V1
}

// AnalyzeLayer computes the full layer report for S(x) with the given
// valence horizon applied to the successor states.
func AnalyzeLayer(succ core.Successor, o *Oracle, x core.State, horizon int) *LayerReport {
	states, actions := Layer(succ, x)
	r := &LayerReport{States: states, Actions: actions}

	sg := SimilarityGraph(states)
	r.SimilarityConnected = sg.Connected()
	r.SimilarityComponents = len(sg.Components())
	r.SDiameter, _ = sg.Diameter()

	r.Valences = make([]uint8, len(states))
	for i, s := range states {
		r.Valences[i] = o.Valences(s, horizon)
		switch r.Valences[i] {
		case V0 | V1:
			r.BivalentIdx = append(r.BivalentIdx, i)
		case 0:
			r.NullValentIdx = append(r.NullValentIdx, i)
		}
	}
	r.ValenceConnected = ValenceConnected(r.Valences)
	if rec := obs.Active(); rec != nil {
		rec.Add("layer.analyses", 1)
		rec.Add("layer.states", int64(len(states)))
		o.PublishStats(rec)
	}
	return r
}

// SetSDiameter returns the s-diameter of an arbitrary set of states (the
// diameter of its similarity graph) and whether the set is similarity
// connected. Used for the Lemma 7.6 diameter-recurrence experiments.
func SetSDiameter(states []core.State) (diameter int, connected bool) {
	return SimilarityGraph(states).Diameter()
}
