package valence_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// BenchmarkFieldSweep is the kernel-level micro-benchmark grid for the
// valence field: scalar reference engine vs bit-plane sweep, serial vs
// parallel, graded vs fixpoint-fallback graphs. Every row reports
// states/sec and allocs/op, so a kernel regression shows up here without
// running the full cmd/bench suite (`make benchfield` runs the grid in
// -benchtime=1x smoke mode on every tier1 pass).
func BenchmarkFieldSweep(b *testing.B) {
	graded := func(n, t int) *core.IDGraph {
		m := syncmp.NewSt(protocols.FloodSet{Rounds: t + 1}, n, t)
		g, err := core.ExploreIDParallel(m, t+1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	fixpoint := func(k int) *core.IDGraph {
		g, err := core.ExploreID(chainModel{k: k}, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if g.Graded() {
			b.Fatal("fixpoint fixture is graded")
		}
		return g
	}
	perSec := func(b *testing.B, g *core.IDGraph) {
		b.ReportMetric(float64(g.Len())*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
	}

	for _, cfg := range []struct{ n, t int }{{4, 2}, {6, 1}} {
		g := graded(cfg.n, cfg.t)
		name := fmt.Sprintf("graded/n=%d/t=%d", cfg.n, cfg.t)
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(valence.ScalarMasks(g)) != g.Len() {
					b.Fatal("size mismatch")
				}
			}
			perSec(b, g)
		})
		b.Run(name+"/planes-serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if valence.NewField(g).Len() != g.Len() {
					b.Fatal("size mismatch")
				}
			}
			perSec(b, g)
		})
		b.Run(name+"/planes-parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if valence.NewFieldParallel(g, 2).Len() != g.Len() {
					b.Fatal("size mismatch")
				}
			}
			perSec(b, g)
		})
		b.Run(name+"/planes-arena", func(b *testing.B) {
			var s valence.Sweep
			s.Field(g, 1) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Field(g, 1).Len() != g.Len() {
					b.Fatal("size mismatch")
				}
			}
			perSec(b, g)
		})
	}

	g := fixpoint(300)
	b.Run("fixpoint/chain=300/scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(valence.ScalarMasks(g)) != g.Len() {
				b.Fatal("size mismatch")
			}
		}
		perSec(b, g)
	})
	b.Run("fixpoint/chain=300/planes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if valence.NewField(g).Len() != g.Len() {
				b.Fatal("size mismatch")
			}
		}
		perSec(b, g)
	})
}

// BenchmarkCertifyGraphArena is BenchmarkCertifyGraph through the reused
// Sweep: the zero-alloc steady state the experiment drivers run in.
func BenchmarkCertifyGraphArena(b *testing.B) {
	for _, cfg := range []struct{ n, t int }{{5, 1}, {6, 1}} {
		b.Run(fmt.Sprintf("floodset/n=%d/t=%d", cfg.n, cfg.t), func(b *testing.B) {
			m := syncmp.NewSt(protocols.FloodSet{Rounds: cfg.t + 1}, cfg.n, cfg.t)
			g, err := core.ExploreIDParallel(m, cfg.t+1, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			var s valence.Sweep
			if _, err := s.CertifyGraph(g, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := s.CertifyGraph(g, 0)
				if err != nil || w.Kind != valence.OK {
					b.Fatal(err, w.Kind)
				}
			}
		})
	}
}
