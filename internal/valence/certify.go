package valence

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// WitnessKind classifies the outcome of certifying a consensus protocol
// over a layered submodel.
type WitnessKind int

// Witness kinds. OK means all three consensus requirements held on every
// S-run of at most the bound's layers.
const (
	OK WitnessKind = iota + 1
	AgreementViolation
	ValidityViolation
	UndecidedAtBound
	DecisionChanged // a write-once decision variable changed value
)

// String returns a human-readable name.
func (k WitnessKind) String() string {
	switch k {
	case OK:
		return "ok"
	case AgreementViolation:
		return "agreement violation"
	case ValidityViolation:
		return "validity violation"
	case UndecidedAtBound:
		return "undecided at bound"
	case DecisionChanged:
		return "write-once decision changed"
	default:
		return fmt.Sprintf("WitnessKind(%d)", int(k))
	}
}

// Witness is the outcome of Certify: either OK, or a violation together
// with the execution exhibiting it.
type Witness struct {
	Kind   WitnessKind
	Exec   *core.Execution // nil when Kind == OK
	Detail string
	// Explored is the number of (state, depth) pairs visited.
	Explored int
}

// ErrBudget is returned when certification exceeds the node budget. As a
// resilient.Sentinel it wraps resilient.ErrPartial, joining the
// canceled/deadline family under one degradation check.
var ErrBudget = resilient.Sentinel("valence: certification exceeded state budget")

// Certify exhaustively checks the consensus requirements over all S-runs of
// the model up to `bound` layers: agreement (all processes non-failed at a
// state that have decided agree), validity (every decision is some process's
// input in that run), decision (every process non-failed at the
// bound-layer state has decided by then), and write-once stability of
// decisions across each transition. maxVisits bounds the total number of
// (state, remaining-depth) visits across all initial states (0 = no bound).
//
// The first violation found (scanning initial states in Inits order and
// successors in enumeration order) is returned with its witness execution.
func Certify(m core.Model, bound, maxVisits int) (*Witness, error) {
	return CertifyFrom(m, m.Inits(), bound, maxVisits)
}

// CertifyFrom is Certify over an explicit set of initial states — e.g. a
// multivalued Con_0 built with a model's Initial method, or a single
// suspicious input assignment.
func CertifyFrom(m core.Model, inits []core.State, bound, maxVisits int) (*Witness, error) {
	rec := obs.Active()
	defer obs.Span(rec, "certify.time")()
	c := newCertifier(m, bound, maxVisits)
	for _, init := range inits {
		inputs := inputMask(init)
		exec := &core.Execution{Init: init}
		w, err := c.dfs(c.cache.ID(init), init, bound, inputs, exec)
		if err != nil {
			return nil, err
		}
		if w != nil {
			w.Explored = c.visits
			c.finish(rec, w)
			return w, nil
		}
	}
	w := &Witness{Kind: OK, Explored: c.visits}
	c.finish(rec, w)
	return w, nil
}

// finish publishes the recursive certifier's counters and emits
// certify.done, mirroring the graph engine's event so journals read the
// same whichever engine ran.
func (c *certifier) finish(rec obs.Recorder, w *Witness) {
	if rec == nil {
		return
	}
	rec.Add("certify.runs", 1)
	rec.Add("certify.visits", int64(c.visits))
	rec.Set("certify.explored", int64(c.visits))
	rec.Event("certify.done",
		obs.F{Key: "engine", Value: "recursive"},
		obs.F{Key: "verdict", Value: w.Kind.String()},
		obs.F{Key: "explored", Value: w.Explored},
		obs.F{Key: "memo", Value: len(c.memo)})
}

// certMemoKey keys the certified-clean memo on the state's dense cache id
// instead of its canonical key string — smaller keys, no per-visit hashing
// of long state strings.
type certMemoKey struct {
	id     uint32
	depth  int32
	inputs uint64
}

type certifier struct {
	m         core.Model
	cache     *core.SuccessorCache
	bound     int
	maxVisits int
	visits    int
	memo      map[certMemoKey]bool // true = subtree certified clean
}

// newCertifier builds a certifier drawing successors from the model's
// shared cache (a private one if the model has none). The memo table is
// always private to the certifier.
func newCertifier(m core.Model, bound, maxVisits int) *certifier {
	return &certifier{
		m:         m,
		cache:     core.CacheOf(m),
		bound:     bound,
		maxVisits: maxVisits,
		memo:      make(map[certMemoKey]bool),
	}
}

func (c *certifier) dfs(id uint32, x core.State, remaining int, inputs uint64, exec *core.Execution) (*Witness, error) {
	mk := certMemoKey{id: id, depth: int32(remaining), inputs: inputs}
	if c.memo[mk] {
		return nil, nil
	}
	c.visits++
	if c.maxVisits > 0 && c.visits > c.maxVisits {
		return nil, fmt.Errorf("after %d visits: %w", c.visits, ErrBudget)
	}

	if w := checkState(x, inputs); w != nil {
		w.Exec = exec
		return w, nil
	}
	if remaining == 0 {
		if !core.AllDecided(x) {
			return &Witness{
				Kind:   UndecidedAtBound,
				Exec:   exec,
				Detail: fmt.Sprintf("a non-failed process is undecided after %d layers", c.bound),
			}, nil
		}
		c.memo[mk] = true
		return nil, nil
	}
	succs, sids := c.cache.SuccessorsOf(id, x)
	for i := range succs {
		s := succs[i]
		if w := checkWriteOnce(x, s.State); w != nil {
			w.Exec = exec.Extend(s.Action, s.State)
			w.Detail = fmt.Sprintf("%s (action %s)", w.Detail, s.Action)
			return w, nil
		}
		w, err := c.dfs(sids[i], s.State, remaining-1, inputs, exec.Extend(s.Action, s.State))
		if err != nil || w != nil {
			return w, err
		}
	}
	c.memo[mk] = true
	return nil, nil
}

// checkState checks agreement and validity at a single state.
func checkState(x core.State, inputs uint64) *Witness {
	seen := -1
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		v, ok := x.Decided(i)
		if !ok {
			continue
		}
		if v >= 0 && v < 63 && inputs&(1<<uint(v)) == 0 {
			return &Witness{
				Kind:   ValidityViolation,
				Detail: fmt.Sprintf("process %d decided %d, which is nobody's input", i, v),
			}
		}
		if seen >= 0 && v != seen {
			return &Witness{
				Kind:   AgreementViolation,
				Detail: fmt.Sprintf("non-failed processes decided both %d and %d", seen, v),
			}
		}
		seen = v
	}
	return nil
}

// checkWriteOnce verifies decisions are stable across a transition.
func checkWriteOnce(x, y core.State) *Witness {
	for i := 0; i < x.N(); i++ {
		v, ok := x.Decided(i)
		if !ok {
			continue
		}
		w, ok2 := y.Decided(i)
		if !ok2 || w != v {
			return &Witness{
				Kind:   DecisionChanged,
				Detail: fmt.Sprintf("process %d had decided %d but successor reports (%d,%v)", i, v, w, ok2),
			}
		}
	}
	return nil
}

// inputMask returns the set of input values of a run's initial state as a
// bitmask, or all-ones if the state does not expose inputs (disabling the
// validity check).
func inputMask(init core.State) uint64 {
	in, ok := init.(core.Input)
	if !ok {
		return ^uint64(0)
	}
	var mask uint64
	for i := 0; i < init.N(); i++ {
		v := in.InputOf(i)
		if v >= 0 && v < 63 {
			mask |= 1 << uint(v)
		}
	}
	return mask
}
