package valence_test

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/resilient"
	"repro/internal/valence"
)

// wmState is a node of the synthetic wide graded model: layer, index within
// the layer, and an optional decided value (-1 = undecided). Two dummy
// processes, no failures.
type wmState struct {
	layer, idx, decide int
}

func (s wmState) N() int      { return 2 }
func (s wmState) Key() string { return fmt.Sprintf("wm|%d|%d|%d", s.layer, s.idx, s.decide) }
func (s wmState) EnvKey() string {
	return strconv.Itoa(s.layer)
}
func (s wmState) Local(i int) string { return fmt.Sprintf("%d|%d|%d", i, s.idx, s.decide) }
func (s wmState) Decided(int) (int, bool) {
	if s.decide < 0 {
		return core.Undecided, false
	}
	return s.decide, true
}
func (s wmState) FailedAt(int) bool { return false }

// wideModel is a graded model with `width` nodes at every layer: node
// (d, i) steps to (d+1, i) and (d+1, (i+1) mod width), and the layer at
// `depth` decides idx mod 2. Its layers are wide enough to span several
// 64-node words, which is what the word-aligned sharding tests need.
type wideModel struct{ width, depth int }

func (m wideModel) Name() string { return "test/wide" }

func (m wideModel) Inits() []core.State {
	out := make([]core.State, m.width)
	for i := range out {
		out[i] = wmState{layer: 0, idx: i, decide: -1}
	}
	return out
}

func (m wideModel) Successors(x core.State) []core.Succ {
	s := x.(wmState)
	next := s.layer + 1
	dec := func(idx int) int {
		if next >= m.depth {
			return idx % 2
		}
		return -1
	}
	i, j := s.idx, (s.idx+1)%m.width
	return []core.Succ{
		{Action: "a", State: wmState{layer: next, idx: i, decide: dec(i)}},
		{Action: "b", State: wmState{layer: next, idx: j, decide: dec(j)}},
	}
}

// chState is a node of the synthetic same-depth-chain model: chain index
// (decide < 0) or a decided leaf.
type chState struct {
	id, decide int
}

func (s chState) N() int             { return 2 }
func (s chState) Key() string        { return fmt.Sprintf("ch|%d|%d", s.id, s.decide) }
func (s chState) EnvKey() string     { return "" }
func (s chState) Local(i int) string { return fmt.Sprintf("%d|%d|%d", i, s.id, s.decide) }
func (s chState) Decided(int) (int, bool) {
	if s.decide < 0 {
		return core.Undecided, false
	}
	return s.decide, true
}
func (s chState) FailedAt(int) bool { return false }

// chainModel produces a non-graded graph: every chain node c_0..c_k is an
// initial state, c_i steps to c_(i-1) — a same-depth shortcut edge, since
// both ends sit in layer 0 — and c_0 steps to a leaf that decides 0. With
// k >= 64 the shortcut edges cross the 64-node word boundary, and the
// descending-id fixpoint sweep needs ~k passes because valence propagates
// toward increasing ids one step per pass.
type chainModel struct{ k int }

func (m chainModel) Name() string { return "test/chain" }

func (m chainModel) Inits() []core.State {
	out := make([]core.State, m.k+1)
	for i := range out {
		out[i] = chState{id: i, decide: -1}
	}
	return out
}

func (m chainModel) Successors(x core.State) []core.Succ {
	s := x.(chState)
	if s.id == 0 {
		return []core.Succ{{Action: "d", State: chState{id: -1, decide: 0}}}
	}
	return []core.Succ{{Action: "s", State: chState{id: s.id - 1, decide: -1}}}
}

// TestFieldShardWordAlignment sweeps a graph whose layers span several
// 64-node words with explicit worker counts and requires bit-identity with
// the serial sweep and the scalar reference engine. Run under -race (the
// Makefile race target does), it is the guard the shard geometry is pinned
// by: shards must be cut on whole-word boundaries, and a reintroduced
// sub-word split would make two workers read-modify-write the same plane
// word — a write-write race the detector flags even when the masks happen
// to come out right.
func TestFieldShardWordAlignment(t *testing.T) {
	g, err := core.ExploreID(wideModel{width: 200, depth: 3}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Graded() {
		t.Fatal("wide model graph should be graded")
	}
	if lo, hi, ok := g.LayerSpan(1); !ok || hi-lo != 200 {
		t.Fatalf("LayerSpan(1) = [%d,%d) ok=%v, want a 200-node window", lo, hi, ok)
	}
	scalar := valence.ScalarMasks(g)
	serial := valence.NewField(g)
	if !bytes.Equal(serial.Masks(), scalar) {
		t.Fatal("serial bit-plane field differs from scalar reference")
	}
	// 200-node layers occupy 4 plane words, so worker counts 2..4 produce
	// genuinely concurrent word-range shards (explicit counts bypass the
	// fieldShardMin heuristic).
	for _, workers := range []int{2, 3, 4, runtime.GOMAXPROCS(0)} {
		f := valence.NewFieldParallel(g, workers)
		if !bytes.Equal(f.Masks(), scalar) {
			t.Fatalf("workers=%d: sharded field differs from scalar reference", workers)
		}
	}
}

// TestFieldFixpointWordBoundary pins the non-graded fixpoint fallback at
// word boundaries: the chain model's same-depth shortcut edges cross the
// 64-node word boundary (c_64 -> c_63 reads plane word 1 while computing
// word 0, and the decided leaf's bit must then march back up across the
// boundary one pass at a time). Masks must be bit-identical to the scalar
// engine and to the known answer — every node 0-valent.
func TestFieldFixpointWordBoundary(t *testing.T) {
	const k = 100
	g, err := core.ExploreID(chainModel{k: k}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Graded() {
		t.Fatal("chain model graph should not be graded (same-depth shortcut edges)")
	}
	if g.Len() != k+2 {
		t.Fatalf("graph has %d nodes, want %d", g.Len(), k+2)
	}
	f := valence.NewField(g)
	scalar := valence.ScalarMasks(g)
	if !bytes.Equal(f.Masks(), scalar) {
		t.Fatal("fixpoint bit-plane field differs from scalar reference")
	}
	for u := 0; u < g.Len(); u++ {
		if got := f.Mask(uint32(u)); got != valence.V0 {
			t.Fatalf("node %d: mask %02b, want %02b (0-valent via the chain)", u, got, valence.V0)
		}
	}
}

// TestFieldMatchesScalarPlanes is the tentpole's pinning property: across
// all nine model families, graded and fixpoint graphs, worker counts
// {1, 2, GOMAXPROCS}, and a checkpoint/resume cut, the bit-plane field is
// bit-for-bit identical to the retained scalar reference engine.
func TestFieldMatchesScalarPlanes(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, n := range []int{2, 3} {
		for _, mc := range fieldModels(n, 1, 2) {
			depth := 2
			if mc.heavy && n >= 3 {
				depth = 1
			}
			t.Run(fmt.Sprintf("%s-n%d-d%d", mc.name, n, depth), func(t *testing.T) {
				g, err := core.ExploreID(mc.m, depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				scalar := valence.ScalarMasks(g)
				for _, workers := range workerCounts {
					f := valence.NewFieldParallel(g, workers)
					if !bytes.Equal(f.Masks(), scalar) {
						t.Fatalf("workers=%d: bit-plane field differs from scalar (graded=%v)", workers, g.Graded())
					}
				}
				// A reused Sweep (arena-backed planes) must agree too.
				var s valence.Sweep
				for i := 0; i < 2; i++ {
					if !bytes.Equal(s.Field(g, 1).Masks(), scalar) {
						t.Fatalf("sweep pass %d: arena-backed field differs from scalar", i)
					}
				}
				if !g.Graded() {
					return // the fixpoint fallback is not checkpointed
				}
				// Cut the sweep mid-way, resume from the persisted
				// checkpoint, and require the same bits.
				plan := chaos.NewPlan().Set("field.layer",
					chaos.Rule{Hit: uint64(1 + g.NumLayers()/2), Kind: chaos.KindCancel})
				chaos.Arm(plan)
				_, perr := valence.NewFieldParallelCtx(nil, g, 2)
				chaos.Disarm()
				if !errors.Is(perr, resilient.ErrPartial) {
					t.Fatalf("cut err = %v, want ErrPartial family", perr)
				}
				got, rerr := valence.NewFieldParallelCtx(resumeCtx(t, perr), g, 2)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if !bytes.Equal(got.Masks(), scalar) {
					t.Fatal("resumed bit-plane field differs from scalar")
				}
			})
		}
	}
}
