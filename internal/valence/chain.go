package valence

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrNoBivalentInit is returned when no initial state is bivalent within
// the horizon. For a consensus protocol satisfying decision and validity
// over a model displaying an arbitrary crash failure, Lemma 3.6 guarantees a
// bivalent initial state; failing to find one usually means the horizon is
// too small to observe decisions, or the protocol violates validity.
var ErrNoBivalentInit = errors.New("valence: no bivalent initial state within horizon")

// HorizonFunc gives the valence lookahead used for states at a given chain
// depth. ConstHorizon and DecreasingHorizon cover the common cases.
type HorizonFunc func(depth int) int

// ConstHorizon returns the constant lookahead h at every depth.
func ConstHorizon(h int) HorizonFunc { return func(int) int { return h } }

// DecreasingHorizon returns bound-depth (floored at min): exact valence for
// protocols whose decisions all occur within `bound` layers of the start.
func DecreasingHorizon(bound, min int) HorizonFunc {
	return func(depth int) int {
		h := bound - depth
		if h < min {
			return min
		}
		return h
	}
}

// Chain is the result of the bivalent-chain construction of Theorem 4.2 /
// Lemma 6.1: an execution all of whose states are bivalent (within the
// per-depth horizons).
type Chain struct {
	// Exec is the constructed execution; its states are bivalent up to
	// Reached layers.
	Exec *core.Execution
	// Reached is the number of layers successfully extended.
	Reached int
	// Stuck is non-nil if the chain could not be extended to the target:
	// it reports the layer whose successor set contained no bivalent state.
	Stuck *LayerReport
}

// BivalentChain constructs an execution of `target` layers from a bivalent
// initial state, choosing a bivalent successor at every step (Lemma 4.1).
// Valences at depth d are computed with lookahead horizon(d).
//
// If at some depth no successor is bivalent, the construction stops and the
// returned Chain carries the offending layer's report; per the paper this
// happens exactly when S(x) fails to be valence connected (or when the
// horizon is too small), so the report is the interesting diagnostic.
func BivalentChain(m core.Model, o *Oracle, horizon HorizonFunc, target int) (*Chain, error) {
	var x core.State
	for _, init := range m.Inits() {
		if o.Bivalent(init, horizon(0)) {
			x = init
			break
		}
	}
	if x == nil {
		return nil, ErrNoBivalentInit
	}
	exec := &core.Execution{Init: x}
	for d := 0; d < target; d++ {
		h := horizon(d + 1)
		var found bool
		for _, s := range m.Successors(x) {
			if o.Bivalent(s.State, h) {
				exec = exec.Extend(s.Action, s.State)
				x = s.State
				found = true
				break
			}
		}
		if !found {
			return &Chain{
				Exec:    exec,
				Reached: d,
				Stuck:   AnalyzeLayer(m, o, x, h),
			}, nil
		}
	}
	return &Chain{Exec: exec, Reached: target}, nil
}

// CheckBivalentUndecided verifies the conclusion of Lemma 3.1 at state x:
// if x is bivalent (within the horizon) then at least n-t processes that are
// non-failed at x have not decided. It returns an error describing the
// violation, or nil.
func CheckBivalentUndecided(o *Oracle, x core.State, horizon, t int) error {
	if !o.Bivalent(x, horizon) {
		return nil
	}
	undecided := 0
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if _, ok := x.Decided(i); !ok {
			undecided++
		}
	}
	if undecided < x.N()-t {
		return fmt.Errorf("valence: bivalent state has only %d undecided non-failed processes, want >= %d", undecided, x.N()-t)
	}
	return nil
}
