package valence

import (
	"repro/internal/core"
)

// NaiveValences computes the horizon-bounded valence mask of x without
// memoization, by plain DFS. It exists as the ablation baseline for the
// Oracle's memo table (see BenchmarkAblationMemoization): the two must
// agree everywhere, and the memoized oracle should dominate as soon as
// layers share successor states.
func NaiveValences(succ core.Successor, x core.State, horizon int) uint8 {
	mask := uint8(core.DecidedValues(x) & 0b11)
	if mask != V0|V1 && horizon > 0 {
		for _, s := range succ.Successors(x) {
			mask |= NaiveValences(succ, s.State, horizon-1)
			if mask == V0|V1 {
				break
			}
		}
	}
	return mask
}
