package valence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// allocGraph materializes the steady-state fixture: a graded
// FloodSet(t+1) graph — certifiably correct, so the clean (OK) paths run —
// whose per-graph caches (decided planes, certifier check planes, layer
// layout) are warmed by one field sweep and one certification, so
// AllocsPerRun sees only the per-sweep cost.
func allocGraph(t testing.TB, n int) *core.IDGraph {
	t.Helper()
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, n, 1)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFieldSweepZeroAlloc proves the tentpole's allocation claim for the
// field: after arena warmup, a serial Sweep.Field over a fixed graph is
// 0 allocs/op.
func TestFieldSweepZeroAlloc(t *testing.T) {
	g := allocGraph(t, 4)
	var s valence.Sweep
	s.Field(g, 1) // warm the arena and the per-graph caches
	if avg := testing.AllocsPerRun(50, func() { s.Field(g, 1) }); avg != 0 {
		t.Fatalf("steady-state field sweep: %v allocs/op, want 0 (arena %d bytes)", avg, s.Bytes())
	}
}

// TestCertifyGraphZeroAlloc proves the claim for the certifier: after
// warmup, a clean Sweep.CertifyGraph over a fixed graph is 0 allocs/op —
// the visited bitsets come from the arena, the map and stack are reused,
// and the OK witness is the certifier's own.
func TestCertifyGraphZeroAlloc(t *testing.T) {
	g := allocGraph(t, 4)
	var s valence.Sweep
	w, err := s.CertifyGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != valence.OK {
		t.Fatalf("fixture verdict = %v, want OK", w.Kind)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, cerr := s.CertifyGraph(g, 0); cerr != nil {
			t.Fatal(cerr)
		}
	}); avg != 0 {
		t.Fatalf("steady-state certification: %v allocs/op, want 0 (arena %d bytes)", avg, s.Bytes())
	}
}

// TestSweepResultsMatchPackageLevel pins the Sweep front end to the
// allocating entry points: same masks, same verdict, same Explored count.
func TestSweepResultsMatchPackageLevel(t *testing.T) {
	g := allocGraph(t, 3)
	var s valence.Sweep
	wantF := valence.NewField(g)
	gotF := s.Field(g, 1)
	if want, got := wantF.Masks(), gotF.Masks(); string(want) != string(got) {
		t.Fatal("Sweep.Field masks differ from NewField")
	}
	wantW, err := valence.CertifyGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := s.CertifyGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantW.Kind != gotW.Kind || wantW.Explored != gotW.Explored {
		t.Fatalf("Sweep.CertifyGraph = (%v, %d), want (%v, %d)",
			gotW.Kind, gotW.Explored, wantW.Kind, wantW.Explored)
	}
}
