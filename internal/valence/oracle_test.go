package valence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestValenceMonotoneInHorizon: v-valence within horizon h implies
// v-valence within any larger horizon — the mask can only grow.
func TestValenceMonotoneInHorizon(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	g, err := core.Explore(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := valence.NewOracle(m)
	for _, x := range g.Nodes {
		prev := uint8(0)
		for h := 0; h <= rounds+1; h++ {
			cur := o.Valences(x, h)
			if cur&prev != prev {
				t.Fatalf("valence mask shrank from %02b to %02b at horizon %d", prev, cur, h)
			}
			prev = cur
		}
	}
}

// TestValenceZeroHorizonIsDecisions: with horizon 0 the mask is exactly
// the decided values of the state's non-failed processes.
func TestValenceZeroHorizonIsDecisions(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	g, err := core.Explore(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := valence.NewOracle(m)
	for _, x := range g.Nodes {
		if got, want := o.Valences(x, 0), uint8(core.DecidedValues(x)&0b11); got != want {
			t.Fatalf("Valences(x,0) = %02b, want %02b", got, want)
		}
	}
}

// TestUnivalentAndShared exercises the classification helpers.
func TestUnivalentAndShared(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	o := valence.NewOracle(m)
	zero := m.Initial([]int{0, 0, 0})
	one := m.Initial([]int{1, 1, 1})
	mixed := m.Initial([]int{0, 1, 1})
	if v, ok := o.Univalent(zero, rounds); !ok || v != 0 {
		t.Errorf("all-0: Univalent = (%d,%v)", v, ok)
	}
	if v, ok := o.Univalent(one, rounds); !ok || v != 1 {
		t.Errorf("all-1: Univalent = (%d,%v)", v, ok)
	}
	if _, ok := o.Univalent(mixed, rounds); ok {
		t.Error("mixed input reported univalent (it is bivalent)")
	}
	if !o.SharedValence(zero, mixed, rounds) {
		t.Error("bivalent state must share a valence with a 0-valent one")
	}
	if o.SharedValence(zero, one, rounds) {
		t.Error("opposite univalent states share no valence")
	}
	if o.MemoLen() == 0 {
		t.Error("memo empty after queries")
	}
}

// TestValenceConnectedClassifier pins the ValenceConnected truth table.
func TestValenceConnectedClassifier(t *testing.T) {
	const both = valence.V0 | valence.V1
	cases := []struct {
		masks []uint8
		want  bool
	}{
		{nil, true},
		{[]uint8{valence.V0}, true},
		{[]uint8{0}, false},
		{[]uint8{valence.V0, valence.V0}, true},
		{[]uint8{valence.V1, valence.V1, valence.V1}, true},
		{[]uint8{valence.V0, valence.V1}, false},
		{[]uint8{valence.V0, both, valence.V1}, true},
		{[]uint8{valence.V0, 0, valence.V0}, false},
		{[]uint8{both}, true},
	}
	for i, c := range cases {
		if got := valence.ValenceConnected(c.masks); got != c.want {
			t.Errorf("case %d %v: got %v, want %v", i, c.masks, got, c.want)
		}
	}
}

// TestLayerActionsGrouping: Layer dedupes states and groups actions.
func TestLayerActionsGrouping(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	x := m.Initial([]int{0, 1, 1})
	states, actions := valence.Layer(m, x)
	if len(states) != len(actions) {
		t.Fatal("states/actions length mismatch")
	}
	total := 0
	seen := make(map[string]bool)
	for i, s := range states {
		if seen[s.Key()] {
			t.Error("duplicate state in layer")
		}
		seen[s.Key()] = true
		if len(actions[i]) == 0 {
			t.Error("state with no action")
		}
		total += len(actions[i])
	}
	if want := len(m.Successors(x)); total != want {
		t.Errorf("grouped %d actions, want %d", total, want)
	}
}

// TestCheckBivalentUndecided: where Lemma 3.1's premises hold, the check
// passes; where a protocol has already broken agreement (a state that is
// "bivalent" only because decided processes disagree), the conclusion fails
// and the checker flags it.
func TestCheckBivalentUndecided(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	o := valence.NewOracle(m)

	// Premises hold: a genuinely bivalent pre-decision state.
	mixed := m.Initial([]int{0, 1, 1})
	if !o.Bivalent(mixed, rounds) {
		t.Fatal("mixed initial state should be bivalent")
	}
	if err := valence.CheckBivalentUndecided(o, mixed, rounds, 1); err != nil {
		t.Errorf("Lemma 3.1 check failed on a legitimate bivalent state: %v", err)
	}

	// Premises violated: drive FloodSet into disagreement. Inputs (1,1,0);
	// process 2 (the sole 0-holder) omits to {0,1} in round 1 and to {0}
	// in round 2: decisions are 1,0,0 — every process decided, mask = both.
	x := m.Initial([]int{1, 1, 0})
	y := m.Apply(m.Apply(x, 2, syncmp.OmitMask(2)), 2, syncmp.OmitMask(1))
	if !o.Bivalent(y, 0) {
		t.Fatal("schedule did not produce disagreement")
	}
	if err := valence.CheckBivalentUndecided(o, y, 0, 1); err == nil {
		t.Error("checker accepted a fully-decided 'bivalent' state (agreement already broken)")
	}
}

// TestOracleBivalentMonotonicityShrinksMemo exercises the bivalence
// shortcut across the E5 horizon schedule: certifying at a ladder of
// growing horizons (as the round-lower-bound experiment does when
// re-analyzing with larger bounds) must answer states already known
// bivalent from the per-id bitset instead of adding new (id, horizon) memo
// entries — one oracle across the schedule ends smaller than the sum of
// fresh per-horizon oracles, and answers must not change.
func TestOracleBivalentMonotonicityShrinksMemo(t *testing.T) {
	// FloodSet decides at round 2, so bivalence of the mixed-input inits
	// becomes visible at horizon 2; the schedule then grows past it.
	const n, tf, lo, hi = 4, 2, 2, 4
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, n, tf)
	inits := m.Inits()

	perHorizon := 0
	for h := lo; h <= hi; h++ {
		o := valence.NewOracle(m)
		for _, x := range inits {
			o.Valences(x, h)
		}
		perHorizon += o.MemoLen()
	}

	o := valence.NewOracle(m)
	for h := lo; h <= hi; h++ {
		for _, x := range inits {
			o.Valences(x, h)
		}
	}
	if o.MemoLen() >= perHorizon {
		t.Fatalf("schedule memo %d not smaller than per-horizon sum %d", o.MemoLen(), perHorizon)
	}

	for h := lo; h <= hi; h++ {
		ref := valence.NewOracle(m)
		for _, x := range inits {
			if got, want := o.Valences(x, h), ref.Valences(x, h); got != want {
				t.Fatalf("horizon %d: %02b != %02b for %s", h, got, want, x.Key())
			}
		}
	}
}

// TestOracleMemoGrowthAcrossSchedule pins the saving at its source: once a
// state is known bivalent at some horizon, querying it at every larger
// horizon adds no memo entries at all.
func TestOracleMemoGrowthAcrossSchedule(t *testing.T) {
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1)
	init := m.Initial([]int{0, 1, 1})
	o := valence.NewOracle(m)
	if !o.Bivalent(init, 2) {
		t.Fatal("mixed-input initial state should be bivalent at horizon 2")
	}
	before := o.MemoLen()
	for h := 3; h <= 7; h++ {
		if !o.Bivalent(init, h) {
			t.Fatalf("monotonicity violated at horizon %d", h)
		}
	}
	if got := o.MemoLen(); got != before {
		t.Errorf("larger-horizon queries grew the memo: %d -> %d", before, got)
	}
}

func TestWitnessKindStrings(t *testing.T) {
	want := map[valence.WitnessKind]string{
		valence.OK:                 "ok",
		valence.AgreementViolation: "agreement violation",
		valence.ValidityViolation:  "validity violation",
		valence.UndecidedAtBound:   "undecided at bound",
		valence.DecisionChanged:    "write-once decision changed",
		valence.WitnessKind(99):    "WitnessKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if h := valence.ConstHorizon(4); h(0) != 4 || h(7) != 4 {
		t.Error("ConstHorizon broken")
	}
	// SetSDiameter on a tiny set.
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	if d, conn := valence.SetSDiameter(m.Inits()[:2]); !conn || d != 1 {
		t.Errorf("SetSDiameter = (%d,%v)", d, conn)
	}
}
