package valence

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/resilient"
)

// graphFingerprint hashes the deterministic identity of a materialized
// graph — node keys, CSR framing, edge targets and actions, depth bound —
// into one 64-bit value. Valence checkpoints carry it instead of a model
// name: they snapshot an analysis over a graph, and a resumed process
// re-materializes the graph deterministically, so equal fingerprints mean
// the snapshot's node ids and bitsets line up bit-for-bit.
func graphFingerprint(g *core.IDGraph) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(g.Len()))
	put(uint64(g.NumEdges()))
	put(uint64(g.Depth))
	for _, k := range g.Keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	for _, v := range g.EdgeStart {
		put(uint64(v))
	}
	for _, v := range g.EdgeTo {
		put(uint64(v))
	}
	for _, a := range g.EdgeAction {
		h.Write([]byte(a))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// CertifyCheckpoint is the resumable snapshot of an interrupted
// CertifyGraphCtx: the root cursor, visit and step counters, the DFS stack
// of the in-flight root, and every per-input-mask visited bitset, keyed to
// the graph by fingerprint.
type CertifyCheckpoint struct {
	Fingerprint uint64
	MaxVisits   int
	RootIdx     int
	Visits      int
	Steps       int
	Stack       []gframe
	Visited     map[uint64][]uint64
}

// checkpoint snapshots the certifier at the current cut.
func (c *graphCertifier) checkpoint() *CertifyCheckpoint {
	return &CertifyCheckpoint{
		Fingerprint: graphFingerprint(c.g),
		MaxVisits:   c.maxVisits,
		RootIdx:     c.rootIdx,
		Visits:      c.visits,
		Steps:       c.steps,
		Stack:       append([]gframe(nil), c.stack...),
		Visited:     c.visited,
	}
}

// restore loads the snapshot into a fresh certifier.
func (ck *CertifyCheckpoint) restore(c *graphCertifier) {
	c.rootIdx = ck.RootIdx
	c.visits = ck.Visits
	c.steps = ck.Steps
	c.stack = append(c.stack[:0], ck.Stack...)
	c.visited = ck.Visited
}

// Matches reports whether the snapshot belongs to this (graph, maxVisits)
// call.
func (ck *CertifyCheckpoint) Matches(g *core.IDGraph, maxVisits int) bool {
	return ck.MaxVisits == maxVisits && ck.Fingerprint == graphFingerprint(g)
}

// Sections encodes the snapshot as the resilient.TagCertify section.
// Bitsets are written in sorted input-mask order so the payload is
// deterministic.
func (ck *CertifyCheckpoint) Sections() ([]resilient.Section, error) {
	size := 64 + 12*len(ck.Stack)
	for _, bs := range ck.Visited {
		size += 16 + 8*len(bs)
	}
	enc := resilient.NewEnc(size)
	enc.U64(ck.Fingerprint)
	enc.Int(ck.MaxVisits)
	enc.Int(ck.RootIdx)
	enc.Int(ck.Visits)
	enc.Int(ck.Steps)
	enc.Int(len(ck.Stack))
	for _, f := range ck.Stack {
		enc.U32(f.node)
		enc.U32(uint32(f.via))
		enc.U32(f.next)
	}
	masks := make([]uint64, 0, len(ck.Visited))
	for m := range ck.Visited {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	enc.Int(len(masks))
	for _, m := range masks {
		bs := ck.Visited[m]
		enc.U64(m)
		enc.Int(len(bs))
		for _, w := range bs {
			enc.U64(w)
		}
	}
	return []resilient.Section{{Tag: resilient.TagCertify, Data: enc.Bytes()}}, nil
}

// DecodeCertifyCheckpoint parses a resilient.TagCertify section payload.
func DecodeCertifyCheckpoint(data []byte) (*CertifyCheckpoint, error) {
	d := resilient.NewDec(data)
	ck := &CertifyCheckpoint{
		Fingerprint: d.U64(),
		MaxVisits:   d.Int(),
		RootIdx:     d.Int(),
		Visits:      d.Int(),
		Steps:       d.Int(),
	}
	nStack := d.Int()
	for i := 0; i < nStack && d.Err() == nil; i++ {
		ck.Stack = append(ck.Stack, gframe{node: d.U32(), via: int32(d.U32()), next: d.U32()})
	}
	nMasks := d.Int()
	ck.Visited = make(map[uint64][]uint64, nMasks)
	for i := 0; i < nMasks && d.Err() == nil; i++ {
		m := d.U64()
		words := make([]uint64, d.Int())
		for j := range words {
			words[j] = d.U64()
		}
		ck.Visited[m] = words
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: certify section: %v", resilient.ErrBadCheckpoint, err)
		}
		return nil, fmt.Errorf("%w: certify section has trailing bytes", resilient.ErrBadCheckpoint)
	}
	return ck, nil
}

// FieldCheckpoint is the resumable snapshot of an interrupted field sweep:
// the masks computed so far and the next (deepest unfinished) layer, keyed
// to the graph by fingerprint. Re-sweeping the interrupted layer is
// idempotent — on a graded graph a layer's masks read only deeper layers —
// so the cut needs no finer granularity than the layer index.
type FieldCheckpoint struct {
	Fingerprint uint64
	NextLayer   int
	Masks       []uint8
}

// Matches reports whether the snapshot belongs to this graph.
func (ck *FieldCheckpoint) Matches(g *core.IDGraph) bool {
	return len(ck.Masks) == g.Len() && ck.Fingerprint == graphFingerprint(g)
}

// Sections encodes the snapshot as the resilient.TagField section.
func (ck *FieldCheckpoint) Sections() ([]resilient.Section, error) {
	enc := resilient.NewEnc(32 + len(ck.Masks))
	enc.U64(ck.Fingerprint)
	enc.Int(ck.NextLayer)
	enc.Raw(ck.Masks)
	return []resilient.Section{{Tag: resilient.TagField, Data: enc.Bytes()}}, nil
}

// DecodeFieldCheckpoint parses a resilient.TagField section payload.
func DecodeFieldCheckpoint(data []byte) (*FieldCheckpoint, error) {
	d := resilient.NewDec(data)
	ck := &FieldCheckpoint{
		Fingerprint: d.U64(),
		NextLayer:   d.Int(),
		Masks:       d.Raw(),
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: field section: %v", resilient.ErrBadCheckpoint, err)
		}
		return nil, fmt.Errorf("%w: field section has trailing bytes", resilient.ErrBadCheckpoint)
	}
	return ck, nil
}
