package valence_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/resilient"
	"repro/internal/shmem"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// ckptGraph materializes the standard graded fixture for checkpoint tests.
func ckptGraph(t *testing.T, m core.Model, bound int) *core.IDGraph {
	t.Helper()
	g, err := core.ExploreID(m, bound, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// resumeCtx persists the checkpoint attached to err through the binary
// container and returns a fresh context carrying it, mirroring a process
// that saved the file, exited, and restarted with -resume.
func resumeCtx(t *testing.T, err error) *resilient.Ctx {
	t.Helper()
	ck, ok := resilient.CheckpointFrom(err)
	if !ok {
		t.Fatalf("no checkpoint attached to %v", err)
	}
	sections, serr := ck.Sections()
	if serr != nil {
		t.Fatal(serr)
	}
	var buf bytes.Buffer
	if werr := resilient.WriteSections(&buf, sections); werr != nil {
		t.Fatal(werr)
	}
	back, rerr := resilient.ReadSections(&buf)
	if rerr != nil {
		t.Fatal(rerr)
	}
	ctx := resilient.Background()
	ctx.SetResume(back)
	return ctx
}

// witnessesIdentical asserts two witnesses agree bit-for-bit: kind, detail,
// visit count, and the full counterexample execution when present.
func witnessesIdentical(t *testing.T, want, got *valence.Witness) {
	t.Helper()
	if got.Kind != want.Kind {
		t.Fatalf("kind %v != %v", got.Kind, want.Kind)
	}
	if got.Detail != want.Detail {
		t.Fatalf("detail %q != %q", got.Detail, want.Detail)
	}
	if got.Explored != want.Explored {
		t.Fatalf("explored %d != %d", got.Explored, want.Explored)
	}
	if want.Exec == nil {
		if got.Exec != nil {
			t.Fatal("resumed run attached an execution the baseline lacks")
		}
		return
	}
	if got.Exec.Init.Key() != want.Exec.Init.Key() {
		t.Fatalf("witness init %s != %s", got.Exec.Init.Key(), want.Exec.Init.Key())
	}
	if len(got.Exec.Steps) != len(want.Exec.Steps) {
		t.Fatalf("witness length %d != %d", len(got.Exec.Steps), len(want.Exec.Steps))
	}
	for i := range got.Exec.Steps {
		if got.Exec.Steps[i].Action != want.Exec.Steps[i].Action ||
			got.Exec.Steps[i].State.Key() != want.Exec.Steps[i].State.Key() {
			t.Fatalf("witness step %d differs", i)
		}
	}
}

// TestCertifyCheckpointRandomCuts is the satellite resumability property
// test for the certifier: interrupt CertifyGraphCtx at randomized DFS cut
// points (every root boundary plus every 256th step is a poll; the rule's
// hit count picks one uniformly), persist the checkpoint through the binary
// container, resume on a freshly materialized graph, and require the final
// witness to be bit-identical to the uninterrupted run's.
func TestCertifyCheckpointRandomCuts(t *testing.T) {
	models := []struct {
		name  string
		m     func() core.Model
		bound int
	}{
		{"mobile-n3-b2", func() core.Model { return mobile.New(protocols.FloodSet{Rounds: 2}, 3) }, 2},
		{"shmem-n3-p2", func() core.Model { return shmem.New(protocols.SMVote{Phases: 1}, 3) }, 2},
		{"ok-syncst-n3-t1", func() core.Model { return syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1) }, 2},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			g := ckptGraph(t, tc.m(), tc.bound)
			// Probe the uninterrupted run with a never-firing rule to learn
			// how many interruption sites it actually passes (a violation
			// witness ends the root loop early), so random hits always land
			// inside the run — a rule that never fires would test nothing.
			probe := chaos.NewPlan().Set("certify.visit", chaos.Rule{Hit: ^uint64(0), Kind: chaos.KindCancel})
			chaos.Arm(probe)
			want, err := valence.CertifyGraph(g, 0)
			chaos.Disarm()
			if err != nil {
				t.Fatal(err)
			}
			polls := probe.Hits("certify.visit")
			if polls == 0 {
				t.Fatal("uninterrupted run passed no certify.visit polls")
			}
			for trial := 0; trial < 6; trial++ {
				hit := 1 + uint64(rng.Int63n(int64(polls)))
				plan := chaos.NewPlan().Set("certify.visit", chaos.Rule{Hit: hit, Kind: chaos.KindCancel})
				chaos.Arm(plan)
				_, perr := valence.CertifyGraphCtx(nil, g, 0)
				chaos.Disarm()
				if len(plan.Fired()) != 1 {
					t.Fatalf("hit=%d: plan fired %d faults, want 1 (polls estimate %d)", hit, len(plan.Fired()), polls)
				}
				if !errors.Is(perr, resilient.ErrPartial) {
					t.Fatalf("hit=%d: err = %v, want ErrPartial family", hit, perr)
				}
				got, rerr := valence.CertifyGraphCtx(resumeCtx(t, perr), ckptGraph(t, tc.m(), tc.bound), 0)
				if rerr != nil {
					t.Fatalf("hit=%d: resume failed: %v", hit, rerr)
				}
				witnessesIdentical(t, want, got)
			}
		})
	}
}

// TestCertifyCheckpointBudgetFault routes an injected budget fault through
// the certifier: the error carries both ErrBudget and ErrPartial plus a
// resumable checkpoint, and a resumed run still matches the baseline.
func TestCertifyCheckpointBudgetFault(t *testing.T) {
	g := ckptGraph(t, mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2)
	want, err := valence.CertifyGraph(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Arm(chaos.NewPlan().Set("certify.visit", chaos.Rule{Hit: 3, Kind: chaos.KindBudget}))
	_, perr := valence.CertifyGraphCtx(nil, g, 0)
	chaos.Disarm()
	if !errors.Is(perr, valence.ErrBudget) || !errors.Is(perr, resilient.ErrPartial) {
		t.Fatalf("err = %v, want ErrBudget wrapping ErrPartial", perr)
	}
	got, rerr := valence.CertifyGraphCtx(resumeCtx(t, perr), g, 0)
	if rerr != nil {
		t.Fatal(rerr)
	}
	witnessesIdentical(t, want, got)
}

// TestCertifyCheckpointValidation: a snapshot for a different graph or
// maxVisits is ignored (the run restarts clean and the stale sections stay
// unconsumed), and a corrupted payload fails with ErrBadCheckpoint.
func TestCertifyCheckpointValidation(t *testing.T) {
	g := ckptGraph(t, mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2)
	chaos.Arm(chaos.NewPlan().Set("certify.visit", chaos.Rule{Hit: 2, Kind: chaos.KindCancel}))
	_, perr := valence.CertifyGraphCtx(nil, g, 0)
	chaos.Disarm()

	other := ckptGraph(t, syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1), 2)
	ctx := resumeCtx(t, perr)
	want, err := valence.CertifyGraph(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := valence.CertifyGraphCtx(ctx, other, 0)
	if err != nil {
		t.Fatalf("mismatched snapshot was not ignored: %v", err)
	}
	if ctx.PeekResume(resilient.TagCertify) == nil {
		t.Fatal("mismatched snapshot was consumed")
	}
	witnessesIdentical(t, want, got)

	if _, derr := valence.DecodeCertifyCheckpoint([]byte{0xde, 0xad}); !errors.Is(derr, resilient.ErrBadCheckpoint) {
		t.Fatalf("corrupt payload: err = %v, want ErrBadCheckpoint", derr)
	}
	if _, derr := valence.DecodeFieldCheckpoint([]byte{0x01}); !errors.Is(derr, resilient.ErrBadCheckpoint) {
		t.Fatalf("corrupt field payload: err = %v, want ErrBadCheckpoint", derr)
	}
}

// TestFieldCheckpointRandomCuts interrupts the layer sweep at every layer
// boundary in turn, for serial and pooled sweeps, and requires the resumed
// field's mask array to be byte-identical to an uninterrupted one.
func TestFieldCheckpointRandomCuts(t *testing.T) {
	g := ckptGraph(t, mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2)
	want := valence.NewField(g)
	layers := g.NumLayers()
	for cut := 1; cut <= layers; cut++ {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("cut%d-w%d", cut, workers), func(t *testing.T) {
				plan := chaos.NewPlan().Set("field.layer", chaos.Rule{Hit: uint64(cut), Kind: chaos.KindCancel})
				chaos.Arm(plan)
				_, perr := valence.NewFieldParallelCtx(nil, g, workers)
				chaos.Disarm()
				if len(plan.Fired()) != 1 {
					t.Fatalf("plan fired %d faults, want 1", len(plan.Fired()))
				}
				if !errors.Is(perr, resilient.ErrPartial) {
					t.Fatalf("err = %v, want ErrPartial family", perr)
				}
				got, rerr := valence.NewFieldParallelCtx(resumeCtx(t, perr), g, workers)
				if rerr != nil {
					t.Fatalf("resume failed: %v", rerr)
				}
				if !bytes.Equal(want.Masks(), got.Masks()) {
					t.Fatal("resumed field masks differ from uninterrupted sweep")
				}
			})
		}
	}
}

// TestFieldShardPanicContained injects a panic into a pooled shard worker:
// the fault is contained as a *resilient.PanicError, the layer-boundary
// checkpoint resumes, and the masks still match.
func TestFieldShardPanicContained(t *testing.T) {
	g := ckptGraph(t, mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2)
	want := valence.NewField(g)
	chaos.Arm(chaos.NewPlan().Set("field.shard", chaos.Rule{Hit: 1, Kind: chaos.KindPanic}))
	_, perr := valence.NewFieldParallelCtx(nil, g, 2)
	chaos.Disarm()
	if !errors.Is(perr, resilient.ErrPartial) {
		t.Fatalf("err = %v, want ErrPartial family", perr)
	}
	var pe *resilient.PanicError
	if !errors.As(perr, &pe) {
		t.Fatalf("shard panic not contained as PanicError: %v", perr)
	}
	got, rerr := valence.NewFieldParallelCtx(resumeCtx(t, perr), g, 2)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(want.Masks(), got.Masks()) {
		t.Fatal("resumed field masks differ after contained panic")
	}
}
