package valence

import (
	"errors"
	"fmt"

	"repro/internal/arena"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// ErrNotGraded is returned by CertifyGraph when the graph has an edge that
// does not go from depth d to depth d+1. On such graphs the certifier's
// per-node visited bitsets would not be equivalent to the recursive
// (state, remaining-depth) memo; use Certify instead.
var ErrNotGraded = errors.New("valence: graph is not graded")

// CertifyGraph certifies the consensus requirements over a fully explored
// state graph in one forward pass: agreement and validity on nodes,
// write-once stability on edges, and decision on the deepest layer, exactly
// as Certify does over bound = g.Depth layers. Instead of re-enumerating
// successors per state with a map[...(id, depth, inputs)]bool memo, it
// walks the CSR arrays with one visited bitset per input mask (on a graded
// graph a node's remaining depth is determined by its id, so (node, inputs)
// is the whole memo key). The witness execution is reconstructed from the
// DFS stack only when a violation is found.
//
// The per-visit and per-edge consensus checks are answered from the graph's
// cached check planes (certPlanesOf): one word test per visited node and
// one bit test per edge replace the State interface scans, which run only
// on the rare dirty node or edge to rebuild the exact witness. The planes
// are derived once per graph and amortized across certifications, the same
// way the key index and gradedness are.
//
// Roots are scanned in Inits order and edges in enumeration order — the
// same search order as Certify — so the verdict, witness execution, and
// Explored count are bit-for-bit identical to the recursive certifier's.
// g must be explored with no node budget; maxVisits bounds the total
// number of node visits across all roots (0 = no bound).
func CertifyGraph(g *core.IDGraph, maxVisits int) (*Witness, error) {
	return CertifyGraphCtx(nil, g, maxVisits)
}

// CertifyGraphCtx is CertifyGraph under a cancellation context, polled (with
// the chaos certify.visit fault point) at every root boundary and every 256
// DFS steps. An interruption
// returns an error wrapping ErrCanceled/ErrDeadline (or ErrBudget for an
// injected budget fault) that carries a resilient.Checkpointer snapshotting
// the per-input-mask visited bitsets, the DFS stack, and the root cursor;
// resuming with that snapshot (resilient.TagCertify, validated against a
// fingerprint of the graph) finishes with a verdict, witness, and Explored
// count bit-identical to an uninterrupted run's.
func CertifyGraphCtx(ctx *resilient.Ctx, g *core.IDGraph, maxVisits int) (*Witness, error) {
	c := &graphCertifier{}
	return c.certify(ctx, g, maxVisits, nil)
}

// certify runs one certification on a (possibly reused) certifier,
// allocating visited bitsets from ar when non-nil (the Sweep zero-alloc
// path) and from the heap otherwise.
func (c *graphCertifier) certify(ctx *resilient.Ctx, g *core.IDGraph, maxVisits int, ar *arena.Arena) (*Witness, error) {
	if !g.Graded() {
		return nil, ErrNotGraded
	}
	rec := obs.Active()
	tr := obs.Trace()
	var root obs.TraceSpan
	if tr != nil {
		root = tr.Begin("certify", 0)
		defer tr.End(root)
	}
	if rec != nil {
		defer obs.Span(rec, "certify.time")()
		rec.Event("certify.start",
			obs.F{Key: "engine", Value: "graph"},
			obs.F{Key: "nodes", Value: g.Len()},
			obs.F{Key: "edges", Value: g.NumEdges()},
			obs.F{Key: "depth", Value: g.Depth},
			obs.F{Key: "roots", Value: len(g.Inits)})
	}
	c.g, c.ctx, c.maxVisits, c.ar = g, ctx, maxVisits, ar
	c.cp = certPlanesOf(g)
	c.visits, c.steps, c.rootIdx = 0, 0, 0
	c.bs, c.stack = nil, c.stack[:0]
	if c.visited == nil {
		c.visited = make(map[uint64][]uint64)
	} else {
		clear(c.visited)
	}
	startRoot, midRoot := 0, false
	if data := ctx.PeekResume(resilient.TagCertify); data != nil {
		ck, err := DecodeCertifyCheckpoint(data)
		if err != nil {
			return nil, err
		}
		if ck.Matches(g, maxVisits) {
			ctx.TakeResume(resilient.TagCertify)
			ck.restore(c)
			startRoot, midRoot = c.rootIdx, len(c.stack) > 0
			if rec != nil {
				rec.Add("certify.resumes", 1)
				rec.Event("certify.resume",
					obs.F{Key: "root", Value: startRoot},
					obs.F{Key: "visits", Value: c.visits},
					obs.F{Key: "stack", Value: len(c.stack)})
			}
		}
	}
	for ri := startRoot; ri < len(g.Inits); ri++ {
		c.rootIdx = ri
		// Root boundaries are interruption points too: small graphs never
		// reach the 256-step poll, and a root-top cut (empty stack) is the
		// cheapest checkpoint there is.
		if err := c.stop(); err != nil {
			return nil, err
		}
		var (
			w   *Witness
			err error
		)
		var rsp obs.TraceSpan
		if tr != nil {
			rsp = tr.Begin("certify.root", root.ID)
		}
		if ri == startRoot && midRoot {
			// Continue the interrupted root exactly where the stack left it:
			// its root node and bitset are re-derived, not re-entered.
			c.root = g.Inits[ri]
			c.inputs = c.cp.rootInputs[ri]
			c.bs = c.bitset(c.inputs)
			w, err = c.loop()
		} else {
			w, err = c.run(g.Inits[ri])
		}
		if tr != nil {
			tr.End(rsp)
		}
		if err != nil {
			return nil, err
		}
		if w != nil {
			w.Explored = c.visits
			c.finish(rec, w)
			return w, nil
		}
	}
	c.ok = Witness{Kind: OK, Explored: c.visits}
	c.finish(rec, &c.ok)
	return &c.ok, nil
}

// finish publishes the certification's counters and emits certify.done.
// The visited-bitset density — visits over (nodes × input-mask bitsets) —
// is how full the memo got: near 100% means the search was bound by the
// graph, not by pruning.
func (c *graphCertifier) finish(rec obs.Recorder, w *Witness) {
	if rec == nil {
		return
	}
	rec.Add("certify.runs", 1)
	rec.Add("certify.visits", int64(c.visits))
	rec.Set("certify.explored", int64(c.visits))
	densityPct := int64(0)
	if cells := int64(c.g.Len()) * int64(len(c.visited)); cells > 0 {
		densityPct = int64(c.visits) * 100 / cells
	}
	rec.Set("certify.bitset_density_pct", densityPct)
	rec.Event("certify.done",
		obs.F{Key: "engine", Value: "graph"},
		obs.F{Key: "verdict", Value: w.Kind.String()},
		obs.F{Key: "explored", Value: w.Explored},
		obs.F{Key: "bitsets", Value: len(c.visited)},
		obs.F{Key: "density_pct", Value: densityPct})
}

// CertifyFast is Certify through the graph-backed engine: it materializes
// the model's state graph to `bound` layers (deterministically, drawing on
// the model's shared successor cache) and runs CertifyGraph over it,
// falling back to the recursive Certify when the explored graph is not
// graded. Verdict and witness are identical to Certify's; the difference
// is that the whole graph is explored up front rather than lazily, which
// is faster for certifications that visit most of it.
func CertifyFast(m core.Model, bound, maxVisits int) (*Witness, error) {
	return CertifyFastCtx(nil, m, bound, maxVisits)
}

// CertifyFastCtx is CertifyFast under a cancellation context, threaded
// through both phases: the exploration checks it at layer boundaries, the
// certification at root boundaries and every 256 DFS steps, and whichever
// phase is interrupted
// attaches its own checkpoint to the error. A resumed run re-derives the
// already-complete phase deterministically (re-exploring is bit-identical),
// so one saved certify snapshot suffices to finish the whole call.
func CertifyFastCtx(ctx *resilient.Ctx, m core.Model, bound, maxVisits int) (*Witness, error) {
	g, err := core.ExploreIDCtx(ctx, m, bound, 0, 0)
	if err != nil {
		return nil, err
	}
	w, err := CertifyGraphCtx(ctx, g, maxVisits)
	if errors.Is(err, ErrNotGraded) {
		return Certify(m, bound, maxVisits)
	}
	return w, err
}

// gframe is one DFS stack entry: a node being expanded, the CSR edge it was
// entered through (-1 for the root), and the cursor of its next out-edge.
type gframe struct {
	node uint32
	via  int32
	next uint32
}

type graphCertifier struct {
	g         *core.IDGraph
	ctx       *resilient.Ctx
	cp        *certPlanes
	ar        *arena.Arena
	maxVisits int
	visits    int
	// steps counts DFS loop iterations; every 256th polls the context and
	// the certify.visit fault point.
	steps int
	// rootIdx is the cursor into g.Inits, part of the checkpoint.
	rootIdx int
	// visited[inputs] is the per-input-mask node bitset replacing the
	// recursive certifier's map[certMemoKey]bool.
	visited map[uint64][]uint64
	bs      []uint64
	root    uint32
	inputs  uint64
	stack   []gframe
	// ok is the reused all-clear verdict, so a clean certification on a
	// warmed certifier allocates nothing.
	ok Witness
}

// bitset returns (creating on first use) the visited bitset for an input
// mask.
func (c *graphCertifier) bitset(inputs uint64) []uint64 {
	bs := c.visited[inputs]
	if bs == nil {
		words := (c.g.Len() + 63) / 64
		if c.ar != nil {
			bs = c.ar.Words(words)
		} else {
			bs = make([]uint64, words)
		}
		c.visited[inputs] = bs
	}
	return bs
}

// run certifies the subgraph reachable from one root.
func (c *graphCertifier) run(root uint32) (*Witness, error) {
	g := c.g
	c.inputs = c.cp.rootInputs[c.rootIdx]
	c.bs = c.bitset(c.inputs)
	c.root = root
	c.stack = c.stack[:0]

	if c.seen(root) {
		return nil, nil
	}
	if w, err := c.enter(root, -1); w != nil || err != nil {
		return w, err
	}
	if int(g.DepthOf[root]) >= g.Depth {
		return nil, nil
	}
	c.stack = append(c.stack, gframe{node: root, via: -1, next: g.EdgeStart[root]})
	return c.loop()
}

// loop drains the DFS stack. It is the shared tail of a fresh root and a
// checkpoint resume: everything it needs — stack, bitset, root, inputs —
// is certifier state, and every 256th iteration is an interruption point
// whose cut is exactly that state.
func (c *graphCertifier) loop() (*Witness, error) {
	g := c.g
	cp := c.cp
	for len(c.stack) > 0 {
		c.steps++
		if c.steps&255 == 0 {
			if err := c.stop(); err != nil {
				return nil, err
			}
		}
		top := &c.stack[len(c.stack)-1]
		u := top.node
		if top.next == g.EdgeStart[u+1] {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		e := top.next
		top.next++
		v := g.EdgeTo[e]
		if cp.bit(cp.woBad, e) {
			// Dirty edge (precomputed: a decision changes across it):
			// rebuild the exact witness with the original check.
			if w := checkWriteOnce(g.States[u], g.States[v]); w != nil {
				w.Exec = c.execTo(int32(e))
				w.Detail = fmt.Sprintf("%s (action %s)", w.Detail, g.EdgeAction[e])
				return w, nil
			}
		}
		if c.seen(v) {
			continue
		}
		if w, err := c.enter(v, int32(e)); w != nil || err != nil {
			return w, err
		}
		if int(g.DepthOf[v]) < g.Depth {
			c.stack = append(c.stack, gframe{node: v, via: int32(e), next: g.EdgeStart[v]})
		}
	}
	return nil, nil
}

// stop polls the context and the certify.visit fault point; on
// interruption it snapshots the certifier into a checkpoint and attaches
// it to the returned error. Injected budget faults are routed through
// ErrBudget so they surface exactly like a real exhausted visit budget.
func (c *graphCertifier) stop() error {
	err := chaos.Check(c.ctx, "certify.visit")
	if err == nil {
		return nil
	}
	var f *chaos.Fault
	if errors.As(err, &f) && f.Kind == chaos.KindBudget {
		err = fmt.Errorf("%w: %w", ErrBudget, err)
	}
	if rec := obs.Active(); rec != nil {
		rec.Add("certify.interrupts", 1)
		rec.Event("certify.interrupted",
			obs.F{Key: "root", Value: c.rootIdx},
			obs.F{Key: "visits", Value: c.visits},
			obs.F{Key: "cause", Value: err.Error()})
	}
	werr := fmt.Errorf("valence: certification interrupted after %d visits: %w", c.visits, err)
	return resilient.WithCheckpoint(werr, c.checkpoint())
}

// enter performs the first (and only) visit of a node: mark it, count it,
// and check the state-local requirements — agreement and validity always,
// decision when the node sits at the bound. The checks are plane reads; a
// node flagged dirty re-runs the original checkState to build the exact
// witness (and to stay correct even if the flag over-approximated).
func (c *graphCertifier) enter(v uint32, via int32) (*Witness, error) {
	c.mark(v)
	c.visits++
	if c.maxVisits > 0 && c.visits > c.maxVisits {
		return nil, fmt.Errorf("after %d visits: %w", c.visits, ErrBudget)
	}
	cp := c.cp
	if cp.dvals[v]&^c.inputs != 0 || cp.bit(cp.agreeBad, v) {
		if w := checkState(c.g.States[v], c.inputs); w != nil {
			w.Exec = c.execTo(via)
			return w, nil
		}
	}
	if int(c.g.DepthOf[v]) >= c.g.Depth && !cp.bit(cp.allDec, v) {
		return &Witness{
			Kind:   UndecidedAtBound,
			Exec:   c.execTo(via),
			Detail: fmt.Sprintf("a non-failed process is undecided after %d layers", c.g.Depth),
		}, nil
	}
	return nil, nil
}

// execTo rebuilds the execution from the current root along the DFS stack,
// extended by finalEdge when >= 0. Called only on violation.
func (c *graphCertifier) execTo(finalEdge int32) *core.Execution {
	g := c.g
	steps := make([]core.Step, 0, len(c.stack)+1)
	for _, f := range c.stack {
		if f.via >= 0 {
			steps = append(steps, core.Step{Action: g.EdgeAction[f.via], State: g.States[f.node]})
		}
	}
	if finalEdge >= 0 {
		steps = append(steps, core.Step{Action: g.EdgeAction[finalEdge], State: g.States[g.EdgeTo[finalEdge]]})
	}
	return &core.Execution{Init: g.States[c.root], Steps: steps}
}

func (c *graphCertifier) seen(u uint32) bool {
	return c.bs[u>>6]&(1<<(u&63)) != 0
}

func (c *graphCertifier) mark(u uint32) {
	c.bs[u>>6] |= 1 << (u & 63)
}
