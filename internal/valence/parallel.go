package valence

import (
	"repro/internal/core"
	"repro/internal/resilient"
)

// CertifyParallel runs Certify's per-initial-state searches concurrently
// on a panic-safe pool, one worker per CPU-ish slot, and returns the same
// verdict Certify would: the witness of the earliest (in Inits order)
// violating initial state, or OK. Each worker owns a private memo table
// (roots share little of their early state space; the duplication is
// bounded by the per-root budget), but all workers draw successors from
// the model's shared concurrency-safe cache, so a state expanded under one
// root is never re-enumerated under another. maxVisitsPerRoot caps each
// root's search independently (0 = unbounded). A panic in model code is
// contained into a *resilient.PanicError instead of crashing the process.
func CertifyParallel(m core.Model, bound, maxVisitsPerRoot, workers int) (*Witness, error) {
	inits := m.Inits()
	if workers < 1 {
		workers = 1
	}
	if workers > len(inits) {
		workers = len(inits)
	}

	type result struct {
		w   *Witness
		err error
	}
	results := make([]result, len(inits))
	pool := resilient.Pool{Workers: workers}
	if err := pool.Run(nil, len(inits), func(_ *resilient.Ctx, i int) error {
		results[i] = certifyOne(m, inits[i], bound, maxVisitsPerRoot)
		return nil
	}); err != nil {
		return nil, err
	}

	totalVisits := 0
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		totalVisits += results[i].w.Explored
	}
	for i := range results {
		if results[i].w.Kind != OK {
			w := results[i].w
			w.Explored = totalVisits
			return w, nil
		}
	}
	return &Witness{Kind: OK, Explored: totalVisits}, nil
}

// certifyOne certifies a single root with a private certifier.
func certifyOne(m core.Model, init core.State, bound, maxVisits int) (out struct {
	w   *Witness
	err error
}) {
	c := newCertifier(m, bound, maxVisits)
	inputs := inputMask(init)
	exec := &core.Execution{Init: init}
	w, err := c.dfs(c.cache.ID(init), init, bound, inputs, exec)
	if err != nil {
		out.err = err
		return out
	}
	if w == nil {
		w = &Witness{Kind: OK}
	}
	w.Explored = c.visits
	out.w = w
	return out
}
