package valence

import (
	"repro/internal/core"
)

// WidthProfile measures how much bivalence the environment has to work
// with at each depth: the number of distinct reachable states per layer and
// how many of them are bivalent (within the per-depth horizon). The paper's
// adversary needs one bivalent successor per layer; the profile shows the
// whole frontier.
type WidthProfile struct {
	// States[d] is the number of distinct states first reached at depth d.
	States []int
	// Bivalent[d] is how many of them are bivalent.
	Bivalent []int
	// Univalent0[d] and Univalent1[d] count the univalent states.
	Univalent0 []int
	Univalent1 []int
	// Null[d] counts null-valent states (horizon exhausted).
	Null []int
}

// BivalenceWidth explores the model to the given depth and classifies
// every reachable state's valence with horizon(depth) lookahead.
func BivalenceWidth(m core.Model, o *Oracle, horizon HorizonFunc, depth, maxNodes int) (*WidthProfile, error) {
	g, err := core.Explore(m, depth, maxNodes)
	if err != nil {
		return nil, err
	}
	p := &WidthProfile{
		States:     make([]int, depth+1),
		Bivalent:   make([]int, depth+1),
		Univalent0: make([]int, depth+1),
		Univalent1: make([]int, depth+1),
		Null:       make([]int, depth+1),
	}
	for d := 0; d <= depth; d++ {
		h := horizon(d)
		for _, x := range g.StatesAtDepth(d) {
			p.States[d]++
			switch o.Valences(x, h) {
			case V0 | V1:
				p.Bivalent[d]++
			case V0:
				p.Univalent0[d]++
			case V1:
				p.Univalent1[d]++
			default:
				p.Null[d]++
			}
		}
	}
	return p, nil
}
