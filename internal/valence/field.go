package valence

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/arena"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// Field is the whole-graph form of the valence Oracle: the valence mask of
// every node of a materialized IDGraph, computed bottom-up in O(V+E) by one
// reverse-layer dynamic-programming sweep —
//
//	mask[u] = decidedBits(u) | OR over CSR out-edges of children masks
//
// — and stored as two bit-planes: bit u of plane0 (plane1) is set when node
// u is 0-valent (1-valent), 64 nodes per uint64 word. No maps, no
// recursion, no per-node bytes. For a graph explored to depth B, Mask(u)
// equals Oracle.Valences(state(u), B-depth(u)): the residual exploration
// depth is exactly the valence horizon at u, so one field answers every
// per-layer valence question the experiments ask (the
// DecreasingHorizon(B, 0) schedule) without re-walking overlapping futures.
//
// The bit-plane layout is what makes the sweep word-parallel: a layer is a
// contiguous id window (core.LayerSpan, the BFS construction invariant
// checked by the layout pass), so the sweep computes 64 nodes' bits into
// two register accumulators and stores whole plane words — interior words
// with a plain store, the partial words where a layer boundary cuts a word
// with a masked merge that preserves the deeper layer's already-final bits.
// Decided bits come from the per-graph cached decided planes
// (fieldPlanesOf), so steady-state sweeps perform no State interface calls
// at all; runs of consecutive child ids (BFS numbers fresh children
// consecutively) are folded with word-wide ORs over the planes instead of
// per-edge bit probes.
//
// The per-layer propagation is sharded across workers on whole-word
// boundaries: no two workers ever read-modify-write the same plane word,
// and on graded graphs (every edge goes depth d -> d+1) a node's mask
// depends only on the already-finished deeper layer, so the parallel write
// order cannot change the result — the field is deterministic and
// bit-identical across worker counts. Graphs that are not graded — the
// asynchronous families can produce same-depth shortcut edges at small n,
// and hand-built graphs can do anything — fall back to serial reverse
// sweeps iterated to fixpoint (masks grow monotonically under OR, so the
// iteration converges); there the mask means "valence within the explored
// graph": the OR of decided bits over every reachable recorded node.
type Field struct {
	g *core.IDGraph
	// fp is the graph's cached decided-bit planes (shared, immutable).
	fp *fieldPlanes
	// plane0/plane1 hold the field: bit u set = V0 (V1) in node u's mask.
	// Arena-backed when the sweep came from a Sweep; see the arena package
	// for the lifetime rule.
	plane0, plane1 []uint64
	// scalarKernel forces per-node serial sweeps instead of the
	// word-parallel span kernel — the degradation ladder's last rung
	// (see NewFieldScalarCtx). The result is bit-identical either way.
	scalarKernel bool
}

// fieldShardMin is the minimum number of layer nodes per worker shard worth
// a goroutine; below it the per-layer sweep runs serially. Shards are
// always cut on 64-node word boundaries so no two workers touch the same
// plane word (TestFieldShardWordAlignment runs this under -race).
const fieldShardMin = 256

// runMin is the shortest run of consecutive child ids folded with word-wide
// ORs over the planes instead of per-edge bit probes.
const runMin = 16

// NewField computes the valence field of g with a serial sweep.
func NewField(g *core.IDGraph) *Field { return NewFieldParallel(g, 1) }

// NewFieldParallel computes the valence field of g with each layer's
// OR-propagation sharded across workers goroutines (workers <= 0 means
// GOMAXPROCS). The result is bit-identical for every worker count.
func NewFieldParallel(g *core.IDGraph, workers int) *Field {
	ctx := resilient.Background()
	for {
		f, err := NewFieldParallelCtx(ctx, g, workers)
		if err == nil {
			return f
		}
		// This context never cancels, so the error is an injected chaos
		// fault. Each armed rule fires once, so feeding the checkpoint back
		// (or plain retrying, when none is attached) converges to the
		// complete field.
		if ck, ok := resilient.CheckpointFrom(err); ok {
			if sections, serr := ck.Sections(); serr == nil {
				ctx.SetResume(sections)
			}
		}
	}
}

// NewFieldCtx is NewField under a cancellation context.
func NewFieldCtx(ctx *resilient.Ctx, g *core.IDGraph) (*Field, error) {
	return NewFieldParallelCtx(ctx, g, 1)
}

// NewFieldScalarCtx computes the valence field with the serial scalar
// kernel: per-node bit probes (Field.nodeBits) in place of the
// word-parallel span sweep, no worker pool. It is the degradation ladder's
// last rung — the memory floor is two plane words per 64 nodes with no
// shard bookkeeping — and shares the layer loop, context polling, and
// TagField checkpoints with the plane kernel, so a sweep interrupted under
// one kernel resumes under the other and the result is bit-identical to
// NewFieldParallel for every graph.
func NewFieldScalarCtx(ctx *resilient.Ctx, g *core.IDGraph) (*Field, error) {
	f := &Field{scalarKernel: true}
	err := f.compute(ctx, g, 1, nil)
	return f, err
}

// NewFieldParallelCtx is NewFieldParallel under a cancellation context,
// polled (with the chaos field.layer fault point) once per layer; pool
// workers additionally poll per shard (field.shard), and a panicking shard
// is contained into a *resilient.PanicError. An interruption returns the
// partial field alongside an error carrying a resilient.Checkpointer with
// the masks computed so far and the next unfinished layer; resuming with
// that snapshot (resilient.TagField, validated against a fingerprint of
// the graph) yields a field bit-identical to an uninterrupted sweep's.
// Re-sweeping the interrupted layer is idempotent, so shard-level cuts
// need no finer snapshot than the layer index.
//
// Non-graded graphs fall back to serial fixpoint iteration, which polls
// the context once per pass but is not checkpointed (the fallback exists
// for small, hand-built, or shortcut-edged graphs).
func NewFieldParallelCtx(ctx *resilient.Ctx, g *core.IDGraph, workers int) (*Field, error) {
	f := &Field{}
	err := f.compute(ctx, g, workers, nil)
	return f, err
}

// compute runs the sweep into f, allocating the planes from ar when
// non-nil (the Sweep zero-alloc path) and from the heap otherwise. It is
// the shared engine behind NewFieldParallelCtx and Sweep.Field.
func (f *Field) compute(ctx *resilient.Ctx, g *core.IDGraph, workers int, ar *arena.Arena) error {
	// Auto mode (workers <= 0) applies the fieldShardMin heuristic per
	// layer; an explicit worker count is honored as given, so tests and
	// callers with odd workloads control the sharding exactly.
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := obs.Active()
	defer obs.Span(rec, "field.time")()
	tr := obs.Trace()
	var root obs.TraceSpan
	if tr != nil {
		root = tr.Begin("field", 0)
		defer tr.End(root)
	}
	words := (g.Len() + 63) / 64
	if rec != nil {
		rec.Add("field.sweeps", 1)
		if f.scalarKernel {
			rec.Add("field.sweeps.scalar", 1)
		}
		rec.Add("field.nodes", int64(g.Len()))
		rec.Add("field.words", int64(2*words))
	}
	f.g = g
	f.fp = fieldPlanesOf(g)
	if ar != nil {
		f.plane0, f.plane1 = ar.Words(words), ar.Words(words)
	} else {
		f.plane0, f.plane1 = make([]uint64, words), make([]uint64, words)
	}
	if g.Graded() {
		start := g.NumLayers() - 1
		if data := ctx.PeekResume(resilient.TagField); data != nil {
			ck, err := DecodeFieldCheckpoint(data)
			if err != nil {
				return err
			}
			if ck.Matches(g) {
				ctx.TakeResume(resilient.TagField)
				f.loadMasks(ck.Masks)
				start = ck.NextLayer
				if rec != nil {
					rec.Add("field.resumes", 1)
					rec.Event("field.resume",
						obs.F{Key: "next_layer", Value: start},
						obs.F{Key: "nodes", Value: g.Len()})
				}
			}
		}
		for d := start; d >= 0; d-- {
			if err := chaos.Check(ctx, "field.layer"); err != nil {
				return f.interrupted(rec, d, err)
			}
			if err := resilient.MemPressure(); err != nil {
				// Same checkpointable boundary as a cancellation: the
				// Supervisor resumes the sweep degraded (fewer workers,
				// then the scalar kernel) instead of failing it.
				return f.interrupted(rec, d, err)
			}
			var lsp obs.TraceSpan
			if tr != nil {
				lsp = tr.Begin("field.layer", root.ID)
			}
			var t0 time.Time
			if rec != nil {
				t0 = time.Now() //lint:nondet feeds layer-timing instrumentation only
			}
			width, imbalance, err := f.sweepLayer(ctx, d, workers, auto, rec != nil, lsp.ID)
			if tr != nil {
				tr.End(lsp)
			}
			if err != nil {
				return f.interrupted(rec, d, err)
			}
			if rec != nil {
				elapsed := time.Since(t0)
				rec.Observe("field.layer.time", elapsed)
				rec.Record("field.layer.width", int64(width))
				if imbalance > 0 {
					rec.Record("field.worker.imbalance_pct", imbalance)
				}
				rec.Event("field.layer",
					obs.F{Key: "depth", Value: d},
					obs.F{Key: "width", Value: width},
					obs.F{Key: "ns", Value: elapsed.Nanoseconds()},
					obs.F{Key: "imbalance_pct", Value: imbalance})
			}
		}
		return nil
	}
	iters := 0
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("valence: field fixpoint interrupted after %d iterations: %w", iters, err)
		}
		iters++
		changed := false
		for u := g.Len() - 1; u >= 0; u-- {
			wi, sh := u>>6, uint(u)&63
			old0, old1 := f.plane0[wi]>>sh&1, f.plane1[wi]>>sh&1
			m0, m1 := f.nodeBits(uint32(u))
			if m0&^old0 != 0 || m1&^old1 != 0 {
				f.plane0[wi] |= m0 << sh
				f.plane1[wi] |= m1 << sh
				changed = true
			}
		}
		if !changed {
			if rec != nil {
				rec.Add("field.fixpoint.iterations", int64(iters))
				rec.Event("field.fixpoint",
					obs.F{Key: "nodes", Value: g.Len()},
					obs.F{Key: "iterations", Value: iters})
			}
			return nil
		}
	}
}

// loadMasks restores the planes from a checkpoint's byte-per-node view.
func (f *Field) loadMasks(masks []uint8) {
	clear(f.plane0)
	clear(f.plane1)
	for u, m := range masks {
		bit := uint64(1) << (uint(u) & 63)
		if m&V0 != 0 {
			f.plane0[u>>6] |= bit
		}
		if m&V1 != 0 {
			f.plane1[u>>6] |= bit
		}
	}
}

// interrupted finalizes a sweep cut: layers above nextLayer are complete in
// the planes, layer nextLayer may be partially written, and the checkpoint
// records exactly that (in the stable byte-per-node encoding), attached to
// the returned error.
func (f *Field) interrupted(rec obs.Recorder, nextLayer int, cause error) error {
	if rec != nil {
		rec.Add("field.interrupts", 1)
		rec.Event("field.interrupted",
			obs.F{Key: "next_layer", Value: nextLayer},
			obs.F{Key: "cause", Value: cause.Error()})
	}
	ck := &FieldCheckpoint{
		Fingerprint: graphFingerprint(f.g),
		NextLayer:   nextLayer,
		Masks:       f.Masks(),
	}
	err := fmt.Errorf("valence: field sweep interrupted at layer %d: %w", nextLayer, cause)
	return resilient.WithCheckpoint(err, ck)
}

// sweepLayer computes the masks of one finished-children layer, sharding
// across pool workers when the layer is large enough to pay for
// goroutines (auto mode) or exactly as requested (explicit workers).
// Shards are whole-word ranges of the planes, so no two workers ever
// read-modify-write the same uint64. With measure set it times each shard
// and returns the worker-imbalance ratio, max shard time over mean shard
// time, in percent (100 = perfectly balanced; 0 when the layer ran
// serially or unmeasured).
func (f *Field) sweepLayer(ctx *resilient.Ctx, d, workers int, auto, measure bool, parent obs.SpanID) (width int, imbalancePct int64, err error) {
	g := f.g
	if f.scalarKernel {
		layer := g.Layer(d)
		f.sweepNodes(layer)
		return len(layer), 0, nil
	}
	lo, hi, contiguous := g.LayerSpan(d)
	if !contiguous {
		// A graded graph whose layer is not one id window (possible only
		// for hand-assembled graphs; BFS exploration always numbers layers
		// consecutively): sweep serially with per-node bit writes — word
		// sharding needs the window invariant.
		layer := g.Layer(d)
		f.sweepNodes(layer)
		return len(layer), 0, nil
	}
	width = int(hi - lo)
	if max := width / fieldShardMin; auto && workers > max {
		workers = max
	}
	if workers > width {
		workers = width
	}
	if workers <= 1 {
		f.sweepSpan(lo, hi)
		return width, 0, nil
	}
	// Shards are whole-word ranges; a span narrower than the worker count's
	// word budget simply yields fewer shards (never a sub-word split), and
	// explicit worker counts still route through the pool so cancellation
	// and fault-injection semantics are uniform.
	w0, w1 := int(lo>>6), int(hi+63)>>6
	per := (w1 - w0 + workers - 1) / workers
	nShards := (w1 - w0 + per - 1) / per
	var shardNs []int64
	if measure {
		shardNs = make([]int64, nShards)
	}
	pool := resilient.Pool{Workers: workers}
	err = pool.Run(ctx, nShards, func(sctx *resilient.Ctx, w int) error {
		if cerr := chaos.Check(sctx, "field.shard"); cerr != nil {
			return cerr
		}
		if str := obs.Trace(); str != nil {
			defer str.End(str.BeginLane("field.shard", parent, w+1))
		}
		a := uint32((w0 + w*per) << 6)
		b := uint32((w0 + (w+1)*per) << 6)
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if shardNs != nil {
			t0 := time.Now() //lint:nondet feeds shard-timing instrumentation only
			f.sweepSpan(a, b)
			shardNs[w] = time.Since(t0).Nanoseconds()
			return nil
		}
		f.sweepSpan(a, b)
		return nil
	})
	if err != nil {
		return width, 0, err
	}
	if shardNs == nil {
		return width, 0, nil
	}
	var max, total int64
	for _, ns := range shardNs {
		total += ns
		if ns > max {
			max = ns
		}
	}
	if total == 0 {
		return width, 0, nil
	}
	return width, max * 100 * int64(len(shardNs)) / total, nil
}

// sweepSpan computes the plane bits of the node-id window [a, b) — same-
// layer nodes whose children's bits are final. It accumulates each word's
// 64 masks in two registers and stores whole plane words; at the window's
// edges, where a word is shared with a neighboring layer, it merges under
// a mask that preserves the deeper layer's already-final bits (the
// shallower side's stale bits are overwritten when that layer is swept).
// Each plane word is written by exactly one worker — shards are whole-word
// ranges — so concurrent spans never touch the same uint64.
//lint:hotpath
func (f *Field) sweepSpan(a, b uint32) {
	g := f.g
	d0, d1 := f.fp.d0, f.fp.d1
	p0, p1 := f.plane0, f.plane1
	es, et := g.EdgeStart, g.EdgeTo
	for a < b {
		wi := a >> 6
		base := wi << 6
		we := base + 64
		if we > b {
			we = b
		}
		start := a
		var acc0, acc1 uint64
		for ; a < we; a++ {
			sh := a & 63
			m0 := d0[wi] >> sh & 1
			m1 := d1[wi] >> sh & 1
			for e, ehi := es[a], es[a+1]; e < ehi && m0&m1 == 0; {
				// BFS numbers a node's fresh children consecutively, so
				// child windows are mostly runs of consecutive ids: fold a
				// long run with word-wide ORs over the contiguous plane
				// range instead of probing bit by bit.
				r := e + 1
				for r < ehi && et[r] == et[r-1]+1 {
					r++
				}
				if r-e >= runMin {
					o0, o1 := orRange(p0, p1, et[e], et[e]+(r-e))
					m0 |= o0
					m1 |= o1
				} else {
					for ; e < r; e++ {
						v := et[e]
						m0 |= p0[v>>6] >> (v & 63) & 1
						m1 |= p1[v>>6] >> (v & 63) & 1
					}
					continue
				}
				e = r
			}
			acc0 |= m0 << sh
			acc1 |= m1 << sh
		}
		if start == base && we == base+64 {
			p0[wi] = acc0
			p1[wi] = acc1
			continue
		}
		mask := (uint64(1)<<(we-start) - 1) << (start & 63)
		p0[wi] = p0[wi]&^mask | acc0
		p1[wi] = p1[wi]&^mask | acc1
	}
}

// orRange ORs the plane bits of the node-id range [lo, hi) and returns the
// two results normalized to 0/1.
func orRange(p0, p1 []uint64, lo, hi uint32) (uint64, uint64) {
	wl, wh := lo>>6, (hi-1)>>6
	var o0, o1 uint64
	if wl == wh {
		var mask uint64
		if hi-lo == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1)<<(hi-lo) - 1) << (lo & 63)
		}
		o0, o1 = p0[wl]&mask, p1[wl]&mask
	} else {
		o0, o1 = p0[wl]>>(lo&63), p1[wl]>>(lo&63)
		for w := wl + 1; w < wh; w++ {
			o0 |= p0[w]
			o1 |= p1[w]
		}
		tail := hi - wh<<6
		var mask uint64
		if tail == 64 {
			mask = ^uint64(0)
		} else {
			mask = uint64(1)<<tail - 1
		}
		o0 |= p0[wh] & mask
		o1 |= p1[wh] & mask
	}
	if o0 != 0 {
		o0 = 1
	}
	if o1 != 0 {
		o1 = 1
	}
	return o0, o1
}

// sweepNodes is the non-contiguous-layer fallback: per-node bit writes in
// slice order, serial only.
//lint:hotpath
func (f *Field) sweepNodes(part []uint32) {
	for _, u := range part {
		m0, m1 := f.nodeBits(u)
		wi, sh := u>>6, u&63
		f.plane0[wi] = f.plane0[wi]&^(1<<sh) | m0<<sh
		f.plane1[wi] = f.plane1[wi]&^(1<<sh) | m1<<sh
	}
}

// nodeBits is the per-node transfer function on planes: decided bits OR
// all recorded children bits, early-exiting once both are set. Used by the
// fallback paths (fixpoint, non-contiguous layers); the span sweep inlines
// the same computation.
//lint:hotpath
func (f *Field) nodeBits(u uint32) (m0, m1 uint64) {
	g := f.g
	wi, sh := u>>6, u&63
	m0 = f.fp.d0[wi] >> sh & 1
	m1 = f.fp.d1[wi] >> sh & 1
	lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
	for e := lo; e < hi && m0&m1 == 0; e++ {
		v := g.EdgeTo[e]
		m0 |= f.plane0[v>>6] >> (v & 63) & 1
		m1 |= f.plane1[v>>6] >> (v & 63) & 1
	}
	return m0, m1
}

// Graph returns the underlying graph.
func (f *Field) Graph() *core.IDGraph { return f.g }

// Len returns the number of nodes.
func (f *Field) Len() int { return f.g.Len() }

// Mask returns node u's valence mask.
func (f *Field) Mask(u uint32) uint8 {
	wi, sh := u>>6, u&63
	return uint8(f.plane0[wi]>>sh&1)*V0 | uint8(f.plane1[wi]>>sh&1)*V1
}

// Masks materializes the byte-per-node view of the field — the shape the
// RSCK checkpoint sections and differential tests consume. The slice is
// fresh; mutating it does not affect the field.
func (f *Field) Masks() []uint8 {
	out := make([]uint8, f.g.Len())
	for u := range out {
		out[u] = f.Mask(uint32(u))
	}
	return out
}

// Horizon returns the valence horizon at node u: the residual exploration
// depth B - depth(u) that Mask(u) is exact for (on graded graphs).
func (f *Field) Horizon(u uint32) int { return f.g.Depth - int(f.g.DepthOf[u]) }

// Bivalent reports whether node u is bivalent within its residual horizon.
func (f *Field) Bivalent(u uint32) bool {
	wi, sh := u>>6, u&63
	return ((f.plane0[wi]&f.plane1[wi])>>sh)&1 != 0
}

// MaskOf returns the mask of the node holding state x, if x is in the
// graph.
func (f *Field) MaskOf(x core.State) (uint8, bool) {
	u, ok := f.g.NodeByKey(x.Key())
	if !ok {
		return 0, false
	}
	return f.Mask(u), true
}

// LayerMasks returns the masks of depth-d nodes in discovery order (a fresh
// slice), ready for ValenceConnected.
func (f *Field) LayerMasks(d int) []uint8 {
	layer := f.g.Layer(d)
	out := make([]uint8, len(layer))
	for i, u := range layer {
		out[i] = f.Mask(u)
	}
	return out
}

// Width classifies every node's valence into a WidthProfile by reading the
// field — the whole-graph replacement for BivalenceWidth with the exact
// DecreasingHorizon(B, 0) schedule.
func (f *Field) Width() *WidthProfile {
	nl := f.g.NumLayers()
	p := &WidthProfile{
		States:     make([]int, nl),
		Bivalent:   make([]int, nl),
		Univalent0: make([]int, nl),
		Univalent1: make([]int, nl),
		Null:       make([]int, nl),
	}
	for u := 0; u < f.g.Len(); u++ {
		d := f.g.DepthOf[u]
		p.States[d]++
		switch f.Mask(uint32(u)) {
		case V0 | V1:
			p.Bivalent[d]++
		case V0:
			p.Univalent0[d]++
		case V1:
			p.Univalent1[d]++
		default:
			p.Null[d]++
		}
	}
	return p
}

// AnalyzeNode is the field-backed AnalyzeLayer: the layer report of S(x)
// for the state at node u, with successor states read off the CSR edges and
// valences read off the field instead of per-state Oracle calls.
func (f *Field) AnalyzeNode(u uint32) *LayerReport {
	g := f.g
	r := &LayerReport{}
	actions, to := g.Out(u)
	index := make(map[uint32]int, len(to))
	var nodes []uint32
	for i, v := range to {
		j, seen := index[v]
		if !seen {
			j = len(r.States)
			index[v] = j
			nodes = append(nodes, v)
			r.States = append(r.States, g.States[v])
			r.Actions = append(r.Actions, nil)
		}
		r.Actions[j] = append(r.Actions[j], actions[i])
	}

	sg := SimilarityGraph(r.States)
	r.SimilarityConnected = sg.Connected()
	r.SimilarityComponents = len(sg.Components())
	r.SDiameter, _ = sg.Diameter()

	r.Valences = make([]uint8, len(nodes))
	for i, v := range nodes {
		r.Valences[i] = f.Mask(v)
		switch r.Valences[i] {
		case V0 | V1:
			r.BivalentIdx = append(r.BivalentIdx, i)
		case 0:
			r.NullValentIdx = append(r.NullValentIdx, i)
		}
	}
	r.ValenceConnected = ValenceConnected(r.Valences)
	return r
}

// BivalentChain runs the Lemma 4.1 chain construction over the field:
// starting from the first bivalent initial node, extend by the first
// bivalent CSR successor at every step. Valences are the field's — horizon
// B-d at depth d, the DecreasingHorizon(B, 0) schedule — so target must be
// at most the graph's depth. Like the Oracle-backed BivalentChain, a layer
// with no bivalent successor stops the construction and attaches that
// layer's report as the diagnostic.
func (f *Field) BivalentChain(target int) (*Chain, error) {
	g := f.g
	if target > g.Depth {
		return nil, fmt.Errorf("valence: chain target %d exceeds graph depth %d", target, g.Depth)
	}
	var u uint32
	found := false
	for _, r := range g.Inits {
		if f.Bivalent(r) {
			u, found = r, true
			break
		}
	}
	if !found {
		return nil, ErrNoBivalentInit
	}
	exec := &core.Execution{Init: g.States[u]}
	for d := 0; d < target; d++ {
		actions, to := g.Out(u)
		found = false
		for i, v := range to {
			if f.Bivalent(v) {
				exec = exec.Extend(actions[i], g.States[v])
				u, found = v, true
				break
			}
		}
		if !found {
			return &Chain{Exec: exec, Reached: d, Stuck: f.AnalyzeNode(u)}, nil
		}
	}
	return &Chain{Exec: exec, Reached: target}, nil
}

// BivalentAtBound scans layer d in discovery order for a bivalent node —
// bivalent within the residual horizon B-d — and returns the first one
// together with the execution reaching it, reconstructed by parent-pointer
// walkback. A bivalent state at a claimed decision bound is the Lemma 3.2
// refutation witness that decision has not occurred by layer d.
func (f *Field) BivalentAtBound(d int) (u uint32, exec *core.Execution, ok bool) {
	for _, v := range f.g.Layer(d) {
		if f.Bivalent(v) {
			return v, f.g.PathTo(v), true
		}
	}
	return 0, nil, false
}
