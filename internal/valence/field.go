package valence

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// Field is the whole-graph form of the valence Oracle: the valence mask of
// every node of a materialized IDGraph, computed bottom-up in O(V+E) by one
// reverse-layer dynamic-programming sweep —
//
//	mask[u] = decidedBits(u) | OR over CSR out-edges of children masks
//
// — and stored in a flat []uint8 indexed by node id. No maps, no recursion.
// For a graph explored to depth B, Mask(u) equals
// Oracle.Valences(state(u), B-depth(u)): the residual exploration depth is
// exactly the valence horizon at u, so one field answers every per-layer
// valence question the experiments ask (the DecreasingHorizon(B, 0)
// schedule) without re-walking overlapping futures.
//
// The per-layer OR-propagation is sharded across workers. On graded graphs
// (every edge goes depth d -> d+1) a node's mask depends only on the
// already-finished deeper layer, so the parallel write order cannot change
// the result — the field is deterministic and bit-identical across worker
// counts. Graphs that are not graded — the asynchronous families can
// produce same-depth shortcut edges at small n, and hand-built graphs can
// do anything — fall back to serial reverse sweeps iterated to fixpoint
// (masks grow monotonically under OR, so the iteration converges); there
// the mask means "valence within the explored graph": the OR of decided
// bits over every reachable recorded node.
type Field struct {
	g     *core.IDGraph
	masks []uint8
}

// fieldShardMin is the minimum number of layer nodes per worker shard worth
// a goroutine; below it the per-layer sweep runs serially.
const fieldShardMin = 256

// NewField computes the valence field of g with a serial sweep.
func NewField(g *core.IDGraph) *Field { return NewFieldParallel(g, 1) }

// NewFieldParallel computes the valence field of g with each layer's
// OR-propagation sharded across workers goroutines (workers <= 0 means
// GOMAXPROCS). The result is bit-identical for every worker count.
func NewFieldParallel(g *core.IDGraph, workers int) *Field {
	ctx := resilient.Background()
	for {
		f, err := NewFieldParallelCtx(ctx, g, workers)
		if err == nil {
			return f
		}
		// This context never cancels, so the error is an injected chaos
		// fault. Each armed rule fires once, so feeding the checkpoint back
		// (or plain retrying, when none is attached) converges to the
		// complete field.
		if ck, ok := resilient.CheckpointFrom(err); ok {
			if sections, serr := ck.Sections(); serr == nil {
				ctx.SetResume(sections)
			}
		}
	}
}

// NewFieldCtx is NewField under a cancellation context.
func NewFieldCtx(ctx *resilient.Ctx, g *core.IDGraph) (*Field, error) {
	return NewFieldParallelCtx(ctx, g, 1)
}

// NewFieldParallelCtx is NewFieldParallel under a cancellation context,
// polled (with the chaos field.layer fault point) once per layer; pool
// workers additionally poll per shard (field.shard), and a panicking shard
// is contained into a *resilient.PanicError. An interruption returns the
// partial field alongside an error carrying a resilient.Checkpointer with
// the masks computed so far and the next unfinished layer; resuming with
// that snapshot (resilient.TagField, validated against a fingerprint of
// the graph) yields a field bit-identical to an uninterrupted sweep's.
// Re-sweeping the interrupted layer is idempotent, so shard-level cuts
// need no finer snapshot than the layer index.
//
// Non-graded graphs fall back to serial fixpoint iteration, which polls
// the context once per pass but is not checkpointed (the fallback exists
// for small, hand-built, or shortcut-edged graphs).
func NewFieldParallelCtx(ctx *resilient.Ctx, g *core.IDGraph, workers int) (*Field, error) {
	// Auto mode (workers <= 0) applies the fieldShardMin heuristic per
	// layer; an explicit worker count is honored as given, so tests and
	// callers with odd workloads control the sharding exactly.
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := obs.Active()
	defer obs.Span(rec, "field.time")()
	if rec != nil {
		rec.Add("field.sweeps", 1)
		rec.Add("field.nodes", int64(g.Len()))
	}
	f := &Field{g: g, masks: make([]uint8, g.Len())}
	if g.Graded() {
		start := g.NumLayers() - 1
		if data := ctx.PeekResume(resilient.TagField); data != nil {
			ck, err := DecodeFieldCheckpoint(data)
			if err != nil {
				return nil, err
			}
			if ck.Matches(g) {
				ctx.TakeResume(resilient.TagField)
				copy(f.masks, ck.Masks)
				start = ck.NextLayer
				if rec != nil {
					rec.Add("field.resumes", 1)
					rec.Event("field.resume",
						obs.F{Key: "next_layer", Value: start},
						obs.F{Key: "nodes", Value: g.Len()})
				}
			}
		}
		for d := start; d >= 0; d-- {
			if err := chaos.Check(ctx, "field.layer"); err != nil {
				return f, f.interrupted(rec, d, err)
			}
			layer := g.Layer(d)
			var t0 time.Time
			if rec != nil {
				t0 = time.Now() //lint:nondet feeds layer-timing instrumentation only
			}
			imbalance, err := f.sweepLayer(ctx, layer, workers, auto, rec != nil)
			if err != nil {
				return f, f.interrupted(rec, d, err)
			}
			if rec != nil {
				elapsed := time.Since(t0)
				rec.Observe("field.layer.time", elapsed)
				rec.Event("field.layer",
					obs.F{Key: "depth", Value: d},
					obs.F{Key: "width", Value: len(layer)},
					obs.F{Key: "ns", Value: elapsed.Nanoseconds()},
					obs.F{Key: "imbalance_pct", Value: imbalance})
			}
		}
		return f, nil
	}
	iters := 0
	for {
		if err := ctx.Err(); err != nil {
			return f, fmt.Errorf("valence: field fixpoint interrupted after %d iterations: %w", iters, err)
		}
		iters++
		changed := false
		for u := g.Len() - 1; u >= 0; u-- {
			if m := f.nodeMask(uint32(u)) | f.masks[u]; m != f.masks[u] {
				f.masks[u] = m
				changed = true
			}
		}
		if !changed {
			if rec != nil {
				rec.Add("field.fixpoint.iterations", int64(iters))
				rec.Event("field.fixpoint",
					obs.F{Key: "nodes", Value: g.Len()},
					obs.F{Key: "iterations", Value: iters})
			}
			return f, nil
		}
	}
}

// interrupted finalizes a sweep cut: layers above nextLayer are complete in
// f.masks, layer nextLayer may be partially written, and the checkpoint
// records exactly that, attached to the returned error.
func (f *Field) interrupted(rec obs.Recorder, nextLayer int, cause error) error {
	if rec != nil {
		rec.Add("field.interrupts", 1)
		rec.Event("field.interrupted",
			obs.F{Key: "next_layer", Value: nextLayer},
			obs.F{Key: "cause", Value: cause.Error()})
	}
	ck := &FieldCheckpoint{
		Fingerprint: graphFingerprint(f.g),
		NextLayer:   nextLayer,
		Masks:       append([]uint8(nil), f.masks...),
	}
	err := fmt.Errorf("valence: field sweep interrupted at layer %d: %w", nextLayer, cause)
	return resilient.WithCheckpoint(err, ck)
}

// sweepLayer computes the masks of one finished-children layer, sharding
// across pool workers when the layer is large enough to pay for
// goroutines (auto mode) or exactly as requested (explicit workers). With
// measure set it times each shard and returns the worker-imbalance ratio,
// max shard time over mean shard time, in percent (100 = perfectly
// balanced; 0 when the layer ran serially or unmeasured).
func (f *Field) sweepLayer(ctx *resilient.Ctx, layer []uint32, workers int, auto, measure bool) (imbalancePct int64, err error) {
	if max := len(layer) / fieldShardMin; auto && workers > max {
		workers = max
	}
	if workers > len(layer) {
		workers = len(layer)
	}
	if workers <= 1 {
		f.sweepRange(layer)
		return 0, nil
	}
	shard := (len(layer) + workers - 1) / workers
	nShards := (len(layer) + shard - 1) / shard
	var shardNs []int64
	if measure {
		shardNs = make([]int64, nShards)
	}
	pool := resilient.Pool{Workers: workers}
	err = pool.Run(ctx, nShards, func(sctx *resilient.Ctx, w int) error {
		if cerr := chaos.Check(sctx, "field.shard"); cerr != nil {
			return cerr
		}
		lo := w * shard
		hi := lo + shard
		if hi > len(layer) {
			hi = len(layer)
		}
		part := layer[lo:hi]
		if shardNs != nil {
			t0 := time.Now() //lint:nondet feeds shard-timing instrumentation only
			f.sweepRange(part)
			shardNs[w] = time.Since(t0).Nanoseconds()
			return nil
		}
		f.sweepRange(part)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if shardNs == nil {
		return 0, nil
	}
	var max, total int64
	for _, ns := range shardNs {
		total += ns
		if ns > max {
			max = ns
		}
	}
	if total == 0 {
		return 0, nil
	}
	return max * 100 * int64(len(shardNs)) / total, nil
}

// sweepRange computes the masks of a slice of same-layer nodes. Each node's
// mask is written by exactly one worker and reads only deeper-layer masks,
// so concurrent shards never touch the same index.
func (f *Field) sweepRange(part []uint32) {
	g := f.g
	for _, u := range part {
		m := uint8(core.DecidedValues(g.States[u]) & 0b11)
		lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
		for e := lo; e < hi && m != V0|V1; e++ {
			m |= f.masks[g.EdgeTo[e]]
		}
		f.masks[u] = m
	}
}

// nodeMask is the non-graded fallback's transfer function: decided bits OR
// all recorded children masks.
func (f *Field) nodeMask(u uint32) uint8 {
	g := f.g
	m := uint8(core.DecidedValues(g.States[u]) & 0b11)
	lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
	for e := lo; e < hi && m != V0|V1; e++ {
		m |= f.masks[g.EdgeTo[e]]
	}
	return m
}

// Graph returns the underlying graph.
func (f *Field) Graph() *core.IDGraph { return f.g }

// Len returns the number of nodes.
func (f *Field) Len() int { return len(f.masks) }

// Mask returns node u's valence mask.
func (f *Field) Mask(u uint32) uint8 { return f.masks[u] }

// Masks returns the whole mask array, indexed by node id (shared; callers
// must not modify).
func (f *Field) Masks() []uint8 { return f.masks }

// Horizon returns the valence horizon at node u: the residual exploration
// depth B - depth(u) that Mask(u) is exact for (on graded graphs).
func (f *Field) Horizon(u uint32) int { return f.g.Depth - int(f.g.DepthOf[u]) }

// Bivalent reports whether node u is bivalent within its residual horizon.
func (f *Field) Bivalent(u uint32) bool { return f.masks[u] == V0|V1 }

// MaskOf returns the mask of the node holding state x, if x is in the
// graph.
func (f *Field) MaskOf(x core.State) (uint8, bool) {
	u, ok := f.g.NodeByKey(x.Key())
	if !ok {
		return 0, false
	}
	return f.masks[u], true
}

// LayerMasks returns the masks of depth-d nodes in discovery order (a fresh
// slice), ready for ValenceConnected.
func (f *Field) LayerMasks(d int) []uint8 {
	layer := f.g.Layer(d)
	out := make([]uint8, len(layer))
	for i, u := range layer {
		out[i] = f.masks[u]
	}
	return out
}

// Width classifies every node's valence into a WidthProfile by reading the
// field — the whole-graph replacement for BivalenceWidth with the exact
// DecreasingHorizon(B, 0) schedule.
func (f *Field) Width() *WidthProfile {
	nl := f.g.NumLayers()
	p := &WidthProfile{
		States:     make([]int, nl),
		Bivalent:   make([]int, nl),
		Univalent0: make([]int, nl),
		Univalent1: make([]int, nl),
		Null:       make([]int, nl),
	}
	for u, m := range f.masks {
		d := f.g.DepthOf[u]
		p.States[d]++
		switch m {
		case V0 | V1:
			p.Bivalent[d]++
		case V0:
			p.Univalent0[d]++
		case V1:
			p.Univalent1[d]++
		default:
			p.Null[d]++
		}
	}
	return p
}

// AnalyzeNode is the field-backed AnalyzeLayer: the layer report of S(x)
// for the state at node u, with successor states read off the CSR edges and
// valences read off the field instead of per-state Oracle calls.
func (f *Field) AnalyzeNode(u uint32) *LayerReport {
	g := f.g
	r := &LayerReport{}
	actions, to := g.Out(u)
	index := make(map[uint32]int, len(to))
	var nodes []uint32
	for i, v := range to {
		j, seen := index[v]
		if !seen {
			j = len(r.States)
			index[v] = j
			nodes = append(nodes, v)
			r.States = append(r.States, g.States[v])
			r.Actions = append(r.Actions, nil)
		}
		r.Actions[j] = append(r.Actions[j], actions[i])
	}

	sg := SimilarityGraph(r.States)
	r.SimilarityConnected = sg.Connected()
	r.SimilarityComponents = len(sg.Components())
	r.SDiameter, _ = sg.Diameter()

	r.Valences = make([]uint8, len(nodes))
	for i, v := range nodes {
		r.Valences[i] = f.masks[v]
		switch r.Valences[i] {
		case V0 | V1:
			r.BivalentIdx = append(r.BivalentIdx, i)
		case 0:
			r.NullValentIdx = append(r.NullValentIdx, i)
		}
	}
	r.ValenceConnected = ValenceConnected(r.Valences)
	return r
}

// BivalentChain runs the Lemma 4.1 chain construction over the field:
// starting from the first bivalent initial node, extend by the first
// bivalent CSR successor at every step. Valences are the field's — horizon
// B-d at depth d, the DecreasingHorizon(B, 0) schedule — so target must be
// at most the graph's depth. Like the Oracle-backed BivalentChain, a layer
// with no bivalent successor stops the construction and attaches that
// layer's report as the diagnostic.
func (f *Field) BivalentChain(target int) (*Chain, error) {
	g := f.g
	if target > g.Depth {
		return nil, fmt.Errorf("valence: chain target %d exceeds graph depth %d", target, g.Depth)
	}
	var u uint32
	found := false
	for _, r := range g.Inits {
		if f.Bivalent(r) {
			u, found = r, true
			break
		}
	}
	if !found {
		return nil, ErrNoBivalentInit
	}
	exec := &core.Execution{Init: g.States[u]}
	for d := 0; d < target; d++ {
		actions, to := g.Out(u)
		found = false
		for i, v := range to {
			if f.Bivalent(v) {
				exec = exec.Extend(actions[i], g.States[v])
				u, found = v, true
				break
			}
		}
		if !found {
			return &Chain{Exec: exec, Reached: d, Stuck: f.AnalyzeNode(u)}, nil
		}
	}
	return &Chain{Exec: exec, Reached: target}, nil
}

// BivalentAtBound scans layer d in discovery order for a bivalent node —
// bivalent within the residual horizon B-d — and returns the first one
// together with the execution reaching it, reconstructed by parent-pointer
// walkback. A bivalent state at a claimed decision bound is the Lemma 3.2
// refutation witness that decision has not occurred by layer d.
func (f *Field) BivalentAtBound(d int) (u uint32, exec *core.Execution, ok bool) {
	for _, v := range f.g.Layer(d) {
		if f.Bivalent(v) {
			return v, f.g.PathTo(v), true
		}
	}
	return 0, nil, false
}
