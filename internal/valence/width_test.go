package valence_test

import (
	"testing"

	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestBivalenceWidthMobile: in M^mf the environment is never short of
// bivalence — some bivalent state exists at every pre-decision depth, and
// classifications partition the frontier.
func TestBivalenceWidthMobile(t *testing.T) {
	const n, rounds = 3, 3
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	o := valence.NewOracle(m)
	p, err := valence.BivalenceWidth(m, o, valence.DecreasingHorizon(rounds, 0), rounds-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= rounds-1; d++ {
		if p.Bivalent[d] == 0 {
			t.Errorf("depth %d: no bivalent states; the adversary would be stuck", d)
		}
		if got := p.Bivalent[d] + p.Univalent0[d] + p.Univalent1[d] + p.Null[d]; got != p.States[d] {
			t.Errorf("depth %d: classification sums to %d of %d states", d, got, p.States[d])
		}
		if p.Null[d] != 0 {
			t.Errorf("depth %d: %d null-valent states with an exact horizon", d, p.Null[d])
		}
	}
	// Both univalent classes are inhabited at depth 0 (the constant-input
	// states).
	if p.Univalent0[0] == 0 || p.Univalent1[0] == 0 {
		t.Error("expected both univalent classes among the initial states")
	}
}

// TestBivalenceWidthShrinksWithBudget: in S^t the bivalent frontier
// vanishes at depth t (budget-exhausted states are univalent), unlike in
// M^mf where it persists.
func TestBivalenceWidthShrinksWithBudget(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tt)
	o := valence.NewOracle(m)
	p, err := valence.BivalenceWidth(m, o, valence.DecreasingHorizon(rounds, 0), rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bivalence exists initially (Lemma 3.6)...
	if p.Bivalent[0] == 0 {
		t.Error("no bivalent initial state")
	}
	// ...but with t=1 it is already gone at depth 1: a depth-1 state has
	// either 0 failures (a failure-free round — univalent by Lemma 6.4) or
	// t failures (budget spent — unique extension, univalent). This is the
	// sharp form of the Lemma 6.1 bound: the chain stops at t-1 = 0.
	for d := 1; d <= rounds; d++ {
		if p.Bivalent[d] != 0 {
			t.Errorf("depth %d: %d bivalent states; with t=1 none should exist past depth 0", d, p.Bivalent[d])
		}
	}
}
