package valence_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/shmem"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestCertifyGraphMatchesRecursive pins the graph-backed certifier to the
// recursive one bit-for-bit — kind, detail, witness execution (init, every
// action, every state), and the Explored visit count — across the
// EXPERIMENTS.md refutation rows: E2 (FloodSet under the mobile-failures
// adversary), E3 (shared memory, undecided at bound), E5 (FloodSet round
// lower bound), plus flawed protocols covering the validity and write-once
// witness kinds, and clean runs where both certifiers return OK.
func TestCertifyGraphMatchesRecursive(t *testing.T) {
	cases := []struct {
		name  string
		m     core.Model
		bound int
	}{
		// E2 rows: mobile failures defeat FloodSet.
		{"e2-mobile-n3-b2", mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2},
		{"e2-mobile-n3-b3", mobile.New(protocols.FloodSet{Rounds: 3}, 3), 3},
		{"e2-mobile-n4-b2", mobile.New(protocols.FloodSet{Rounds: 2}, 4), 2},
		// E3 rows: one-phase shared-memory protocols stay undecided.
		{"e3-shmem-n3-p1", shmem.New(protocols.SMVote{Phases: 1}, 3), 1},
		{"e3-shmem-n3-p2", shmem.New(protocols.SMVote{Phases: 1}, 3), 2},
		// E5 rows: FloodSet with too few rounds for t failures.
		{"e5-syncst-n3-t1-fast", syncmp.NewSt(protocols.FloodSet{Rounds: 1}, 3, 1), 1},
		{"e5-syncst-n4-t1-fast", syncmp.NewSt(protocols.FloodSet{Rounds: 1}, 4, 1), 1},
		{"e5-syncst-n4-t2-fast", syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 4, 2), 2},
		// Validity and write-once violations.
		{"flawed-constant", syncmp.NewSt(protocols.ConstantDecider{Value: 1}, 3, 1), 1},
		{"flawed-flicker", syncmp.NewSt(protocols.FlickerDecider{}, 3, 1), 2},
		// Clean certifications: both engines must agree on OK and visits.
		{"ok-syncst-n3-t1", syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1), 2},
		{"ok-syncst-n4-t2", syncmp.NewSt(protocols.FloodSet{Rounds: 3}, 4, 2), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := valence.Certify(tc.m, tc.bound, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := valence.CertifyFast(tc.m, tc.bound, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != want.Kind {
				t.Fatalf("kind %v != %v", got.Kind, want.Kind)
			}
			if got.Detail != want.Detail {
				t.Fatalf("detail %q != %q", got.Detail, want.Detail)
			}
			if got.Explored != want.Explored {
				t.Errorf("explored %d != %d", got.Explored, want.Explored)
			}
			if want.Kind == valence.OK {
				return
			}
			if got.Exec.Init.Key() != want.Exec.Init.Key() {
				t.Fatalf("witness init differs:\n  graph     %s\n  recursive %s",
					got.Exec.Init.Key(), want.Exec.Init.Key())
			}
			if len(got.Exec.Steps) != len(want.Exec.Steps) {
				t.Fatalf("witness length %d != %d", len(got.Exec.Steps), len(want.Exec.Steps))
			}
			for i := range got.Exec.Steps {
				if got.Exec.Steps[i].Action != want.Exec.Steps[i].Action {
					t.Errorf("step %d action %q != %q", i, got.Exec.Steps[i].Action, want.Exec.Steps[i].Action)
				}
				if got.Exec.Steps[i].State.Key() != want.Exec.Steps[i].State.Key() {
					t.Errorf("step %d state differs", i)
				}
			}
		})
	}
}

// TestCertifyGraphBudget checks the visit budget surfaces the same ErrBudget
// as the recursive certifier.
func TestCertifyGraphBudget(t *testing.T) {
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1)
	_, err := valence.CertifyFast(m, 2, 5)
	if err == nil {
		t.Fatal("budget of 5 visits did not error")
	}
	if got, want := err.Error(), fmt.Sprintf("after %d visits: %v", 6, valence.ErrBudget); got != want {
		t.Errorf("error %q, want %q", got, want)
	}
}

// TestCertifyGraphNotGraded checks that a non-graded graph is refused (and
// that CertifyFast silently falls back to the recursive path for one).
func TestCertifyGraphNotGraded(t *testing.T) {
	// asyncmp at n=2 produces same-depth shortcut edges (see field tests).
	m := asyncmp.New(protocols.MPFlood{Phases: 2}, 2)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Graded() {
		t.Skip("model graph unexpectedly graded")
	}
	if _, err := valence.CertifyGraph(g, 0); !errors.Is(err, valence.ErrNotGraded) {
		t.Fatalf("CertifyGraph err = %v, want ErrNotGraded", err)
	}
	want, err := valence.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := valence.CertifyFast(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Detail != want.Detail {
		t.Fatalf("fallback verdict (%v, %q) != (%v, %q)", got.Kind, got.Detail, want.Kind, want.Detail)
	}
}
