package valence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestLemma61BivalentChainSt constructs the Lemma 6.1 execution for
// FloodSet(t+1) under S^t: starting from a bivalent initial state, a chain
// of bivalent states x^0,...,x^{t-1} with at most m processes failed at x^m.
func TestLemma61BivalentChainSt(t *testing.T) {
	cases := []struct{ n, tt int }{
		{3, 1},
		{4, 2},
	}
	for _, c := range cases {
		rounds := c.tt + 1
		p := protocols.FloodSet{Rounds: rounds}
		m := syncmp.NewSt(p, c.n, c.tt)
		o := valence.NewOracle(m)
		target := c.tt - 1
		ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(rounds, 1), target)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", c.n, c.tt, err)
		}
		if ch.Stuck != nil || ch.Reached != target {
			t.Fatalf("n=%d t=%d: chain reached %d of %d (stuck=%v)", c.n, c.tt, ch.Reached, target, ch.Stuck != nil)
		}
		for depth, x := range ch.Exec.States() {
			if f := core.FailedCount(x); f > depth {
				t.Errorf("n=%d t=%d: %d failed at depth %d, want <= depth", c.n, c.tt, f, depth)
			}
			// Lemma 3.1: at a bivalent state at least n-t non-failed
			// processes are undecided.
			if err := valence.CheckBivalentUndecided(o, x, rounds-depth, c.tt); err != nil {
				t.Errorf("n=%d t=%d depth %d: %v", c.n, c.tt, depth, err)
			}
		}
	}
}

// TestLemma62OneMoreRound checks Lemma 6.2: from a bivalent state of
// R_{S^t}, some successor has a non-failed process that has not decided —
// so agreement cannot complete in one round after bivalence.
func TestLemma62OneMoreRound(t *testing.T) {
	const n, tt = 4, 2
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewSt(p, n, tt)
	o := valence.NewOracle(m)

	g, err := core.Explore(m, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, x := range g.Nodes {
		s := x.(*syncmp.State)
		depth := s.Round()
		if !o.Bivalent(x, rounds-depth) {
			continue
		}
		checked++
		found := false
		for _, succ := range m.Successors(x) {
			y := succ.State
			for i := 0; i < n; i++ {
				if y.FailedAt(i) {
					continue
				}
				if _, ok := y.Decided(i); !ok {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("bivalent state at round %d: every successor fully decided (Lemma 6.2 fails)", depth)
		}
	}
	if checked == 0 {
		t.Error("no bivalent states found to check")
	}
}

// TestLemma64FastUnivalence checks Lemma 6.4: for a fast protocol
// (FloodSet with t+1 rounds), if at most k processes have failed by the end
// of round k and round k+1 is failure-free, the resulting state is
// univalent.
func TestLemma64FastUnivalence(t *testing.T) {
	cases := []struct{ n, tt int }{
		{3, 1},
		{4, 2},
	}
	for _, c := range cases {
		rounds := c.tt + 1
		p := protocols.FloodSet{Rounds: rounds}
		m := syncmp.NewSt(p, c.n, c.tt)
		o := valence.NewOracle(m)
		g, err := core.Explore(m, rounds-1, 0)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for _, x := range g.Nodes {
			s := x.(*syncmp.State)
			k := s.Round()
			if k >= rounds || s.FailedCount() > k {
				continue
			}
			y := syncmp.ApplyAction(p, s, 0, 0, true, true) // failure-free round k+1
			if _, ok := o.Univalent(y, rounds-(k+1)); !ok {
				t.Errorf("n=%d t=%d: state after failure-free round %d (<=%d failures) not univalent",
					c.n, c.tt, k+1, k)
			}
			checked++
		}
		if checked == 0 {
			t.Error("nothing checked")
		}
	}
}

// TestStSimilarityStructure records the measured similarity structure of
// S^t layers under failure recording (see DESIGN.md): within a layer, the
// states that share the same newly-failed process are similarity connected,
// while valence connectivity of the whole layer still holds for the tested
// protocol — which is what Lemma 4.1 actually consumes.
func TestStSimilarityStructure(t *testing.T) {
	const n, tt = 4, 2
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewSt(p, n, tt)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		r := valence.AnalyzeLayer(m, o, x, rounds)
		if !r.ValenceConnected {
			t.Errorf("init %q: S^t layer not valence connected", x.Key())
		}
		// With the failed set recorded in the environment (Section 6
		// assumption (iii)), layers split into one similarity component per
		// newly-failed process plus the failure-free state: n+1 components.
		if r.SimilarityComponents != n+1 {
			t.Errorf("init %q: %d similarity components, want %d",
				x.Key(), r.SimilarityComponents, n+1)
		}
	}
}
