package valence_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/proto"
	"repro/internal/shmem"
	"repro/internal/snapshot"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// fieldModels builds one instance of each of the repository's nine model
// types. rounds parameterizes the protocol; heavy marks the families whose
// layer branching explodes fastest, so callers can cap their depth.
func fieldModels(n, tf, rounds int) []struct {
	name  string
	m     core.Model
	heavy bool
} {
	sp := proto.SyncProtocol(protocols.FloodSet{Rounds: rounds})
	smp := proto.SMProtocol(protocols.SMVote{Phases: rounds})
	mpp := proto.MPProtocol(protocols.MPFlood{Phases: rounds})
	return []struct {
		name  string
		m     core.Model
		heavy bool
	}{
		{"mobile", mobile.New(sp, n), false},
		{"mobile-full", mobile.NewFull(sp, n), false},
		{"syncmp-st", syncmp.NewSt(sp, n, tf), false},
		{"syncmp-multi", syncmp.NewStMulti(sp, n, tf, 1), false},
		{"shmem", shmem.New(smp, n), true},
		{"asyncmp", asyncmp.New(mpp, n), true},
		{"asyncmp-synchronic", asyncmp.NewSynchronic(mpp, n), true},
		{"iis", iis.New(smp, n), true},
		{"snapshot", snapshot.New(smp, n), true},
	}
}

// TestFieldPropertyMatchesOracle is the defining property of the valence
// field: for a graph explored to depth B, the field mask of every node
// equals Oracle.Valences(state, B-depth) — the residual exploration depth
// is the valence horizon. Checked across all nine model types, n in
// {2,3,4}, and worker counts {1, 4, GOMAXPROCS}; the sharded sweeps must
// also be bit-identical across worker counts. Run under -race to exercise
// the parallel layer sharding.
func TestFieldPropertyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, n := range []int{2, 3, 4} {
		tf := 1
		if n > 2 {
			tf = 1 + rng.Intn(n-2)
		}
		rounds := 1 + rng.Intn(2)
		for _, mc := range fieldModels(n, tf, rounds) {
			depth := 2
			if mc.heavy && n >= 4 {
				depth = 1
			}
			name := fmt.Sprintf("%s-n%d-t%d-r%d-d%d", mc.name, n, tf, rounds, depth)
			t.Run(name, func(t *testing.T) {
				g, err := core.ExploreID(mc.m, depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				ref := valence.NewField(g)
				if g.Graded() {
					// Exact horizon semantics: field mask == Valences at
					// the residual exploration depth.
					o := valence.NewOracle(mc.m)
					for u := 0; u < g.Len(); u++ {
						horizon := g.Depth - int(g.DepthOf[u])
						want := o.Valences(g.States[u], horizon)
						if got := ref.Mask(uint32(u)); got != want {
							t.Fatalf("node %d (depth %d): field mask %02b != oracle %02b",
								u, g.DepthOf[u], got, want)
						}
					}
				} else {
					// Async families at small n produce same-depth shortcut
					// edges; the fallback's fixpoint mask is the union of
					// decided bits over everything reachable in the
					// explored graph. Check against a per-node closure.
					for u := 0; u < g.Len(); u++ {
						want := reachableDecided(g, uint32(u))
						if got := ref.Mask(uint32(u)); got != want {
							t.Fatalf("node %d: fixpoint mask %02b != closure %02b", u, got, want)
						}
					}
				}
				for _, w := range workerCounts {
					f := valence.NewFieldParallel(g, w)
					for u := 0; u < g.Len(); u++ {
						if f.Mask(uint32(u)) != ref.Mask(uint32(u)) {
							t.Fatalf("workers=%d: mask of node %d differs from serial", w, u)
						}
					}
				}
			})
		}
	}
}

// reachableDecided is the reference for the non-graded fallback: the OR of
// decided bits over every node reachable from u along recorded edges.
func reachableDecided(g *core.IDGraph, u uint32) uint8 {
	seen := make([]bool, g.Len())
	stack := []uint32{u}
	seen[u] = true
	var mask uint8
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		mask |= uint8(core.DecidedValues(g.States[v]) & 0b11)
		_, to := g.Out(v)
		for _, w := range to {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return mask
}

// TestFieldConsumers checks the field-backed consumer paths against their
// Oracle-backed equivalents on one model: Width vs BivalenceWidth,
// AnalyzeNode vs AnalyzeLayer, BivalentChain vs BivalentChain, and the
// UseField fast path returning the same Valences.
func TestFieldConsumers(t *testing.T) {
	const n, bound = 3, 3
	m := mobile.New(protocols.FloodSet{Rounds: 2}, n)
	g, err := core.ExploreID(m, bound, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := valence.NewField(g)
	o := valence.NewOracle(m)
	horizon := valence.DecreasingHorizon(bound, 0)

	wp, err := valence.BivalenceWidth(m, o, horizon, bound, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := f.Width()
	for d := 0; d <= bound; d++ {
		if wp.States[d] != fp.States[d] || wp.Bivalent[d] != fp.Bivalent[d] ||
			wp.Univalent0[d] != fp.Univalent0[d] || wp.Univalent1[d] != fp.Univalent1[d] ||
			wp.Null[d] != fp.Null[d] {
			t.Errorf("width profile differs at depth %d: oracle %+v field %+v", d, wp, fp)
		}
	}

	// AnalyzeNode on every non-frontier node against AnalyzeLayer with the
	// matching horizon.
	for u := 0; u < g.Len(); u++ {
		d := int(g.DepthOf[u])
		if d >= bound {
			continue
		}
		or := valence.AnalyzeLayer(m, o, g.States[u], bound-d-1)
		fr := f.AnalyzeNode(uint32(u))
		if len(or.States) != len(fr.States) {
			t.Fatalf("node %d: layer sizes differ: %d vs %d", u, len(or.States), len(fr.States))
		}
		for i := range or.States {
			if or.States[i].Key() != fr.States[i].Key() {
				t.Fatalf("node %d state %d: order differs", u, i)
			}
			if or.Valences[i] != fr.Valences[i] {
				t.Fatalf("node %d state %d: valence %02b vs %02b", u, i, or.Valences[i], fr.Valences[i])
			}
		}
		if or.ValenceConnected != fr.ValenceConnected ||
			or.SimilarityConnected != fr.SimilarityConnected ||
			or.SDiameter != fr.SDiameter {
			t.Fatalf("node %d: connectivity summary differs", u)
		}
	}

	oc, err := valence.BivalentChain(m, o, horizon, bound)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := f.BivalentChain(bound)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Reached != fc.Reached {
		t.Fatalf("chain reached %d vs %d", oc.Reached, fc.Reached)
	}
	if oc.Exec.Init.Key() != fc.Exec.Init.Key() {
		t.Error("chain inits differ")
	}
	for i := range oc.Exec.Steps {
		if oc.Exec.Steps[i].Action != fc.Exec.Steps[i].Action {
			t.Errorf("chain step %d: %q vs %q", i, oc.Exec.Steps[i].Action, fc.Exec.Steps[i].Action)
		}
	}

	// UseField: the oracle resolves graph states from the field and agrees
	// with an unassisted oracle.
	o2 := valence.NewOracle(m)
	o2.UseField(f)
	for u := 0; u < g.Len(); u++ {
		h := g.Depth - int(g.DepthOf[u])
		if got, want := o2.Valences(g.States[u], h), o.Valences(g.States[u], h); got != want {
			t.Fatalf("UseField: node %d mask %02b != %02b", u, got, want)
		}
	}
	if o2.MemoLen() >= o.MemoLen() {
		t.Errorf("UseField memo %d not smaller than plain %d", o2.MemoLen(), o.MemoLen())
	}
}

// TestFieldBivalentAtBound pins the Lemma 3.2 refutation helper: under the
// mobile-failure adversary FloodSet cannot decide in 2 rounds at n=3, so
// layer 1 still holds a bivalent state, and the walkback execution
// actually reaches the reported node.
func TestFieldBivalentAtBound(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := valence.NewField(g)
	u, exec, ok := f.BivalentAtBound(1)
	if !ok {
		t.Fatal("no bivalent state at layer 1")
	}
	if !f.Bivalent(u) {
		t.Fatal("reported node not bivalent")
	}
	if exec.Len() != 1 || exec.Last().Key() != g.Keys[u] {
		t.Fatalf("walkback execution wrong: len %d last %q", exec.Len(), exec.Last().Key())
	}
	// Layer 0: the mixed-input inits are bivalent, with an empty execution.
	r, exec0, ok := f.BivalentAtBound(0)
	if !ok || exec0.Len() != 0 || exec0.Init.Key() != g.Keys[r] {
		t.Fatalf("layer-0 witness wrong: ok=%v", ok)
	}
}
