package valence_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestCertifyParallelPropertyMatchesSerial is the determinism property of
// CertifyParallel: across randomized models (family, size, protocol
// parameters, bound) and worker counts, the parallel certifier must return
// the same verdict as the serial one, and on violation the same
// earliest-init witness — same violating initial state and the identical
// action sequence leading to the violation. Run it under -race to also
// exercise the shared successor cache from concurrent workers.
func TestCertifyParallelPropertyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))

	type build func(rounds, n, tf int) core.Model
	families := []struct {
		name  string
		build build
	}{
		{"syncmp-st-floodset", func(rounds, n, tf int) core.Model {
			return syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tf)
		}},
		{"syncmp-st-earlyflood", func(rounds, n, tf int) core.Model {
			return syncmp.NewSt(protocols.EarlyFloodSet{MaxRounds: rounds}, n, tf)
		}},
		{"mobile-floodset", func(rounds, n, tf int) core.Model {
			return mobile.New(protocols.FloodSet{Rounds: rounds}, n)
		}},
	}

	const trials = 12
	for trial := 0; trial < trials; trial++ {
		fam := families[rng.Intn(len(families))]
		n := 3 + rng.Intn(2)      // 3 or 4 processes
		tf := 1 + rng.Intn(n-2)   // 1 .. n-2 failures
		rounds := 1 + rng.Intn(2) // protocol parameter
		bound := 1 + rng.Intn(2)  // certified layers
		workers := []int{1, 2, 3, 1 + rng.Intn(8)}

		m := fam.build(rounds, n, tf)
		name := fmt.Sprintf("trial%02d-%s-n%d-t%d-r%d-b%d", trial, fam.name, n, tf, rounds, bound)
		t.Run(name, func(t *testing.T) {
			serial, err := valence.Certify(m, bound, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workers {
				par, err := valence.CertifyParallel(m, bound, 0, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if par.Kind != serial.Kind {
					t.Fatalf("workers=%d: kind %v != serial %v", w, par.Kind, serial.Kind)
				}
				if serial.Kind == valence.OK {
					continue
				}
				if par.Exec.Init.Key() != serial.Exec.Init.Key() {
					t.Errorf("workers=%d: witness init differs:\n  par    %s\n  serial %s",
						w, par.Exec.Init.Key(), serial.Exec.Init.Key())
				}
				if len(par.Exec.Steps) != len(serial.Exec.Steps) {
					t.Fatalf("workers=%d: witness length %d != %d", w, len(par.Exec.Steps), len(serial.Exec.Steps))
				}
				for i := range par.Exec.Steps {
					if par.Exec.Steps[i].Action != serial.Exec.Steps[i].Action {
						t.Errorf("workers=%d: step %d action %q != %q",
							w, i, par.Exec.Steps[i].Action, serial.Exec.Steps[i].Action)
					}
				}
			}
		})
	}
}
