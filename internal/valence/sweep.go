package valence

import (
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/obs"
)

// Sweep is the steady-state, zero-allocation front end to the field sweep
// and the graph certifier. It owns a scratch arena and the reusable result
// objects; after a warmup call per graph shape, Field and CertifyGraph
// allocate nothing (verified with testing.AllocsPerRun in alloc_test.go),
// which is what the inner loops of the experiment drivers and benchmarks
// want — thousands of sweeps over the same few graphs with no GC traffic.
//
// Lifetime rule (inherited from the arena): everything a Sweep returns —
// the *Field, its planes, the *Witness — is valid only until the next call
// on the same Sweep. Callers that need to keep a result across calls must
// copy it out (Field.Masks materializes one). A Sweep is not safe for
// concurrent use; the parallel field sweep inside a single call is fine
// because only the coordinator allocates and workers write disjoint words.
//
// The zero value is ready to use.
type Sweep struct {
	ar arena.Arena
	f  Field
	c  graphCertifier
}

// Field computes the valence field of g (workers as in NewFieldParallel;
// pass 1 for the serial zero-alloc path) into reused, arena-backed planes.
// The result is bit-identical to NewFieldParallel's.
func (s *Sweep) Field(g *core.IDGraph, workers int) *Field {
	s.ar.Reset()
	s.publishBytes()
	// A nil resilient context never cancels and chaos fault points read it
	// as inactive, so the only error source is an injected fault — absent
	// here — and the loop below is the same converge-on-retry shape as
	// NewFieldParallel's.
	for {
		if err := s.f.compute(nil, g, workers, &s.ar); err == nil {
			return &s.f
		}
	}
}

// CertifyGraph certifies g exactly as the package-level CertifyGraph, with
// visited bitsets drawn from the reused arena.
func (s *Sweep) CertifyGraph(g *core.IDGraph, maxVisits int) (*Witness, error) {
	s.ar.Reset()
	s.publishBytes()
	return s.c.certify(nil, g, maxVisits, &s.ar)
}

// Bytes reports the arena's steady-state footprint in bytes.
func (s *Sweep) Bytes() int { return s.ar.Bytes() }

// publishBytes exports the arena footprint gauge when a recorder is active.
func (s *Sweep) publishBytes() {
	if rec := obs.Active(); rec != nil {
		rec.Set("arena.bytes", int64(s.ar.Bytes()))
	}
}
