package valence_test

import (
	"testing"

	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestCertifyFloodSetCorrect is the positive half of the Section 6 story:
// FloodSet with t+1 rounds solves consensus in the S^t submodel of the
// t-resilient synchronous model.
func TestCertifyFloodSetCorrect(t *testing.T) {
	cases := []struct{ n, tt int }{
		{3, 1},
		{4, 1},
		{4, 2},
	}
	for _, c := range cases {
		p := protocols.FloodSet{Rounds: c.tt + 1}
		m := syncmp.NewSt(p, c.n, c.tt)
		w, err := valence.Certify(m, c.tt+1, 0)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", c.n, c.tt, err)
		}
		if w.Kind != valence.OK {
			t.Errorf("n=%d t=%d: Certify = %v (%s), want ok", c.n, c.tt, w.Kind, w.Detail)
		}
	}
}

// TestCertifyFloodSetTooFast is the negative half (Corollary 6.3): deciding
// after only t rounds must fail, and the certifier must produce a concrete
// witness execution.
func TestCertifyFloodSetTooFast(t *testing.T) {
	cases := []struct{ n, tt int }{
		{3, 1},
		{4, 2},
	}
	for _, c := range cases {
		p := protocols.FloodSet{Rounds: c.tt}
		m := syncmp.NewSt(p, c.n, c.tt)
		w, err := valence.Certify(m, c.tt, 0)
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", c.n, c.tt, err)
		}
		if w.Kind == valence.OK {
			t.Fatalf("n=%d t=%d: too-fast FloodSet certified OK, violating the t+1 lower bound", c.n, c.tt)
		}
		if w.Kind != valence.AgreementViolation {
			t.Errorf("n=%d t=%d: witness kind = %v, want agreement violation", c.n, c.tt, w.Kind)
		}
		if w.Exec == nil || w.Exec.Len() > c.tt {
			t.Errorf("n=%d t=%d: witness execution missing or too long", c.n, c.tt)
		}
	}
}

// TestCertifyMobileNeverOK: in the mobile failure model no protocol solves
// consensus (Corollary 5.2); any decision bound must be refuted.
func TestCertifyMobileNeverOK(t *testing.T) {
	for _, rounds := range []int{1, 2, 3} {
		p := protocols.FloodSet{Rounds: rounds}
		m := mobile.New(p, 3)
		w, err := valence.Certify(m, rounds, 0)
		if err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("rounds=%d: certified OK in M^mf, contradicting Corollary 5.2", rounds)
		}
	}
}

// TestWitnessExecutionReplays verifies witness executions are genuine: the
// final state of the reported execution must exhibit the reported violation
// when re-derived through the model's successor function.
func TestWitnessExecutionReplays(t *testing.T) {
	p := protocols.FloodSet{Rounds: 1}
	m := syncmp.NewSt(p, 3, 1)
	w, err := valence.Certify(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Fatal("expected a violation")
	}
	// Replay: starting from w.Exec.Init, following the recorded actions
	// through m.Successors must reproduce the recorded states.
	x := w.Exec.Init
	for _, step := range w.Exec.Steps {
		found := false
		for _, s := range m.Successors(x) {
			if s.Action == step.Action {
				if s.State.Key() != step.State.Key() {
					t.Fatalf("replay diverged at action %q", step.Action)
				}
				x = s.State
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("action %q not offered by the model during replay", step.Action)
		}
	}
}

// TestCertifyBudget checks the visit budget is honored.
func TestCertifyBudget(t *testing.T) {
	p := protocols.FloodSet{Rounds: 3}
	m := syncmp.NewSt(p, 4, 2)
	if _, err := valence.Certify(m, 3, 10); err == nil {
		t.Error("want budget error with maxVisits=10")
	}
}
