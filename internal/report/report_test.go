package report_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/valence"
)

func refuted(t *testing.T) (*valence.Witness, core.Model) {
	t.Helper()
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	w, err := valence.Certify(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Fatal("expected refutation")
	}
	return w, m
}

func TestWitnessJSONRoundTrip(t *testing.T) {
	w, _ := refuted(t)
	var buf bytes.Buffer
	if err := report.Write(&buf, report.NewWitness(w, trace.FormatState)); err != nil {
		t.Fatal(err)
	}
	var decoded report.WitnessJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Verdict != "agreement violation" {
		t.Errorf("verdict = %q", decoded.Verdict)
	}
	if decoded.Witness == nil || decoded.Witness.Layers != w.Exec.Len() {
		t.Error("witness execution missing or wrong length")
	}
	if len(decoded.Witness.Steps) != w.Exec.Len() {
		t.Errorf("steps = %d", len(decoded.Witness.Steps))
	}
}

func TestWitnessJSONReplayableWithKeys(t *testing.T) {
	// With State.Key as the formatter, the JSON is exact enough to replay:
	// following the recorded actions reproduces the recorded keys.
	w, m := refuted(t)
	j := report.NewWitness(w, func(x core.State) string { return x.Key() })
	x := w.Exec.Init
	if j.Witness.Init != x.Key() {
		t.Fatal("init key mismatch")
	}
	for _, step := range j.Witness.Steps {
		found := false
		for _, s := range m.Successors(x) {
			if s.Action == step.Action {
				if s.State.Key() != step.State {
					t.Fatalf("replay diverged at %q", step.Action)
				}
				x = s.State
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("action %q not offered", step.Action)
		}
	}
}

func TestChainAndLayerJSON(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 3}, 3)
	o := valence.NewOracle(m)
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(3, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	cj := report.NewChain(ch, trace.FormatState)
	if cj.Reached != 2 || cj.Stuck {
		t.Errorf("chain json = %+v", cj)
	}
	lr := valence.AnalyzeLayer(m, o, m.Inits()[1], 3)
	lj := report.NewLayer(lr)
	if lj.States != len(lr.States) || !lj.SimilarityConnected {
		t.Errorf("layer json = %+v", lj)
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, lj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"similarityConnected\": true") {
		t.Errorf("json = %s", buf.String())
	}
}

// decisionVectors summarizes an execution as the per-process decision at
// every state along it (core.Undecided where undecided).
func decisionVectors(e *core.Execution) [][]int {
	var out [][]int
	for _, x := range e.States() {
		vec := make([]int, x.N())
		for i := range vec {
			vec[i] = core.Undecided
			if v, ok := x.Decided(i); ok {
				vec[i] = v
			}
		}
		out = append(out, vec)
	}
	return out
}

func TestReplayRoundTrip(t *testing.T) {
	// ExecutionJSON (with key formatter) -> JSON bytes -> Replay through the
	// model must reproduce the original execution's decision vectors exactly.
	w, m := refuted(t)
	var buf bytes.Buffer
	keyOf := func(x core.State) string { return x.Key() }
	if err := report.Write(&buf, report.NewExecution(w.Exec, keyOf)); err != nil {
		t.Fatal(err)
	}
	var decoded report.ExecutionJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	replayed, err := report.Replay(m, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Len() != w.Exec.Len() {
		t.Fatalf("replayed %d layers, want %d", replayed.Len(), w.Exec.Len())
	}
	got, want := decisionVectors(replayed), decisionVectors(w.Exec)
	if len(got) != len(want) {
		t.Fatalf("replay has %d states, want %d", len(got), len(want))
	}
	for d := range want {
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Errorf("depth %d process %d: decision %d, want %d", d, i, got[d][i], want[d][i])
			}
		}
	}
}

func TestReplayRejectsDivergence(t *testing.T) {
	w, m := refuted(t)
	keyOf := func(x core.State) string { return x.Key() }
	j := report.NewExecution(w.Exec, keyOf)

	bad := *j
	bad.Init = "no-such-init"
	if _, err := report.Replay(m, &bad); err == nil {
		t.Error("unknown init not rejected")
	}

	bad = *j
	bad.Steps = append([]report.StepJSON(nil), j.Steps...)
	bad.Steps[0].Action = "no-such-action"
	if _, err := report.Replay(m, &bad); err == nil {
		t.Error("unknown action not rejected")
	}

	bad = *j
	bad.Steps = append([]report.StepJSON(nil), j.Steps...)
	bad.Steps[len(bad.Steps)-1].State = "wrong-key"
	if _, err := report.Replay(m, &bad); err == nil {
		t.Error("state-key mismatch not rejected")
	}
}

func TestOKWitnessOmitsExecution(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	// A single univalent root certifies.
	w, err := valence.CertifyFrom(m, m.Inits()[:1], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := report.NewWitness(w, trace.FormatState)
	if j.Verdict != "ok" || j.Witness != nil {
		t.Errorf("ok witness json = %+v", j)
	}
}
