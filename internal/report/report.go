// Package report provides machine-readable (JSON) views of the framework's
// analysis results — witnesses, chains, layer reports, width profiles — for
// the command-line tools' -json output and for downstream tooling.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/valence"
)

// StepJSON is one transition of an execution.
type StepJSON struct {
	Action string `json:"action"`
	State  string `json:"state"`
}

// ExecutionJSON is a serializable execution: per-state decision summaries
// plus the action labels needed to replay it through the model.
type ExecutionJSON struct {
	Init   string     `json:"init"`
	Steps  []StepJSON `json:"steps"`
	Layers int        `json:"layers"`
}

// NewExecution converts an execution; states are rendered with the given
// formatter (e.g. trace.FormatState, or State.Key for exact replay).
func NewExecution(e *core.Execution, format func(core.State) string) *ExecutionJSON {
	if e == nil {
		return nil
	}
	out := &ExecutionJSON{
		Init:   format(e.Init),
		Layers: e.Len(),
	}
	for _, s := range e.Steps {
		out.Steps = append(out.Steps, StepJSON{Action: s.Action, State: format(s.State)})
	}
	return out
}

// Replay reconstructs an execution from its JSON form by running it back
// through the model: the init is matched by key among m.Inits(), then each
// recorded action label is followed through Successors and the reached
// state's key checked against the recorded one. It requires the JSON to
// have been produced with State.Key as the formatter (human-readable
// renderings are not replayable) and returns the first divergence as an
// error.
func Replay(m core.Model, e *ExecutionJSON) (*core.Execution, error) {
	if e == nil {
		return nil, fmt.Errorf("report: nil execution")
	}
	var x core.State
	for _, init := range m.Inits() {
		if init.Key() == e.Init {
			x = init
			break
		}
	}
	if x == nil {
		return nil, fmt.Errorf("report: init %q is not an initial state of the model", e.Init)
	}
	out := &core.Execution{Init: x}
	for i, step := range e.Steps {
		var next core.State
		for _, s := range m.Successors(x) {
			if s.Action == step.Action {
				next = s.State
				break
			}
		}
		if next == nil {
			return nil, fmt.Errorf("report: step %d: action %q not offered at %q", i, step.Action, x.Key())
		}
		if next.Key() != step.State {
			return nil, fmt.Errorf("report: step %d: action %q reached %q, recorded %q", i, step.Action, next.Key(), step.State)
		}
		out = out.Extend(step.Action, next)
		x = next
	}
	return out, nil
}

// WitnessJSON is a serializable certification outcome.
type WitnessJSON struct {
	Verdict  string         `json:"verdict"`
	Detail   string         `json:"detail,omitempty"`
	Explored int            `json:"statesExplored"`
	Witness  *ExecutionJSON `json:"witness,omitempty"`
}

// NewWitness converts a certification witness.
func NewWitness(w *valence.Witness, format func(core.State) string) *WitnessJSON {
	out := &WitnessJSON{
		Verdict:  w.Kind.String(),
		Detail:   w.Detail,
		Explored: w.Explored,
	}
	if w.Kind != valence.OK {
		out.Witness = NewExecution(w.Exec, format)
	}
	return out
}

// ChainJSON is a serializable bivalent chain.
type ChainJSON struct {
	Reached int            `json:"reached"`
	Stuck   bool           `json:"stuck"`
	Run     *ExecutionJSON `json:"run"`
}

// NewChain converts a bivalent chain result.
func NewChain(c *valence.Chain, format func(core.State) string) *ChainJSON {
	return &ChainJSON{
		Reached: c.Reached,
		Stuck:   c.Stuck != nil,
		Run:     NewExecution(c.Exec, format),
	}
}

// LayerJSON is a serializable layer report.
type LayerJSON struct {
	States               int  `json:"states"`
	SimilarityConnected  bool `json:"similarityConnected"`
	SimilarityComponents int  `json:"similarityComponents"`
	SDiameter            int  `json:"sDiameter"`
	ValenceConnected     bool `json:"valenceConnected"`
	Bivalent             int  `json:"bivalent"`
	NullValent           int  `json:"nullValent"`
}

// NewLayer converts a layer report.
func NewLayer(r *valence.LayerReport) *LayerJSON {
	return &LayerJSON{
		States:               len(r.States),
		SimilarityConnected:  r.SimilarityConnected,
		SimilarityComponents: r.SimilarityComponents,
		SDiameter:            r.SDiameter,
		ValenceConnected:     r.ValenceConnected,
		Bivalent:             len(r.BivalentIdx),
		NullValent:           len(r.NullValentIdx),
	}
}

// Write renders any report value as indented JSON.
func Write(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
