// Package knowledge implements the epistemic side of the paper's Section 6
// discussion: the connection, via Dwork & Moses [11], between deciding in
// the synchronous model and common knowledge among the nonfaulty
// processes.
//
// Over a set of global states (typically: all states reachable at one
// round of the t-resilient model), process i considers x and y
// indistinguishable when its local state is the same in both. "Everyone
// (non-failed) knows φ" at x means φ holds at every state some non-failed
// process cannot distinguish from x; common knowledge is the transitive
// closure — φ holds on x's entire connected component under the union of
// the non-failed indistinguishability relations.
//
// The classical result this makes executable: when a (correct) consensus
// protocol decides, the decided value is common knowledge among the
// nonfaulty processes — and before the decision round it is not.
package knowledge

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// Classes partitions states into common-knowledge classes: connected
// components of the union, over processes i that are non-failed in the
// endpoint states, of i's indistinguishability relation.
type Classes struct {
	states []core.State
	uf     *graph.UnionFind
	index  map[string]int
}

// NewClasses computes the common-knowledge partition of the given states.
// Two states are linked when some process, non-failed in both, has the
// same local state in both.
//
// Rather than testing all pairs, states are bucketed by (process i, n,
// Local(i)) over the processes non-failed in them: every pair inside a
// bucket is linked, and no link exists outside a bucket, so unioning each
// bucket's members into a chain yields exactly the pairwise partition in
// near-linear time.
func NewClasses(states []core.State) *Classes {
	for {
		c, err := NewClassesCtx(nil, states)
		if err == nil {
			return c
		}
		// A nil context never cancels, so the error is an injected chaos
		// fault; each armed rule fires once, so retrying converges.
	}
}

// classesCheckEvery is how many states the bucketing loop processes
// between context polls.
const classesCheckEvery = 1024

// NewClassesCtx is NewClasses under a cancellation context, polled (with
// the chaos knowledge.bucket fault point) every 1024 states. An
// interruption returns the partial partition built so far — a valid
// (coarser-than-final) partition of the states already linked — alongside
// the wrapped cause.
func NewClassesCtx(ctx *resilient.Ctx, states []core.State) (*Classes, error) {
	rec := obs.Active()
	defer obs.Span(rec, "knowledge.classes.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("knowledge.classes", 0))
	}
	c := &Classes{
		states: states,
		uf:     graph.NewUnionFind(len(states)),
		index:  make(map[string]int, len(states)),
	}
	for i, x := range states {
		if i%classesCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return c, fmt.Errorf("knowledge: partition interrupted while indexing state %d of %d: %w", i, len(states), err)
			}
		}
		c.index[x.Key()] = i
	}
	links := 0
	buckets := make(map[string]int, len(states))
	var b strings.Builder
	for idx, x := range states {
		if idx%classesCheckEvery == 0 {
			if err := chaos.Check(ctx, "knowledge.bucket"); err != nil {
				if rec != nil {
					rec.Add("knowledge.interrupts", 1)
					rec.Event("knowledge.interrupted",
						obs.F{Key: "at", Value: idx},
						obs.F{Key: "states", Value: len(states)},
						obs.F{Key: "cause", Value: err.Error()})
				}
				return c, fmt.Errorf("knowledge: partition interrupted at state %d of %d: %w", idx, len(states), err)
			}
		}
		for i := 0; i < x.N(); i++ {
			if x.FailedAt(i) {
				continue
			}
			b.Reset()
			b.WriteString(strconv.Itoa(i))
			b.WriteByte('\x1f')
			b.WriteString(strconv.Itoa(x.N()))
			b.WriteByte('\x1f')
			b.WriteString(x.Local(i))
			key := b.String()
			if first, seen := buckets[key]; seen {
				c.uf.Union(first, idx)
				links++
			} else {
				buckets[key] = idx
			}
		}
	}
	if rec != nil {
		rec.Add("knowledge.partitions", 1)
		rec.Add("knowledge.states", int64(len(states)))
		rec.Add("knowledge.links", int64(links))
		rec.Set("knowledge.classes", int64(c.uf.Sets()))
	}
	return c, nil
}

// NewClassesLayer computes the common-knowledge partition of one depth
// layer of a materialized state graph, in discovery order. When the layout
// pass has verified the layer is one contiguous id window (always true for
// explored graphs), the partition runs directly over that slice of the CSR
// node array — no copy.
func NewClassesLayer(g *core.IDGraph, d int) *Classes {
	if lo, hi, ok := g.LayerSpan(d); ok {
		return NewClasses(g.States[lo:hi:hi])
	}
	layer := g.Layer(d)
	states := make([]core.State, len(layer))
	for i, u := range layer {
		states[i] = g.States[u]
	}
	return NewClasses(states)
}

// SameClass reports whether two states (by key) are in the same
// common-knowledge class. Unknown keys report false.
func (c *Classes) SameClass(xKey, yKey string) bool {
	i, ok1 := c.index[xKey]
	j, ok2 := c.index[yKey]
	return ok1 && ok2 && c.uf.Connected(i, j)
}

// Count returns the number of classes.
func (c *Classes) Count() int { return c.uf.Sets() }

// CommonKnowledge reports whether the fact holds at every state of x's
// class — i.e. whether the fact is common knowledge among the non-failed
// processes at x. Unknown keys report false.
func (c *Classes) CommonKnowledge(xKey string, fact func(core.State) bool) bool {
	i, ok := c.index[xKey]
	if !ok {
		return false
	}
	root := c.uf.Find(i)
	for j, y := range c.states {
		if c.uf.Find(j) == root && !fact(y) {
			return false
		}
	}
	return true
}

// Class returns the keys of x's class, sorted. Unknown keys return nil.
func (c *Classes) Class(xKey string) []string {
	i, ok := c.index[xKey]
	if !ok {
		return nil
	}
	root := c.uf.Find(i)
	var out []string
	for j, y := range c.states {
		if c.uf.Find(j) == root {
			out = append(out, y.Key())
		}
	}
	sort.Strings(out)
	return out
}

// ClassValence folds a valence field over the partition: masks[i] is the
// valence mask of states[i] (as produced by valence.Field over the layer's
// nodes, in the same order), and the result assigns every state the OR of
// the masks across its whole common-knowledge class. Before the decision
// round a class containing a bivalent state spreads both valence bits to
// every member — the executable form of "the decided value is not yet
// common knowledge".
func (c *Classes) ClassValence(masks []uint8) []uint8 {
	classMask := make(map[int]uint8, c.uf.Sets())
	for i := range c.states {
		classMask[c.uf.Find(i)] |= masks[i]
	}
	out := make([]uint8, len(c.states))
	for i := range c.states {
		out[i] = classMask[c.uf.Find(i)]
	}
	return out
}

// DecidedValueFact returns a fact asserting "some non-failed process has
// decided v" — the canonical fact whose common knowledge accompanies
// consensus decisions.
func DecidedValueFact(v int) func(core.State) bool {
	return func(x core.State) bool {
		for i := 0; i < x.N(); i++ {
			if x.FailedAt(i) {
				continue
			}
			if got, ok := x.Decided(i); ok && got == v {
				return true
			}
		}
		return false
	}
}
