// Package knowledge implements the epistemic side of the paper's Section 6
// discussion: the connection, via Dwork & Moses [11], between deciding in
// the synchronous model and common knowledge among the nonfaulty
// processes.
//
// Over a set of global states (typically: all states reachable at one
// round of the t-resilient model), process i considers x and y
// indistinguishable when its local state is the same in both. "Everyone
// (non-failed) knows φ" at x means φ holds at every state some non-failed
// process cannot distinguish from x; common knowledge is the transitive
// closure — φ holds on x's entire connected component under the union of
// the non-failed indistinguishability relations.
//
// The classical result this makes executable: when a (correct) consensus
// protocol decides, the decided value is common knowledge among the
// nonfaulty processes — and before the decision round it is not.
package knowledge

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Classes partitions states into common-knowledge classes: connected
// components of the union, over processes i that are non-failed in the
// endpoint states, of i's indistinguishability relation.
type Classes struct {
	states []core.State
	uf     *graph.UnionFind
	index  map[string]int
}

// NewClasses computes the common-knowledge partition of the given states.
// Two states are linked when some process, non-failed in both, has the
// same local state in both.
func NewClasses(states []core.State) *Classes {
	c := &Classes{
		states: states,
		uf:     graph.NewUnionFind(len(states)),
		index:  make(map[string]int, len(states)),
	}
	for i, x := range states {
		c.index[x.Key()] = i
	}
	for a := 0; a < len(states); a++ {
		for b := a + 1; b < len(states); b++ {
			if indistinguishableToSomeone(states[a], states[b]) {
				c.uf.Union(a, b)
			}
		}
	}
	return c
}

// indistinguishableToSomeone reports whether some process non-failed in
// both states has equal local states in both.
func indistinguishableToSomeone(x, y core.State) bool {
	if x.N() != y.N() {
		return false
	}
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) || y.FailedAt(i) {
			continue
		}
		if x.Local(i) == y.Local(i) {
			return true
		}
	}
	return false
}

// SameClass reports whether two states (by key) are in the same
// common-knowledge class. Unknown keys report false.
func (c *Classes) SameClass(xKey, yKey string) bool {
	i, ok1 := c.index[xKey]
	j, ok2 := c.index[yKey]
	return ok1 && ok2 && c.uf.Connected(i, j)
}

// Count returns the number of classes.
func (c *Classes) Count() int { return c.uf.Sets() }

// CommonKnowledge reports whether the fact holds at every state of x's
// class — i.e. whether the fact is common knowledge among the non-failed
// processes at x. Unknown keys report false.
func (c *Classes) CommonKnowledge(xKey string, fact func(core.State) bool) bool {
	i, ok := c.index[xKey]
	if !ok {
		return false
	}
	root := c.uf.Find(i)
	for j, y := range c.states {
		if c.uf.Find(j) == root && !fact(y) {
			return false
		}
	}
	return true
}

// Class returns the keys of x's class, sorted. Unknown keys return nil.
func (c *Classes) Class(xKey string) []string {
	i, ok := c.index[xKey]
	if !ok {
		return nil
	}
	root := c.uf.Find(i)
	var out []string
	for j, y := range c.states {
		if c.uf.Find(j) == root {
			out = append(out, y.Key())
		}
	}
	sort.Strings(out)
	return out
}

// DecidedValueFact returns a fact asserting "some non-failed process has
// decided v" — the canonical fact whose common knowledge accompanies
// consensus decisions.
func DecidedValueFact(v int) func(core.State) bool {
	return func(x core.State) bool {
		for i := 0; i < x.N(); i++ {
			if x.FailedAt(i) {
				continue
			}
			if got, ok := x.Decided(i); ok && got == v {
				return true
			}
		}
		return false
	}
}
