package knowledge_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/knowledge"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// statesAtRound explores the S^t model and returns the states first
// reached at the given round.
func statesAtRound(t *testing.T, m core.Model, round int) []core.State {
	t.Helper()
	g, err := core.Explore(m, round, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g.StatesAtDepth(round)
}

// TestDecisionImpliesCommonKnowledge is the Dwork–Moses connection,
// executable: at FloodSet(t+1)'s decision round, each state's decided
// value is common knowledge among the non-failed processes — every state
// in its common-knowledge class carries the same decision.
func TestDecisionImpliesCommonKnowledge(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tt)
	states := statesAtRound(t, m, rounds)
	classes := knowledge.NewClasses(states)
	for _, x := range states {
		v := decidedValue(x)
		if v == core.Undecided {
			t.Fatalf("undecided state at the decision round")
		}
		if !classes.CommonKnowledge(x.Key(), knowledge.DecidedValueFact(v)) {
			t.Errorf("decision %d not common knowledge at %s", v, x.Key())
		}
	}
}

// TestNoCommonKnowledgeBeforeDecision: with t=2 (n=4), bivalent states
// persist through round t-1 = 1, and at a bivalent state neither future
// value is common knowledge — the state's CK class reaches both valences.
func TestNoCommonKnowledgeBeforeDecision(t *testing.T) {
	const n, tt = 4, 2
	rounds := tt + 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tt)
	o := valence.NewOracle(m)
	const round = 1 // = t-1: the last round with bivalent states
	states := statesAtRound(t, m, round)
	classes := knowledge.NewClasses(states)
	byKey := make(map[string]core.State, len(states))
	for _, y := range states {
		byKey[y.Key()] = y
	}
	checkedBivalent := 0
	for _, x := range states {
		if !o.Bivalent(x, rounds-round) {
			continue
		}
		checkedBivalent++
		both := uint8(0)
		for _, key := range classes.Class(x.Key()) {
			both |= o.Valences(byKey[key], rounds-round)
		}
		if both != valence.V0|valence.V1 {
			t.Errorf("bivalent state's CK class reaches only valences %02b", both)
		}
	}
	if checkedBivalent == 0 {
		t.Fatal("no bivalent states at round t-1; Lemma 6.1 says they exist")
	}
}

// TestClassesBasics: class structure sanity on the initial states — the
// initial Con_0 is one big class (it is similarity connected and everyone
// is non-failed).
func TestClassesBasics(t *testing.T) {
	const n, tt = 3, 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: tt + 1}, n, tt)
	inits := m.Inits()
	classes := knowledge.NewClasses(inits)
	if classes.Count() != 1 {
		t.Errorf("Con_0 splits into %d CK classes, want 1", classes.Count())
	}
	if got := classes.Class(inits[0].Key()); len(got) != len(inits) {
		t.Errorf("class size %d, want %d", len(got), len(inits))
	}
	if classes.SameClass("nope", inits[0].Key()) {
		t.Error("unknown key reported in a class")
	}
	if classes.CommonKnowledge("nope", func(core.State) bool { return true }) {
		t.Error("unknown key has common knowledge")
	}
	// Nothing value-specific is common knowledge initially.
	if classes.CommonKnowledge(inits[0].Key(), knowledge.DecidedValueFact(0)) {
		t.Error("a decision is common knowledge before the run starts")
	}
}

// TestBucketedClassesMatchQuadratic is the differential test for the
// bucketed NewClasses: on every layer of the t-resilient FloodSet graph,
// the bucketed partition must equal the all-pairs one — same class count
// and the same SameClass verdict for every pair.
func TestBucketedClassesMatchQuadratic(t *testing.T) {
	const n, tt = 4, 2
	m := syncmp.NewSt(protocols.FloodSet{Rounds: tt + 1}, n, tt)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= g.Depth; d++ {
		layer := g.Layer(d)
		states := make([]core.State, len(layer))
		for i, u := range layer {
			states[i] = g.States[u]
		}
		fast := knowledge.NewClassesLayer(g, d)
		slow := quadraticClasses(states)
		if fast.Count() != slow.count() {
			t.Fatalf("depth %d: %d classes != %d (quadratic)", d, fast.Count(), slow.count())
		}
		for a := 0; a < len(states); a++ {
			for b := a + 1; b < len(states); b++ {
				want := slow.connected(a, b)
				got := fast.SameClass(states[a].Key(), states[b].Key())
				if got != want {
					t.Fatalf("depth %d: SameClass(%d,%d) = %v, want %v", d, a, b, got, want)
				}
			}
		}
	}
}

// quadraticClasses is the original all-pairs union kept as the reference.
type quadRef struct {
	parent []int
}

func quadraticClasses(states []core.State) *quadRef {
	r := &quadRef{parent: make([]int, len(states))}
	for i := range r.parent {
		r.parent[i] = i
	}
	for a := 0; a < len(states); a++ {
		for b := a + 1; b < len(states); b++ {
			if indistinguishableToSomeoneRef(states[a], states[b]) {
				r.union(a, b)
			}
		}
	}
	return r
}

func indistinguishableToSomeoneRef(x, y core.State) bool {
	if x.N() != y.N() {
		return false
	}
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) || y.FailedAt(i) {
			continue
		}
		if x.Local(i) == y.Local(i) {
			return true
		}
	}
	return false
}

func (r *quadRef) find(a int) int {
	for r.parent[a] != a {
		r.parent[a] = r.parent[r.parent[a]]
		a = r.parent[a]
	}
	return a
}
func (r *quadRef) union(a, b int)        { r.parent[r.find(a)] = r.find(b) }
func (r *quadRef) connected(a, b int) bool { return r.find(a) == r.find(b) }
func (r *quadRef) count() int {
	c := 0
	for i := range r.parent {
		if r.find(i) == i {
			c++
		}
	}
	return c
}

// TestClassValenceSweepsField runs the CK-class analysis off the valence
// field: on the last bivalent round of FloodSet (t=2), every bivalent
// state's class valence is both bits — the field-backed form of
// TestNoCommonKnowledgeBeforeDecision, with no per-state oracle calls.
func TestClassValenceSweepsField(t *testing.T) {
	const n, tt = 4, 2
	rounds := tt + 1
	m := syncmp.NewSt(protocols.FloodSet{Rounds: rounds}, n, tt)
	g, err := core.ExploreID(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := valence.NewField(g)
	const round = 1 // = t-1: the last round with bivalent states
	classes := knowledge.NewClassesLayer(g, round)
	classValence := classes.ClassValence(f.LayerMasks(round))
	checkedBivalent := 0
	for i, u := range g.Layer(round) {
		if !f.Bivalent(u) {
			continue
		}
		checkedBivalent++
		if classValence[i] != valence.V0|valence.V1 {
			t.Errorf("bivalent state's CK class reaches only valences %02b", classValence[i])
		}
	}
	if checkedBivalent == 0 {
		t.Fatal("no bivalent states at round t-1; Lemma 6.1 says they exist")
	}
}

func decidedValue(x core.State) int {
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if v, ok := x.Decided(i); ok {
			return v
		}
	}
	return core.Undecided
}
