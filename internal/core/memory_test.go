package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/resilient"
)

// TestExploreMemoryPressureCheckpoints: with an unsatisfiable soft memory
// limit, exploration stops at its next layer boundary with an ErrMemory in
// the ErrPartial family and a checkpoint attached; once the limit clears,
// resuming yields the bit-identical graph. This is the engine half of the
// supervisor's degradation ladder.
func TestExploreMemoryPressureCheckpoints(t *testing.T) {
	full, err := core.ExploreID(newCkptModel(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	resilient.SetSoftMemLimit(1) // any live heap exceeds this
	defer resilient.SetSoftMemLimit(0)
	partial, perr := core.ExploreIDCtx(nil, newCkptModel(), 3, 0, 1)
	resilient.SetSoftMemLimit(0)

	if !errors.Is(perr, resilient.ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", perr)
	}
	if !errors.Is(perr, resilient.ErrPartial) {
		t.Fatalf("memory stop outside the ErrPartial family: %v", perr)
	}
	if partial == nil || partial.ReachedDepth() >= full.ReachedDepth() {
		t.Fatalf("memory stop did not interrupt early (reached %v)", partial)
	}

	resumed, rerr := core.ExploreIDCtx(roundTrip(t, perr), newCkptModel(), 3, 0, 1)
	if rerr != nil {
		t.Fatalf("resume after memory pressure: %v", rerr)
	}
	idGraphsIdentical(t, full, resumed)
}

// TestSoftMemLimitDisabledIsFree: a zero or negative limit disables the
// gate — MemPressure must return nil without reading runtime metrics.
func TestSoftMemLimitDisabledIsFree(t *testing.T) {
	resilient.SetSoftMemLimit(0)
	if err := resilient.MemPressure(); err != nil {
		t.Fatalf("disabled gate reported %v", err)
	}
	resilient.SetSoftMemLimit(-5)
	if err := resilient.MemPressure(); err != nil {
		t.Fatalf("negative limit reported %v", err)
	}
	if got := resilient.SoftMemLimit(); got != -5 {
		t.Fatalf("SoftMemLimit = %d, want the stored -5", got)
	}
	resilient.SetSoftMemLimit(0)
}
