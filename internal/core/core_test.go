package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
)

func TestExploreDepthAndCounts(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := mobile.New(p, n)
	g, err := core.Explore(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.InitKeys); got != 1<<n {
		t.Errorf("init keys = %d, want %d", got, 1<<n)
	}
	if got := len(g.StatesAtDepth(0)); got != 1<<n {
		t.Errorf("states at depth 0 = %d, want %d", got, 1<<n)
	}
	// Every depth-0 state has recorded edges; deepest states have none.
	for _, k := range g.InitKeys {
		if len(g.Edges[k]) == 0 {
			t.Errorf("initial state %q has no recorded edges", k)
		}
	}
	for _, x := range g.StatesAtDepth(2) {
		if len(g.Edges[x.Key()]) != 0 {
			t.Error("frontier state has recorded edges")
		}
	}
	if err := g.CheckDeterminism(m); err != nil {
		t.Error(err)
	}
}

func TestExploreBudget(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 3}
	m := mobile.New(p, n)
	g, err := core.Explore(m, 3, 10)
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Errorf("err = %v, want ErrNodeBudget", err)
	}
	// The partial graph explored so far is returned alongside the error.
	if g == nil || g.Len() != 10 {
		t.Fatalf("partial graph = %v, want 10 nodes", g)
	}
	if len(g.InitKeys) != 1<<n {
		t.Errorf("partial graph lost init keys: %d", len(g.InitKeys))
	}
}

// TestErrDepthExceededAlias pins the deprecated alias for external users:
// ErrDepthExceeded must remain the same error value as ErrNodeBudget so
// that errors.Is works through either name.
func TestErrDepthExceededAlias(t *testing.T) {
	if core.ErrDepthExceeded != core.ErrNodeBudget { //lint:sentinel alias identity is the property under test
		t.Fatal("ErrDepthExceeded is no longer an alias of ErrNodeBudget")
	}
	if !errors.Is(core.ErrDepthExceeded, core.ErrNodeBudget) ||
		!errors.Is(core.ErrNodeBudget, core.ErrDepthExceeded) {
		t.Fatal("alias identity not symmetric under errors.Is")
	}
}

func TestExecutionAccessors(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 2}
	m := syncmp.NewSt(p, n, 1)
	init := m.Initial([]int{0, 1, 1})
	e := &core.Execution{Init: init}
	if e.Len() != 0 || e.Last() != init {
		t.Error("empty execution accessors wrong")
	}
	succs := m.Successors(init)
	e2 := e.Extend(succs[0].Action, succs[0].State)
	if e.Len() != 0 {
		t.Error("Extend mutated the receiver")
	}
	if e2.Len() != 1 || e2.Last().Key() != succs[0].State.Key() {
		t.Error("Extend result wrong")
	}
	if got := e2.States(); len(got) != 2 || got[0] != init {
		t.Errorf("States() = %d entries", len(got))
	}
	if got := e2.Actions(); len(got) != 1 || got[0] != succs[0].Action {
		t.Errorf("Actions() = %v", got)
	}
}

func TestDecidedValuesAndHelpers(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: 1}
	m := syncmp.NewSt(p, n, tt)
	x := m.Initial([]int{0, 1, 1})
	if core.DecidedValues(x) != 0 {
		t.Error("initial state has decisions")
	}
	if core.AllDecided(x) {
		t.Error("initial state all-decided")
	}
	y := syncmp.ApplyAction(p, x, 0, syncmp.OmitMask(n), true, true)
	// Non-failed 1 and 2 decided 1; failed 0 decided 0 — excluded.
	if mask := core.DecidedValues(y); mask != 0b10 {
		t.Errorf("DecidedValues = %02b, want 10", mask)
	}
	if !core.AllDecided(y) {
		t.Error("all non-failed should have decided")
	}
	if core.FailedCount(y) != 1 {
		t.Errorf("FailedCount = %d, want 1", core.FailedCount(y))
	}
}

func TestSimilarRequiresEnvEquality(t *testing.T) {
	const n = 3
	p := protocols.FullInfo{}
	// Same locals, different environment (failed sets).
	locals := []string{"a", "b", "c"}
	x := syncmp.NewState(p, 1, locals, 0b001, true, nil)
	y := syncmp.NewState(p, 1, locals, 0b010, true, nil)
	if _, ok := core.Similar(x, y); ok {
		t.Error("states with different environments reported similar")
	}
	if core.AgreeModulo(x, y, 0) {
		t.Error("AgreeModulo ignored the environment")
	}
}

func TestSimilarRequiresNonFailedWitness(t *testing.T) {
	const n = 2
	p := protocols.FullInfo{}
	// n=2: states differing in process 0 with process 1 failed in both —
	// no non-failed witness i != j exists.
	x := syncmp.NewState(p, 1, []string{"a", "b"}, 0b10, true, nil)
	y := syncmp.NewState(p, 1, []string{"a2", "b"}, 0b10, true, nil)
	if _, ok := core.Similar(x, y); ok {
		t.Error("similar without a non-failed witness")
	}
	// With nobody failed it is similar (witness process 1).
	x2 := syncmp.NewState(p, 1, []string{"a", "b"}, 0, true, nil)
	y2 := syncmp.NewState(p, 1, []string{"a2", "b"}, 0, true, nil)
	if j, ok := core.Similar(x2, y2); !ok || j != 0 {
		t.Errorf("Similar = (%d,%v), want (0,true)", j, ok)
	}
}

func TestSuccessorFuncAdapter(t *testing.T) {
	called := 0
	var f core.SuccessorFunc = func(x core.State) []core.Succ {
		called++
		return nil
	}
	f.Successors(nil)
	if called != 1 {
		t.Error("adapter did not delegate")
	}
}
