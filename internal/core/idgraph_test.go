package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/shmem"
)

// TestIDGraphParentWalkback checks the parent-pointer invariants: inits
// have no parent, every other node's parent chain is a valid path whose
// edges exist in the CSR arrays, and PathTo replays to the node itself
// with exactly DepthOf steps (parents are BFS, so paths are shortest).
func TestIDGraphParentWalkback(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	isInit := make(map[uint32]bool)
	for _, u := range g.Inits {
		isInit[u] = true
		if _, _, ok := g.Parent(u); ok {
			t.Errorf("init node %d has a parent", u)
		}
	}
	for u := 0; u < g.Len(); u++ {
		exec := g.PathTo(uint32(u))
		if exec.Len() != int(g.DepthOf[u]) {
			t.Fatalf("node %d: path length %d != depth %d", u, exec.Len(), g.DepthOf[u])
		}
		if exec.Last().Key() != g.Keys[u] {
			t.Fatalf("node %d: path ends at %q, not the node", u, exec.Last().Key())
		}
		root, ok := g.NodeByKey(exec.Init.Key())
		if !ok || !isInit[root] {
			t.Fatalf("node %d: path starts at non-init %q", u, exec.Init.Key())
		}
		// Each step must be a recorded edge of the previous state.
		cur := root
		for _, st := range exec.Steps {
			actions, to := g.Out(cur)
			found := false
			for i := range actions {
				if actions[i] == st.Action && g.Keys[to[i]] == st.State.Key() {
					cur = to[i]
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d: step %q not a recorded edge of node %d", u, st.Action, cur)
			}
		}
	}
}

func TestIDGraphLookupsAndGraded(t *testing.T) {
	m := shmem.New(protocols.SMFullInfo{}, 3)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Graded() {
		t.Error("layered model's graph should be graded")
	}
	if g.NumLayers() != 3 {
		t.Errorf("NumLayers = %d, want 3", g.NumLayers())
	}
	for u := 0; u < g.Len(); u++ {
		if v, ok := g.NodeByKey(g.Keys[u]); !ok || v != uint32(u) {
			t.Fatalf("NodeByKey(%q) = (%d,%v), want %d", g.Keys[u], v, ok, u)
		}
		cid := g.Cache.ID(g.States[u])
		if v, ok := g.NodeOfCacheID(cid); !ok || v != uint32(u) {
			t.Fatalf("NodeOfCacheID(%d) = (%d,%v), want %d", cid, v, ok, u)
		}
	}
	if _, ok := g.NodeByKey("no such key"); ok {
		t.Error("NodeByKey matched a missing key")
	}
}
