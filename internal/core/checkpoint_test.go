package core_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/resilient"
)

// idGraphsIdentical asserts two dense graphs are bit-identical in every
// deterministic field: node numbering, keys, depths, layers, inits, CSR
// edges, and discovery parents (checked through PathTo).
func idGraphsIdentical(t *testing.T, want, got *core.IDGraph) {
	t.Helper()
	if !reflect.DeepEqual(want.Keys, got.Keys) {
		t.Fatal("Keys differ")
	}
	if !reflect.DeepEqual(want.DepthOf, got.DepthOf) {
		t.Fatal("DepthOf differs")
	}
	if !reflect.DeepEqual(want.Inits, got.Inits) {
		t.Fatal("Inits differ")
	}
	if !reflect.DeepEqual(want.EdgeStart, got.EdgeStart) {
		t.Fatal("EdgeStart differs")
	}
	if !reflect.DeepEqual(want.EdgeAction, got.EdgeAction) {
		t.Fatal("EdgeAction differs")
	}
	if !reflect.DeepEqual(want.EdgeTo, got.EdgeTo) {
		t.Fatal("EdgeTo differs")
	}
	for d := 0; d <= want.ReachedDepth(); d++ {
		if !reflect.DeepEqual(want.Layer(d), got.Layer(d)) {
			t.Fatalf("layer %d differs", d)
		}
	}
	for u := 0; u < want.Len(); u++ {
		if want.Keys[u] != got.States[u].Key() {
			t.Fatalf("node %d state key diverged after restore", u)
		}
	}
	last := uint32(want.Len() - 1)
	wp, gp := want.PathTo(last), got.PathTo(last)
	if wp.Init.Key() != gp.Init.Key() || len(wp.Steps) != len(gp.Steps) {
		t.Fatal("discovery path to last node differs")
	}
	for i := range wp.Steps {
		if wp.Steps[i].Action != gp.Steps[i].Action || wp.Steps[i].State.Key() != gp.Steps[i].State.Key() {
			t.Fatalf("discovery path step %d differs", i)
		}
	}
}

func newCkptModel() core.Model { return mobile.New(protocols.FloodSet{Rounds: 2}, 3) }

// roundTrip persists the checkpoint attached to err through the binary
// container and returns a context carrying it for resume.
func roundTrip(t *testing.T, err error) *resilient.Ctx {
	t.Helper()
	ck, ok := resilient.CheckpointFrom(err)
	if !ok {
		t.Fatalf("no checkpoint attached to %v", err)
	}
	sections, serr := ck.Sections()
	if serr != nil {
		t.Fatal(serr)
	}
	var buf bytes.Buffer
	if werr := resilient.WriteSections(&buf, sections); werr != nil {
		t.Fatal(werr)
	}
	back, rerr := resilient.ReadSections(&buf)
	if rerr != nil {
		t.Fatal(rerr)
	}
	ctx := resilient.Background()
	ctx.SetResume(back)
	return ctx
}

// TestExploreCheckpointResumeEveryLayer interrupts exploration at every
// layer boundary in turn (via the explore.layer chaos point), persists the
// checkpoint through the binary container, resumes against a fresh model
// instance (fresh cache — a new process), and asserts the finished graph is
// bit-identical to an uninterrupted run's.
func TestExploreCheckpointResumeEveryLayer(t *testing.T) {
	const depth = 3
	full, err := core.ExploreID(newCkptModel(), depth, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < depth; cut++ {
		for _, workers := range []int{1, 4} {
			chaos.Arm(chaos.NewPlan().Set("explore.layer", chaos.Rule{Hit: uint64(cut + 1), Kind: chaos.KindCancel}))
			partial, perr := core.ExploreIDCtx(nil, newCkptModel(), depth, 0, workers)
			chaos.Disarm()
			if !errors.Is(perr, resilient.ErrPartial) {
				t.Fatalf("cut=%d workers=%d: err = %v, want ErrPartial family", cut, workers, perr)
			}
			if partial.ReachedDepth() > cut {
				t.Fatalf("cut=%d: partial graph reached depth %d past the cut", cut, partial.ReachedDepth())
			}
			frontier := partial.Layer(partial.ReachedDepth())
			if len(frontier) == 0 {
				t.Fatalf("cut=%d: interrupted run reports no unresolved frontier", cut)
			}
			ctx := roundTrip(t, perr)
			resumed, rerr := core.ExploreIDCtx(ctx, newCkptModel(), depth, 0, workers)
			if rerr != nil {
				t.Fatalf("cut=%d workers=%d: resume failed: %v", cut, workers, rerr)
			}
			idGraphsIdentical(t, full, resumed)
		}
	}
}

// TestExploreWarmFaultsResumable injects cancel and panic faults into the
// parallel warming workers: the panic must be contained into a
// *resilient.PanicError, both leave a layer-boundary checkpoint, and both
// resume to the uninterrupted graph.
func TestExploreWarmFaultsResumable(t *testing.T) {
	const depth = 3
	full, err := core.ExploreID(newCkptModel(), depth, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []chaos.Kind{chaos.KindCancel, chaos.KindPanic} {
		chaos.Arm(chaos.NewPlan().Set("explore.warm", chaos.Rule{Hit: 1, Kind: kind}))
		_, perr := core.ExploreIDCtx(nil, newCkptModel(), depth, 0, 4)
		chaos.Disarm()
		if !errors.Is(perr, resilient.ErrPartial) {
			t.Fatalf("kind=%v: err = %v, want ErrPartial family", kind, perr)
		}
		if kind == chaos.KindPanic {
			var pe *resilient.PanicError
			if !errors.As(perr, &pe) {
				t.Fatalf("panic fault not contained as PanicError: %v", perr)
			}
		}
		ctx := roundTrip(t, perr)
		resumed, rerr := core.ExploreIDCtx(ctx, newCkptModel(), depth, 0, 4)
		if rerr != nil {
			t.Fatalf("kind=%v: resume failed: %v", kind, rerr)
		}
		idGraphsIdentical(t, full, resumed)
	}
}

// TestExploreCanceledContext covers plain context cancellation (no chaos):
// a pre-canceled context stops before the first layer, the error carries
// both ErrCanceled and ErrPartial, and resume finishes the run.
func TestExploreCanceledContext(t *testing.T) {
	ctx, cancel := resilient.WithCancel()
	cancel()
	partial, err := core.ExploreIDCtx(ctx, newCkptModel(), 2, 0, 1)
	if !errors.Is(err, resilient.ErrCanceled) || !errors.Is(err, resilient.ErrPartial) {
		t.Fatalf("err = %v, want ErrCanceled wrapping ErrPartial", err)
	}
	if partial.ReachedDepth() != 0 {
		t.Fatalf("pre-canceled run reached depth %d", partial.ReachedDepth())
	}
	full, ferr := core.ExploreID(newCkptModel(), 2, 0)
	if ferr != nil {
		t.Fatal(ferr)
	}
	resumed, rerr := core.ExploreIDCtx(roundTrip(t, err), newCkptModel(), 2, 0, 1)
	if rerr != nil {
		t.Fatal(rerr)
	}
	idGraphsIdentical(t, full, resumed)
}

// TestResumeSectionValidation: a resume snapshot for a different run (other
// depth) is ignored — exploration starts fresh and still completes — and a
// corrupted payload fails with ErrBadCheckpoint.
func TestResumeSectionValidation(t *testing.T) {
	chaos.Arm(chaos.NewPlan().Set("explore.layer", chaos.Rule{Hit: 2, Kind: chaos.KindCancel}))
	_, perr := core.ExploreIDCtx(nil, newCkptModel(), 3, 0, 1)
	chaos.Disarm()
	ctx := roundTrip(t, perr)
	g, err := core.ExploreIDCtx(ctx, newCkptModel(), 2, 0, 1) // depth 2 != snapshot's 3
	if err != nil {
		t.Fatalf("mismatched snapshot was not ignored: %v", err)
	}
	if ctx.PeekResume(resilient.TagExplore) == nil {
		t.Fatal("mismatched snapshot was consumed")
	}
	full, _ := core.ExploreID(newCkptModel(), 2, 0)
	idGraphsIdentical(t, full, g)

	if _, derr := core.DecodeExploreCheckpoint([]byte{0x01, 0x02}); !errors.Is(derr, resilient.ErrBadCheckpoint) {
		t.Fatalf("corrupt payload: err = %v, want ErrBadCheckpoint", derr)
	}
}

// TestBudgetSentinelFamily: ErrNodeBudget keeps its identity under
// errors.Is and now joins the ErrPartial degradation family.
func TestBudgetSentinelFamily(t *testing.T) {
	_, err := core.ExploreID(newCkptModel(), 3, 10)
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if !errors.Is(err, resilient.ErrPartial) {
		t.Fatalf("budget error does not wrap resilient.ErrPartial: %v", err)
	}
}
