// Package core defines the model-independent abstractions of the layered
// analysis framework of Moses & Rajsbaum (PODC 1998): global states, runs,
// executions, successor functions, layerings, and the similarity relation
// between states.
//
// The paper analyzes distributed systems as sets of runs over global states,
// where a global state assigns a local state to each of n processes and to a
// distinguished environment. All of the paper's reasoning observes states
// only through (a) equality of local and environment states ("agree modulo
// j"), (b) the write-once decision variable of each process, and (c) which
// processes are failed at a state. The State interface exposes exactly these
// observables through canonical string encodings, which makes states from any
// model hashable and comparable in a uniform way.
//
// A Successor (the paper's successor function S : G -> 2^G \ {∅}) generates
// the submodel R_S: the set of S-runs starting from designated initial
// states. Concrete models (internal/syncmp, internal/mobile, internal/shmem,
// internal/asyncmp) provide Successor implementations for the paper's four
// layerings: S1, S^t, the synchronic layering S^rw, and the permutation
// layering S^per.
package core
