package core

// Succ is one labeled successor of a state: the environment action that was
// applied (in the paper's notation, e.g. "(j,[k])", "(j,A)", or a scheduling
// permutation) and the resulting state.
type Succ struct {
	// Action is a human-readable canonical label for the environment action
	// that produced the transition. Actions are unique within a layer: a
	// Successor never returns two Succs with equal Action for the same
	// source state (though two distinct actions may yield equal states).
	Action string

	// State is the resulting global state.
	State State
}

// Successor is the paper's successor function S : G -> 2^G \ {∅}. For every
// state x it enumerates a non-empty set of labeled successors S(x). A run r
// with r(m+1) ∈ S(r(m)) for all m is an S-run; the set of S-runs from the
// initial states is the submodel R_S.
//
// Implementations must be deterministic: repeated calls with equal states
// (equal Keys) return the same successors in the same order.
type Successor interface {
	// Successors returns the labeled elements of S(x).
	Successors(x State) []Succ
}

// SuccessorFunc adapts a function to the Successor interface.
type SuccessorFunc func(State) []Succ

var _ Successor = (SuccessorFunc)(nil)

// Successors implements Successor.
func (f SuccessorFunc) Successors(x State) []Succ { return f(x) }

// Model couples a successor function with its set of initial states. For a
// system for consensus, Inits is exactly Con_0: one initial state per binary
// input assignment, with the environment in the same local state in all of
// them.
type Model interface {
	Successor

	// Inits enumerates the initial states, in a deterministic order.
	Inits() []State

	// Name identifies the model/layering (e.g. "mobile/S1", "shmem/Srw").
	Name() string
}

// Step is one transition of an execution.
type Step struct {
	Action string
	State  State
}

// Execution is a finite execution: an initial state followed by labeled
// steps. The paper's runs are infinite; executions are the finite prefixes
// the framework manipulates and reports as witnesses.
type Execution struct {
	Init  State
	Steps []Step
}

// Last returns the final state of the execution.
func (e *Execution) Last() State {
	if len(e.Steps) == 0 {
		return e.Init
	}
	return e.Steps[len(e.Steps)-1].State
}

// Len returns the number of steps (layers) in the execution.
func (e *Execution) Len() int { return len(e.Steps) }

// States returns the state sequence of the execution, including the initial
// state, as a fresh slice.
func (e *Execution) States() []State {
	out := make([]State, 0, len(e.Steps)+1)
	out = append(out, e.Init)
	for _, s := range e.Steps {
		out = append(out, s.State)
	}
	return out
}

// Actions returns the action-label sequence of the execution as a fresh
// slice.
func (e *Execution) Actions() []string {
	out := make([]string, 0, len(e.Steps))
	for _, s := range e.Steps {
		out = append(out, s.Action)
	}
	return out
}

// Extend returns a new execution with one more step appended; the receiver
// is not modified.
func (e *Execution) Extend(action string, to State) *Execution {
	steps := make([]Step, 0, len(e.Steps)+1)
	steps = append(steps, e.Steps...)
	steps = append(steps, Step{Action: action, State: to})
	return &Execution{Init: e.Init, Steps: steps}
}
