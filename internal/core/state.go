package core

// Undecided is the sentinel returned by decision accessors when a process's
// write-once decision variable d_i is still ⊥.
const Undecided = -1

// State is a global state of a distributed system: a local state for each of
// the n processes plus a local state for the environment. The environment
// captures everything that is not process-local — messages in transit, the
// contents of shared variables, and (in the t-resilient synchronous model)
// the record of which processes have failed.
//
// Implementations must be immutable: every accessor must return the same
// answer for the lifetime of the value, and transitions must produce fresh
// State values.
type State interface {
	// N returns the number of processes (the paper assumes n >= 2).
	N() int

	// Key returns a canonical encoding of the entire global state. Two
	// states of the same model are equal exactly if their Keys are equal.
	Key() string

	// EnvKey returns a canonical encoding of the environment's local state.
	EnvKey() string

	// Local returns a canonical encoding of process i's local state, for
	// 0 <= i < N(). Two states agree modulo j exactly if their EnvKeys are
	// equal and their Locals are equal for every i != j.
	Local(i int) string

	// Decided reports process i's write-once decision variable: the decided
	// value and true, or (Undecided, false) if i has not decided.
	Decided(i int) (int, bool)

	// FailedAt reports whether process i is failed at this state, i.e.
	// faulty in every run of the system in which the state appears. Models
	// that display "no finite failure" (the asynchronous ones and M^mf)
	// always return false.
	FailedAt(i int) bool
}

// Input is implemented by states that remember the consensus inputs the run
// started from; the validity requirement is checked against these.
type Input interface {
	// InputOf returns process i's initial value.
	InputOf(i int) int
}

// AgreeModulo reports whether x and y agree modulo j: their environments are
// equal and the local states of every process other than j are equal.
func AgreeModulo(x, y State, j int) bool {
	if x.N() != y.N() {
		return false
	}
	if x.EnvKey() != y.EnvKey() {
		return false
	}
	for i := 0; i < x.N(); i++ {
		if i == j {
			continue
		}
		if x.Local(i) != y.Local(i) {
			return false
		}
	}
	return true
}

// Similar reports whether x ~s y per Definition 3.1: there is a process j
// such that x and y agree modulo j and some process i != j is non-failed in
// both x and y. It returns the witnessing j.
func Similar(x, y State) (j int, ok bool) {
	if x.N() != y.N() {
		return 0, false
	}
	n := x.N()
	for j := 0; j < n; j++ {
		if !AgreeModulo(x, y, j) {
			continue
		}
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if !x.FailedAt(i) && !y.FailedAt(i) {
				return j, true
			}
		}
	}
	return 0, false
}

// DecidedValues returns the set of values decided by processes that are not
// failed at x, as a bitmask over {0,1,...}: bit v is set if some non-failed
// process has decided v. Only small non-negative values (v < 63) are
// representable, which covers every decision problem in this repository.
func DecidedValues(x State) uint64 {
	var mask uint64
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if v, ok := x.Decided(i); ok && v >= 0 && v < 63 {
			mask |= 1 << uint(v)
		}
	}
	return mask
}

// AllDecided reports whether every process that is not failed at x has
// decided.
func AllDecided(x State) bool {
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if _, ok := x.Decided(i); !ok {
			return false
		}
	}
	return true
}

// FailedCount returns the number of processes failed at x.
func FailedCount(x State) int {
	c := 0
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			c++
		}
	}
	return c
}
