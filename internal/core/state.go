package core

import "sync"

// Undecided is the sentinel returned by decision accessors when a process's
// write-once decision variable d_i is still ⊥.
const Undecided = -1

// InitMemo caches a model's initial-state slice across Inits calls. States
// are immutable, so the cached values are shared; Get hands each caller a
// fresh slice header over them, keeping the returned slice safe to append
// to or reorder. Models embed one per value — building Con_0 constructs
// 2^n states, which on a memoized re-exploration would otherwise cost more
// than the exploration itself.
type InitMemo struct {
	once sync.Once
	xs   []State
}

// Get returns the memoized initial states, invoking build exactly once per
// memo (concurrent first callers block until the build finishes).
func (m *InitMemo) Get(build func() []State) []State {
	m.once.Do(func() { m.xs = build() })
	return append([]State(nil), m.xs...)
}

// State is a global state of a distributed system: a local state for each of
// the n processes plus a local state for the environment. The environment
// captures everything that is not process-local — messages in transit, the
// contents of shared variables, and (in the t-resilient synchronous model)
// the record of which processes have failed.
//
// Implementations must be immutable: every accessor must return the same
// answer for the lifetime of the value, and transitions must produce fresh
// State values.
type State interface {
	// N returns the number of processes (the paper assumes n >= 2).
	N() int

	// Key returns a canonical encoding of the entire global state. Two
	// states of the same model are equal exactly if their Keys are equal.
	Key() string

	// EnvKey returns a canonical encoding of the environment's local state.
	EnvKey() string

	// Local returns a canonical encoding of process i's local state, for
	// 0 <= i < N(). Two states agree modulo j exactly if their EnvKeys are
	// equal and their Locals are equal for every i != j.
	Local(i int) string

	// Decided reports process i's write-once decision variable: the decided
	// value and true, or (Undecided, false) if i has not decided.
	Decided(i int) (int, bool)

	// FailedAt reports whether process i is failed at this state, i.e.
	// faulty in every run of the system in which the state appears. Models
	// that display "no finite failure" (the asynchronous ones and M^mf)
	// always return false.
	FailedAt(i int) bool
}

// Input is implemented by states that remember the consensus inputs the run
// started from; the validity requirement is checked against these.
type Input interface {
	// InputOf returns process i's initial value.
	InputOf(i int) int
}

// KeyAppender is the allocation-free side of the canonical-key contract.
// AppendKey appends exactly the bytes of Key() to dst and returns the
// extended slice, so hot paths (the successor cache's intern lookups) can
// build keys into reusable buffers instead of materializing a string per
// visit. Implementations that precompute and store their key satisfy it by
// appending the cached string; implementations that derive the key lazily
// should encode directly into dst. All State implementations should provide
// it — the engine falls back to Key() through AppendKeyOf otherwise, which
// works but forfeits the zero-allocation path for lazily-keyed states.
type KeyAppender interface {
	AppendKey(dst []byte) []byte
}

// AppendKeyOf appends x's canonical key to dst: through AppendKey when x
// provides it, through a Key() fallback shim otherwise. The result must be
// byte-identical either way; the successor cache checks the two agree when
// it first interns a state.
//lint:hotpath
func AppendKeyOf(x State, dst []byte) []byte {
	if a, ok := x.(KeyAppender); ok {
		return a.AppendKey(dst)
	}
	return append(dst, x.Key()...)
}

// AgreeModulo reports whether x and y agree modulo j: their environments are
// equal and the local states of every process other than j are equal.
func AgreeModulo(x, y State, j int) bool {
	if x.N() != y.N() {
		return false
	}
	if x.EnvKey() != y.EnvKey() {
		return false
	}
	for i := 0; i < x.N(); i++ {
		if i == j {
			continue
		}
		if x.Local(i) != y.Local(i) {
			return false
		}
	}
	return true
}

// Similar reports whether x ~s y per Definition 3.1: there is a process j
// such that x and y agree modulo j and some process i != j is non-failed in
// both x and y. It returns the witnessing j.
func Similar(x, y State) (j int, ok bool) {
	if x.N() != y.N() {
		return 0, false
	}
	n := x.N()
	for j := 0; j < n; j++ {
		if !AgreeModulo(x, y, j) {
			continue
		}
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if !x.FailedAt(i) && !y.FailedAt(i) {
				return j, true
			}
		}
	}
	return 0, false
}

// DecidedValues returns the set of values decided by processes that are not
// failed at x, as a bitmask over {0,1,...}: bit v is set if some non-failed
// process has decided v. Only small non-negative values (v < 63) are
// representable, which covers every decision problem in this repository.
func DecidedValues(x State) uint64 {
	var mask uint64
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if v, ok := x.Decided(i); ok && v >= 0 && v < 63 {
			mask |= 1 << uint(v)
		}
	}
	return mask
}

// AllDecided reports whether every process that is not failed at x has
// decided.
func AllDecided(x State) bool {
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if _, ok := x.Decided(i); !ok {
			return false
		}
	}
	return true
}

// FailedCount returns the number of processes failed at x.
func FailedCount(x State) int {
	c := 0
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			c++
		}
	}
	return c
}
