package core_test

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
)

// stressDepth bounds the BFS walks the stress goroutines perform; every
// state within it ends up interned and enumerated, so the final table is
// model-determined regardless of interleaving.
const stressDepth = 3

func stressModel() core.Model { return mobile.New(protocols.FloodSet{Rounds: 2}, 3) }

// bfsWalk drives c through a breadth-first walk of m to depth layers,
// visiting each layer's frontier starting at offset rot (so goroutines hit
// the shards in different orders), and exercising the whole read surface —
// ID, SuccessorsID, SuccessorsOf, StateOf, KeyOf, Len, Stats — along the
// way.
func bfsWalk(t *testing.T, c core.Interner, m core.Model, depth, rot int) {
	type node struct {
		id uint32
		x  core.State
	}
	seen := make(map[uint32]bool)
	var frontier []node
	for _, x := range m.Inits() {
		id := c.ID(x)
		if !seen[id] {
			seen[id] = true
			frontier = append(frontier, node{id, x})
		}
	}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []node
		for i := range frontier {
			it := frontier[(i+rot)%len(frontier)]
			var succs []core.Succ
			var ids []uint32
			if (i+rot)%2 == 0 {
				succs, ids = c.SuccessorsOf(it.id, it.x)
			} else {
				// The SuccessorsID path re-derives the id from the state's
				// key; it must agree with the one we already hold.
				var again uint32
				again, succs, ids = c.SuccessorsID(it.x)
				if again != it.id {
					t.Errorf("SuccessorsID re-interned %q as %d, had %d", it.x.Key(), again, it.id)
					return
				}
			}
			for j := range succs {
				if !seen[ids[j]] {
					seen[ids[j]] = true
					next = append(next, node{ids[j], succs[j].State})
				}
				if c.KeyOf(ids[j]) != succs[j].State.Key() {
					t.Errorf("KeyOf(%d) does not match successor key", ids[j])
					return
				}
			}
			if i%7 == 0 {
				if got := c.StateOf(it.id); got.Key() != it.x.Key() {
					t.Errorf("StateOf(%d) returned a different state", it.id)
					return
				}
			}
			if i%13 == 0 {
				st := c.Stats()
				if st.States > 0 && c.Len() < 1 {
					t.Error("Len went backwards")
					return
				}
			}
		}
		frontier = next
	}
}

// internTable flattens a cache into key -> "action->toKey" rows by walking
// the model BFS (not the id space, which would enumerate past the walked
// depth), so two caches are comparable regardless of id assignment order.
func internTable(c core.Interner, m core.Model, depth int) map[string][]string {
	type node struct {
		id uint32
		x  core.State
	}
	table := make(map[string][]string)
	seen := make(map[uint32]bool)
	var frontier []node
	for _, x := range m.Inits() {
		id := c.ID(x)
		if !seen[id] {
			seen[id] = true
			frontier = append(frontier, node{id, x})
		}
	}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []node
		for _, it := range frontier {
			succs, ids := c.SuccessorsOf(it.id, it.x)
			row := make([]string, 0, len(succs))
			for j := range succs {
				row = append(row, succs[j].Action+"->"+succs[j].State.Key())
				if !seen[ids[j]] {
					seen[ids[j]] = true
					next = append(next, node{ids[j], succs[j].State})
				}
			}
			table[c.KeyOf(it.id)] = row
		}
		frontier = next
	}
	return table
}

// TestShardedCacheStress hammers one sharded cache from GOMAXPROCS (at
// least 4) goroutines running interleaved BFS walks in different orders,
// then asserts the final intern table — the key set and every key's ordered
// successor list — matches a serial run against the legacy single-lock
// reference. Run under -race (the race target covers ./internal/...), this
// is the data-race certificate for the lock-free read paths.
func TestShardedCacheStress(t *testing.T) {
	m := stressModel()
	raw := core.CacheOf(m).Uncached()
	sharded := core.NewSuccessorCache(raw)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rot int) {
			defer wg.Done()
			bfsWalk(t, sharded, m, stressDepth, rot)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	ref := core.NewLegacyCache(raw)
	want := internTable(ref, m, stressDepth)
	got := internTable(sharded, m, stressDepth)
	if len(want) != len(got) {
		t.Fatalf("intern table size: sharded %d, reference %d", len(got), len(want))
	}
	for k, row := range want {
		grow, ok := got[k]
		if !ok {
			t.Fatalf("sharded cache missing key %q", k)
		}
		if len(grow) != len(row) {
			t.Fatalf("key %q: %d successors, want %d", k, len(grow), len(row))
		}
		for i := range row {
			if grow[i] != row[i] {
				t.Fatalf("key %q successor %d: %q, want %q", k, i, grow[i], row[i])
			}
		}
	}
	if sharded.Len() != ref.Len() {
		t.Fatalf("interned %d states, reference %d", sharded.Len(), ref.Len())
	}

	// The stripes' counters must be coherent: first-writer-wins means each
	// entry's enumeration is counted exactly once, so the total matches the
	// serial reference, and the per-shard breakdown sums to the totals.
	st := sharded.Stats()
	if st.Enumerations != ref.Stats().Enumerations {
		t.Fatalf("enumerations %d, reference %d", st.Enumerations, ref.Stats().Enumerations)
	}
	if st.Shards != len(st.PerShard) {
		t.Fatalf("Shards %d but PerShard has %d rows", st.Shards, len(st.PerShard))
	}
	var hits, enums int64
	states := 0
	for _, sc := range st.PerShard {
		hits += sc.Hits
		enums += sc.Enumerations
		states += sc.States
	}
	if hits != st.Hits || int(enums) != st.Enumerations || states != st.States {
		t.Fatalf("per-shard sums (%d,%d,%d) disagree with totals (%d,%d,%d)",
			states, hits, enums, st.States, st.Hits, st.Enumerations)
	}
	if st.Hits == 0 {
		t.Fatal("concurrent walks produced no memoized hits")
	}
}

// TestShardedCacheKeySet pins that sorted key sets agree between the
// sharded cache and the legacy reference after identical serial use — the
// single-goroutine face of the stress property, cheap enough to run
// everywhere.
func TestShardedCacheKeySet(t *testing.T) {
	m := stressModel()
	raw := core.CacheOf(m).Uncached()
	sharded := core.NewSuccessorCache(raw)
	ref := core.NewLegacyCache(raw)
	internTable(sharded, m, stressDepth)
	internTable(ref, m, stressDepth)
	if sharded.Len() != ref.Len() {
		t.Fatalf("interned %d states, reference %d", sharded.Len(), ref.Len())
	}
	keys := func(c core.Interner) []string {
		out := make([]string, c.Len())
		for i := range out {
			out[i] = c.KeyOf(uint32(i))
		}
		sort.Strings(out)
		return out
	}
	sk, rk := keys(sharded), keys(ref)
	for i := range sk {
		if sk[i] != rk[i] {
			t.Fatalf("key set diverges at %d: %q vs %q", i, sk[i], rk[i])
		}
	}
}
