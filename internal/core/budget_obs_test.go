package core_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/obs"
	"repro/internal/protocols"
)

// TestExploreBudgetReachedDepth pins the ErrNodeBudget contract: the
// partial graph records the depth actually reached, and its DepthOf
// assignment is internally consistent — every non-initial node sits one
// layer below its BFS parent, and the deepest populated layer is what
// ReachedDepth reports.
func TestExploreBudgetReachedDepth(t *testing.T) {
	const n = 3
	m := mobile.New(protocols.FloodSet{Rounds: 3}, n)
	g, err := core.ExploreID(m, 3, 40)
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if g.Len() != 40 {
		t.Fatalf("partial graph has %d nodes, want 40", g.Len())
	}
	maxDepth := -1
	for u := 0; u < g.Len(); u++ {
		d := int(g.DepthOf[u])
		if d > maxDepth {
			maxDepth = d
		}
		if p := g.ParentOf[u]; p >= 0 {
			if got, want := d, int(g.DepthOf[p])+1; got != want {
				t.Errorf("node %d at depth %d, parent %d at depth %d", u, got, p, g.DepthOf[p])
			}
		} else if d != 0 {
			t.Errorf("parentless node %d at depth %d", u, d)
		}
	}
	if got := g.ReachedDepth(); got != maxDepth {
		t.Errorf("ReachedDepth() = %d, deepest DepthOf = %d", got, maxDepth)
	}
	if got := g.ReachedDepth(); got > g.Depth {
		t.Errorf("ReachedDepth() = %d exceeds bound %d", got, g.Depth)
	}
	// The legacy view agrees, and the error message names the same depth.
	if lg := g.Legacy(); lg.ReachedDepth() != g.ReachedDepth() {
		t.Errorf("Legacy().ReachedDepth() = %d, want %d", lg.ReachedDepth(), g.ReachedDepth())
	}
}

// TestGraphReachedDepthHandBuilt covers the fallback for Graphs not built
// by Explore (no dense form): the deepest DepthOf entry wins.
func TestGraphReachedDepthHandBuilt(t *testing.T) {
	g := &core.Graph{DepthOf: map[string]int{"a": 0, "b": 1, "c": 4}}
	if got := g.ReachedDepth(); got != 4 {
		t.Errorf("ReachedDepth() = %d, want 4", got)
	}
	empty := &core.Graph{}
	if got := empty.ReachedDepth(); got != -1 {
		t.Errorf("empty ReachedDepth() = %d, want -1", got)
	}
}

// TestExploreObsCounters checks the exploration instrumentation: node and
// edge counters match the built graph, and the journal carries parseable
// explore.start / explore.depth / explore.done events whose final snapshot
// agrees with the counters.
func TestExploreObsCounters(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewMetrics()
	rec.SetJournal(obs.NewJournal(&buf))
	obs.Enable(rec)
	defer obs.Disable()

	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("explore.nodes"); got != int64(g.Len()) {
		t.Errorf("explore.nodes = %d, graph has %d", got, g.Len())
	}
	if got := rec.Counter("explore.edges"); got != int64(g.NumEdges()) {
		t.Errorf("explore.edges = %d, graph has %d", got, g.NumEdges())
	}
	if got := rec.Gauge("cache.states"); got < int64(g.Len()) {
		t.Errorf("cache.states = %d, want >= %d", got, g.Len())
	}

	if err := rec.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	type line struct {
		Event    string           `json:"event"`
		Fields   map[string]any   `json:"fields"`
		Counters map[string]int64 `json:"counters"`
	}
	var events []line
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		events = append(events, l)
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want start + 2 depths + done", len(events))
	}
	if events[0].Event != "explore.start" {
		t.Errorf("first event = %q", events[0].Event)
	}
	last := events[len(events)-1]
	if last.Event != "explore.done" {
		t.Errorf("last event = %q", last.Event)
	}
	if last.Fields["reached_depth"] != float64(2) {
		t.Errorf("reached_depth = %v", last.Fields["reached_depth"])
	}
	if last.Counters["explore.nodes"] != int64(g.Len()) {
		t.Errorf("final snapshot explore.nodes = %d", last.Counters["explore.nodes"])
	}
}

// TestExploreObsBudgetEvent checks that budget exhaustion emits
// explore.budget with the depth the partial graph actually reached.
func TestExploreObsBudgetEvent(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewMetrics()
	rec.SetJournal(obs.NewJournal(&buf))
	obs.Enable(rec)
	defer obs.Disable()

	m := mobile.New(protocols.FloodSet{Rounds: 3}, 3)
	g, err := core.ExploreID(m, 3, 25)
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if rec.Counter("explore.budget_hits") != 1 {
		t.Error("explore.budget_hits not counted")
	}
	if err := rec.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var last struct {
		Event  string         `json:"event"`
		Fields map[string]any `json:"fields"`
	}
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Event != "explore.budget" {
		t.Errorf("last event = %q, want explore.budget", last.Event)
	}
	if last.Fields["reached_depth"] != float64(g.ReachedDepth()) {
		t.Errorf("event reached_depth = %v, graph reached %d", last.Fields["reached_depth"], g.ReachedDepth())
	}
}
