package core

// KeyIndex interns canonical state-key strings to dense uint32 ids. Ids are
// assigned in first-intern order starting at 0, so any deterministic
// traversal produces a deterministic numbering. The zero value is not
// usable; use NewKeyIndex.
//
// A KeyIndex is not safe for concurrent use; callers that share one across
// goroutines (SuccessorCache) provide their own locking.
type KeyIndex struct {
	ids   map[string]uint32
	keys  []string
	bytes int
}

// NewKeyIndex returns an empty index. sizeHint pre-sizes the table (0 is
// fine).
func NewKeyIndex(sizeHint int) *KeyIndex {
	return &KeyIndex{ids: make(map[string]uint32, sizeHint)}
}

// Intern returns the id for key, assigning the next free id on first sight.
// fresh reports whether the key was new.
func (ix *KeyIndex) Intern(key string) (id uint32, fresh bool) {
	if id, ok := ix.ids[key]; ok {
		return id, false
	}
	id = uint32(len(ix.keys))
	ix.ids[key] = id
	ix.keys = append(ix.keys, key)
	ix.bytes += len(key)
	return id, true
}

// ID returns the id of an already-interned key.
func (ix *KeyIndex) ID(key string) (uint32, bool) {
	id, ok := ix.ids[key]
	return id, ok
}

// Key returns the key string for an id. The returned string shares storage
// with the index (strings are immutable, so this is safe).
func (ix *KeyIndex) Key(id uint32) string { return ix.keys[id] }

// Len returns the number of interned keys.
func (ix *KeyIndex) Len() int { return len(ix.keys) }

// Bytes returns the total size of the interned key strings, in bytes —
// the memory the index pins beyond its table overhead.
func (ix *KeyIndex) Bytes() int { return ix.bytes }
