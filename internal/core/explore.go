package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDepthExceeded is returned by Explore when the reachable state graph
// exceeds the configured node budget before the depth bound is reached.
var ErrDepthExceeded = errors.New("core: exploration exceeded node budget")

// Edge is one labeled edge of an explored state graph, identified by state
// keys.
type Edge struct {
	Action string
	To     string
}

// Graph is the explicit reachable state graph of a model, explored
// breadth-first to a depth bound. It is the substrate for the connectivity
// and valence analyses.
type Graph struct {
	// Nodes maps a state key to the state.
	Nodes map[string]State
	// Edges maps a state key to its outgoing labeled edges, in successor
	// order. Only states at depth < Depth have edges recorded.
	Edges map[string][]Edge
	// DepthOf maps a state key to the first (minimum) layer depth at which
	// the state was reached.
	DepthOf map[string]int
	// InitKeys are the keys of the initial states, in Inits order
	// (duplicates removed, first occurrence kept).
	InitKeys []string
	// Depth is the exploration depth bound.
	Depth int
}

// Explore builds the reachable state graph of m to the given depth. maxNodes
// bounds the total number of distinct states; 0 means no bound. It returns
// ErrDepthExceeded (wrapped) if the budget is exhausted.
func Explore(m Model, depth, maxNodes int) (*Graph, error) {
	g := &Graph{
		Nodes:   make(map[string]State),
		Edges:   make(map[string][]Edge),
		DepthOf: make(map[string]int),
		Depth:   depth,
	}
	var frontier []string
	for _, x := range m.Inits() {
		k := x.Key()
		if _, seen := g.Nodes[k]; seen {
			continue
		}
		g.Nodes[k] = x
		g.DepthOf[k] = 0
		g.InitKeys = append(g.InitKeys, k)
		frontier = append(frontier, k)
	}
	for d := 0; d < depth; d++ {
		var next []string
		for _, k := range frontier {
			x := g.Nodes[k]
			succs := m.Successors(x)
			edges := make([]Edge, 0, len(succs))
			for _, s := range succs {
				sk := s.State.Key()
				edges = append(edges, Edge{Action: s.Action, To: sk})
				if _, seen := g.Nodes[sk]; !seen {
					if maxNodes > 0 && len(g.Nodes) >= maxNodes {
						return nil, fmt.Errorf("at depth %d (%d nodes): %w", d+1, len(g.Nodes), ErrDepthExceeded)
					}
					g.Nodes[sk] = s.State
					g.DepthOf[sk] = d + 1
					next = append(next, sk)
				}
			}
			g.Edges[k] = edges
		}
		frontier = next
	}
	return g, nil
}

// StatesAtDepth returns the states first reached at exactly depth d, sorted
// by key for determinism.
func (g *Graph) StatesAtDepth(d int) []State {
	var keys []string
	for k, kd := range g.DepthOf {
		if kd == d {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]State, 0, len(keys))
	for _, k := range keys {
		out = append(out, g.Nodes[k])
	}
	return out
}

// Len returns the number of distinct states in the graph.
func (g *Graph) Len() int { return len(g.Nodes) }

// CheckDeterminism verifies that the model's successor function is
// deterministic on every explored state: a second invocation returns the
// same labeled successors in the same order. Admissibility (the paper's
// pasting condition) holds by construction for R_S when S is a function of
// the state alone; determinism is the executable face of that requirement.
func (g *Graph) CheckDeterminism(m Model) error {
	for k, edges := range g.Edges {
		again := m.Successors(g.Nodes[k])
		if len(again) != len(edges) {
			return fmt.Errorf("core: successor count changed for state %q: %d then %d", k, len(edges), len(again))
		}
		for i, s := range again {
			if s.Action != edges[i].Action || s.State.Key() != edges[i].To {
				return fmt.Errorf("core: successor %d changed for state %q: (%s,%s) then (%s,%s)",
					i, k, edges[i].Action, edges[i].To, s.Action, s.State.Key())
			}
		}
	}
	return nil
}
