package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/resilient"
)

// ErrNodeBudget is returned by Explore when the reachable state graph
// exceeds the configured node budget before the depth bound is reached. The
// partial graph explored so far is returned alongside the wrapped error, so
// callers can report how far exploration got. As a resilient.Sentinel it
// wraps resilient.ErrPartial, joining the canceled/deadline family under
// one degradation check.
var ErrNodeBudget = resilient.Sentinel("core: exploration exceeded node budget")

// ErrDepthExceeded is the old, misleading name for ErrNodeBudget (the
// condition it reports is node-budget exhaustion, not a depth bound). It is
// retained for external compatibility only; the repository itself has no
// remaining references beyond the alias-identity pin in its tests.
//
// Deprecated: use ErrNodeBudget.
var ErrDepthExceeded = ErrNodeBudget

// Edge is one labeled edge of an explored state graph, identified by state
// keys.
type Edge struct {
	Action string
	To     string
}

// Graph is the explicit reachable state graph of a model, explored
// breadth-first to a depth bound, viewed through string keys. It is the
// substrate for the connectivity and valence analyses. Graphs built by
// Explore also carry the dense-id form (Dense) that id-based analyses
// prefer.
type Graph struct {
	// Nodes maps a state key to the state.
	Nodes map[string]State
	// Edges maps a state key to its outgoing labeled edges, in successor
	// order. Only states at depth < Depth have edges recorded.
	Edges map[string][]Edge
	// DepthOf maps a state key to the first (minimum) layer depth at which
	// the state was reached.
	DepthOf map[string]int
	// InitKeys are the keys of the initial states, in Inits order
	// (duplicates removed, first occurrence kept).
	InitKeys []string
	// Depth is the exploration depth bound.
	Depth int

	// dense is the IDGraph this view was built from, when built by Explore.
	dense *IDGraph

	// byDepth caches StatesAtDepth buckets (sorted by key), built lazily
	// from DepthOf on first use.
	depthOnce sync.Once
	byDepth   map[int][]State
}

// Dense returns the dense-id form of the graph, or nil for a hand-built
// Graph.
func (g *Graph) Dense() *IDGraph { return g.dense }

// Explore builds the reachable state graph of m to the given depth,
// drawing successors from the model's shared cache when it has one.
// maxNodes bounds the total number of distinct states; 0 means no bound.
// If the budget is exhausted it returns the partial graph explored so far
// together with ErrNodeBudget (wrapped).
func Explore(m Model, depth, maxNodes int) (*Graph, error) {
	ig, err := ExploreID(m, depth, maxNodes)
	return ig.Legacy(), err
}

// ExploreParallel is Explore with each BFS frontier's successor enumeration
// sharded across workers goroutines (workers <= 0 means GOMAXPROCS).
// Per-worker results are merged deterministically in frontier order, so the
// resulting graph — node set, edge order, depths, InitKeys, and any
// budget-exhaustion point — is bit-identical to Explore's.
func ExploreParallel(m Model, depth, maxNodes, workers int) (*Graph, error) {
	ig, err := ExploreIDParallel(m, depth, maxNodes, workers)
	return ig.Legacy(), err
}

// ExploreCtx is Explore under a cancellation context; see ExploreIDCtx for
// the cancellation, checkpoint, and resume contract. The partial graph
// accompanying an interruption error is a valid Graph over the completed
// layers.
func ExploreCtx(ctx *resilient.Ctx, m Model, depth, maxNodes int) (*Graph, error) {
	ig, err := ExploreIDCtx(ctx, m, depth, maxNodes, 1)
	if ig == nil {
		return nil, err
	}
	return ig.Legacy(), err
}

// ExploreParallelCtx is ExploreParallel under a cancellation context; see
// ExploreIDCtx for the cancellation, checkpoint, and resume contract.
func ExploreParallelCtx(ctx *resilient.Ctx, m Model, depth, maxNodes, workers int) (*Graph, error) {
	ig, err := ExploreIDCtx(ctx, m, depth, maxNodes, workers)
	if ig == nil {
		return nil, err
	}
	return ig.Legacy(), err
}

// StatesAtDepth returns the states first reached at exactly depth d, in a
// deterministic order: BFS discovery order for graphs built by Explore
// (served straight from the dense graph's contiguous LayerSpan window — no
// bucket maps, no sorting, no copying), and sorted key order for hand-built
// graphs. Callers must not modify the returned slice, and for hand-built
// graphs must not mutate DepthOf/Nodes after the first call (buckets are
// computed once and cached).
func (g *Graph) StatesAtDepth(d int) []State {
	if g.dense != nil {
		if d < 0 || d >= g.dense.NumLayers() {
			return nil
		}
		if lo, hi, ok := g.dense.LayerSpan(d); ok {
			return g.dense.States[lo:hi]
		}
		// Some layer is not a contiguous id run — impossible for graphs
		// built by Explore (the layout pass verifies the BFS numbering
		// invariant), but a caller could assemble an IDGraph by hand; fall
		// through to the sorted-bucket path.
	}
	g.depthOnce.Do(func() {
		keysAt := make(map[int][]string)
		for k, kd := range g.DepthOf {
			keysAt[kd] = append(keysAt[kd], k)
		}
		g.byDepth = make(map[int][]State, len(keysAt))
		for depth, keys := range keysAt {
			sort.Strings(keys)
			out := make([]State, 0, len(keys))
			for _, k := range keys {
				out = append(out, g.Nodes[k])
			}
			g.byDepth[depth] = out
		}
	})
	return g.byDepth[d]
}

// Len returns the number of distinct states in the graph.
func (g *Graph) Len() int { return len(g.Nodes) }

// ReachedDepth returns the deepest layer actually populated: Depth for a
// completed exploration with states at every layer, and the depth the
// search got to before the node budget ran out for a partial graph
// returned alongside ErrNodeBudget. -1 for an empty graph.
func (g *Graph) ReachedDepth() int {
	if g.dense != nil {
		return g.dense.ReachedDepth()
	}
	max := -1
	for _, d := range g.DepthOf { //lint:nondet max fold is order-insensitive
		if d > max {
			max = d
		}
	}
	return max
}

// CheckDeterminism verifies that the model's successor function is
// deterministic on every explored state: a second invocation returns the
// same labeled successors in the same order. Admissibility (the paper's
// pasting condition) holds by construction for R_S when S is a function of
// the state alone; determinism is the executable face of that requirement.
// When the model carries a successor cache the check bypasses it, so the
// raw successor function is what is re-invoked.
func (g *Graph) CheckDeterminism(m Model) error {
	var s Successor = m
	if c, ok := any(m).(interface{ Cache() *SuccessorCache }); ok {
		if cache := c.Cache(); cache != nil {
			s = cache.Uncached()
		}
	}
	// Iterate in sorted key order so a failure always reports the same
	// offending state, not whichever the map happened to yield first.
	keys := make([]string, 0, len(g.Edges))
	for k := range g.Edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		edges := g.Edges[k]
		again := s.Successors(g.Nodes[k])
		if len(again) != len(edges) {
			return fmt.Errorf("core: successor count changed for state %q: %d then %d", k, len(edges), len(again))
		}
		for i, sc := range again {
			if sc.Action != edges[i].Action || sc.State.Key() != edges[i].To {
				return fmt.Errorf("core: successor %d changed for state %q: (%s,%s) then (%s,%s)",
					i, k, edges[i].Action, edges[i].To, sc.Action, sc.State.Key())
			}
		}
	}
	return nil
}
