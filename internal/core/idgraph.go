package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/resilient"
)

// IDGraph is the dense-id form of an explored reachable state graph: nodes
// are uint32 ids assigned in BFS discovery order (deterministic for a
// deterministic model), and edges live in flat CSR arrays instead of
// per-key maps. It is the substrate the string-keyed Graph is built from;
// analyses that sweep the whole graph should prefer this form.
type IDGraph struct {
	// Depth is the exploration depth bound.
	Depth int
	// States[u] is the state of node u; Keys[u] its canonical key.
	States []State
	Keys   []string
	// DepthOf[u] is the first (minimum) layer depth at which node u was
	// reached.
	DepthOf []int32
	// Inits are the initial-state nodes, in Inits order (duplicates
	// removed, first occurrence kept).
	Inits []uint32
	// EdgeStart/EdgeAction/EdgeTo are the CSR edge arrays: node u's
	// outgoing labeled edges, in successor-enumeration order, are the index
	// range [EdgeStart[u], EdgeStart[u+1]). Only nodes at depth < Depth
	// have edges recorded.
	EdgeStart  []uint32
	EdgeAction []string
	EdgeTo     []uint32
	// Cache is the successor cache the exploration drew from (the model's
	// shared sharded cache when it has one, or the explicit Interner handed
	// to ExploreIDWith); later passes over the same model reuse its
	// enumeration work.
	Cache Interner

	// ParentOf[u] is the node from which u was first discovered during the
	// BFS (-1 for initial nodes); parentEdge[u] is the CSR index of that
	// discovery edge, so EdgeAction[parentEdge[u]] labels the step. Because
	// discovery is breadth-first in enumeration order, the parent chain of u
	// is the lexicographically first shortest path from an initial state.
	ParentOf   []int32
	parentEdge []int32

	// cacheIDs[u] is node u's id in Cache (not deterministic; a join key
	// only).
	cacheIDs []uint32
	// layers[d] lists the nodes first reached at depth d, in discovery
	// order.
	layers [][]uint32

	byKeyOnce   sync.Once
	byKey       map[string]uint32
	byCacheOnce sync.Once
	byCache     []uint32
	gradedOnce  sync.Once
	graded      bool

	layoutOnce sync.Once
	spans      []idSpan
	contiguous bool

	auxMu sync.Mutex
	aux   map[any]any
}

// idSpan is a half-open node-id window [lo, hi).
type idSpan struct{ lo, hi uint32 }

// noNode is the "absent" sentinel of the dense cache-id -> node tables.
const noNode = ^uint32(0)

// cidTable maps dense cache ids to graph node ids without hashing: cache
// ids are dense (0..cache.Len()-1), so a direct-indexed array indexed by
// cache id replaces the per-edge hash-map lookup that used to dominate the
// merge loop.
type cidTable struct{ node []uint32 }

func newCIDTable(hint int) *cidTable {
	t := &cidTable{node: make([]uint32, hint)}
	for i := range t.node {
		t.node[i] = noNode
	}
	return t
}

func (t *cidTable) get(cid uint32) (uint32, bool) {
	if int(cid) >= len(t.node) {
		return 0, false
	}
	u := t.node[cid]
	return u, u != noNode
}

func (t *cidTable) set(cid, u uint32) {
	if int(cid) >= len(t.node) {
		need := int(cid) + 1
		if min := 2 * len(t.node); need < min {
			need = min
		}
		grown := make([]uint32, need)
		n := copy(grown, t.node)
		for i := n; i < need; i++ {
			grown[i] = noNode
		}
		t.node = grown
	}
	t.node[cid] = u
}

// Len returns the number of nodes.
func (g *IDGraph) Len() int { return len(g.States) }

// NumEdges returns the number of recorded edges.
func (g *IDGraph) NumEdges() int { return len(g.EdgeTo) }

// Out returns node u's outgoing edges as parallel action/target slices
// (shared; callers must not modify).
func (g *IDGraph) Out(u uint32) (actions []string, to []uint32) {
	lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
	return g.EdgeAction[lo:hi], g.EdgeTo[lo:hi]
}

// Layer returns the nodes first reached at depth d, in BFS discovery order
// (shared; callers must not modify).
func (g *IDGraph) Layer(d int) []uint32 {
	if d < 0 || d >= len(g.layers) {
		return nil
	}
	return g.layers[d]
}

// NumLayers returns the number of non-empty depth layers; reverse sweeps
// iterate d from NumLayers()-1 down to 0.
func (g *IDGraph) NumLayers() int { return len(g.layers) }

// ReachedDepth returns the deepest layer actually populated — equal to
// Depth for a completed exploration that found states at every layer, and
// the depth the search got to before the node budget ran out for a partial
// graph returned alongside ErrNodeBudget. -1 for an empty graph.
func (g *IDGraph) ReachedDepth() int { return len(g.layers) - 1 }

// Parent returns the node from which u was first discovered and the action
// labeling that discovery edge. ok is false for initial nodes.
func (g *IDGraph) Parent(u uint32) (p uint32, action string, ok bool) {
	pi := g.ParentOf[u]
	if pi < 0 {
		return 0, "", false
	}
	return uint32(pi), g.EdgeAction[g.parentEdge[u]], true
}

// PathTo reconstructs the BFS-discovery execution reaching node u by
// parent-pointer walkback: the lexicographically first shortest path from
// an initial state, in successor-enumeration order.
func (g *IDGraph) PathTo(u uint32) *Execution {
	var steps []Step
	for {
		p, action, ok := g.Parent(u)
		if !ok {
			break
		}
		steps = append(steps, Step{Action: action, State: g.States[u]})
		u = p
	}
	// The walk collected steps leaf-first; reverse in place.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return &Execution{Init: g.States[u], Steps: steps}
}

// NodeByKey returns the node with the given canonical key. The key index is
// built lazily on first use and is safe for concurrent callers.
func (g *IDGraph) NodeByKey(key string) (uint32, bool) {
	g.byKeyOnce.Do(func() {
		g.byKey = make(map[string]uint32, len(g.Keys))
		for u, k := range g.Keys {
			g.byKey[k] = uint32(u)
		}
	})
	u, ok := g.byKey[key]
	return u, ok
}

// NodeOfCacheID returns the node whose state has the given id in Cache.
// Analyses memoized on cache ids (the valence Oracle) use this to join
// against a materialized graph without hashing state keys. Cache ids are
// dense, so the lazily built index is a direct-indexed array: each join is
// one bounds check and one load.
func (g *IDGraph) NodeOfCacheID(cid uint32) (uint32, bool) {
	g.byCacheOnce.Do(func() {
		maxCID := uint32(0)
		for _, c := range g.cacheIDs {
			if c > maxCID {
				maxCID = c
			}
		}
		idx := make([]uint32, int(maxCID)+1)
		for i := range idx {
			idx[i] = noNode
		}
		for u, c := range g.cacheIDs {
			idx[c] = uint32(u)
		}
		g.byCache = idx
	})
	if int(cid) >= len(g.byCache) {
		return 0, false
	}
	u := g.byCache[cid]
	return u, u != noNode
}

// layout runs the CSR layout pass once: it checks that every depth layer is
// one contiguous run of node ids and records the per-layer windows. BFS
// discovery assigns ids layer by layer, so graphs built by ExploreID always
// satisfy this; the pass turns the construction invariant into a checked
// property the bit-parallel sweeps can rely on. With contiguous layers a
// layer's nodes are the id range [lo, hi), its edges the CSR range
// [EdgeStart[lo], EdgeStart[hi]) — both sequential in memory, so a sweep
// walks EdgeStart/EdgeTo strictly forward (prefetch-friendly) and its
// 64-node word grid is shared with the field's bit-planes.
func (g *IDGraph) layout() {
	g.layoutOnce.Do(func() {
		rec := obs.Active()
		defer obs.Span(rec, "layout.time")()
		g.contiguous = true
		g.spans = make([]idSpan, len(g.layers))
		next := uint32(0)
		for d, layer := range g.layers {
			lo := next
			for _, u := range layer {
				if u != next {
					g.contiguous = false
				}
				next++
			}
			g.spans[d] = idSpan{lo: lo, hi: next}
		}
		if rec != nil {
			rec.Add("layout.passes", 1)
			rec.Event("layout.done",
				obs.F{Key: "layers", Value: len(g.layers)},
				obs.F{Key: "nodes", Value: g.Len()},
				obs.F{Key: "contiguous", Value: g.contiguous})
		}
	})
}

// LayerSpan returns the contiguous node-id window [lo, hi) of the depth-d
// layer. ok is false when d is out of range or some layer of the graph is
// not a contiguous id run (impossible for explored graphs, where BFS
// discovery numbers each layer consecutively; the layout pass verifies it);
// callers then fall back to Layer's slice view.
func (g *IDGraph) LayerSpan(d int) (lo, hi uint32, ok bool) {
	g.layout()
	if !g.contiguous || d < 0 || d >= len(g.spans) {
		return 0, 0, false
	}
	s := g.spans[d]
	return s.lo, s.hi, true
}

// Aux returns the auxiliary analysis value cached on g under key, building
// it with build on first use. Analyses derive immutable per-graph indexes
// (bit-planes, check tables) from the CSR arrays; caching them on the graph
// amortizes the derivation across sweeps the same way byKey and Graded are
// amortized. key should be an unexported zero-size type owned by the
// caller. build must not call Aux on the same graph.
func (g *IDGraph) Aux(key any, build func() any) any {
	g.auxMu.Lock()
	defer g.auxMu.Unlock()
	if v, ok := g.aux[key]; ok {
		return v
	}
	if g.aux == nil {
		g.aux = make(map[any]any)
	}
	v := build()
	g.aux[key] = v
	return v
}

// Graded reports whether every recorded edge goes from a node at depth d to
// a node at depth d+1. Models whose states carry a global round counter
// (the synchronous families, IIS) always produce graded graphs; the
// asynchronous families can produce same-depth shortcut edges at small n,
// where one schedule reaches in one layer a state another schedule needs
// two for. Graded graphs admit single-pass reverse-layer dynamic
// programming; sweeps check this and fall back on the rest.
func (g *IDGraph) Graded() bool {
	g.gradedOnce.Do(func() {
		g.graded = true
		for u := range g.States {
			d := g.DepthOf[u]
			lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
			for e := lo; e < hi; e++ {
				if g.DepthOf[g.EdgeTo[e]] != d+1 {
					g.graded = false
					return
				}
			}
		}
	})
	return g.graded
}

// grow pre-sizes the per-node arrays for about n nodes and the edge arrays
// for about edges edges. Exploration still appends — these are capacity
// hints, not commitments — so a hint that is too small only costs the
// regrowth it failed to avoid, and one that is too large costs slack
// capacity.
func (g *IDGraph) grow(n, edges int) {
	g.States = make([]State, 0, n)
	g.Keys = make([]string, 0, n)
	g.DepthOf = make([]int32, 0, n)
	g.ParentOf = make([]int32, 0, n)
	g.parentEdge = make([]int32, 0, n)
	g.cacheIDs = make([]uint32, 0, n)
	start := make([]uint32, 1, n+1)
	start[0] = 0
	g.EdgeStart = start
	if edges > 0 {
		g.EdgeAction = make([]string, 0, edges)
		g.EdgeTo = make([]uint32, 0, edges)
	}
}

// addNode appends a node and returns its id.
func (g *IDGraph) addNode(x State, key string, depth int, cacheID uint32) uint32 {
	u := uint32(len(g.States))
	g.States = append(g.States, x)
	g.Keys = append(g.Keys, key)
	g.DepthOf = append(g.DepthOf, int32(depth))
	g.ParentOf = append(g.ParentOf, -1)
	g.parentEdge = append(g.parentEdge, -1)
	g.cacheIDs = append(g.cacheIDs, cacheID)
	for len(g.layers) <= depth {
		g.layers = append(g.layers, nil)
	}
	g.layers[depth] = append(g.layers[depth], u)
	return u
}

// padEdgeStart extends EdgeStart so that every node has an (empty if
// unexpanded) edge range.
func (g *IDGraph) padEdgeStart() {
	last := uint32(len(g.EdgeTo))
	for len(g.EdgeStart) < len(g.States)+1 {
		g.EdgeStart = append(g.EdgeStart, last)
	}
}

// ExploreID builds the dense-id reachable state graph of m to the given
// depth, drawing successors from the model's shared cache when it has one.
// maxNodes bounds the number of distinct states (0 = no bound); on budget
// exhaustion the partial graph explored so far is returned alongside the
// wrapped ErrNodeBudget.
func ExploreID(m Model, depth, maxNodes int) (*IDGraph, error) {
	return ExploreIDCtx(nil, m, depth, maxNodes, 1)
}

// ExploreIDParallel is ExploreID with the successor enumeration of each
// frontier sharded across workers goroutines (workers <= 0 means
// GOMAXPROCS). Per-worker results land in the shared successor cache and
// are merged in frontier order by a single goroutine, so the resulting
// graph — node numbering, edge order, depths, and any budget-exhaustion
// point — is bit-identical to ExploreID's.
func ExploreIDParallel(m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	return ExploreIDCtx(nil, m, depth, maxNodes, workers)
}

// ExploreIDCtx is ExploreIDParallel under a cancellation context.
// Cancellation (and the chaos explore.layer fault point) is checked once
// per layer, so a live run pays one atomic load per BFS depth; worker
// goroutines additionally poll per shard. When the context fires, the
// partial graph explored to the last completed layer is returned alongside
// a wrapped ErrCanceled/ErrDeadline carrying a resilient.Checkpointer for
// the cut, and the unresolved frontier is the deepest populated layer
// (g.Layer(g.ReachedDepth())).
//
// If ctx carries a resume snapshot (resilient.TagExplore) matching this
// model, depth, and budget, exploration continues from the snapshot's
// layer boundary instead of starting fresh; the finished graph is
// bit-identical to an uninterrupted run's.
func ExploreIDCtx(ctx *resilient.Ctx, m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	return ExploreIDCtxWith(ctx, CacheOf(m), m, depth, maxNodes, workers)
}

// ExploreIDWith is ExploreIDParallel drawing from an explicit successor
// cache instead of the model's embedded one. The equivalence property tests
// and the cmd/bench sharded/legacy grid use it to run the same model
// against different Interner implementations; regular callers should let
// the model supply its shared cache.
func ExploreIDWith(c Interner, m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	return ExploreIDCtxWith(nil, c, m, depth, maxNodes, workers)
}

// ExploreIDCtxWith is ExploreIDCtx drawing from an explicit successor
// cache. A checkpoint resume carried by ctx continues against the same
// cache.
func ExploreIDCtxWith(ctx *resilient.Ctx, c Interner, m Model, depth, maxNodes, workers int) (*IDGraph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if data := ctx.PeekResume(resilient.TagExplore); data != nil {
		ck, err := DecodeExploreCheckpoint(data)
		if err != nil {
			return nil, err
		}
		if ck.Matches(m, depth, maxNodes) {
			ctx.TakeResume(resilient.TagExplore)
			return resumeExploreID(ctx, c, m, ck, workers)
		}
	}
	rec := obs.Active()
	defer obs.Span(rec, "explore.time")()
	tr := obs.Trace()
	var root obs.TraceSpan
	if tr != nil {
		root = tr.Begin("explore", 0)
		defer tr.End(root)
	}
	g := &IDGraph{Depth: depth, Cache: c, EdgeStart: []uint32{0}}
	if hint := c.Len(); hint > 0 {
		// A warm cache approximates the graph it will yield again — the
		// interned states bound the node count, the recorded successor lists
		// the edge count — so sizing the arrays up front removes the
		// append-regrowth that otherwise dominates memoized re-exploration.
		g.grow(hint, c.EdgeHint())
	}
	cacheToNode := newCIDTable(c.Len())
	var frontier []uint32
	// Seeding runs to completion even under a canceled ctx: the checkpoint
	// format only represents layer-boundary cuts, so an exploration stopped
	// mid-seed could not be resumed. The layer loop polls immediately after
	// (stopPoint in continueExplore), bounding cancellation latency to one
	// sweep over the model's initial states.
	for _, x := range m.Inits() { //lint:poll seeding is atomic; checkpoints cut at layer boundaries only
		cid := c.ID(x)
		if _, seen := cacheToNode.get(cid); seen {
			continue
		}
		u := g.addNode(x, c.KeyOf(cid), 0, cid)
		cacheToNode.set(cid, u)
		g.Inits = append(g.Inits, u)
		frontier = append(frontier, u)
	}
	if rec != nil {
		rec.Add("explore.runs", 1)
		rec.Add("explore.nodes", int64(len(frontier)))
		rec.Event("explore.start",
			obs.F{Key: "model", Value: m.Name()},
			obs.F{Key: "depth", Value: depth},
			obs.F{Key: "max_nodes", Value: maxNodes},
			obs.F{Key: "workers", Value: workers},
			obs.F{Key: "inits", Value: len(frontier)})
	}
	return continueExplore(ctx, m, g, cacheToNode, frontier, 0, maxNodes, workers, rec, root.ID)
}

// continueExplore runs the layer loop from startDepth, whose frontier is
// the nodes first reached there, over a graph with every earlier layer
// fully expanded. It is the shared tail of a fresh exploration and a
// checkpoint resume. parent is the enclosing explore span (0 when tracing
// is off); each layer becomes one explore.layer child span.
func continueExplore(ctx *resilient.Ctx, m Model, g *IDGraph, cacheToNode *cidTable, frontier []uint32, startDepth, maxNodes, workers int, rec obs.Recorder, parent obs.SpanID) (*IDGraph, error) {
	c := g.Cache
	tr := obs.Trace()
	var lt0 time.Time
	for d := startDepth; d < g.Depth && len(frontier) > 0; d++ {
		if err := stopPoint(ctx, "explore.layer"); err != nil {
			return g.interrupted(m, rec, d, maxNodes, err)
		}
		var lsp obs.TraceSpan
		if tr != nil {
			lsp = tr.Begin("explore.layer", parent)
		}
		if rec != nil {
			lt0 = time.Now() //lint:nondet feeds layer-timing instrumentation only
		}
		if workers > 1 {
			if err := warmFrontier(ctx, c, g, frontier, workers, lsp.ID); err != nil {
				if tr != nil {
					tr.End(lsp)
				}
				return g.interrupted(m, rec, d, maxNodes, err)
			}
		}
		edgesBefore := len(g.EdgeTo)
		var next []uint32
		for _, u := range frontier {
			succs, sids := c.SuccessorsOf(g.cacheIDs[u], g.States[u])
			for i := range succs {
				cid := sids[i]
				v, seen := cacheToNode.get(cid)
				if !seen {
					if maxNodes > 0 && len(g.States) >= maxNodes {
						g.padEdgeStart()
						if tr != nil {
							tr.End(lsp)
						}
						g.finishExplore(rec, true)
						return g, fmt.Errorf("at depth %d (%d nodes): %w", g.ReachedDepth(), len(g.States), ErrNodeBudget)
					}
					v = g.addNode(succs[i].State, c.KeyOf(cid), d+1, cid)
					g.ParentOf[v] = int32(u)
					g.parentEdge[v] = int32(len(g.EdgeTo))
					cacheToNode.set(cid, v)
					next = append(next, v)
				}
				g.EdgeAction = append(g.EdgeAction, succs[i].Action)
				g.EdgeTo = append(g.EdgeTo, v)
			}
			g.EdgeStart = append(g.EdgeStart, uint32(len(g.EdgeTo)))
		}
		if tr != nil {
			tr.End(lsp)
		}
		if rec != nil {
			rec.Add("explore.nodes", int64(len(next)))
			rec.Add("explore.edges", int64(len(g.EdgeTo)-edgesBefore))
			rec.Set("explore.frontier", int64(len(next)))
			rec.Observe("explore.layer.time", time.Since(lt0))
			rec.Record("explore.layer.width", int64(len(frontier)))
			headroom := int64(-1)
			if maxNodes > 0 {
				headroom = int64(maxNodes - len(g.States))
			}
			rec.Event("explore.depth",
				obs.F{Key: "depth", Value: d + 1},
				obs.F{Key: "frontier", Value: len(next)},
				obs.F{Key: "nodes", Value: len(g.States)},
				obs.F{Key: "edges", Value: len(g.EdgeTo)},
				obs.F{Key: "budget_headroom", Value: headroom})
		}
		frontier = next
	}
	g.padEdgeStart()
	g.finishExplore(rec, false)
	return g, nil
}

// stopPoint is the per-layer interruption probe: the context's cancel flag
// (one atomic load when live) and the named chaos fault point (one atomic
// load when disarmed). Injected budget faults are routed through
// ErrNodeBudget so they surface exactly like a real exhausted budget —
// while still carrying the layer-boundary checkpoint, unlike a genuine
// mid-layer budget stop.
func stopPoint(ctx *resilient.Ctx, point string) error {
	err := chaos.Check(ctx, point)
	var f *chaos.Fault
	if errors.As(err, &f) && f.Kind == chaos.KindBudget {
		return fmt.Errorf("%w: %w", ErrNodeBudget, err)
	}
	if err == nil {
		// The soft memory gate stops the exploration at the same
		// checkpointable boundary; the Supervisor degrades on ErrMemory
		// instead of retrying at full width.
		err = resilient.MemPressure()
	}
	return err
}

// interrupted finalizes a layer-boundary cut: the partial graph (layers
// 0..nextDepth-1 expanded, frontier = layer nextDepth untouched) is
// returned alongside the cause, wrapped with a Checkpointer so callers
// holding a -checkpoint path can persist the cut and resume it later.
func (g *IDGraph) interrupted(m Model, rec obs.Recorder, nextDepth, maxNodes int, cause error) (*IDGraph, error) {
	g.padEdgeStart()
	g.Cache.Publish()
	if rec != nil {
		rec.Add("explore.interrupts", 1)
		rec.Event("explore.interrupted",
			obs.F{Key: "model", Value: m.Name()},
			obs.F{Key: "next_depth", Value: nextDepth},
			obs.F{Key: "nodes", Value: g.Len()},
			obs.F{Key: "cause", Value: cause.Error()})
	}
	ck := &ExploreCheckpoint{Model: m.Name(), Depth: g.Depth, MaxNodes: maxNodes, NextDepth: nextDepth, g: g}
	err := fmt.Errorf("core: exploration interrupted at depth %d (%d nodes): %w", nextDepth, g.Len(), cause)
	return g, resilient.WithCheckpoint(err, ck)
}

// finishExplore brings the cache's lock-free snapshots up to date (so the
// passes that follow an exploration resolve every key without a shard
// mutex), publishes the exploration's final counters — including the shared
// successor cache's hit/fill/interned-bytes view and its per-shard
// breakdown — and emits the closing journal event. budgetHit marks a
// partial graph returned with ErrNodeBudget; the event then carries the
// depth actually reached so the journal explains how far the search got.
func (g *IDGraph) finishExplore(rec obs.Recorder, budgetHit bool) {
	g.Cache.Publish()
	if rec == nil {
		return
	}
	st := g.Cache.Stats()
	rec.Set("cache.states", int64(st.States))
	rec.Set("cache.hits", st.Hits)
	rec.Set("cache.enumerations", int64(st.Enumerations))
	rec.Set("cache.interned_bytes", int64(st.InternedBytes))
	if len(st.PerShard) > 0 {
		states := make([]int64, len(st.PerShard))
		hits := make([]int64, len(st.PerShard))
		enums := make([]int64, len(st.PerShard))
		for i, sc := range st.PerShard {
			states[i], hits[i], enums[i] = int64(sc.States), sc.Hits, sc.Enumerations
		}
		rec.Event("cache.shards",
			obs.F{Key: "shards", Value: st.Shards},
			obs.F{Key: "states", Value: states},
			obs.F{Key: "hits", Value: hits},
			obs.F{Key: "enumerations", Value: enums})
	}
	name, fields := "explore.done", []obs.F{
		{Key: "nodes", Value: g.Len()},
		{Key: "edges", Value: g.NumEdges()},
		{Key: "reached_depth", Value: g.ReachedDepth()},
		{Key: "depth_bound", Value: g.Depth},
	}
	if budgetHit {
		rec.Add("explore.budget_hits", 1)
		name = "explore.budget"
	}
	rec.Event(name, fields...)
}

// warmFrontier enumerates the successors of a frontier's nodes into the
// shared cache, one contiguous shard per pool worker. Only the cache is
// written (it is concurrency-safe) and cache writes are idempotent, so a
// shard abandoned to cancellation or a contained panic leaves the graph
// untouched: the caller treats any error as an interruption at the top of
// the layer, and a resumed run simply re-warms. The serial merge that
// follows reads the warmed entries in frontier order.
func warmFrontier(ctx *resilient.Ctx, c Interner, g *IDGraph, frontier []uint32, workers int, parent obs.SpanID) error {
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 {
		return nil
	}
	shardLen := (len(frontier) + workers - 1) / workers
	shards := (len(frontier) + shardLen - 1) / shardLen
	pool := resilient.Pool{Workers: workers}
	return pool.Run(ctx, shards, func(sctx *resilient.Ctx, shard int) error {
		if err := stopPoint(sctx, "explore.warm"); err != nil {
			return err
		}
		if tr := obs.Trace(); tr != nil {
			defer tr.End(tr.BeginLane("explore.warm.shard", parent, shard+1))
		}
		lo := shard * shardLen
		hi := lo + shardLen
		if hi > len(frontier) {
			hi = len(frontier)
		}
		for _, u := range frontier[lo:hi] {
			c.SuccessorsOf(g.cacheIDs[u], g.States[u])
		}
		return nil
	})
}

// Legacy materializes the string-keyed Graph view of the dense graph. The
// two share State values; the maps are freshly built.
func (g *IDGraph) Legacy() *Graph {
	out := &Graph{
		Nodes:   make(map[string]State, len(g.States)),
		Edges:   make(map[string][]Edge, len(g.States)),
		DepthOf: make(map[string]int, len(g.States)),
		Depth:   g.Depth,
		dense:   g,
	}
	for u, s := range g.States {
		k := g.Keys[u]
		out.Nodes[k] = s
		out.DepthOf[k] = int(g.DepthOf[u])
	}
	for u := range g.States {
		lo, hi := g.EdgeStart[u], g.EdgeStart[u+1]
		if lo == hi {
			continue
		}
		edges := make([]Edge, 0, hi-lo)
		for e := lo; e < hi; e++ {
			edges = append(edges, Edge{Action: g.EdgeAction[e], To: g.Keys[g.EdgeTo[e]]})
		}
		out.Edges[g.Keys[u]] = edges
	}
	for _, u := range g.Inits {
		out.InitKeys = append(out.InitKeys, g.Keys[u])
	}
	return out
}
