package core_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
)

// graphsIdentical asserts the two string-keyed graphs are bit-identical:
// same node set, same edge lists (order included), same depths, same init
// keys.
func graphsIdentical(t *testing.T, serial, parallel *core.Graph) {
	t.Helper()
	if len(serial.Nodes) != len(parallel.Nodes) {
		t.Fatalf("node count: serial %d, parallel %d", len(serial.Nodes), len(parallel.Nodes))
	}
	for k := range serial.Nodes {
		if _, ok := parallel.Nodes[k]; !ok {
			t.Fatalf("parallel graph missing node %q", k)
		}
	}
	if !reflect.DeepEqual(serial.DepthOf, parallel.DepthOf) {
		t.Fatal("DepthOf maps differ")
	}
	if !reflect.DeepEqual(serial.InitKeys, parallel.InitKeys) {
		t.Fatal("InitKeys differ")
	}
	if len(serial.Edges) != len(parallel.Edges) {
		t.Fatalf("edge-map size: serial %d, parallel %d", len(serial.Edges), len(parallel.Edges))
	}
	for k, se := range serial.Edges {
		if !reflect.DeepEqual(se, parallel.Edges[k]) {
			t.Fatalf("edge order differs at %q", k)
		}
	}
}

func TestExploreParallelMatchesSerial(t *testing.T) {
	models := []struct {
		name  string
		m     core.Model
		depth int
	}{
		{"mobile", mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2},
		{"mobile-full", mobile.NewFull(protocols.FloodSet{Rounds: 2}, 3), 1},
		{"sync-s1", syncmp.NewS1(protocols.FloodSet{Rounds: 2}, 3), 2},
		{"sync-st", syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1), 2},
		{"sync-st-general", syncmp.NewStGeneral(protocols.FloodSet{Rounds: 2}, 3, 1), 2},
		{"sync-st-multi", syncmp.NewStMulti(protocols.FloodSet{Rounds: 2}, 3, 2, 2), 2},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := core.Explore(tc.m, tc.depth, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 3, 8} {
				par, err := core.ExploreParallel(tc.m, tc.depth, 0, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				graphsIdentical(t, serial, par)
			}
		})
	}
}

func TestExploreParallelBudgetMatchesSerial(t *testing.T) {
	const budget = 25
	mkModel := func() core.Model { return mobile.New(protocols.FloodSet{Rounds: 3}, 3) }
	serial, serr := core.Explore(mkModel(), 3, budget)
	if !errors.Is(serr, core.ErrNodeBudget) {
		t.Fatalf("serial err = %v", serr)
	}
	par, perr := core.ExploreParallel(mkModel(), 3, budget, 4)
	if !errors.Is(perr, core.ErrNodeBudget) {
		t.Fatalf("parallel err = %v", perr)
	}
	if serr.Error() != perr.Error() {
		t.Errorf("error text differs: %q vs %q", serr, perr)
	}
	graphsIdentical(t, serial, par)
}

func TestSuccessorCacheSharing(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	c := core.CacheOf(m)
	if c != core.CacheOf(m) {
		t.Fatal("model did not share one cache across CacheOf calls")
	}
	g, err := core.Explore(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dense() == nil || g.Dense().Cache != c {
		t.Fatal("explored graph not drawing from the model's shared cache")
	}
	after := c.Enumerations()
	// A second pass over the same model re-enumerates nothing.
	if _, err := core.Explore(m, 2, 0); err != nil {
		t.Fatal(err)
	}
	if c.Enumerations() != after {
		t.Errorf("second exploration enumerated %d extra states", c.Enumerations()-after)
	}
	// The cached Successors agree with the raw function.
	x := m.Inits()[0]
	raw := c.Uncached().Successors(x)
	got := m.Successors(x)
	if len(raw) != len(got) {
		t.Fatalf("cached successors %d, raw %d", len(got), len(raw))
	}
	for i := range raw {
		if raw[i].Action != got[i].Action || raw[i].State.Key() != got[i].State.Key() {
			t.Fatalf("successor %d differs through the cache", i)
		}
	}
}

func TestIDGraphStructure(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	ig, err := core.ExploreID(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ig.Len() == 0 || ig.NumEdges() == 0 {
		t.Fatal("empty dense graph")
	}
	// Layers partition the nodes and agree with DepthOf.
	total := 0
	for d := 0; d <= 2; d++ {
		for _, u := range ig.Layer(d) {
			if int(ig.DepthOf[u]) != d {
				t.Fatalf("node %d in layer %d has DepthOf %d", u, d, ig.DepthOf[u])
			}
			total++
		}
	}
	if total != ig.Len() {
		t.Fatalf("layers cover %d of %d nodes", total, ig.Len())
	}
	// CSR edges agree with the legacy map view.
	leg := ig.Legacy()
	for u := range ig.States {
		actions, to := ig.Out(uint32(u))
		edges := leg.Edges[ig.Keys[u]]
		if len(actions) != len(edges) {
			t.Fatalf("node %d: %d CSR edges, %d legacy edges", u, len(actions), len(edges))
		}
		for i := range edges {
			if edges[i].Action != actions[i] || edges[i].To != ig.Keys[to[i]] {
				t.Fatalf("node %d edge %d differs between CSR and legacy", u, i)
			}
		}
	}
}

func TestStatesAtDepthCached(t *testing.T) {
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.Explore(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := g.StatesAtDepth(1)
	second := g.StatesAtDepth(1)
	if len(first) == 0 {
		t.Fatal("no states at depth 1")
	}
	if &first[0] != &second[0] {
		t.Error("StatesAtDepth rebuilt its bucket on the second call")
	}
	// Explore-built graphs serve the dense layer window in BFS discovery
	// order: exactly the Layer(1) nodes, in that order, with no copying.
	dense := g.Dense()
	layer := dense.Layer(1)
	if len(first) != len(layer) {
		t.Fatalf("depth-1 bucket has %d states, dense layer %d nodes", len(first), len(layer))
	}
	for i, u := range layer {
		if first[i] != dense.States[u] {
			t.Fatalf("bucket[%d] is not dense layer node %d", i, u)
		}
	}
	if g.StatesAtDepth(3) != nil || g.StatesAtDepth(-1) != nil {
		t.Fatal("out-of-range depth should yield nil")
	}
}

func TestStatesAtDepthHandBuilt(t *testing.T) {
	// A hand-assembled Graph (no dense form) keeps the sorted-key path.
	m := mobile.New(protocols.FloodSet{Rounds: 2}, 3)
	g, err := core.Explore(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hand := &core.Graph{Nodes: g.Nodes, Edges: g.Edges, DepthOf: g.DepthOf, InitKeys: g.InitKeys, Depth: g.Depth}
	first := hand.StatesAtDepth(1)
	if len(first) != len(g.StatesAtDepth(1)) {
		t.Fatalf("hand-built bucket has %d states, dense %d", len(first), len(g.StatesAtDepth(1)))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Key() >= first[i].Key() {
			t.Fatal("hand-built bucket not sorted by key")
		}
	}
	if &first[0] != &hand.StatesAtDepth(1)[0] {
		t.Error("hand-built bucket rebuilt on second call")
	}
}
