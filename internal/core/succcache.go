package core

import (
	"sync"
	"sync/atomic"
)

// SuccessorCache is a shared, id-keyed successor memo. It interns every
// state it sees (by canonical Key) into a dense uint32 id via a KeyIndex and
// records each state's labeled successors the first time they are
// enumerated, so a sweep that explores, then certifies, then measures
// diameters enumerates each state's successors once instead of once per
// pass. The model types embed one cache per model instance, which makes the
// sharing automatic for every consumer of the same model value.
//
// A SuccessorCache is safe for concurrent use. Ids are assigned in
// first-intern order, so their numeric values depend on access order and
// must not be used as externally-visible identifiers; they are join keys
// for memo tables and dense arrays only.
//
// The successor slices returned by the cache are shared: callers must not
// modify them.
type SuccessorCache struct {
	fn Successor

	mu      sync.RWMutex
	idx     *KeyIndex
	entries []*cacheEntry
	enums   int
	// hits counts memoized successor lookups served without enumeration.
	// It is atomic (not guarded by mu) so the read-locked fast path can
	// count without upgrading to a write lock.
	hits int64
}

type cacheEntry struct {
	state State
	succs []Succ
	ids   []uint32
	done  bool
}

// NewSuccessorCache returns an empty cache over the raw successor function
// fn.
func NewSuccessorCache(fn Successor) *SuccessorCache {
	return &SuccessorCache{fn: fn, idx: NewKeyIndex(0)}
}

// CacheOf returns the successor cache shared by s when s carries one (the
// model types do, via embedding), or a fresh private cache wrapping s
// otherwise.
func CacheOf(s Successor) *SuccessorCache {
	if p, ok := s.(interface{ Cache() *SuccessorCache }); ok {
		if c := p.Cache(); c != nil {
			return c
		}
	}
	return NewSuccessorCache(s)
}

// Cache returns the cache itself; it exists so that embedding a
// *SuccessorCache advertises the cache through the CacheOf protocol.
func (c *SuccessorCache) Cache() *SuccessorCache { return c }

// Uncached returns the raw successor function beneath the cache, for
// callers (CheckDeterminism) that need to observe repeated enumeration.
func (c *SuccessorCache) Uncached() Successor { return c.fn }

// ID interns x and returns its dense id without enumerating successors.
func (c *SuccessorCache) ID(x State) uint32 {
	key := x.Key()
	c.mu.RLock()
	id, ok := c.idx.ID(key)
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	id = c.intern(key, x)
	c.mu.Unlock()
	return id
}

// intern assigns (or finds) the id for key, recording x as its state. The
// caller holds the write lock.
func (c *SuccessorCache) intern(key string, x State) uint32 {
	id, fresh := c.idx.Intern(key)
	if fresh {
		c.entries = append(c.entries, &cacheEntry{state: x})
	}
	return id
}

// Successors implements Successor, memoized. The returned slice is shared;
// callers must not modify it.
func (c *SuccessorCache) Successors(x State) []Succ {
	_, succs, _ := c.SuccessorsID(x)
	return succs
}

// SuccessorsID interns x and returns its id, its labeled successors, and
// the successors' interned ids (aligned with succs).
func (c *SuccessorCache) SuccessorsID(x State) (id uint32, succs []Succ, ids []uint32) {
	id = c.ID(x)
	succs, ids = c.SuccessorsOf(id, x)
	return id, succs, ids
}

// SuccessorsOf returns the successors of the already-interned state x with
// id id, enumerating and recording them on first use. Passing the state
// alongside its id lets deep recursions avoid ever re-deriving a key.
func (c *SuccessorCache) SuccessorsOf(id uint32, x State) (succs []Succ, ids []uint32) {
	c.mu.RLock()
	e := c.entries[id]
	done, succs, ids := e.done, e.succs, e.ids
	c.mu.RUnlock()
	if done {
		atomic.AddInt64(&c.hits, 1)
		return succs, ids
	}
	// Enumerate outside the lock; a concurrent duplicate enumeration is
	// harmless (the successor function is deterministic) and the first
	// writer wins.
	raw := c.fn.Successors(x)
	rawIDs := make([]uint32, len(raw))
	c.mu.Lock()
	if e.done {
		succs, ids = e.succs, e.ids
		c.mu.Unlock()
		return succs, ids
	}
	c.enums++
	for i, s := range raw {
		rawIDs[i] = c.intern(s.State.Key(), s.State)
	}
	e.succs, e.ids, e.done = raw, rawIDs, true
	c.mu.Unlock()
	return raw, rawIDs
}

// StateOf returns the state interned under id.
func (c *SuccessorCache) StateOf(id uint32) State {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[id].state
}

// KeyOf returns the canonical key interned under id.
func (c *SuccessorCache) KeyOf(id uint32) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Key(id)
}

// Len returns the number of distinct states interned so far.
func (c *SuccessorCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Len()
}

// Enumerations returns how many raw successor enumerations the cache has
// performed — the search effort actually paid, as opposed to the number of
// Successors calls served.
func (c *SuccessorCache) Enumerations() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.enums
}

// CacheStats is a point-in-time view of a successor cache's effectiveness.
type CacheStats struct {
	// States is the number of distinct states interned.
	States int
	// Hits counts memoized successor lookups served without enumeration.
	Hits int64
	// Enumerations counts raw successor enumerations performed (the fill
	// side of the hit/miss ledger).
	Enumerations int
	// InternedBytes is the total size of the interned key strings.
	InternedBytes int
}

// HitRate returns hits / (hits + enumerations) in [0, 1], or 0 before any
// lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + int64(s.Enumerations)
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's current counters.
func (c *SuccessorCache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		States:        c.idx.Len(),
		Hits:          atomic.LoadInt64(&c.hits),
		Enumerations:  c.enums,
		InternedBytes: c.idx.Bytes(),
	}
}
