package core

import (
	"fmt"
	"hash/maphash"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Shard geometry. The shard count is a power of two so a key hash selects a
// shard with one mask; 64 shards keeps cross-worker intern collisions rare
// up to large core counts while costing only a few kilobytes per cache.
// Entry chunks grow geometrically from chunkMin entries, so a cache that
// interns n states allocates O(log n) chunks and never moves an entry —
// which is what lets the read path hold raw *cacheEntry pointers without
// any lock.
const (
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1

	chunkMinBits = 6
	chunkMin     = 1 << chunkMinBits
)

// SuccessorCache is a shared, id-keyed successor memo. It interns every
// state it sees (by canonical Key) into a dense uint32 id and records each
// state's labeled successors the first time they are enumerated, so a sweep
// that explores, then certifies, then measures diameters enumerates each
// state's successors once instead of once per pass. The model types embed
// one cache per model instance, which makes the sharing automatic for every
// consumer of the same model value.
//
// The table is hash-sharded and lock-striped: keys are spread over numShards
// shards by a seeded hash, each guarded by its own mutex, and every shard
// additionally publishes a read-only snapshot of its key table through an
// atomic pointer. The memoized fast paths — an ID lookup that hits a
// published snapshot, a SuccessorsOf call on an already-enumerated entry,
// StateOf, KeyOf — therefore take zero locks; only first-sight interning and
// first enumeration touch a mutex, and then only the one shard (or stripe)
// involved. Per-shard locks are never held while acquiring another shard's
// lock (the parshard analyzer enforces this).
//
// A SuccessorCache is safe for concurrent use. Ids are dense (0..Len()-1)
// and assigned in first-intern order from one atomic allocator, so their
// numeric values depend on access order and must not be used as
// externally-visible identifiers; they are join keys for memo tables and
// dense arrays only. LegacyCache preserves the original single-lock
// implementation as the pinned reference for equivalence tests.
//
// The successor slices returned by the cache are shared: callers must not
// modify them.
type SuccessorCache struct {
	fn Successor

	// seed keys the shard hash; shard placement is per-process random but
	// never observable (ids come from the global allocator, not the shard).
	seed maphash.Seed

	// next allocates dense ids across all shards.
	next atomic.Uint32

	// dir is the chunked entry directory: chunk c holds chunkMin<<c entries,
	// and the directory slice is republished atomically on growth, so
	// readers index entries with one atomic load and no lock. growMu
	// serializes growth only.
	dir    atomic.Pointer[[][]cacheEntry]
	growMu sync.Mutex

	// bytes totals the interned key lengths.
	bytes atomic.Int64
	// succTotal totals the lengths of recorded successor lists; explorations
	// re-running over a warm cache use it to size their edge arrays.
	succTotal atomic.Int64

	// bufs pools reusable key buffers so AppendKey-based lookups allocate
	// nothing in steady state.
	bufs sync.Pool

	shards  [numShards]internShard
	stripes [numShards]entryStripe
}

// internShard is one lock-striped slice of the key table.
type internShard struct {
	mu sync.Mutex
	// dirty is the authoritative key -> id table, guarded by mu.
	dirty map[string]uint32
	// clean is the atomically published read-path snapshot of dirty. It is
	// immutable after publication; lock-free lookups read it with one
	// atomic load. Republished when dirty doubles past the last snapshot
	// (amortized O(n) total copying) and by Publish at pass boundaries.
	clean atomic.Pointer[map[string]uint32]
	// published is len(dirty) at the last publication.
	published int
	// pend mirrors len(dirty) - published (maintained under mu, read
	// atomically) so Publish can skip untouched shards without locking.
	pend atomic.Int32
	// Pad shards onto separate cache lines; the mutexes and snapshot
	// pointers are the contended words.
	_ [32]byte
}

// entryStripe guards first-publication of entry successor lists (striped by
// id) and owns that stripe's hit/enumeration counters.
type entryStripe struct {
	mu    sync.Mutex
	hits  atomic.Int64
	enums atomic.Int64
	_     [32]byte
}

// cacheEntry is one interned state's slot. state and key are written once
// under the owning key shard's mutex before the id escapes; succs and ids
// are written once under the id's stripe mutex and published by the atomic
// done flag, so the memoized read path needs no lock.
type cacheEntry struct {
	state State
	key   string
	succs []Succ
	ids   []uint32
	done  atomic.Bool
}

// NewSuccessorCache returns an empty cache over the raw successor function
// fn.
func NewSuccessorCache(fn Successor) *SuccessorCache {
	c := &SuccessorCache{fn: fn, seed: maphash.MakeSeed()}
	c.bufs.New = func() any {
		b := make([]byte, 0, 128)
		return &b
	}
	return c
}

// CacheOf returns the successor cache shared by s when s carries one (the
// model types do, via embedding), or a fresh private cache wrapping s
// otherwise.
func CacheOf(s Successor) *SuccessorCache {
	if p, ok := s.(interface{ Cache() *SuccessorCache }); ok {
		if c := p.Cache(); c != nil {
			return c
		}
	}
	return NewSuccessorCache(s)
}

// Cache returns the cache itself; it exists so that embedding a
// *SuccessorCache advertises the cache through the CacheOf protocol.
func (c *SuccessorCache) Cache() *SuccessorCache { return c }

// Uncached returns the raw successor function beneath the cache, for
// callers (CheckDeterminism) that need to observe repeated enumeration.
func (c *SuccessorCache) Uncached() Successor { return c.fn }

// stripeOf maps a dense id to its entry stripe. Ids are striped by
// chunkMin-sized block, not by low bits: BFS-ordered sweeps touch roughly
// sequential ids, so block striping keeps a sweep's counter updates on one
// hot cache line for chunkMin consecutive ids instead of bouncing across
// all numShards padded lines, while parallel workers (which own disjoint
// contiguous frontier ranges) still land on distinct stripes.
func stripeOf(id uint32) uint32 { return (id >> chunkMinBits) & shardMask }

// entryLoc splits a dense id into its chunk coordinates: chunk c covers ids
// [chunkMin*(2^c - 1), chunkMin*(2^(c+1) - 1)).
func entryLoc(id uint32) (chunk, off uint32) {
	x := (id >> chunkMinBits) + 1
	chunk = uint32(bits.Len32(x)) - 1
	base := (uint32(1)<<chunk - 1) << chunkMinBits
	return chunk, id - base
}

// entry returns the slot of id. The id must have been obtained from this
// cache, which guarantees (transitively, through whichever synchronized
// path delivered the id) that its chunk is published and its state/key
// writes are visible.
func (c *SuccessorCache) entry(id uint32) *cacheEntry {
	chunk, off := entryLoc(id)
	dir := *c.dir.Load()
	return &dir[chunk][off]
}

// ensureEntry returns the slot of a freshly allocated id, growing the chunk
// directory if the id is the first of a new chunk. Lock order: callers hold
// one shard mutex; growMu nests inside it and inside nothing else.
func (c *SuccessorCache) ensureEntry(id uint32) *cacheEntry {
	chunk, off := entryLoc(id)
	if d := c.dir.Load(); d != nil && int(chunk) < len(*d) {
		return &(*d)[chunk][off]
	}
	c.growMu.Lock()
	var cur [][]cacheEntry
	if d := c.dir.Load(); d != nil {
		cur = *d
	}
	for int(chunk) >= len(cur) {
		next := make([][]cacheEntry, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = make([]cacheEntry, chunkMin<<uint(len(cur)))
		c.dir.Store(&next)
		cur = next
	}
	c.growMu.Unlock()
	return &cur[chunk][off]
}

// keyBuf borrows a pooled key buffer; release returns it grown.
func (c *SuccessorCache) keyBuf() *[]byte { return c.bufs.Get().(*[]byte) }

func (c *SuccessorCache) release(bp *[]byte, buf []byte) {
	*bp = buf[:0]
	c.bufs.Put(bp)
}

// ID interns x and returns its dense id without enumerating successors.
func (c *SuccessorCache) ID(x State) uint32 {
	bp := c.keyBuf()
	key := AppendKeyOf(x, (*bp)[:0])
	id := c.internKey(key, x)
	c.release(bp, key)
	return id
}

// internKey returns the id under the canonical key bytes, interning x on
// first sight. The hot path — a key already visible in its shard's
// published snapshot — takes zero locks and zero allocations (the
// string(key) conversions below are lookup-only and do not materialize).
func (c *SuccessorCache) internKey(key []byte, x State) uint32 {
	sh := &c.shards[maphash.Bytes(c.seed, key)&shardMask]
	if snap := sh.clean.Load(); snap != nil {
		if id, ok := (*snap)[string(key)]; ok {
			return id
		}
	}
	return c.internSlow(sh, key, x)
}

// internSlow is the locked tail of internKey: consult the authoritative
// table, then intern on a true miss.
func (c *SuccessorCache) internSlow(sh *internShard, key []byte, x State) uint32 {
	sh.mu.Lock()
	if id, ok := sh.dirty[string(key)]; ok {
		sh.mu.Unlock()
		return id
	}
	ks := x.Key()
	if ks != string(key) {
		sh.mu.Unlock()
		panic(fmt.Sprintf("core: %T.AppendKey diverged from Key: %q vs %q", x, key, ks))
	}
	id := c.next.Add(1) - 1
	e := c.ensureEntry(id)
	e.state, e.key = x, ks
	if sh.dirty == nil {
		sh.dirty = make(map[string]uint32, 8)
	}
	sh.dirty[ks] = id
	c.bytes.Add(int64(len(ks)))
	if len(sh.dirty) >= 2*sh.published {
		sh.publishLocked()
	} else {
		sh.pend.Store(int32(len(sh.dirty) - sh.published))
	}
	sh.mu.Unlock()
	return id
}

// publishLocked snapshots dirty into a fresh immutable map and publishes
// it. The caller holds the shard mutex.
func (sh *internShard) publishLocked() {
	snap := make(map[string]uint32, len(sh.dirty))
	for k, v := range sh.dirty { //lint:nondet copying into a map is order-insensitive
		snap[k] = v
	}
	sh.clean.Store(&snap)
	sh.published = len(sh.dirty)
	sh.pend.Store(0)
}

// Publish brings every shard's lock-free snapshot up to date with its
// authoritative table. The exploration engine calls it at pass boundaries
// so later passes (oracle queries, certification joins, re-explorations)
// resolve every interned key without touching a shard mutex. Shards with
// nothing pending are skipped without locking, so re-running a pass over a
// fully published cache costs one atomic load per shard.
//
// With instrumentation on, a publish that actually snapshots at least one
// shard is wrapped in a cache.publish span and each snapshotted shard's
// rebuild latency lands in the cache.publish.shard.time histogram — the
// per-shard view that shows a hot shard (skewed key hash) stalling the
// pass boundary.
func (c *SuccessorCache) Publish() {
	rec := obs.Active()
	tr := obs.Trace()
	var sp obs.TraceSpan
	published := 0
	var t0 time.Time
	for i := range c.shards {
		sh := &c.shards[i]
		if sh.pend.Load() == 0 {
			continue
		}
		if rec != nil {
			t0 = time.Now() //lint:nondet feeds shard-publish latency instrumentation only
		}
		sh.mu.Lock()
		snapped := false
		if len(sh.dirty) > sh.published {
			if tr != nil && sp.ID == 0 {
				sp = tr.Begin("cache.publish", 0)
			}
			sh.publishLocked()
			snapped = true
		}
		sh.mu.Unlock()
		if snapped {
			published++
			if rec != nil {
				rec.Observe("cache.publish.shard.time", time.Since(t0))
			}
		}
	}
	if tr != nil {
		tr.End(sp)
	}
	if rec != nil && published > 0 {
		rec.Add("cache.publishes", 1)
		rec.Record("cache.publish.shards", int64(published))
	}
}

// Successors implements Successor, memoized. The returned slice is shared;
// callers must not modify it.
func (c *SuccessorCache) Successors(x State) []Succ {
	_, succs, _ := c.SuccessorsID(x)
	return succs
}

// SuccessorsID interns x and returns its id, its labeled successors, and
// the successors' interned ids (aligned with succs).
func (c *SuccessorCache) SuccessorsID(x State) (id uint32, succs []Succ, ids []uint32) {
	id = c.ID(x)
	succs, ids = c.SuccessorsOf(id, x)
	return id, succs, ids
}

// SuccessorsOf returns the successors of the already-interned state x with
// id id, enumerating and recording them on first use. Passing the state
// alongside its id lets deep recursions avoid ever re-deriving a key. The
// memoized-hit path is lock-free: one atomic flag load, one counter add.
func (c *SuccessorCache) SuccessorsOf(id uint32, x State) (succs []Succ, ids []uint32) {
	e := c.entry(id)
	if e.done.Load() {
		c.stripes[stripeOf(id)].hits.Add(1)
		return e.succs, e.ids
	}
	// Enumerate outside any lock; a concurrent duplicate enumeration is
	// harmless (the successor function is deterministic) and the first
	// writer wins.
	raw := c.fn.Successors(x)
	rawIDs := make([]uint32, len(raw))
	bp := c.keyBuf()
	buf := (*bp)[:0]
	for i := range raw {
		buf = AppendKeyOf(raw[i].State, buf[:0])
		rawIDs[i] = c.internKey(buf, raw[i].State)
	}
	c.release(bp, buf)
	st := &c.stripes[stripeOf(id)]
	st.mu.Lock()
	if e.done.Load() {
		succs, ids = e.succs, e.ids
		st.mu.Unlock()
		return succs, ids
	}
	e.succs, e.ids = raw, rawIDs
	e.done.Store(true)
	st.enums.Add(1)
	c.succTotal.Add(int64(len(raw)))
	st.mu.Unlock()
	return raw, rawIDs
}

// StateOf returns the state interned under id, without locking.
func (c *SuccessorCache) StateOf(id uint32) State { return c.entry(id).state }

// KeyOf returns the canonical key interned under id, without locking.
func (c *SuccessorCache) KeyOf(id uint32) string { return c.entry(id).key }

// Len returns the number of distinct states interned so far.
func (c *SuccessorCache) Len() int { return int(c.next.Load()) }

// EdgeHint returns the total length of the successor lists recorded so far
// — an upper capacity bound for the edge arrays of a re-exploration over
// this cache (an upper bound because the cache may hold states deeper than
// the re-exploration's depth).
func (c *SuccessorCache) EdgeHint() int { return int(c.succTotal.Load()) }

// Enumerations returns how many raw successor enumerations the cache has
// performed — the search effort actually paid, as opposed to the number of
// Successors calls served.
func (c *SuccessorCache) Enumerations() int {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].enums.Load()
	}
	return int(total)
}

// ShardCounters is one shard's slice of the cache's counters. States counts
// the keys interned in the key shard; Hits and Enumerations count the
// memoized reads and raw enumerations of the entries striped to the same
// index (keys are sharded by hash, entries striped by id block — the two
// views share one index space of Shards stripes).
type ShardCounters struct {
	States       int
	Hits         int64
	Enumerations int64
}

// CacheStats is a point-in-time view of a successor cache's effectiveness.
type CacheStats struct {
	// States is the number of distinct states interned.
	States int
	// Hits counts memoized successor lookups served without enumeration.
	Hits int64
	// Enumerations counts raw successor enumerations performed (the fill
	// side of the hit/miss ledger).
	Enumerations int
	// InternedBytes is the total size of the interned key strings.
	InternedBytes int
	// Shards is the shard/stripe count (1 for the single-table
	// LegacyCache, which reports no per-shard breakdown).
	Shards int
	// PerShard breaks States/Hits/Enumerations down by shard index; nil
	// for implementations without striping.
	PerShard []ShardCounters
}

// HitRate returns hits / (hits + enumerations) in [0, 1], or 0 before any
// lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + int64(s.Enumerations)
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's current counters, including the per-shard
// breakdown.
func (c *SuccessorCache) Stats() CacheStats {
	st := CacheStats{
		States:        c.Len(),
		InternedBytes: int(c.bytes.Load()),
		Shards:        numShards,
		PerShard:      make([]ShardCounters, numShards),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.PerShard[i].States = len(sh.dirty)
		sh.mu.Unlock()
	}
	for i := range c.stripes {
		h, e := c.stripes[i].hits.Load(), c.stripes[i].enums.Load()
		st.PerShard[i].Hits, st.PerShard[i].Enumerations = h, e
		st.Hits += h
		st.Enumerations += int(e)
	}
	return st
}
