package core

import (
	"sync"
	"sync/atomic"
)

// Interner is the intern/successor-memo contract the exploration engine
// draws from: canonical-key interning to dense uint32 ids plus memoized
// labeled successor enumeration. SuccessorCache (hash-sharded,
// lock-striped) is the production implementation; LegacyCache preserves the
// original single-lock table as the pinned reference that the equivalence
// property tests and the cmd/bench sharded/legacy grid compare against.
type Interner interface {
	Successor
	// ID interns x and returns its dense id without enumerating successors.
	ID(x State) uint32
	// SuccessorsID interns x and returns its id, labeled successors, and
	// the successors' interned ids (aligned with succs).
	SuccessorsID(x State) (id uint32, succs []Succ, ids []uint32)
	// SuccessorsOf returns the successors of the already-interned state x
	// with id id, enumerating and recording them on first use.
	SuccessorsOf(id uint32, x State) (succs []Succ, ids []uint32)
	// StateOf returns the state interned under id.
	StateOf(id uint32) State
	// KeyOf returns the canonical key interned under id.
	KeyOf(id uint32) string
	// Len returns the number of distinct states interned so far.
	Len() int
	// EdgeHint returns the total length of the recorded successor lists —
	// the edge-array capacity hint for re-explorations over a warm cache.
	EdgeHint() int
	// Enumerations returns how many raw successor enumerations were paid.
	Enumerations() int
	// Stats returns the cache's current counters.
	Stats() CacheStats
	// Publish brings any lock-free read-path snapshots up to date with the
	// authoritative tables; a single-table implementation makes it a no-op.
	Publish()
	// Uncached returns the raw successor function beneath the cache.
	Uncached() Successor
}

var (
	_ Interner = (*SuccessorCache)(nil)
	_ Interner = (*LegacyCache)(nil)
)

// LegacyCache is the original single-RWMutex successor cache: one KeyIndex
// and one entry slice behind one lock. It is retained verbatim (modulo the
// hits counter moving to atomic.Int64) as the behavioral reference for the
// sharded SuccessorCache — the equivalence property tests pin that both
// produce bit-identical published graphs, and the BenchmarkExplore grid
// measures the sharding against it. New code should use SuccessorCache.
type LegacyCache struct {
	fn Successor

	mu        sync.RWMutex
	idx       *KeyIndex
	entries   []*legacyEntry
	enums     int
	succTotal int
	// hits counts memoized successor lookups served without enumeration.
	// It is atomic (not guarded by mu) so the read-locked fast path can
	// count without upgrading to a write lock.
	hits atomic.Int64
}

type legacyEntry struct {
	state State
	succs []Succ
	ids   []uint32
	done  bool
}

// NewLegacyCache returns an empty single-lock cache over the raw successor
// function fn.
func NewLegacyCache(fn Successor) *LegacyCache {
	return &LegacyCache{fn: fn, idx: NewKeyIndex(0)}
}

// Uncached returns the raw successor function beneath the cache.
func (c *LegacyCache) Uncached() Successor { return c.fn }

// Publish is a no-op: the single table has no read-path snapshot.
func (c *LegacyCache) Publish() {}

// ID interns x and returns its dense id without enumerating successors.
func (c *LegacyCache) ID(x State) uint32 {
	key := x.Key()
	c.mu.RLock()
	id, ok := c.idx.ID(key)
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	id = c.intern(key, x)
	c.mu.Unlock()
	return id
}

// intern assigns (or finds) the id for key, recording x as its state. The
// caller holds the write lock.
func (c *LegacyCache) intern(key string, x State) uint32 {
	id, fresh := c.idx.Intern(key)
	if fresh {
		c.entries = append(c.entries, &legacyEntry{state: x})
	}
	return id
}

// Successors implements Successor, memoized. The returned slice is shared;
// callers must not modify it.
func (c *LegacyCache) Successors(x State) []Succ {
	_, succs, _ := c.SuccessorsID(x)
	return succs
}

// SuccessorsID interns x and returns its id, its labeled successors, and
// the successors' interned ids (aligned with succs).
func (c *LegacyCache) SuccessorsID(x State) (id uint32, succs []Succ, ids []uint32) {
	id = c.ID(x)
	succs, ids = c.SuccessorsOf(id, x)
	return id, succs, ids
}

// SuccessorsOf returns the successors of the already-interned state x with
// id id, enumerating and recording them on first use.
func (c *LegacyCache) SuccessorsOf(id uint32, x State) (succs []Succ, ids []uint32) {
	c.mu.RLock()
	e := c.entries[id]
	done, succs, ids := e.done, e.succs, e.ids
	c.mu.RUnlock()
	if done {
		c.hits.Add(1)
		return succs, ids
	}
	// Enumerate outside the lock; a concurrent duplicate enumeration is
	// harmless (the successor function is deterministic) and the first
	// writer wins.
	raw := c.fn.Successors(x)
	rawIDs := make([]uint32, len(raw))
	c.mu.Lock()
	if e.done {
		succs, ids = e.succs, e.ids
		c.mu.Unlock()
		return succs, ids
	}
	c.enums++
	c.succTotal += len(raw)
	for i, s := range raw {
		rawIDs[i] = c.intern(s.State.Key(), s.State)
	}
	e.succs, e.ids, e.done = raw, rawIDs, true
	c.mu.Unlock()
	return raw, rawIDs
}

// StateOf returns the state interned under id.
func (c *LegacyCache) StateOf(id uint32) State {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[id].state
}

// KeyOf returns the canonical key interned under id.
func (c *LegacyCache) KeyOf(id uint32) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Key(id)
}

// Len returns the number of distinct states interned so far.
func (c *LegacyCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Len()
}

// EdgeHint returns the total length of the recorded successor lists.
func (c *LegacyCache) EdgeHint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.succTotal
}

// Enumerations returns how many raw successor enumerations the cache has
// performed.
func (c *LegacyCache) Enumerations() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.enums
}

// Stats returns the cache's current counters. Shards is 1 and PerShard nil:
// the single table has no striping to break down.
func (c *LegacyCache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		States:        c.idx.Len(),
		Hits:          c.hits.Load(),
		Enumerations:  c.enums,
		InternedBytes: c.idx.Bytes(),
		Shards:        1,
	}
}
