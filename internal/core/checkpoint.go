package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/resilient"
)

// ExploreCheckpoint is the resumable snapshot of an exploration interrupted
// at a layer boundary: the CSR prefix over the completed layers, the
// canonical keys and depths of every discovered node (including the
// untouched frontier layer), and the arguments the run was started with.
//
// States themselves are not serialized — State is an interface and keys are
// canonical — so restore re-materializes them by replaying each node's
// discovery edge through the model's successor cache, parent before child.
// Only discovery parents are re-enumerated; the frontier layer, which is
// where the exploration cost lives, is restored without enumeration.
//
// The snapshot is only taken at layer boundaries (cancellation, deadline,
// and the chaos explore.layer/explore.warm fault points); mid-layer budget
// exhaustion is a final verdict, not a resumable cut.
type ExploreCheckpoint struct {
	// Model, Depth, MaxNodes echo the interrupted call's arguments; a resume
	// must match all three (see Matches) or the snapshot is ignored.
	Model    string
	Depth    int
	MaxNodes int
	// NextDepth is the first unexpanded layer: layers 0..NextDepth-1 have
	// their edges in the snapshot, layer NextDepth is the saved frontier.
	NextDepth int

	// g is the live partial graph when the snapshot was built by an
	// interruption in this process (the Sections side).
	g *IDGraph

	// Decoded payload when the snapshot was read back from a file (the
	// Resume side).
	keys      []string
	depthOf   []int32
	inits     []uint32
	edgeStart []uint32
	edgeTo    []uint32
	actions   []string
}

// Matches reports whether the snapshot belongs to this (model, depth,
// maxNodes) call. Engines check it before consuming a resume section so a
// snapshot for a different run is left untouched.
func (ck *ExploreCheckpoint) Matches(m Model, depth, maxNodes int) bool {
	return ck.Model == m.Name() && ck.Depth == depth && ck.MaxNodes == maxNodes
}

// Sections encodes the snapshot as the resilient.TagExplore checkpoint
// section. EdgeStart is written un-padded — exactly one entry past the last
// expanded node — so restore can keep appending where the cut happened.
func (ck *ExploreCheckpoint) Sections() ([]resilient.Section, error) {
	g := ck.g
	if g == nil {
		return nil, fmt.Errorf("core: explore checkpoint has no graph")
	}
	expanded := 0
	for _, d := range g.DepthOf {
		if int(d) < ck.NextDepth {
			expanded++
		}
	}
	if expanded >= len(g.EdgeStart) || g.EdgeStart[expanded] != uint32(len(g.EdgeTo)) {
		return nil, fmt.Errorf("core: explore checkpoint cut is not a layer boundary (expanded=%d)", expanded)
	}
	enc := resilient.NewEnc(64 + 24*len(g.Keys) + 8*len(g.EdgeTo))
	enc.Str(ck.Model)
	enc.Int(ck.Depth)
	enc.Int(ck.MaxNodes)
	enc.Int(ck.NextDepth)
	enc.Strs(g.Keys)
	enc.I32s(g.DepthOf)
	enc.U32s(g.Inits)
	enc.U32s(g.EdgeStart[:expanded+1])
	enc.U32s(g.EdgeTo)
	// Actions repeat heavily across edges; store a first-occurrence string
	// table plus per-edge indices.
	table := make([]string, 0, 16)
	index := make(map[string]uint32, 16)
	actIDs := make([]uint32, len(g.EdgeAction))
	for i, a := range g.EdgeAction {
		id, ok := index[a]
		if !ok {
			id = uint32(len(table))
			index[a] = id
			table = append(table, a)
		}
		actIDs[i] = id
	}
	enc.Strs(table)
	enc.U32s(actIDs)
	return []resilient.Section{{Tag: resilient.TagExplore, Data: enc.Bytes()}}, nil
}

// DecodeExploreCheckpoint parses a resilient.TagExplore section payload.
func DecodeExploreCheckpoint(data []byte) (*ExploreCheckpoint, error) {
	d := resilient.NewDec(data)
	ck := &ExploreCheckpoint{
		Model:     d.Str(),
		Depth:     d.Int(),
		MaxNodes:  d.Int(),
		NextDepth: d.Int(),
		keys:      d.Strs(),
		depthOf:   d.I32s(),
		inits:     d.U32s(),
		edgeStart: d.U32s(),
		edgeTo:    d.U32s(),
	}
	table := d.Strs()
	actIDs := d.U32s()
	if !d.Done() {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: explore section: %v", resilient.ErrBadCheckpoint, err)
		}
		return nil, fmt.Errorf("%w: explore section has trailing bytes", resilient.ErrBadCheckpoint)
	}
	n := len(ck.keys)
	if len(ck.depthOf) != n || len(actIDs) != len(ck.edgeTo) || len(ck.edgeStart) == 0 {
		return nil, fmt.Errorf("%w: explore section arrays disagree", resilient.ErrBadCheckpoint)
	}
	if ck.edgeStart[len(ck.edgeStart)-1] != uint32(len(ck.edgeTo)) || len(ck.edgeStart) > n+1 {
		return nil, fmt.Errorf("%w: explore section edge framing is inconsistent", resilient.ErrBadCheckpoint)
	}
	for _, v := range ck.edgeTo {
		if int(v) >= n {
			return nil, fmt.Errorf("%w: explore section edge target out of range", resilient.ErrBadCheckpoint)
		}
	}
	for _, u := range ck.inits {
		if int(u) >= n {
			return nil, fmt.Errorf("%w: explore section init out of range", resilient.ErrBadCheckpoint)
		}
	}
	ck.actions = make([]string, len(actIDs))
	for i, id := range actIDs {
		if int(id) >= len(table) {
			return nil, fmt.Errorf("%w: explore section action id out of range", resilient.ErrBadCheckpoint)
		}
		ck.actions[i] = table[id]
	}
	return ck, nil
}

// ResumeExploreID restores the snapshot against m and finishes the
// exploration from the saved layer boundary. Node numbering, edge order,
// depths, and any later budget or interruption point are bit-identical to
// an uninterrupted run: the CSR prefix comes straight from the snapshot and
// the continuation sees the identical frontier in the identical order.
func ResumeExploreID(ctx *resilient.Ctx, m Model, ck *ExploreCheckpoint, workers int) (*IDGraph, error) {
	return resumeExploreID(ctx, CacheOf(m), m, ck, workers)
}

// resumeExploreID is ResumeExploreID against an explicit successor cache;
// ExploreIDCtxWith routes resumes here so an exploration started on a given
// Interner continues on it.
func resumeExploreID(ctx *resilient.Ctx, c Interner, m Model, ck *ExploreCheckpoint, workers int) (*IDGraph, error) {
	rec := obs.Active()
	defer obs.Span(rec, "explore.time")()
	tr := obs.Trace()
	var root obs.TraceSpan
	if tr != nil {
		root = tr.Begin("explore", 0)
		defer tr.End(root)
	}
	n := len(ck.keys)
	g := &IDGraph{
		Depth:      ck.Depth,
		Cache:      c,
		Keys:       ck.keys,
		DepthOf:    ck.depthOf,
		Inits:      ck.inits,
		EdgeStart:  ck.edgeStart,
		EdgeTo:     ck.edgeTo,
		EdgeAction: ck.actions,
		States:     make([]State, n),
		ParentOf:   make([]int32, n),
		parentEdge: make([]int32, n),
		cacheIDs:   make([]uint32, n),
	}
	if len(g.EdgeStart) == 0 {
		g.EdgeStart = []uint32{0}
	}
	for u := range g.ParentOf {
		g.ParentOf[u], g.parentEdge[u] = -1, -1
	}
	for u, d := range g.DepthOf {
		for len(g.layers) <= int(d) {
			g.layers = append(g.layers, nil)
		}
		g.layers[d] = append(g.layers[d], uint32(u))
	}
	// Ids are assigned at discovery, so the first CSR edge into a non-init
	// node is its discovery edge; recover ParentOf/parentEdge in one pass.
	for u := 0; u+1 < len(g.EdgeStart); u++ {
		for e := g.EdgeStart[u]; e < g.EdgeStart[u+1]; e++ {
			v := g.EdgeTo[e]
			if g.ParentOf[v] < 0 && g.DepthOf[v] > 0 {
				g.ParentOf[v], g.parentEdge[v] = int32(u), int32(e)
			}
		}
	}
	// Re-materialize states: initial states from the model, every other node
	// by replaying its discovery edge through the successor cache. Canonical
	// keys cross-check each step, so a drifted model fails loudly instead of
	// resuming into a divergent graph.
	mismatch := func(what string) error {
		return fmt.Errorf("%w: checkpoint does not replay against model %s (%s)", resilient.ErrBadCheckpoint, m.Name(), what)
	}
	cacheToNode := newCIDTable(c.Len())
	ii := 0
	for _, x := range m.Inits() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: resume canceled while replaying initial states: %w", err)
		}
		cid := c.ID(x)
		if _, seen := cacheToNode.get(cid); seen {
			continue
		}
		if ii >= len(g.Inits) {
			return nil, mismatch("extra initial state")
		}
		u := g.Inits[ii]
		ii++
		if c.KeyOf(cid) != g.Keys[u] {
			return nil, mismatch("initial state key")
		}
		g.States[u] = x
		g.cacheIDs[u] = cid
		cacheToNode.set(cid, u)
	}
	if ii != len(g.Inits) {
		return nil, mismatch("missing initial state")
	}
	for u := 0; u < n; u++ {
		if u&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: resume canceled while re-materializing states (%d of %d): %w", u, n, err)
			}
		}
		if g.DepthOf[u] == 0 {
			continue
		}
		p := g.ParentOf[u]
		if p < 0 {
			return nil, mismatch("orphan node")
		}
		succs, sids := c.SuccessorsOf(g.cacheIDs[p], g.States[p])
		j := int(g.parentEdge[u]) - int(g.EdgeStart[p])
		if j < 0 || j >= len(succs) {
			return nil, mismatch("discovery edge index")
		}
		if c.KeyOf(sids[j]) != g.Keys[u] {
			return nil, mismatch("discovery edge key")
		}
		g.States[u] = succs[j].State
		g.cacheIDs[u] = sids[j]
		cacheToNode.set(sids[j], uint32(u))
	}
	frontier := g.Layer(ck.NextDepth)
	if rec != nil {
		rec.Add("explore.resumes", 1)
		rec.Event("explore.resume",
			obs.F{Key: "model", Value: ck.Model},
			obs.F{Key: "next_depth", Value: ck.NextDepth},
			obs.F{Key: "nodes", Value: n},
			obs.F{Key: "frontier", Value: len(frontier)},
			obs.F{Key: "workers", Value: workers})
	}
	return continueExplore(ctx, m, g, cacheToNode, frontier, ck.NextDepth, ck.MaxNodes, workers, rec, root.ID)
}
