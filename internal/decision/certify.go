package decision

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simplex"
	"repro/internal/valence"
)

// TaskWitnessKind classifies the outcome of certifying a protocol against
// a general decision problem.
type TaskWitnessKind int

// Task certification outcomes.
const (
	TaskOK TaskWitnessKind = iota + 1
	TaskOutputViolation
	TaskUndecidedAtBound
	TaskDecisionChanged
)

// String returns a human-readable name.
func (k TaskWitnessKind) String() string {
	switch k {
	case TaskOK:
		return "ok"
	case TaskOutputViolation:
		return "output outside Δ(input)"
	case TaskUndecidedAtBound:
		return "undecided at bound"
	case TaskDecisionChanged:
		return "write-once decision changed"
	default:
		return fmt.Sprintf("TaskWitnessKind(%d)", int(k))
	}
}

// TaskWitness is the outcome of CertifyTask.
type TaskWitness struct {
	Kind     TaskWitnessKind
	Exec     *core.Execution
	Detail   string
	Explored int
}

// CertifyTask exhaustively checks that a protocol solves the decision
// problem over the layered submodel: on every run of at most `bound`
// layers from each of the given initial states, decisions are write-once,
// every process non-failed at the bound-layer state has decided, and the
// decided output simplex (restricted to non-failed processes) is a face of
// some simplex in delta(input simplex of the run). Agreement is NOT
// required — that is the point of general decision problems.
//
// The initial states must expose their inputs (core.Input). maxVisits caps
// the search (0 = unbounded).
func CertifyTask(m core.Model, inits []core.State, delta simplex.DeltaFunc, bound, maxVisits int) (*TaskWitness, error) {
	rec := obs.Active()
	defer obs.Span(rec, "certify.task.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("certify.task", 0))
	}
	c := &taskCertifier{
		m:         m,
		delta:     delta,
		bound:     bound,
		maxVisits: maxVisits,
		memo:      make(map[string]bool),
	}
	for _, init := range inits {
		in, ok := init.(core.Input)
		if !ok {
			return nil, fmt.Errorf("decision: initial state does not expose inputs")
		}
		vals := make([]int, init.N())
		for i := range vals {
			vals[i] = in.InputOf(i)
		}
		inputSimplex := simplex.FromValues(vals)
		allowed := delta(inputSimplex)
		if len(allowed) == 0 {
			return nil, fmt.Errorf("decision: Δ(%s) is empty", inputSimplex)
		}
		exec := &core.Execution{Init: init}
		w, err := c.dfs(init, bound, inputSimplex.Key(), allowed, exec)
		if err != nil {
			return nil, err
		}
		if w != nil {
			w.Explored = c.visits
			c.finish(rec, w)
			return w, nil
		}
	}
	w := &TaskWitness{Kind: TaskOK, Explored: c.visits}
	c.finish(rec, w)
	return w, nil
}

// finish publishes the task certification's counters and emits
// certify.task.done, the task analogue of the consensus certifiers'
// certify.done event.
func (c *taskCertifier) finish(rec obs.Recorder, w *TaskWitness) {
	if rec == nil {
		return
	}
	rec.Add("certify.task.runs", 1)
	rec.Add("certify.task.visits", int64(c.visits))
	rec.Event("certify.task.done",
		obs.F{Key: "verdict", Value: w.Kind.String()},
		obs.F{Key: "explored", Value: w.Explored},
		obs.F{Key: "memo", Value: len(c.memo)})
}

type taskCertifier struct {
	m         core.Model
	delta     simplex.DeltaFunc
	bound     int
	maxVisits int
	visits    int
	memo      map[string]bool // (stateKey|depth|inputKey) -> subtree clean
}

func (c *taskCertifier) dfs(x core.State, remaining int, inputKey string, allowed []simplex.Simplex, exec *core.Execution) (*TaskWitness, error) {
	mk := fmt.Sprintf("%s|%d|%s", x.Key(), remaining, inputKey)
	if c.memo[mk] {
		return nil, nil
	}
	c.visits++
	if c.maxVisits > 0 && c.visits > c.maxVisits {
		return nil, fmt.Errorf("after %d visits: %w", c.visits, valence.ErrBudget)
	}

	// Partial-output check: the decisions made so far by non-failed
	// processes must be extendable to an allowed output (i.e. be a face of
	// some simplex in Δ(input)).
	if w := checkPartialOutput(x, allowed); w != nil {
		w.Exec = exec
		return w, nil
	}
	if remaining == 0 {
		if !core.AllDecided(x) {
			return &TaskWitness{
				Kind:   TaskUndecidedAtBound,
				Exec:   exec,
				Detail: fmt.Sprintf("a non-failed process is undecided after %d layers", c.bound),
			}, nil
		}
		c.memo[mk] = true
		return nil, nil
	}
	for _, s := range c.m.Successors(x) {
		if w := checkTaskWriteOnce(x, s.State); w != nil {
			w.Exec = exec.Extend(s.Action, s.State)
			return w, nil
		}
		w, err := c.dfs(s.State, remaining-1, inputKey, allowed, exec.Extend(s.Action, s.State))
		if err != nil || w != nil {
			return w, err
		}
	}
	c.memo[mk] = true
	return nil, nil
}

// checkPartialOutput verifies the decided-so-far simplex is a face of some
// allowed output simplex.
func checkPartialOutput(x core.State, allowed []simplex.Simplex) *TaskWitness {
	var verts []simplex.Vertex
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		if v, ok := x.Decided(i); ok {
			verts = append(verts, simplex.Vertex{ID: i, Value: v})
		}
	}
	if len(verts) == 0 {
		return nil
	}
	partial, err := simplex.New(verts...)
	if err != nil {
		return &TaskWitness{Kind: TaskOutputViolation, Detail: err.Error()}
	}
	for _, a := range allowed {
		if a.Contains(partial) {
			return nil
		}
	}
	return &TaskWitness{
		Kind:   TaskOutputViolation,
		Detail: fmt.Sprintf("decisions %s extend no simplex of Δ(input)", partial),
	}
}

func checkTaskWriteOnce(x, y core.State) *TaskWitness {
	for i := 0; i < x.N(); i++ {
		v, ok := x.Decided(i)
		if !ok {
			continue
		}
		w, ok2 := y.Decided(i)
		if !ok2 || w != v {
			return &TaskWitness{
				Kind:   TaskDecisionChanged,
				Detail: fmt.Sprintf("process %d had decided %d but successor reports (%d,%v)", i, v, w, ok2),
			}
		}
	}
	return nil
}
