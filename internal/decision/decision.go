// Package decision implements the generalized (covering-based) valence
// machinery of Section 7: coverings of run sets by output complexes,
// generalized valence and bivalence, the Lemma 7.1 bivalent-chain
// construction, and the Lemma 7.6 / Theorem 7.7 diameter recurrence.
package decision

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/simplex"
)

// sortedSimplexKeys returns the keys of a decided-simplex set in sorted
// order, so constructions and diagnostics over the set are deterministic.
func sortedSimplexKeys(decided map[string]simplex.Simplex) []string {
	keys := make([]string, 0, len(decided))
	for k := range decided {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Covering is a pair of n-size complexes (O_0, O_1) covering the decided
// output simplexes of a set of runs: every decided output simplex belongs
// to one or both complexes, and each complex contains at least one decided
// output simplex of some run.
type Covering struct {
	O0 *simplex.Complex
	O1 *simplex.Complex
}

// ConsensusCovering returns the covering that reduces generalized valence
// to classical binary valence: O_v is the closure of the all-v n-simplex.
func ConsensusCovering(n int) Covering {
	zeros := make([]int, n)
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	return Covering{
		O0: simplex.NewComplex(simplex.FromValues(zeros)),
		O1: simplex.NewComplex(simplex.FromValues(ones)),
	}
}

// MinValueCovering builds a covering from an observed set of decided
// output simplexes by splitting on the minimum decided value: a simplex
// goes to O_0 if its minimum decision is 0 and to O_1 otherwise. For binary
// decisions this always satisfies covering condition (i); condition (ii)
// holds when both classes are inhabited, which CheckCovering verifies.
func MinValueCovering(decided map[string]simplex.Simplex) Covering {
	c := Covering{O0: simplex.NewComplex(), O1: simplex.NewComplex()}
	for _, k := range sortedSimplexKeys(decided) {
		s := decided[k]
		min := 0
		for i, v := range s.Vertices() {
			if i == 0 || v.Value < min {
				min = v.Value
			}
		}
		if min == 0 {
			c.O0.Add(s)
		} else {
			c.O1.Add(s)
		}
	}
	return c
}

// CoveringByProcess builds a covering from observed decided simplexes by
// the decision of one designated process: a simplex with pid deciding 0
// goes to O_0, anything else to O_1. In models that display no finite
// failure the decided simplexes span all processes, so the classification
// is total; unlike MinValueCovering it leaves mixed-decision states
// genuinely bivalent, which makes it the covering of choice for the
// Lemma 7.1 chain experiments.
func CoveringByProcess(decided map[string]simplex.Simplex, pid int) Covering {
	c := Covering{O0: simplex.NewComplex(), O1: simplex.NewComplex()}
	for _, k := range sortedSimplexKeys(decided) {
		s := decided[k]
		if v, ok := s.ValueOf(pid); ok && v == 0 {
			c.O0.Add(s)
		} else {
			c.O1.Add(s)
		}
	}
	return c
}

// DecidedSimplex returns the simplex of decisions of the processes that are
// non-failed at x, and whether all of them have decided.
func DecidedSimplex(x core.State) (simplex.Simplex, bool) {
	var verts []simplex.Vertex
	for i := 0; i < x.N(); i++ {
		if x.FailedAt(i) {
			continue
		}
		v, ok := x.Decided(i)
		if !ok {
			return simplex.Simplex{}, false
		}
		verts = append(verts, simplex.Vertex{ID: i, Value: v})
	}
	s, err := simplex.New(verts...)
	if err != nil {
		return simplex.Simplex{}, false
	}
	return s, true
}

// Oracle computes horizon-bounded generalized valence with respect to a
// covering, with memoization on (state key, horizon).
type Oracle struct {
	succ  core.Successor
	cover Covering
	memo  map[memoKey]uint8
}

type memoKey struct {
	key     string
	horizon int
}

// Valence bits.
const (
	v0 uint8 = 1 << 0
	v1 uint8 = 1 << 1
)

// NewOracle returns a generalized-valence oracle for the covering.
func NewOracle(succ core.Successor, cover Covering) *Oracle {
	return &Oracle{succ: succ, cover: cover, memo: make(map[memoKey]uint8)}
}

// Valences returns the generalized valence mask of x within the horizon:
// bit 0 (1) is set if some execution of at most horizon layers extending x
// reaches a fully-decided state whose decided simplex lies in O_0 (O_1).
func (o *Oracle) Valences(x core.State, horizon int) uint8 {
	k := memoKey{key: x.Key(), horizon: horizon}
	if v, ok := o.memo[k]; ok {
		return v
	}
	var mask uint8
	if s, decided := DecidedSimplex(x); decided {
		if o.cover.O0.Has(s) {
			mask |= v0
		}
		if o.cover.O1.Has(s) {
			mask |= v1
		}
	}
	if mask != v0|v1 && horizon > 0 {
		for _, s := range o.succ.Successors(x) {
			mask |= o.Valences(s.State, horizon-1)
			if mask == v0|v1 {
				break
			}
		}
	}
	o.memo[k] = mask
	return mask
}

// Bivalent reports generalized bivalence within the horizon.
func (o *Oracle) Bivalent(x core.State, horizon int) bool {
	return o.Valences(x, horizon) == v0|v1
}

// ErrNoBivalentInit mirrors the classical construction: no initial state is
// bivalent with respect to the covering.
var ErrNoBivalentInit = errors.New("decision: no generalized-bivalent initial state within horizon")

// Chain is a generalized bivalent chain (Lemma 7.1).
type Chain struct {
	Exec    *core.Execution
	Reached int
	// StuckAt is -1 if the chain reached its target; otherwise the depth at
	// which no generalized-bivalent successor existed.
	StuckAt int
}

// BivalentChain runs the Lemma 7.1 construction: starting from a
// generalized-bivalent initial state, repeatedly pick a generalized-
// bivalent successor, for `target` layers, computing valences with
// horizon(d) lookahead at depth d.
func BivalentChain(m core.Model, o *Oracle, horizon func(int) int, target int) (*Chain, error) {
	var x core.State
	for _, init := range m.Inits() {
		if o.Bivalent(init, horizon(0)) {
			x = init
			break
		}
	}
	if x == nil {
		return nil, ErrNoBivalentInit
	}
	exec := &core.Execution{Init: x}
	for d := 0; d < target; d++ {
		h := horizon(d + 1)
		found := false
		for _, s := range m.Successors(x) {
			if o.Bivalent(s.State, h) {
				exec = exec.Extend(s.Action, s.State)
				x = s.State
				found = true
				break
			}
		}
		if !found {
			return &Chain{Exec: exec, Reached: d, StuckAt: d}, nil
		}
	}
	return &Chain{Exec: exec, Reached: target, StuckAt: -1}, nil
}

// CollectDecidedSimplexes explores the model to the given depth and returns
// the distinct decided output simplexes of fully-decided states, keyed by
// simplex Key.
func CollectDecidedSimplexes(m core.Model, depth, maxNodes int) (map[string]simplex.Simplex, error) {
	g, err := core.Explore(m, depth, maxNodes)
	if err != nil {
		return nil, err
	}
	out := make(map[string]simplex.Simplex)
	for _, x := range g.Nodes { //lint:nondet builds a keyed map; result independent of visit order
		if s, ok := DecidedSimplex(x); ok && s.Size() > 0 {
			out[s.Key()] = s
		}
	}
	return out, nil
}

// CollectDecidedSimplexesGraph returns the distinct decided output
// simplexes of fully-decided states in an already-materialized graph,
// keyed by simplex Key — one pass over the CSR node array instead of a
// fresh exploration.
func CollectDecidedSimplexesGraph(g *core.IDGraph) map[string]simplex.Simplex {
	out := make(map[string]simplex.Simplex)
	for _, x := range g.States {
		if s, ok := DecidedSimplex(x); ok && s.Size() > 0 {
			out[s.Key()] = s
		}
	}
	if rec := obs.Active(); rec != nil {
		rec.Add("decision.collect.runs", 1)
		rec.Add("decision.collect.states", int64(g.Len()))
		rec.Set("decision.collect.simplexes", int64(len(out)))
	}
	return out
}

// FieldValences computes the generalized valence mask of every node of an
// explored graph in one bottom-up sweep, the covering analogue of
// valence.NewField: masks[u] holds the OR over u's reachable closure (in
// the explored graph) of the base masks assigned by the covering to
// fully-decided states. On a graded graph (every edge advancing one
// layer) masks[u] equals Oracle.Valences(g.States[u], g.Depth-depth(u))
// exactly; otherwise the sweep falls back to a fixpoint loop and the mask
// is the valence within the explored graph.
func FieldValences(g *core.IDGraph, cover Covering) []uint8 {
	for {
		masks, err := FieldValencesCtx(nil, g, cover)
		if err == nil {
			return masks
		}
		// A nil context never cancels, so the error is an injected chaos
		// fault; each armed rule fires once, so retrying converges.
	}
}

// FieldValencesCtx is FieldValences under a cancellation context, polled
// (with the chaos decision.field.layer fault point) once per layer on
// graded graphs and once per pass in the fixpoint fallback. An
// interruption returns the partial masks computed so far — layers deeper
// than the cut are final on graded graphs — alongside the wrapped cause.
func FieldValencesCtx(ctx *resilient.Ctx, g *core.IDGraph, cover Covering) ([]uint8, error) {
	rec := obs.Active()
	defer obs.Span(rec, "decision.field.time")()
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("decision.field", 0))
	}
	if rec != nil {
		rec.Add("decision.field.sweeps", 1)
		rec.Add("decision.field.nodes", int64(g.Len()))
	}
	masks := make([]uint8, g.Len())
	base := func(u uint32) uint8 {
		var m uint8
		if s, decided := DecidedSimplex(g.States[u]); decided {
			if cover.O0.Has(s) {
				m |= v0
			}
			if cover.O1.Has(s) {
				m |= v1
			}
		}
		return m
	}
	relax := func(u uint32) uint8 {
		m := base(u)
		for e := g.EdgeStart[u]; e < g.EdgeStart[u+1] && m != v0|v1; e++ {
			m |= masks[g.EdgeTo[e]]
		}
		return m
	}
	interrupted := func(at int, cause error) ([]uint8, error) {
		if rec != nil {
			rec.Add("decision.field.interrupts", 1)
			rec.Event("decision.field.interrupted",
				obs.F{Key: "at", Value: at},
				obs.F{Key: "cause", Value: cause.Error()})
		}
		return masks, fmt.Errorf("decision: field sweep interrupted at layer %d: %w", at, cause)
	}
	if g.Graded() {
		for d := g.NumLayers() - 1; d >= 0; d-- {
			if err := chaos.Check(ctx, "decision.field.layer"); err != nil {
				return interrupted(d, err)
			}
			// Iterate the layer as its contiguous id window when the layout
			// pass has verified one: the sweep then reads EdgeStart/EdgeTo
			// strictly forward (prefetch-friendly), matching the valence
			// field's access pattern.
			if lo, hi, ok := g.LayerSpan(d); ok {
				for u := lo; u < hi; u++ {
					masks[u] = relax(u)
				}
			} else {
				for _, u := range g.Layer(d) {
					masks[u] = relax(u)
				}
			}
		}
		return masks, nil
	}
	for changed, pass := true, 0; changed; pass++ {
		if err := chaos.Check(ctx, "decision.field.layer"); err != nil {
			return interrupted(pass, err)
		}
		changed = false
		for u := g.Len() - 1; u >= 0; u-- {
			if m := relax(uint32(u)) | masks[u]; m != masks[u] {
				masks[u] = m
				changed = true
			}
		}
	}
	return masks, nil
}

// CheckCovering verifies the two covering conditions against a set of
// decided output simplexes: every simplex is in O_0 ∪ O_1, and each O_v
// contains at least one of them. It returns false with a reason otherwise.
func CheckCovering(cover Covering, decided map[string]simplex.Simplex) (bool, string) {
	// Sorted iteration pins which simplex an uncovered-reason names when
	// several are outside both complexes.
	saw0, saw1 := false, false
	for _, k := range sortedSimplexKeys(decided) {
		s := decided[k]
		in0, in1 := cover.O0.Has(s), cover.O1.Has(s)
		if !in0 && !in1 {
			return false, "decided simplex " + s.String() + " is in neither complex"
		}
		saw0 = saw0 || in0
		saw1 = saw1 || in1
	}
	if !saw0 {
		return false, "O_0 contains no decided simplex"
	}
	if !saw1 {
		return false, "O_1 contains no decided simplex"
	}
	return true, ""
}

// DiameterBound computes the Theorem 7.7 bound d_X^t via the Lemma 7.6
// recurrence d' = dX*dY + dX + dY with the paper's per-round layer diameter
// bound dY^m = 2(n-m), starting from the s-diameter dI of the initial set.
func DiameterBound(dI, n, t int) int {
	d := dI
	for m := 0; m < t; m++ {
		dY := 2 * (n - m)
		if dY < 0 {
			dY = 0
		}
		d = d*dY + d + dY
	}
	return d
}
