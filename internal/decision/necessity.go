package decision

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simplex"
)

// NecessityReport is the result of CheckThickNecessity: the measured
// 1-thick connectivity of the decided-output complexes over each
// similarity-connected set of initial states.
type NecessityReport struct {
	// Subsets is the number of similarity-connected initial-state subsets
	// examined.
	Subsets int
	// Connected is how many of their decided-output complexes were
	// k-thick connected.
	Connected int
	// FirstFailure, when Connected < Subsets, names the offending subset
	// by its initial-state keys.
	FirstFailure []string
}

// CheckThickNecessity measures the necessity direction of Theorem 7.2 on a
// live protocol: for a protocol that solves its decision problem over the
// layered submodel, the complex of decided output simplexes of the runs
// from every similarity-connected set I of initial states must be k-thick
// connected. It explores each subset's runs to the given depth and checks
// the resulting complex. Subsets are enumerated from the given initial
// states (at most 16).
func CheckThickNecessity(m core.Model, inits []core.State, n, k, depth, maxNodes int) (*NecessityReport, error) {
	if len(inits) > 16 {
		return nil, fmt.Errorf("decision: %d initial states; subset enumeration capped at 16", len(inits))
	}
	// Similarity adjacency over the initial states.
	adj := make([][]bool, len(inits))
	for i := range adj {
		adj[i] = make([]bool, len(inits))
		for j := range adj[i] {
			if i == j {
				continue
			}
			if _, ok := core.Similar(inits[i], inits[j]); ok {
				adj[i][j] = true
			}
		}
	}
	// Per-initial-state decided simplexes (reused across subsets), flattened
	// to key-sorted slices so every subset's complex is assembled in the
	// same order regardless of map iteration.
	perInit := make([][]simplex.Simplex, len(inits))
	for i, x := range inits {
		single := &singleInitModel{Model: m, init: x}
		decided, err := CollectDecidedSimplexes(single, depth, maxNodes)
		if err != nil {
			return nil, err
		}
		for _, k := range sortedSimplexKeys(decided) {
			perInit[i] = append(perInit[i], decided[k])
		}
	}

	report := &NecessityReport{}
	for mask := 1; mask < 1<<uint(len(inits)); mask++ {
		if !maskConnected(adj, mask) {
			continue
		}
		report.Subsets++
		c := simplex.NewComplex()
		for i := range inits {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, s := range perInit[i] {
				c.Add(s)
			}
		}
		if c.ThickConnected(n, k) {
			report.Connected++
		} else if report.FirstFailure == nil {
			for i := range inits {
				if mask&(1<<uint(i)) != 0 {
					report.FirstFailure = append(report.FirstFailure, inits[i].Key())
				}
			}
		}
	}
	return report, nil
}

// singleInitModel restricts a model to one initial state.
type singleInitModel struct {
	core.Model
	init core.State
}

// Inits implements core.Model.
func (s *singleInitModel) Inits() []core.State { return []core.State{s.init} }

// maskConnected reports whether the masked vertices induce a connected
// subgraph of adj.
func maskConnected(adj [][]bool, mask int) bool {
	n := len(adj)
	start, count := -1, 0
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			if start < 0 {
				start = i
			}
			count++
		}
	}
	if count <= 1 {
		return true
	}
	seen := 1 << uint(start)
	stack := []int{start}
	reached := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < n; v++ {
			bit := 1 << uint(v)
			if mask&bit == 0 || seen&bit != 0 || !adj[u][v] {
				continue
			}
			seen |= bit
			reached++
			stack = append(stack, v)
		}
	}
	return reached == count
}
