package decision_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/tasks"
)

// ternaryInits builds the 3^n ternary-input initial states of a model that
// exposes Initial(inputs).
func ternaryInits(n int, initial func([]int) core.State) []core.State {
	var out []core.State
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	for a := 0; a < total; a++ {
		inputs := make([]int, n)
		v := a
		for i := 0; i < n; i++ {
			inputs[i] = v % 3
			v /= 3
		}
		out = append(out, initial(inputs))
	}
	return out
}

// TestTwoSetAgreementSolvableInMobile is the positive side of the
// Corollary 7.3 boundary, operationally: in the very model where consensus
// is impossible (M^mf), one round of flooding solves 2-set agreement over
// ternary inputs — at most one process's value can be hidden per round, so
// at most two distinct minima arise.
func TestTwoSetAgreementSolvableInMobile(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 1}
	m := mobile.New(p, n)
	inits := ternaryInits(n, func(in []int) core.State { return m.Initial(in) })
	delta := tasks.KSetAgreement(n, 2).Problem.Delta
	w, err := decision.CertifyTask(m, inits, delta, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOK {
		t.Errorf("2-set agreement refuted in M^mf: %v (%s)", w.Kind, w.Detail)
	}
}

// TestConsensusTaskRefutedInMobile: the same protocol against the
// consensus Δ (1-set agreement) must be refuted with an output violation —
// two distinct minima extend no constant simplex.
func TestConsensusTaskRefutedInMobile(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 1}
	m := mobile.New(p, n)
	inits := ternaryInits(n, func(in []int) core.State { return m.Initial(in) })
	delta := tasks.BinaryConsensus(n).Problem.Delta // reads values from the input simplex
	w, err := decision.CertifyTask(m, inits, delta, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOutputViolation {
		t.Errorf("verdict = %v, want output violation", w.Kind)
	}
	if w.Exec == nil {
		t.Error("missing witness execution")
	}
}

// TestTwoSetBoundaryWithTwoFailures: allow TWO simultaneous failures per
// round (the multi-failure layering) and 2-set agreement breaks — with
// three nonfaulty processes spread across the nested omission prefixes,
// three distinct minima become reachable (e.g. inputs (2,2,2,0,1): process
// 3 omits to [2] and process 4 omits to [1], giving nonfaulty minima
// 2, 1, 0). This is the t < k solvability boundary of k-set agreement,
// measured. Note n=5 is needed: with n=4 only two processes stay nonfaulty
// and at most two minima can appear among them.
func TestTwoSetBoundaryWithTwoFailures(t *testing.T) {
	const n = 5
	p := protocols.FloodSet{Rounds: 1}
	m := syncmp.NewStMulti(p, n, 2, 2)
	delta := tasks.KSetAgreement(n, 2).Problem.Delta

	// The single witness input family suffices (and keeps the exhaustive
	// search small): three 2s and the values 0 and 1 on the two processes
	// that will fail.
	witness := []core.State{m.Initial([]int{2, 2, 2, 0, 1})}
	w, err := decision.CertifyTask(m, witness, delta, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOutputViolation {
		t.Errorf("verdict = %v, want output violation with 2 failures/round", w.Kind)
	}

	// With the failure rate back to one per round, 2-set agreement holds
	// over the full ternary input space.
	single := syncmp.NewStMulti(p, n, 2, 1)
	inits := ternaryInits(n, func(in []int) core.State { return single.Initial(in) })
	w, err = decision.CertifyTask(single, inits, delta, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOK {
		t.Errorf("verdict = %v, want ok with 1 failure/round (%s)", w.Kind, w.Detail)
	}

	// And 3-set agreement absorbs even two failures per round: the nested
	// prefix structure of the omission sets yields at most three reception
	// classes among the nonfaulty.
	delta3 := tasks.KSetAgreement(n, 3).Problem.Delta
	w, err = decision.CertifyTask(m, witness, delta3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOK {
		t.Errorf("3-set verdict = %v, want ok (%s)", w.Kind, w.Detail)
	}
}

// TestCertifyTaskIdentity: "decide your own input" certifies instantly
// with a decide-at-round-1 echo protocol... FloodSet decides min, which is
// NOT the identity task; instead verify the identity Δ rejects FloodSet
// whenever inputs are mixed.
func TestCertifyTaskIdentity(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 1}
	m := mobile.New(p, n)
	inits := []core.State{m.Initial([]int{0, 1, 1})}
	delta := tasks.Identity(n).Problem.Delta
	w, err := decision.CertifyTask(m, inits, delta, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskOutputViolation {
		t.Errorf("verdict = %v, want output violation (min-flooding is not the identity)", w.Kind)
	}
}

// TestCertifyTaskWriteOnce: the flicker protocol trips the task
// certifier's write-once check too.
func TestCertifyTaskWriteOnce(t *testing.T) {
	const n = 3
	p := protocols.FlickerDecider{}
	m := syncmp.NewSt(p, n, 1)
	inits := []core.State{m.Initial([]int{0, 0, 0})}
	// Permissive Δ: anything binary goes.
	delta := tasks.KSetAgreement(n, n).Problem.Delta
	w, err := decision.CertifyTask(m, inits, delta, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != decision.TaskDecisionChanged {
		t.Errorf("verdict = %v, want write-once violation", w.Kind)
	}
}

func TestTaskWitnessKindStrings(t *testing.T) {
	want := map[decision.TaskWitnessKind]string{
		decision.TaskOK:               "ok",
		decision.TaskOutputViolation:  "output outside Δ(input)",
		decision.TaskUndecidedAtBound: "undecided at bound",
		decision.TaskDecisionChanged:  "write-once decision changed",
		decision.TaskWitnessKind(42):  "TaskWitnessKind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
