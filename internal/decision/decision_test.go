package decision_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

// TestConsensusCoveringMatchesBinaryValence cross-validates the Section 7
// machinery against Section 3: in a model/protocol where agreement holds
// (FloodSet(t+1) under S^t), all decided simplexes are constant, the
// consensus covering is a genuine covering, and generalized valence must
// coincide with classical binary valence on every reachable state.
func TestConsensusCoveringMatchesBinaryValence(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewSt(p, n, tt)
	bin := valence.NewOracle(m)
	gen := decision.NewOracle(m, decision.ConsensusCovering(n))

	g, err := core.Explore(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range g.Nodes {
		s := x.(*syncmp.State)
		h := rounds - s.Round()
		bv := bin.Valences(x, h)
		gv := gen.Valences(x, h)
		if bv != gv {
			t.Errorf("round %d state: binary valence %02b != generalized %02b", s.Round(), bv, gv)
		}
	}
}

// TestMixedSimplexesEscapeConsensusCovering documents the flip side: in
// M^mf FloodSet violates agreement, so mixed decided simplexes exist and
// the consensus covering fails covering condition (i) there.
func TestMixedSimplexesEscapeConsensusCovering(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	decided, err := decision.CollectDecidedSimplexes(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := decision.CheckCovering(decision.ConsensusCovering(n), decided); ok {
		t.Error("consensus covering accepted despite agreement violations in M^mf")
	}
	// The min-value covering, by contrast, always covers.
	if ok, reason := decision.CheckCovering(decision.MinValueCovering(decided), decided); !ok {
		t.Errorf("min-value covering rejected: %s", reason)
	}
}

// TestMinValueCoveringUnivalentInputs documents why the min-value covering
// is not useful for chain experiments in M^mf: a 0-input holder is never
// failed at any state (no finite failure), so every mixed-input state is
// univalent toward O_0.
func TestMinValueCoveringUnivalentInputs(t *testing.T) {
	const n, rounds = 3, 2
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	decided, err := decision.CollectDecidedSimplexes(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := decision.NewOracle(m, decision.MinValueCovering(decided))
	mixed := m.Initial([]int{0, 1, 1})
	if o.Bivalent(mixed, rounds) {
		t.Error("mixed-input state bivalent under min-value covering; every full simplex contains the 0")
	}
}

// TestLemma71ChainMobile runs the generalized bivalent chain (Lemma 7.1) in
// M^mf under the by-process covering of the actually-decided simplexes and
// checks it reaches its target.
func TestLemma71ChainMobile(t *testing.T) {
	const n, rounds = 3, 3
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	decided, err := decision.CollectDecidedSimplexes(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	cov := decision.CoveringByProcess(decided, n-1)
	if ok, reason := decision.CheckCovering(cov, decided); !ok {
		t.Fatalf("by-process covering rejected: %s", reason)
	}
	o := decision.NewOracle(m, cov)
	ch, err := decision.BivalentChain(m, o, func(d int) int {
		if h := rounds - d; h > 1 {
			return h
		}
		return 1
	}, rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.StuckAt >= 0 {
		t.Fatalf("generalized chain stuck at depth %d", ch.StuckAt)
	}
	if ch.Reached != rounds-1 {
		t.Errorf("reached %d, want %d", ch.Reached, rounds-1)
	}
}

// TestCheckCovering verifies the covering conditions against the actual
// decided simplexes of FloodSet runs in the S^t submodel.
func TestCheckCovering(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewSt(p, n, tt)
	decided, err := decision.CollectDecidedSimplexes(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(decided) == 0 {
		t.Fatal("no decided simplexes collected")
	}
	cover := decision.ConsensusCovering(n)
	if ok, reason := decision.CheckCovering(cover, decided); !ok {
		t.Errorf("consensus covering rejected: %s", reason)
	}
	// A covering missing O_1 entirely must be rejected.
	bad := decision.Covering{O0: cover.O0, O1: cover.O0}
	if ok, _ := decision.CheckCovering(bad, decided); ok {
		t.Error("degenerate covering accepted")
	}
}

// TestDecidedSimplexExcludesFailed checks that failed processes' decisions
// are not part of the decided output simplex.
func TestDecidedSimplexExcludesFailed(t *testing.T) {
	const n, tt = 3, 1
	rounds := tt + 1
	p := protocols.FloodSet{Rounds: rounds}
	m := syncmp.NewSt(p, n, tt)
	x := m.Initial([]int{0, 1, 1})
	// Process 0 omits to everyone, then a failure-free round.
	y := syncmp.ApplyAction(p, x, 0, syncmp.OmitMask(n), true, true)
	z := syncmp.ApplyAction(p, y, 0, 0, true, true)
	s, ok := decision.DecidedSimplex(z)
	if !ok {
		t.Fatal("non-failed processes should all be decided")
	}
	if s.Size() != n-1 {
		t.Errorf("decided simplex size %d, want %d (failed process excluded)", s.Size(), n-1)
	}
	if _, present := s.ValueOf(0); present {
		t.Error("failed process 0 appears in the decided simplex")
	}
}

// TestDiameterBoundRecurrence pins the arithmetic of Theorem 7.7's bound.
func TestDiameterBoundRecurrence(t *testing.T) {
	// t=0: bound is d(I) itself.
	if got := decision.DiameterBound(3, 4, 0); got != 3 {
		t.Errorf("DiameterBound(3,4,0) = %d, want 3", got)
	}
	// One round, n=3: dY = 6; d' = 3*6+3+6 = 27.
	if got := decision.DiameterBound(3, 3, 1); got != 27 {
		t.Errorf("DiameterBound(3,3,1) = %d, want 27", got)
	}
	// Monotone in t.
	prev := 0
	for tt := 0; tt <= 3; tt++ {
		b := decision.DiameterBound(3, 4, tt)
		if b < prev {
			t.Errorf("bound not monotone at t=%d: %d < %d", tt, b, prev)
		}
		prev = b
	}
}

// TestFieldValencesMatchOracle pins the whole-graph generalized-valence
// sweep to the recursive oracle: on graded graphs (both where agreement
// holds, with the consensus covering, and where it breaks, with the
// min-value covering built from the graph's own decided simplexes), every
// node's swept mask must equal Valences at the node's remaining horizon.
func TestFieldValencesMatchOracle(t *testing.T) {
	cases := []struct {
		name  string
		m     core.Model
		depth int
		cover func(g *core.IDGraph, n int) decision.Covering
	}{
		{"syncst-consensus", syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1), 2,
			func(_ *core.IDGraph, n int) decision.Covering { return decision.ConsensusCovering(n) }},
		{"mobile-minvalue", mobile.New(protocols.FloodSet{Rounds: 2}, 3), 2,
			func(g *core.IDGraph, _ int) decision.Covering {
				return decision.MinValueCovering(decision.CollectDecidedSimplexesGraph(g))
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := core.ExploreID(tc.m, tc.depth, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Graded() {
				t.Fatal("expected a graded graph")
			}
			cover := tc.cover(g, g.States[0].N())
			masks := decision.FieldValences(g, cover)
			o := decision.NewOracle(tc.m, cover)
			for u := 0; u < g.Len(); u++ {
				h := g.Depth - int(g.DepthOf[u])
				if got, want := masks[u], o.Valences(g.States[u], h); got != want {
					t.Fatalf("node %d (depth %d): field %02b != oracle %02b",
						u, g.DepthOf[u], got, want)
				}
			}
		})
	}
}

// TestCollectDecidedSimplexesGraph checks the graph-backed collection
// returns exactly the exploration-backed one.
func TestCollectDecidedSimplexesGraph(t *testing.T) {
	const n, rounds = 3, 2
	m := mobile.New(protocols.FloodSet{Rounds: rounds}, n)
	want, err := decision.CollectDecidedSimplexes(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ExploreID(m, rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := decision.CollectDecidedSimplexesGraph(g)
	if len(got) != len(want) {
		t.Fatalf("%d simplexes != %d", len(got), len(want))
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("missing simplex %s", k)
		}
	}
}

// TestLemma76MeasuredDiameters measures the s-diameter growth of the S^t
// reachable sets (full-information protocol, the strongest instance) and
// checks the Lemma 7.6 recurrence bound d_{m+1} <= d_m*dY + d_m + dY with
// the measured per-layer diameter dY.
func TestLemma76MeasuredDiameters(t *testing.T) {
	const n, tt, depth = 3, 2, 2
	p := protocols.FullInfo{}
	m := syncmp.NewSt(p, n, tt)
	g, err := core.Explore(m, depth, 0)
	if err != nil {
		t.Fatal(err)
	}
	dPrev, connPrev := valence.SetSDiameter(g.StatesAtDepth(0))
	if !connPrev {
		t.Fatal("initial states not similarity connected")
	}
	for d := 1; d <= depth; d++ {
		// Measured per-layer diameter: max s-diameter of S(x) over states x
		// at depth d-1.
		dY := 0
		for _, x := range g.StatesAtDepth(d - 1) {
			states, _ := valence.Layer(m, x)
			if ld, _ := valence.SetSDiameter(states); ld > dY {
				dY = ld
			}
		}
		bound := dPrev*dY + dPrev + dY
		states := collectToDepth(g, d)
		dCur, _ := valence.SetSDiameter(states)
		if dCur > bound {
			t.Errorf("depth %d: measured s-diameter %d exceeds Lemma 7.6 bound %d (dPrev=%d dY=%d)",
				d, dCur, bound, dPrev, dY)
		}
		dPrev = dCur
	}
}

// collectToDepth returns the states first reached at exactly depth d. With
// the round number in the environment, every state's depth is unique.
func collectToDepth(g *core.Graph, d int) []core.State {
	return g.StatesAtDepth(d)
}
