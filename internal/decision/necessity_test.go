package decision_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/mobile"
	"repro/internal/protocols"
)

// TestNecessityOnSolvingProtocol is the necessity direction of Theorem 7.2
// measured live: FloodSet(1 round) solves 2-set agreement in M^mf (see
// E10), so the decided-output complexes over every similarity-connected
// set of initial states must be 1-thick connected.
func TestNecessityOnSolvingProtocol(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 1}
	m := mobile.New(p, n)
	inits := m.Inits() // binary inputs: 8 similarity-connected candidates
	r, err := decision.CheckThickNecessity(m, inits, n, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Subsets == 0 {
		t.Fatal("no connected subsets examined")
	}
	if r.Connected != r.Subsets {
		t.Errorf("thick connectivity failed on %d of %d subsets (first: %v)",
			r.Subsets-r.Connected, r.Subsets, r.FirstFailure)
	}
}

// TestNecessityRejectsTooMany guards the subset-enumeration cap.
func TestNecessityRejectsTooMany(t *testing.T) {
	const n = 3
	p := protocols.FloodSet{Rounds: 1}
	m := mobile.New(p, n)
	inits := make([]core.State, 17)
	for i := range inits {
		inits[i] = m.Initial([]int{0, 0, 0})
	}
	if _, err := decision.CheckThickNecessity(m, inits, n, 1, 1, 0); err == nil {
		t.Error("want cap error")
	}
}
