// Package tasks defines the decision-problem zoo used to exercise the
// Section 7 characterization: for each task we record the ground-truth
// 1-resilient solvability verdict from the literature, and the experiments
// check that the paper's 1-thick-connectivity condition reproduces it.
package tasks

import (
	"fmt"

	"repro/internal/simplex"
)

// Task couples a decision problem with its ground-truth verdict.
type Task struct {
	Problem *simplex.Problem
	// Solvable1Resilient is the literature's verdict for 1-resilient
	// solvability in the asynchronous models (equivalently, per Corollary
	// 7.3, in any of the paper's four models/submodels).
	Solvable1Resilient bool
	// SubproblemBudget caps the Δ' search for this task (0 = default).
	SubproblemBudget int
}

// binaryInputs returns all 2^n binary input n-simplexes.
func binaryInputs(n int) []simplex.Simplex {
	out := make([]simplex.Simplex, 0, 1<<uint(n))
	for a := 0; a < 1<<uint(n); a++ {
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			vals[i] = (a >> uint(i)) & 1
		}
		out = append(out, simplex.FromValues(vals))
	}
	return out
}

// constant returns the n-simplex with every process deciding v.
func constant(n, v int) simplex.Simplex {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = v
	}
	return simplex.FromValues(vals)
}

// values returns the distinct values of a simplex.
func values(s simplex.Simplex) []int {
	seen := make(map[int]bool)
	var out []int
	for _, v := range s.Vertices() {
		if !seen[v.Value] {
			seen[v.Value] = true
			out = append(out, v.Value)
		}
	}
	return out
}

// BinaryConsensus is the classical binary consensus task: all processes
// decide one common value that is somebody's input. Not 1-resiliently
// solvable (FLP; Corollaries 5.2/5.4 and Theorem 7.2).
func BinaryConsensus(n int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("consensus(n=%d)", n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				var out []simplex.Simplex
				for _, v := range values(in) {
					out = append(out, constant(n, v))
				}
				return out
			},
		},
		Solvable1Resilient: false,
	}
}

// KSetAgreement is k-set agreement over binary inputs: every decision is
// somebody's input and at most k distinct values are decided. For k >= 2 it
// is 1-resiliently solvable; k = 1 is consensus.
func KSetAgreement(n, k int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("%d-set-agreement(n=%d)", k, n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				allowed := values(in)
				var out []simplex.Simplex
				assign := make([]int, n)
				var rec func(i int)
				rec = func(i int) {
					if i == n {
						if len(values(simplex.FromValues(assign))) <= k {
							out = append(out, simplex.FromValues(assign))
						}
						return
					}
					for _, v := range allowed {
						assign[i] = v
						rec(i + 1)
					}
				}
				rec(0)
				return out
			},
		},
		Solvable1Resilient: k >= 2,
		// The per-input option sets are large; cap the Δ' search and rely
		// on the canonical Δ' = Δ being checked first.
		SubproblemBudget: 1,
	}
}

// Identity is the trivial task "decide your own input". 1-resiliently
// solvable (no communication needed).
func Identity(n int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("identity(n=%d)", n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				return []simplex.Simplex{in}
			},
		},
		Solvable1Resilient: true,
	}
}

// ConstantTask is the trivial task "everyone decides v" regardless of
// inputs. 1-resiliently solvable.
func ConstantTask(n, v int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("constant-%d(n=%d)", v, n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(simplex.Simplex) []simplex.Simplex {
				return []simplex.Simplex{constant(n, v)}
			},
		},
		Solvable1Resilient: true,
	}
}

// LeaderElection is the inputless election task: all processes decide the
// id of one common leader, any leader will do. Despite the agreement
// flavor, it IS 1-resiliently solvable: with a known id space every process
// can decide leader 0 without communicating. The paper's condition detects
// this via the constant subproblem Δ'(s) = {⟨everyone decides 0⟩} — a nice
// exhibit of why the characterization quantifies over subproblems.
func LeaderElection(n int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("leader-election(n=%d)", n),
			N:      n,
			Inputs: []simplex.Simplex{constant(n, 0)},
			Delta: func(simplex.Simplex) []simplex.Simplex {
				out := make([]simplex.Simplex, 0, n)
				for i := 0; i < n; i++ {
					out = append(out, constant(n, i))
				}
				return out
			},
		},
		Solvable1Resilient: true,
	}
}

// HolderElection is election with real input dependence: inputs are binary
// with at least one process holding 1, and all processes must decide the id
// of a common process whose input is 1. Knowing who holds 1 requires
// agreement-grade coordination; the task is not 1-resiliently solvable.
func HolderElection(n int) Task {
	var inputs []simplex.Simplex
	for _, s := range binaryInputs(n) {
		for _, v := range s.Vertices() {
			if v.Value == 1 {
				inputs = append(inputs, s)
				break
			}
		}
	}
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("holder-election(n=%d)", n),
			N:      n,
			Inputs: inputs,
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				var out []simplex.Simplex
				for _, v := range in.Vertices() {
					if v.Value == 1 {
						out = append(out, constant(n, v.ID))
					}
				}
				return out
			},
		},
		Solvable1Resilient: false,
	}
}

// EpsilonFlag is a toy solvable coordination task: processes decide binary
// flags such that the decisions differ pairwise by at most one process from
// some input-dependent anchor — concretely, each process may decide its own
// input or the input of process 0. It is 1-resiliently solvable (decide own
// input; a degenerate Δ' exists) and exercises non-trivial Δ sets.
func EpsilonFlag(n int) Task {
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("epsilon-flag(n=%d)", n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				anchor, _ := in.ValueOf(0)
				var out []simplex.Simplex
				assign := make([]int, n)
				var rec func(i int)
				rec = func(i int) {
					if i == n {
						out = append(out, simplex.FromValues(assign))
						return
					}
					own, _ := in.ValueOf(i)
					seen := map[int]bool{}
					for _, v := range []int{own, anchor} {
						if seen[v] {
							continue
						}
						seen[v] = true
						assign[i] = v
						rec(i + 1)
					}
				}
				rec(0)
				return out
			},
		},
		Solvable1Resilient: true,
		SubproblemBudget:   1,
	}
}

// Majority is the forced-choice flavor of consensus for odd n: all
// processes must decide the strict majority of the inputs. Δ is a
// singleton everywhere, so there is only one subproblem, and adjacent
// inputs across the majority boundary map to the two disjoint constants:
// not 1-thick connected, hence not 1-resiliently solvable.
func Majority(n int) Task {
	if n%2 == 0 {
		n++ // keep the majority strict
	}
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("majority(n=%d)", n),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(in simplex.Simplex) []simplex.Simplex {
				ones := 0
				for _, v := range in.Vertices() {
					ones += v.Value
				}
				maj := 0
				if 2*ones > n {
					maj = 1
				}
				return []simplex.Simplex{constant(n, maj)}
			},
		},
		Solvable1Resilient: false,
	}
}

// Renaming is loose renaming: processes decide pairwise-distinct names
// from a space of 2n-1 names (inputs carry no information — the binary
// inputs are kept only so the task shares Con_0 with the others).
// (2n-1)-renaming is wait-free solvable, hence 1-resiliently solvable.
func Renaming(n int) Task {
	names := 2*n - 1
	var outputs []simplex.Simplex
	assign := make([]int, n)
	used := make([]bool, names)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			outputs = append(outputs, simplex.FromValues(assign))
			return
		}
		for v := 0; v < names; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			assign[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return Task{
		Problem: &simplex.Problem{
			Name:   fmt.Sprintf("renaming(n=%d,names=%d)", n, names),
			N:      n,
			Inputs: binaryInputs(n),
			Delta: func(simplex.Simplex) []simplex.Simplex {
				return outputs
			},
		},
		Solvable1Resilient: true,
		// The output sets are large; the canonical Δ' = Δ check suffices.
		SubproblemBudget: 1,
	}
}

// Zoo returns the standard task collection for n processes.
func Zoo(n int) []Task {
	return []Task{
		BinaryConsensus(n),
		KSetAgreement(n, 2),
		Identity(n),
		ConstantTask(n, 0),
		LeaderElection(n),
		HolderElection(n),
		EpsilonFlag(n),
		Majority(n),
		Renaming(n),
	}
}
