package tasks_test

import (
	"testing"

	"repro/internal/tasks"
)

// TestMinThickness records the thickness profile of the zoo: solvable
// tasks sit at k=1, consensus-family tasks need the trivial k=n (empty
// intersections), and — per Lemma 7.5's contrapositive — a task with
// MinThickness k is not solvable within k-1 rounds.
func TestMinThickness(t *testing.T) {
	const n = 3
	want := map[string]int{
		"consensus(n=3)":       n, // two disjoint constants: only k=n connects them
		"2-set-agreement(n=3)": 1,
		"identity(n=3)":        1,
		"constant-0(n=3)":      1,
		"leader-election(n=3)": 1, // via the constant subproblem
		"holder-election(n=3)": n,
		"epsilon-flag(n=3)":    1,
		"majority(n=3)":        n,
	}
	for _, task := range tasks.Zoo(n) {
		budget := task.SubproblemBudget
		if budget == 0 {
			budget = 1_000_000
		}
		got, err := task.Problem.MinThickness(budget)
		if err != nil {
			t.Errorf("%s: %v", task.Problem.Name, err)
			continue
		}
		if want[task.Problem.Name] != 0 && got != want[task.Problem.Name] {
			t.Errorf("%s: MinThickness = %d, want %d", task.Problem.Name, got, want[task.Problem.Name])
		}
		// Consistency: solvable-1-resiliently iff MinThickness == 1.
		if (got == 1) != task.Solvable1Resilient {
			t.Errorf("%s: MinThickness %d inconsistent with solvable=%v",
				task.Problem.Name, got, task.Solvable1Resilient)
		}
	}
}
