package tasks_test

import (
	"testing"

	"repro/internal/tasks"
)

// TestZooVerdicts is experiment E7's core: the paper's 1-thick-connectivity
// condition (Theorem 7.2 / Corollary 7.3) must reproduce the literature's
// 1-resilient solvability verdict for every task in the zoo.
func TestZooVerdicts(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, task := range tasks.Zoo(n) {
			budget := task.SubproblemBudget
			if budget == 0 {
				budget = 1_000_000
			}
			_, ok, err := task.Problem.KThickConnected(1, budget)
			if err != nil {
				t.Errorf("n=%d %s: %v", n, task.Problem.Name, err)
				continue
			}
			if ok != task.Solvable1Resilient {
				t.Errorf("n=%d %s: 1-thick-connected = %v, literature says solvable = %v",
					n, task.Problem.Name, ok, task.Solvable1Resilient)
			}
		}
	}
}

// TestConsensusDisconnectedComponents pins down WHY consensus fails: for
// the full input set, C_Δ(I) consists of the two constant simplexes, which
// form two 1-thick components.
func TestConsensusDisconnectedComponents(t *testing.T) {
	const n = 3
	task := tasks.BinaryConsensus(n)
	c := task.Problem.OutputComplex(task.Problem.Inputs)
	comps := c.ThickComponents(n, 1)
	if len(comps) != 2 {
		t.Errorf("consensus output complex has %d 1-thick components, want 2", len(comps))
	}
}

// TestKSetOutputRichness sanity-checks the 2-set-agreement Δ: a mixed input
// allows every binary output vector, a constant input only the constant.
func TestKSetOutputRichness(t *testing.T) {
	const n = 3
	task := tasks.KSetAgreement(n, 2)
	mixed := task.Problem.Inputs[1] // inputs 1,0,0
	if got := len(task.Problem.Delta(mixed)); got != 8 {
		t.Errorf("mixed input allows %d outputs, want 8", got)
	}
	constant := task.Problem.Inputs[0] // inputs 0,0,0
	if got := len(task.Problem.Delta(constant)); got != 1 {
		t.Errorf("constant input allows %d outputs, want 1", got)
	}
}

// TestConsensusIsOneSetAgreement: k=1 set agreement must coincide with
// consensus in verdict.
func TestConsensusIsOneSetAgreement(t *testing.T) {
	const n = 3
	one := tasks.KSetAgreement(n, 1)
	_, ok, err := one.Problem.KThickConnected(1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("1-set agreement reported 1-thick connected; it is consensus and must not be")
	}
}

// TestLeaderElectionComponents: the FULL Δ has one component per candidate
// leader (not 1-thick connected), yet the task is 1-thick connected via the
// constant subproblem — the subproblem quantifier at work.
func TestLeaderElectionComponents(t *testing.T) {
	const n = 3
	task := tasks.LeaderElection(n)
	c := task.Problem.OutputComplex(task.Problem.Inputs)
	if comps := c.ThickComponents(n, 1); len(comps) != n {
		t.Errorf("election output complex has %d components, want %d", len(comps), n)
	}
	delta, ok, err := task.Problem.KThickConnected(1, 100)
	if err != nil || !ok {
		t.Fatalf("KThickConnected = %v, %v; want witness", ok, err)
	}
	// The witnessing Δ' must be a single constant simplex per input.
	for _, in := range task.Problem.Inputs {
		if got := len(delta(in)); got != 1 {
			t.Errorf("witness Δ'(%s) has %d simplexes, want 1", in, got)
		}
	}
}

// TestHolderElectionUnsolvable: deciding the id of a common 1-holder is
// consensus-hard; the condition must reject it for every subproblem.
func TestHolderElectionUnsolvable(t *testing.T) {
	const n = 3
	task := tasks.HolderElection(n)
	_, ok, err := task.Problem.KThickConnected(1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("holder-election reported 1-thick connected")
	}
}
