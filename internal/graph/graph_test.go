package graph

import (
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets() = %d, want 5", u.Sets())
	}
	if !u.Union(0, 1) {
		t.Error("Union(0,1) = false on first merge")
	}
	if u.Union(1, 0) {
		t.Error("Union(1,0) = true on repeated merge")
	}
	u.Union(2, 3)
	if u.Connected(0, 2) {
		t.Error("Connected(0,2) before merge")
	}
	u.Union(1, 3)
	if !u.Connected(0, 2) {
		t.Error("Connected(0,2) after merging chains")
	}
	if u.Sets() != 2 {
		t.Errorf("Sets() = %d, want 2", u.Sets())
	}
}

func TestUnionFindTransitivityProperty(t *testing.T) {
	// After an arbitrary merge sequence, Connected must be an equivalence
	// relation consistent with a reference partition.
	f := func(pairs [][2]uint8) bool {
		const n = 16
		u := NewUnionFind(n)
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		relabel := func(from, to int) {
			for i := range ref {
				if ref[i] == from {
					ref[i] = to
				}
			}
		}
		for _, p := range pairs {
			a, b := int(p[0])%n, int(p[1])%n
			u.Union(a, b)
			relabel(ref[a], ref[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Connected(i, j) != (ref[i] == ref[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func path(n int) *Undirected {
	g := NewUndirected(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestUndirectedPathGraph(t *testing.T) {
	g := path(5)
	if !g.Connected() {
		t.Error("path graph not connected")
	}
	d, conn := g.Diameter()
	if !conn || d != 4 {
		t.Errorf("Diameter() = %d,%v, want 4,true", d, conn)
	}
	p := g.Path(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("Path(0,4) = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Path(0,4) = %v, want %v", p, want)
		}
	}
}

func TestUndirectedDisconnected(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Error("two-component graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Errorf("Components() = %v, want 2 components", comps)
	}
	if g.Path(0, 3) != nil {
		t.Error("Path across components should be nil")
	}
	d, conn := g.Diameter()
	if conn || d != 1 {
		t.Errorf("Diameter() = %d,%v, want 1,false", d, conn)
	}
}

func TestUndirectedSelfLoopIgnored(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(0, 0)
	if len(g.Neighbors(0)) != 0 {
		t.Error("self-loop recorded")
	}
	if g.Connected() {
		t.Error("graph with no real edges reported connected")
	}
}

func TestDistances(t *testing.T) {
	g := path(4)
	dist := g.Distances(1)
	want := []int{1, 0, 1, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("Distances(1)[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestPathEndpointsProperty(t *testing.T) {
	// On a random graph, every returned path starts at src, ends at dst,
	// and each consecutive pair is an edge.
	f := func(edges [][2]uint8, src, dst uint8) bool {
		const n = 12
		g := NewUndirected(n)
		adj := make(map[[2]int]bool)
		for _, e := range edges {
			a, b := int(e[0])%n, int(e[1])%n
			g.AddEdge(a, b)
			adj[[2]int{a, b}] = true
			adj[[2]int{b, a}] = true
		}
		s, d := int(src)%n, int(dst)%n
		p := g.Path(s, d)
		if p == nil {
			return true // unreachable; checked elsewhere
		}
		if p[0] != s || p[len(p)-1] != d {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !adj[[2]int{p[i], p[i+1]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
