package graph

// Undirected is an undirected graph over the vertices 0..n-1 with explicit
// adjacency lists. Parallel edges are tolerated (they do not affect any of
// the computations here); self-loops are ignored.
type Undirected struct {
	adj [][]int
}

// NewUndirected returns an empty undirected graph on n vertices.
func NewUndirected(n int) *Undirected {
	return &Undirected{adj: make([][]int, n)}
}

// Len returns the number of vertices.
func (g *Undirected) Len() int { return len(g.adj) }

// AddEdge adds the undirected edge {u, v}. Self-loops are silently dropped.
func (g *Undirected) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns u's adjacency list (shared, not copied: callers must not
// modify it).
func (g *Undirected) Neighbors(u int) []int { return g.adj[u] }

// Connected reports whether the graph is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Undirected) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	return len(g.Component(0)) == n
}

// Component returns the vertices reachable from src (including src) in BFS
// order.
func (g *Undirected) Component(src int) []int {
	seen := make([]bool, len(g.adj))
	queue := []int{src}
	seen[src] = true
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// Components returns the connected components, each as a slice of vertices
// in BFS order, ordered by smallest contained vertex.
func (g *Undirected) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	for s := range g.adj {
		if seen[s] {
			continue
		}
		comp := g.Component(s)
		for _, v := range comp {
			seen[v] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// Distances returns BFS distances from src; unreachable vertices get -1.
func (g *Undirected) Distances(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the largest finite BFS distance between any pair of
// vertices, and whether the graph is connected. For a disconnected graph the
// returned diameter is the maximum over components.
//
// The all-pairs sweep first compacts the adjacency lists into flat CSR
// arrays and then reuses one distance array and one queue across the n BFS
// passes, so the per-source cost is a cache-friendly linear scan with no
// allocation.
func (g *Undirected) Diameter() (int, bool) {
	n := len(g.adj)
	if n == 0 {
		return 0, true
	}
	// CSR compaction of the adjacency lists.
	start := make([]int32, n+1)
	for u, nbrs := range g.adj {
		start[u+1] = start[u] + int32(len(nbrs))
	}
	flat := make([]int32, start[n])
	for u, nbrs := range g.adj {
		at := start[u]
		for i, v := range nbrs {
			flat[at+int32(i)] = int32(v)
		}
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	maxd := 0
	connected := true
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		reached := 1
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			for _, v := range flat[start[u]:start[u+1]] {
				if dist[v] < 0 {
					dist[v] = du + 1
					if int(du)+1 > maxd {
						maxd = int(du) + 1
					}
					reached++
					queue = append(queue, v)
				}
			}
		}
		if reached < n {
			connected = false
		}
	}
	return maxd, connected
}

// Path returns a shortest path from src to dst (inclusive), or nil if dst is
// unreachable.
func (g *Undirected) Path(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, len(g.adj))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] >= 0 {
				continue
			}
			prev[v] = u
			if v == dst {
				var rev []int
				for w := dst; w != src; w = prev[w] {
					rev = append(rev, w)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}
