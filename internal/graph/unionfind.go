// Package graph provides the small graph utilities shared by the
// connectivity analyses: union-find over dense integer ids, and BFS-based
// component, distance, diameter, and path computations over explicit
// adjacency lists.
package graph

// UnionFind is a disjoint-set forest over the integers 0..n-1 with union by
// rank and path halving.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find structure with n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (u *UnionFind) Connected(x, y int) bool { return u.Find(x) == u.Find(y) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }
