// Package cli provides the shared model construction used by the command
// line tools: a model spec (model family, n, t, protocol decision bound) is
// resolved into a core.Model plus metadata.
package cli

import (
	"fmt"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/shmem"
	"repro/internal/snapshot"
	"repro/internal/syncmp"
)

// Spec selects a model/protocol combination.
type Spec struct {
	// Model is one of "mobile", "sync-s1", "sync-st", "shmem", "asyncmp",
	// "iis".
	Model string
	// N is the number of processes (2..6 are practical).
	N int
	// T is the failure budget (sync-st only).
	T int
	// Bound is the protocol's decision bound in layers/rounds/phases.
	Bound int
	// FullInfo selects the (non-deciding) full-information protocol
	// instead of the flooding consensus candidate.
	FullInfo bool
}

// Models lists the accepted model names.
func Models() []string {
	return []string{"mobile", "sync-s1", "sync-st", "shmem", "asyncmp", "asyncmp-sync", "iis", "snapshot"}
}

// Build resolves the spec.
func Build(s Spec) (core.Model, error) {
	if s.N < 2 {
		return nil, fmt.Errorf("cli: n must be >= 2, got %d", s.N)
	}
	if s.Bound < 1 && !s.FullInfo {
		return nil, fmt.Errorf("cli: bound must be >= 1, got %d", s.Bound)
	}
	switch s.Model {
	case "mobile":
		return mobile.New(s.syncProtocol(), s.N), nil
	case "sync-s1":
		return syncmp.NewS1(s.syncProtocol(), s.N), nil
	case "sync-st":
		if s.T < 1 || s.T > s.N-2 {
			return nil, fmt.Errorf("cli: sync-st needs 1 <= t <= n-2, got t=%d n=%d", s.T, s.N)
		}
		return syncmp.NewSt(s.syncProtocol(), s.N, s.T), nil
	case "shmem":
		if s.FullInfo {
			return shmem.New(protocols.SMFullInfo{}, s.N), nil
		}
		return shmem.New(protocols.SMVote{Phases: s.Bound}, s.N), nil
	case "iis":
		if s.FullInfo {
			return iis.New(protocols.SMFullInfo{}, s.N), nil
		}
		return iis.New(protocols.SMVote{Phases: s.Bound}, s.N), nil
	case "asyncmp":
		if s.FullInfo {
			return asyncmp.New(protocols.MPFullInfo{}, s.N), nil
		}
		return asyncmp.New(protocols.MPFlood{Phases: s.Bound}, s.N), nil
	case "asyncmp-sync":
		if s.FullInfo {
			return asyncmp.NewSynchronic(protocols.MPFullInfo{}, s.N), nil
		}
		return asyncmp.NewSynchronic(protocols.MPFlood{Phases: s.Bound}, s.N), nil
	case "snapshot":
		if s.FullInfo {
			return snapshot.New(protocols.SMFullInfo{}, s.N), nil
		}
		return snapshot.New(protocols.SMVote{Phases: s.Bound}, s.N), nil
	default:
		return nil, fmt.Errorf("cli: unknown model %q (want one of %v)", s.Model, Models())
	}
}

func (s Spec) syncProtocol() interface {
	Name() string
	Init(n, id, input int) string
	Send(state string) []string
	Deliver(state string, in []string) string
	Decide(state string) (int, bool)
} {
	if s.FullInfo {
		return protocols.FullInfo{}
	}
	return protocols.FloodSet{Rounds: s.Bound}
}
