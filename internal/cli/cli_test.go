package cli_test

import (
	"strings"
	"testing"

	"repro/internal/cli"
)

func TestBuildAllModels(t *testing.T) {
	for _, name := range cli.Models() {
		spec := cli.Spec{Model: name, N: 3, T: 1, Bound: 2}
		m, err := cli.Build(spec)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(m.Inits()) != 8 {
			t.Errorf("%s: %d initial states, want 8", name, len(m.Inits()))
		}
		if succ := m.Successors(m.Inits()[0]); len(succ) == 0 {
			t.Errorf("%s: empty layer", name)
		}
	}
}

func TestBuildFullInfoVariants(t *testing.T) {
	for _, name := range cli.Models() {
		m, err := cli.Build(cli.Spec{Model: name, N: 3, T: 1, FullInfo: true})
		if err != nil {
			t.Errorf("%s fullinfo: %v", name, err)
			continue
		}
		if !strings.Contains(m.Name(), "fullinfo") {
			t.Errorf("%s fullinfo: model name %q", name, m.Name())
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	bad := []cli.Spec{
		{Model: "mobile", N: 1, Bound: 2},        // n too small
		{Model: "mobile", N: 3, Bound: 0},        // missing bound
		{Model: "sync-st", N: 3, T: 0, Bound: 2}, // t out of range
		{Model: "sync-st", N: 3, T: 2, Bound: 2}, // t > n-2
		{Model: "no-such-model", N: 3, T: 1, Bound: 2},
	}
	for i, spec := range bad {
		if _, err := cli.Build(spec); err == nil {
			t.Errorf("case %d (%+v): want error", i, spec)
		}
	}
}
