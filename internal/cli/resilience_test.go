package cli_test

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/resilient"
	"repro/internal/valence"
)

// TestResilienceFlagDefaults: the retry/rotation flags default to "run
// once, single checkpoint file" so unsupervised invocations behave exactly
// as before the supervisor existed.
func TestResilienceFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := cli.RegisterResilience(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Retries != 0 {
		t.Errorf("Retries default = %d, want 0", f.Retries)
	}
	if f.Backoff != 100*time.Millisecond {
		t.Errorf("Backoff default = %v, want 100ms", f.Backoff)
	}
	if f.KeepCheckpoints != 1 {
		t.Errorf("KeepCheckpoints default = %d, want 1", f.KeepCheckpoints)
	}
	if f.Store() != nil {
		t.Error("Store() non-nil without a -checkpoint path")
	}
}

// TestResilienceSupervisorWiring: Supervisor() translates the flags —
// retries+1 attempts, the base backoff, the engine budget sentinels on the
// degradation ladder, and the generation store at the checkpoint path.
func TestResilienceSupervisorWiring(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := cli.RegisterResilience(fs)
	ckpt := filepath.Join(t.TempDir(), "w.ckpt")
	if err := fs.Parse([]string{"-retries", "4", "-backoff", "7ms", "-checkpoint", ckpt, "-keep-checkpoints", "3"}); err != nil {
		t.Fatal(err)
	}
	sup := f.Supervisor()
	if sup.MaxAttempts != 5 {
		t.Errorf("MaxAttempts = %d, want retries+1 = 5", sup.MaxAttempts)
	}
	if sup.BaseBackoff != 7*time.Millisecond {
		t.Errorf("BaseBackoff = %v, want 7ms", sup.BaseBackoff)
	}
	if sup.Store == nil || sup.Store.Path != ckpt || sup.Store.Keep != 3 {
		t.Errorf("Store = %+v, want path %s keep 3", sup.Store, ckpt)
	}
	for _, sentinel := range []error{core.ErrNodeBudget, valence.ErrBudget} {
		found := false
		for _, d := range sup.DegradeOn {
			if errors.Is(sentinel, d) {
				found = true
			}
		}
		if !found {
			t.Errorf("%v missing from DegradeOn", sentinel)
		}
	}
	// The wired supervisor actually degrades on a budget error.
	var slept []time.Duration
	sup.Sleep = func(d time.Duration) { slept = append(slept, d) }
	sup.Workers = 2
	var widths []int
	_, err := sup.Run(resilient.Background(), "op", func(a *resilient.Attempt) error {
		widths = append(widths, a.Workers)
		if a.N == 1 {
			return fmt.Errorf("budget: %w", core.ErrNodeBudget)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 2 || widths[1] != 1 {
		t.Errorf("widths = %v, want a degrade step to 1", widths)
	}
}

// TestFinishRotatesGenerations: consecutive interrupted runs through Finish
// rotate checkpoint generations at the -checkpoint path (keep-last-K), and
// a Start with -resume pointing there loads the newest generation.
func TestFinishRotatesGenerations(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "r.ckpt")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := cli.RegisterResilience(fs)
	if err := fs.Parse([]string{"-checkpoint", ckpt, "-keep-checkpoints", "2"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		snap := []resilient.Section{{Tag: resilient.TagExplore, Data: []byte{byte('a' + i)}}}
		runErr := resilient.WithCheckpoint(fmt.Errorf("stop %d: %w", i, resilient.ErrCanceled), sectionsCk{snap})
		if got := f.Finish(runErr); got == nil {
			t.Fatalf("Finish(%d) returned nil for a failed run", i)
		}
	}
	for gen, want := range map[string]byte{ckpt: 'b', ckpt + ".1": 'a'} {
		sections, err := resilient.LoadFile(gen)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if len(sections) != 1 || sections[0].Data[0] != want {
			t.Errorf("%s holds %q, want %q", gen, sections[0].Data, want)
		}
	}

	// Start with -resume loads the newest generation into the context.
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	f2 := cli.RegisterResilience(fs2)
	if err := fs2.Parse([]string{"-resume", ckpt}); err != nil {
		t.Fatal(err)
	}
	ctx, stop, err := f2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if got := ctx.PeekResume(resilient.TagExplore); len(got) != 1 || got[0] != 'b' {
		t.Errorf("resume payload = %q, want %q", got, "b")
	}
}

// TestStartResumeFallsBack: when the newest generation at the -resume path
// is corrupt, Start falls back to the previous one instead of failing; a
// path with nothing loadable is a hard error.
func TestStartResumeFallsBack(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "f.ckpt")
	st := &resilient.Store{Path: ckpt, Keep: 2}
	if err := st.Save([]resilient.Section{{Tag: resilient.TagField, Data: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save([]resilient.Section{{Tag: resilient.TagField, Data: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	if err := writeGarbage(ckpt); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := cli.RegisterResilience(fs)
	if err := fs.Parse([]string{"-resume", ckpt, "-keep-checkpoints", "2"}); err != nil {
		t.Fatal(err)
	}
	ctx, stop, err := f.Start()
	if err != nil {
		t.Fatalf("Start should fall back past the corrupt newest: %v", err)
	}
	stop()
	if got := ctx.PeekResume(resilient.TagField); string(got) != "old" {
		t.Errorf("resume payload = %q, want the fallback generation", got)
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	f2 := cli.RegisterResilience(fs2)
	if err := fs2.Parse([]string{"-resume", filepath.Join(dir, "absent.ckpt")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f2.Start(); err == nil {
		t.Fatal("Start succeeded with no checkpoint at the -resume path")
	}
}

// TestExitForcedDistinct: the forced-exit code is pinned — distinct from
// success, the CLIs' error exit (1), and the shell's SIGINT death (130).
func TestExitForcedDistinct(t *testing.T) {
	if cli.ExitForced != 131 {
		t.Fatalf("ExitForced = %d, want 131", cli.ExitForced)
	}
}

// sectionsCk is a minimal Checkpointer over a fixed section list.
type sectionsCk struct{ sections []resilient.Section }

func (c sectionsCk) Sections() ([]resilient.Section, error) { return c.sections, nil }

// writeGarbage corrupts path in place with non-checkpoint bytes.
func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("garbage, not RSCK"), 0o644)
}
