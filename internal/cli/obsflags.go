package cli

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// ObsFlags holds the shared observability flags of the command-line tools.
type ObsFlags struct {
	// Stats prints the final counter/gauge/timer table to stderr on stop.
	Stats bool
	// Journal, when non-empty, is the path of a JSONL run-event journal.
	Journal string
	// Pprof, when non-empty, is an address serving net/http/pprof and
	// /debug/vars (e.g. ":6060").
	Pprof string
	// Progress, when positive, prints a brief counter snapshot to stderr at
	// that interval while the run is live.
	Progress time.Duration
	// Trace enables hierarchical span tracing; spans land in the journal as
	// span.begin/span.end events, so it requires -journal.
	Trace bool
	// RuntimeSample, when positive, samples runtime/metrics (goroutines,
	// heap, GC) at that interval, emitting runtime.sample journal events.
	RuntimeSample time.Duration
}

// RegisterObs registers the shared -stats/-journal/-pprof/-progress flags
// on a flag set.
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.BoolVar(&f.Stats, "stats", false, "print final engine counters to stderr")
	fs.StringVar(&f.Journal, "journal", "", "write a JSONL run-event journal to `file`")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and /debug/vars on `addr` (e.g. :6060)")
	fs.DurationVar(&f.Progress, "progress", 0, "print a counter snapshot to stderr every `interval`")
	fs.BoolVar(&f.Trace, "trace", false, "journal hierarchical phase spans (requires -journal; analyze with cmd/obsreport)")
	fs.DurationVar(&f.RuntimeSample, "runtime-sample", 0, "journal a runtime.sample (goroutines, heap, GC) every `interval`")
	return f
}

// expvarOnce guards the process-global expvar name registration.
var expvarOnce sync.Once

// Enabled reports whether any observability surface was requested.
func (f *ObsFlags) Enabled() bool {
	return f.Stats || f.Journal != "" || f.Pprof != "" || f.Progress > 0 ||
		f.Trace || f.RuntimeSample > 0
}

// Start activates the requested observability surfaces: it installs a
// metrics recorder as the process-wide obs recorder, attaches the journal
// file, publishes the metrics under expvar and starts the pprof server,
// and launches the progress ticker. The returned stop function tears all
// of it down (and prints the -stats table); it must be called before the
// tool prints its final output. When no surface was requested Start is a
// no-op and the engines keep their nil-recorder fast path.
func (f *ObsFlags) Start() (stop func(), err error) {
	if !f.Enabled() {
		return func() {}, nil
	}
	if f.Trace && f.Journal == "" {
		return nil, fmt.Errorf("obs: -trace requires -journal (spans are journal events)")
	}
	m := obs.NewMetrics()

	var journalFile *os.File
	var journal *obs.Journal
	if f.Journal != "" {
		journalFile, err = os.Create(f.Journal)
		if err != nil {
			return nil, fmt.Errorf("obs: create journal: %w", err)
		}
		journal = obs.NewJournal(journalFile)
		m.SetJournal(journal)
	}

	if f.Pprof != "" {
		expvarOnce.Do(func() { expvar.Publish("engine", m) })
		ln := f.Pprof
		go func() {
			if serveErr := http.ListenAndServe(ln, nil); serveErr != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", serveErr)
			}
		}()
	}

	var tickerDone chan struct{}
	if f.Progress > 0 {
		tickerDone = make(chan struct{})
		go func() {
			t := time.NewTicker(f.Progress)
			defer t.Stop()
			for {
				select {
				case <-tickerDone:
					return
				case <-t.C:
					fmt.Fprintf(os.Stderr, "progress: nodes=%d edges=%d certify=%d field_nodes=%d\n",
						m.Counter("explore.nodes"), m.Counter("explore.edges"),
						m.Counter("certify.visits"), m.Counter("field.nodes"))
				}
			}
		}()
	}

	if f.Trace {
		obs.EnableTrace(obs.NewTracer(m, journal))
	}
	var samplerStop func()
	if f.RuntimeSample > 0 {
		samplerStop = obs.StartRuntimeSampler(m, f.RuntimeSample)
	}

	obs.Enable(m)
	return func() {
		if samplerStop != nil {
			samplerStop()
		}
		if journal != nil {
			// Final full counter/histogram snapshot: obsreport reads the
			// last snapshot, so samples recorded after the last engine
			// event must not be lost.
			m.Event("run.done")
		}
		obs.DisableTrace()
		obs.Disable()
		if tickerDone != nil {
			close(tickerDone)
		}
		if f.Stats {
			fmt.Fprintln(os.Stderr, "--- engine counters ---")
			if werr := m.WriteText(os.Stderr); werr != nil {
				fmt.Fprintf(os.Stderr, "obs: stats: %v\n", werr)
			}
		}
		if journalFile != nil {
			if serr := m.SyncJournal(); serr != nil {
				fmt.Fprintf(os.Stderr, "obs: journal flush: %v\n", serr)
			} else if jerr := m.JournalErr(); jerr != nil {
				fmt.Fprintf(os.Stderr, "obs: journal: %v\n", jerr)
			}
			if cerr := journalFile.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "obs: journal close: %v\n", cerr)
			}
		}
	}, nil
}
