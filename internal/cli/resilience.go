package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/valence"
)

// ExitForced is the exit code of the second-stage (forced) SIGINT path.
// It is distinct from both the graceful interrupted-run exit (the CLIs
// return 1 through their error path after saving a checkpoint) and the
// shell's default SIGINT death (130), so scripts can tell "the user
// double-interrupted and the run force-exited after closing the journal"
// apart from every other stop.
const ExitForced = 131

// ResilienceFlags holds the shared cancellation/checkpoint/retry flags of
// the command-line tools.
type ResilienceFlags struct {
	// Deadline, when positive, cancels the run with ErrDeadline after it
	// elapses.
	Deadline time.Duration
	// Checkpoint, when non-empty, is the path an interrupted run writes its
	// resumable snapshot to.
	Checkpoint string
	// Resume, when non-empty, is the path of a checkpoint file to resume
	// from.
	Resume string
	// Retries is how many times a retryable failure is retried under the
	// supervisor (0 = run once, no supervision).
	Retries int
	// Backoff is the supervisor's base backoff before the first retry.
	Backoff time.Duration
	// KeepCheckpoints is how many checkpoint generations to retain at the
	// -checkpoint path (keep-last-K rotation; 1 = single file).
	KeepCheckpoints int
}

// RegisterResilience registers the shared
// -deadline/-checkpoint/-resume/-retries/-backoff/-keep-checkpoints flags
// on a flag set.
func RegisterResilience(fs *flag.FlagSet) *ResilienceFlags {
	f := &ResilienceFlags{}
	fs.DurationVar(&f.Deadline, "deadline", 0, "cancel the run after `duration` (0 = none)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "write a resumable snapshot to `file` when interrupted")
	fs.StringVar(&f.Resume, "resume", "", "resume from the checkpoint `file` of an interrupted run")
	fs.IntVar(&f.Retries, "retries", 0, "retry a failed run up to `n` times under the supervisor, resuming from checkpoints (0 = no retry)")
	fs.DurationVar(&f.Backoff, "backoff", 100*time.Millisecond, "supervisor base backoff before the first retry (doubles per retry, seeded jitter)")
	fs.IntVar(&f.KeepCheckpoints, "keep-checkpoints", 1, "checkpoint generations to retain at the -checkpoint path (keep-last-`k`)")
	return f
}

// Store returns the generation store rooted at the -checkpoint path, or
// nil when no path was given.
func (f *ResilienceFlags) Store() *resilient.Store {
	if f.Checkpoint == "" {
		return nil
	}
	return &resilient.Store{Path: f.Checkpoint, Keep: f.KeepCheckpoints}
}

// Supervisor builds the retry supervisor the flags describe: -retries+1
// total attempts, -backoff base delay, checkpoints persisted to the
// -checkpoint generation store, and the engine budget sentinels routed to
// the degradation ladder. Callers that need a per-run jitter seed or
// worker width set Seed/Workers on the result.
func (f *ResilienceFlags) Supervisor() *resilient.Supervisor {
	return &resilient.Supervisor{
		Policy: resilient.Policy{
			MaxAttempts: f.Retries + 1,
			BaseBackoff: f.Backoff,
			DegradeOn:   []error{core.ErrNodeBudget, valence.ErrBudget},
		},
		Store: f.Store(),
	}
}

// Start builds the run's cancellation context: the -deadline timer is
// armed, the -resume checkpoint's sections are loaded into the context
// (falling back across generations when the newest is torn or corrupt),
// and SIGINT is routed to cancellation — the first signal cancels the
// context (the engines stop at the next poll with a checkpoint attached
// to their error), a second closes the journal and force-exits with
// ExitForced. The returned stop function releases the timer and the
// signal handler.
func (f *ResilienceFlags) Start() (*resilient.Ctx, func(), error) {
	var ctx *resilient.Ctx
	var release func()
	if f.Deadline > 0 {
		ctx, release = resilient.WithDeadline(f.Deadline)
	} else {
		ctx, _ = resilient.WithCancel()
		release = func() {}
	}
	if f.Resume != "" {
		store := resilient.Store{Path: f.Resume, Keep: f.KeepCheckpoints}
		sections, gen, err := store.Load()
		if err != nil {
			release()
			return nil, nil, fmt.Errorf("resume: %w", err)
		}
		if gen > 0 {
			fmt.Fprintf(os.Stderr, "resume: generation %d (%s is torn or corrupt, fell back to %s)\n",
				gen, f.Resume, fmt.Sprintf("%s.%d", f.Resume, gen))
		}
		ctx.SetResume(sections)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		n := 0
		for {
			select {
			case <-done:
				return
			case <-sig:
				n++
				if n == 1 {
					fmt.Fprintln(os.Stderr, "interrupt: stopping at the next safe point (interrupt again to force exit)")
					ctx.Cancel(fmt.Errorf("%w: interrupted by signal", resilient.ErrCanceled))
					continue
				}
				// Forced exit: close (not just sync) the journal so the
				// buffered tail reaches the sink before the process dies.
				closeActiveJournal()
				os.Exit(ExitForced)
			}
		}
	}()
	stop := func() {
		signal.Stop(sig)
		close(done)
		release()
	}
	return ctx, stop, nil
}

// Finish post-processes a run error: interruption-family errors (anything
// wrapping resilient.ErrPartial) get their attached checkpoint saved to
// the -checkpoint generation store and a final run.interrupted event
// emitted with the checkpoint path, so the journal's tail explains the
// stop. Other errors (and nil) pass through untouched. The returned error
// is non-nil exactly when err was, so callers keep their nonzero exit.
func (f *ResilienceFlags) Finish(err error) error {
	if err == nil || !errors.Is(err, resilient.ErrPartial) {
		return err
	}
	saved := ""
	if store := f.Store(); store != nil {
		ok, serr := store.SaveError(err)
		switch {
		case serr != nil:
			err = fmt.Errorf("%w (checkpoint not saved: %v)", err, serr)
		case ok:
			saved = f.Checkpoint
			err = fmt.Errorf("%w (checkpoint saved to %s; rerun with -resume %s)", err, saved, saved)
		}
	}
	if rec := obs.Active(); rec != nil {
		rec.Event("run.interrupted",
			obs.F{Key: "cause", Value: err.Error()},
			obs.F{Key: "checkpoint", Value: saved})
	}
	syncActiveJournal()
	return err
}

// syncActiveJournal flushes the active recorder's journal tail, when the
// recorder has one — on interrupt paths the buffered tail holds exactly
// the events explaining the stop.
func syncActiveJournal() {
	if s, ok := obs.Active().(interface{ SyncJournal() error }); ok {
		_ = s.SyncJournal()
	}
}

// closeActiveJournal flushes and closes the active recorder's journal —
// the forced-exit variant of syncActiveJournal: after it the journal
// accepts no more writes, so nothing can race the imminent os.Exit.
func closeActiveJournal() {
	if c, ok := obs.Active().(interface{ CloseJournal() error }); ok {
		_ = c.CloseJournal()
		return
	}
	syncActiveJournal()
}
