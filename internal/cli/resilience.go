package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/resilient"
)

// ResilienceFlags holds the shared cancellation/checkpoint flags of the
// command-line tools.
type ResilienceFlags struct {
	// Deadline, when positive, cancels the run with ErrDeadline after it
	// elapses.
	Deadline time.Duration
	// Checkpoint, when non-empty, is the path an interrupted run writes its
	// resumable snapshot to.
	Checkpoint string
	// Resume, when non-empty, is the path of a checkpoint file to resume
	// from.
	Resume string
}

// RegisterResilience registers the shared -deadline/-checkpoint/-resume
// flags on a flag set.
func RegisterResilience(fs *flag.FlagSet) *ResilienceFlags {
	f := &ResilienceFlags{}
	fs.DurationVar(&f.Deadline, "deadline", 0, "cancel the run after `duration` (0 = none)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "write a resumable snapshot to `file` when interrupted")
	fs.StringVar(&f.Resume, "resume", "", "resume from the checkpoint `file` of an interrupted run")
	return f
}

// Start builds the run's cancellation context: the -deadline timer is
// armed, the -resume checkpoint's sections are loaded into the context,
// and SIGINT is routed to cancellation — the first signal cancels the
// context (the engines stop at the next poll with a checkpoint attached
// to their error), a second force-exits after flushing the journal. The
// returned stop function releases the timer and the signal handler.
func (f *ResilienceFlags) Start() (*resilient.Ctx, func(), error) {
	var ctx *resilient.Ctx
	var release func()
	if f.Deadline > 0 {
		ctx, release = resilient.WithDeadline(f.Deadline)
	} else {
		ctx, _ = resilient.WithCancel()
		release = func() {}
	}
	if f.Resume != "" {
		sections, err := resilient.LoadFile(f.Resume)
		if err != nil {
			release()
			return nil, nil, fmt.Errorf("resume: %w", err)
		}
		ctx.SetResume(sections)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		n := 0
		for {
			select {
			case <-done:
				return
			case <-sig:
				n++
				if n == 1 {
					fmt.Fprintln(os.Stderr, "interrupt: stopping at the next safe point (interrupt again to force exit)")
					ctx.Cancel(fmt.Errorf("%w: interrupted by signal", resilient.ErrCanceled))
					continue
				}
				syncActiveJournal()
				os.Exit(130)
			}
		}
	}()
	stop := func() {
		signal.Stop(sig)
		close(done)
		release()
	}
	return ctx, stop, nil
}

// Finish post-processes a run error: interruption-family errors (anything
// wrapping resilient.ErrPartial) get their attached checkpoint saved to
// -checkpoint and a final run.interrupted event emitted with the
// checkpoint path, so the journal's tail explains the stop. Other errors
// (and nil) pass through untouched. The returned error is non-nil exactly
// when err was, so callers keep their nonzero exit.
func (f *ResilienceFlags) Finish(err error) error {
	if err == nil || !errors.Is(err, resilient.ErrPartial) {
		return err
	}
	saved := ""
	if f.Checkpoint != "" {
		ok, serr := resilient.SaveCheckpoint(f.Checkpoint, err)
		switch {
		case serr != nil:
			err = fmt.Errorf("%w (checkpoint not saved: %v)", err, serr)
		case ok:
			saved = f.Checkpoint
			err = fmt.Errorf("%w (checkpoint saved to %s; rerun with -resume %s)", err, saved, saved)
		}
	}
	if rec := obs.Active(); rec != nil {
		rec.Event("run.interrupted",
			obs.F{Key: "cause", Value: err.Error()},
			obs.F{Key: "checkpoint", Value: saved})
	}
	syncActiveJournal()
	return err
}

// syncActiveJournal flushes the active recorder's journal tail, when the
// recorder has one — on interrupt paths the buffered tail holds exactly
// the events explaining the stop.
func syncActiveJournal() {
	if s, ok := obs.Active().(interface{ SyncJournal() error }); ok {
		_ = s.SyncJournal()
	}
}
