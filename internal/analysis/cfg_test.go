package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis"
)

// parseBody parses a function body from source and returns it. The CFG
// builder is purely syntactic, so no typechecking is needed here.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing body: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callBarrier matches nodes whose subtree calls the named function.
func callBarrier(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func TestCFGDominators(t *testing.T) {
	// A diamond: the entry dominates everything; neither arm dominates the
	// join; the join is dominated by the branch head.
	cfg := analysis.BuildCFG(parseBody(t, `
	x := 0
	if x > 0 {
		a()
	} else {
		b()
	}
	c()
`))
	idom := cfg.Dominators()
	if len(idom) != len(cfg.Blocks) {
		t.Fatalf("Dominators returned %d entries for %d blocks", len(idom), len(cfg.Blocks))
	}
	find := func(name string) *analysis.Block {
		t.Helper()
		for _, b := range cfg.Blocks {
			for _, n := range b.Nodes {
				if callBarrier(name)(n) {
					return b
				}
			}
		}
		t.Fatalf("no block contains a call of %s", name)
		return nil
	}
	entry, aBlk, bBlk, join := cfg.Entry, find("a"), find("b"), find("c")
	if !analysis.Dominates(idom, entry.Index, join.Index) {
		t.Errorf("entry must dominate the join")
	}
	if analysis.Dominates(idom, aBlk.Index, join.Index) || analysis.Dominates(idom, bBlk.Index, join.Index) {
		t.Errorf("neither branch arm may dominate the join")
	}
	if !analysis.Dominates(idom, entry.Index, aBlk.Index) || !analysis.Dominates(idom, entry.Index, bBlk.Index) {
		t.Errorf("entry must dominate both arms")
	}
}

func TestCFGPathExistsBarrier(t *testing.T) {
	// poll() covers only the true arm: a barrier-avoiding path to the exit
	// exists through the else arm.
	cfg := analysis.BuildCFG(parseBody(t, `
	if cond() {
		poll()
	}
	work()
`))
	q := &analysis.PathQuery{Barrier: callBarrier("poll")}
	if !cfg.PathExists(cfg.Entry, nil, cfg.Exit, q) {
		t.Errorf("want a poll-free path through the untaken branch")
	}

	// poll() on every path: no barrier-free path remains.
	covered := analysis.BuildCFG(parseBody(t, `
	if cond() {
		poll()
	} else {
		poll()
	}
	work()
`))
	if covered.PathExists(covered.Entry, nil, covered.Exit, q) {
		t.Errorf("both arms poll; no barrier-free path should exist")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	// The panic arm never reaches the exit, so the only surviving path
	// crosses poll().
	cfg := analysis.BuildCFG(parseBody(t, `
	if cond() {
		panic("boom")
	}
	poll()
`))
	q := &analysis.PathQuery{Barrier: callBarrier("poll")}
	if cfg.PathExists(cfg.Entry, nil, cfg.Exit, q) {
		t.Errorf("panic path must not count as reaching the exit")
	}
}

func TestCFGIterationWithoutBarrier(t *testing.T) {
	body := parseBody(t, `
	for i := 0; i < n; i++ {
		if skip(i) {
			continue
		}
		poll()
		work(i)
	}
`)
	cfg := analysis.BuildCFG(body)
	if len(cfg.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(cfg.Loops))
	}
	q := &analysis.PathQuery{Barrier: callBarrier("poll")}
	for _, l := range cfg.Loops {
		if !cfg.IterationWithoutBarrier(l, q) {
			t.Errorf("the continue path completes an iteration without poll(); want it found")
		}
	}

	covered := analysis.BuildCFG(parseBody(t, `
	for i := 0; i < n; i++ {
		poll()
		if skip(i) {
			continue
		}
		work(i)
	}
`))
	for _, l := range covered.Loops {
		if covered.IterationWithoutBarrier(l, q) {
			t.Errorf("poll() leads every iteration; no barrier-free iteration should exist")
		}
	}
}

func TestCFGLoopsIndexedByStatement(t *testing.T) {
	body := parseBody(t, `
	for _, x := range xs {
		work(x)
	}
	for i := 0; i < n; i++ {
		work(i)
	}
`)
	cfg := analysis.BuildCFG(body)
	if len(cfg.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(cfg.Loops))
	}
	for stmt, l := range cfg.Loops {
		switch stmt.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
		default:
			t.Errorf("loop keyed by %T, want a for/range statement", stmt)
		}
		if l.Head == nil || l.Body == nil {
			t.Errorf("loop missing head or body block")
		}
	}
}
