package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll enforces the resilience layer's cancellation contract on the
// deterministic engine packages: a top-level loop in a function that has a
// *resilient.Ctx in scope must poll cancellation on every iteration path.
// Ctx.Err is one atomic load, so the layer/shard loops poll it directly or
// through chaos.Check / the engines' stopPoint helpers; a loop that can
// complete an iteration without any poll turns SIGINT and deadlines into
// unbounded stalls (the pool only notices cancellation when a worker
// returns).
//
// What counts as a poll is computed, not listed: a call to
// (*resilient.Ctx).Err is intrinsically a poll, and any function whose
// every path from entry to exit crosses a poll carries a "polls" fact —
// propagated bottom-up through the package call graph and across package
// boundaries through the fact store, so chaos.Check (which calls ctx.Err
// first) and core's stopPoint (which calls chaos.Check) satisfy the loop
// two helper frames away from the atomic load.
//
// The every-K idiom is sanctioned: an if-statement whose condition is a
// pure expression (`if visits&0xfff == 0`) and whose body polls counts as
// a poll on every path through it, because the gate itself cannot block or
// diverge — the loop still observes cancellation within a bounded number
// of iterations.
//
// Scope: only loops nested directly in the function body (loop depth 0 —
// the layer/frontier loops), and only loops whose body calls at least one
// real function (a pure arithmetic sweep is bounded work per layer and is
// the granularity the contract allows). Function literals are opaque: they
// run on workers with their own polling obligations.
var CtxPoll = &Analyzer{
	Name:     "ctxpoll",
	Suppress: "poll",
	Doc: "flag top-level engine loops that can complete an iteration without polling " +
		"resilient.Ctx cancellation (directly, via chaos.Check, or any helper that " +
		"transitively polls on all paths)",
	Run: runCtxPoll,
}

// pollsFact marks a function every path of which polls cancellation.
type pollsFact struct{}

func runCtxPoll(pass *Pass) error {
	g := BuildCallGraph(pass)

	// Bottom-up fixpoint: derive the polls fact for every declared function,
	// then audit the loops. The fact store already holds the facts of every
	// dependency, so imports resolve transparently.
	g.Propagate(func(fn *types.Func, fd *ast.FuncDecl) bool {
		key := ObjKey(fn)
		var have pollsFact
		if key == "" || pass.ImportFact(key, &have) {
			return false
		}
		if !allPathsPoll(pass, fd.Body) {
			return false
		}
		pass.ExportFact(key, pollsFact{})
		return true
	})

	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if !ctxInScope(pass, fd) {
			return
		}
		loops := topLevelLoops(fd.Body)
		if len(loops) == 0 {
			return
		}
		cfg := BuildCFG(fd.Body)
		sanctioned := sanctionedPollGates(pass, fd.Body)
		q := &PathQuery{Barrier: func(n ast.Node) bool { return nodePolls(pass, n, sanctioned) }}
		for _, stmt := range loops {
			if !loopBodyCalls(pass, loopBody(stmt)) {
				continue
			}
			l := cfg.Loops[stmt]
			if l == nil {
				continue
			}
			if cfg.IterationWithoutBarrier(l, q) {
				pass.Reportf(stmt.Pos(),
					"loop can complete an iteration without polling cancellation: poll ctx.Err() (or chaos.Check) on every iteration path so deadlines and SIGINT are observed per layer (//lint:poll to override)")
			}
		}
	})
	return nil
}

// ctxInScope reports whether the declaration has a *resilient.Ctx
// available: as a parameter, or as a field of its receiver's struct type.
func ctxInScope(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if isResilientCtxPtr(pass.TypeOf(field.Type)) {
				return true
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		rt := pass.TypeOf(fd.Recv.List[0].Type)
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if isResilientCtxPtr(st.Field(i).Type()) {
						return true
					}
				}
			}
		}
	}
	return false
}

// isResilientCtxPtr reports whether t is *Ctx of a resilient package
// (matched by path suffix so fixtures can fake the package).
func isResilientCtxPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Ctx" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "resilient" || strings.HasSuffix(path, "/resilient")
}

// isCtxErrCall reports whether the callee is the intrinsic poll,
// (*resilient.Ctx).Err.
func isCtxErrCall(fn *types.Func) bool {
	if fn.Name() != "Err" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "resilient" && !strings.HasSuffix(path, "/resilient") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isResilientCtxPtr(sig.Recv().Type())
}

// isPollCall reports whether the call polls cancellation: the intrinsic
// Ctx.Err, or any callee carrying the polls fact.
func isPollCall(pass *Pass, call *ast.CallExpr) bool {
	callee := CalleeOf(pass, call)
	if callee == nil {
		return false
	}
	if isCtxErrCall(callee) {
		return true
	}
	var f pollsFact
	return pass.ImportFact(ObjKey(callee), &f)
}

// nodePolls reports whether executing node n necessarily polls: its
// subtree contains a poll call outside any function literal, or n is the
// condition of a sanctioned every-K gate.
func nodePolls(pass *Pass, n ast.Node, sanctioned map[ast.Expr]bool) bool {
	if e, ok := n.(ast.Expr); ok && sanctioned[e] {
		return true
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPollCall(pass, c) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sanctionedPollGates collects the conditions of every-K poll gates in the
// body: if-statements with a pure condition whose body contains a poll.
// The condition expression is a CFG node every path through the gate
// crosses, so marking it a barrier sanctions both arms.
func sanctionedPollGates(pass *Pass, body *ast.BlockStmt) map[ast.Expr]bool {
	gates := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil || !isPureExpr(ifs.Cond) {
			return true
		}
		if nodePolls(pass, ifs.Body, nil) {
			gates[ifs.Cond] = true
		}
		return true
	})
	return gates
}

// allPathsPoll reports whether every path from the body's entry to its
// normal exit crosses a poll (the polls-fact criterion).
func allPathsPoll(pass *Pass, body *ast.BlockStmt) bool {
	// Fast lexical pre-check: a body with no poll call at all cannot
	// qualify, and most functions fall out here without building a CFG.
	if !nodePolls(pass, body, nil) {
		return false
	}
	cfg := BuildCFG(body)
	sanctioned := sanctionedPollGates(pass, body)
	q := &PathQuery{Barrier: func(n ast.Node) bool { return nodePolls(pass, n, sanctioned) }}
	return !cfg.PathExists(cfg.Entry, nil, cfg.Exit, q)
}

// topLevelLoops collects the for/range statements at loop depth 0 of the
// body: loops not nested in another loop and not inside a function
// literal. Branch arms and switch cases at depth 0 still count.
func topLevelLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return // nested loops are the outer loop's per-iteration work
		}
		walkChildren(n, walk)
	}
	for _, s := range body.List {
		walk(s)
	}
	return loops
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// loopBodyCalls reports whether the loop body calls at least one real
// function or method (not a builtin, not a type conversion) outside any
// function literal — the threshold below which a loop is bounded local
// work the polling contract does not cover.
func loopBodyCalls(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				switch pass.TypesInfo.Uses[fun].(type) {
				case *types.Builtin, *types.TypeName, nil:
					return true
				}
			case *ast.SelectorExpr:
				if _, ok := pass.TypesInfo.Uses[fun.Sel].(*types.TypeName); ok {
					return true
				}
			case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType, *ast.StructType:
				return true // conversion to a composite type
			}
			found = true
			return false
		}
		return true
	})
	return found
}
