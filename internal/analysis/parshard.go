package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ParShard enforces worker-spawn hygiene at the engine's parallel fan-out
// sites (ExploreParallel's frontier shards, NewFieldParallel's layer
// sweeps, CertifyParallel). Two bugs recur in hand-rolled worker pools and
// both destroy the engine's bit-identical parallel/serial equivalence or
// deadlock it outright:
//
//   - capturing the loop variable in a `go func(){...}()` body: the
//     engine's spawn sites pin each worker's shard by passing it as an
//     argument; an implicit capture ties the worker to the loop's scoping
//     semantics instead of its spawn-time input (and under pre-1.22
//     semantics every worker observed the final index);
//   - sending on an unbuffered channel from a spawned goroutine in a
//     function that never receives from it and never blocks on a
//     sync.WaitGroup: the send either deadlocks or the goroutine leaks
//     past the barrier the merge step assumes.
//
// A third rule guards the sharded successor cache's lock order: per-shard
// locks never nest. A function that acquires the lock of one shard or
// stripe (a mutex held by a value whose type name contains "shard" or
// "stripe") while still holding another's is one hash collision away from
// an ABBA deadlock — cross-shard work must release the first shard, or
// route through a global mutex that is ordered after every shard lock.
// The walk is linear and intraprocedural: a deferred Unlock counts as
// held to the end of the function, and a function literal starts a fresh
// context (it runs on its own goroutine or after the caller returns).
//
// The first two checks apply to every `go` statement with a
// function-literal body, the third to every function; //lint:unsync
// suppresses a finding at a site with external synchronization or a
// deliberate global acquisition order.
var ParShard = &Analyzer{
	Name:     "parshard",
	Suppress: "unsync",
	Doc: "flag loop-variable captures and unsynchronized unbuffered-channel sends inside " +
		"worker goroutines spawned at parallel fan-out sites, and nested acquisitions " +
		"of per-shard locks",
	Run: runParShard,
}

func runParShard(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkParShardFunc(pass, fd.Body)
			checkShardLockNesting(pass, fd.Body)
		}
	}
	return nil
}

// checkParShardFunc inspects one function body: it records which channel
// objects the function receives from (or whether it waits on a WaitGroup),
// tracks loop-variable scopes, and checks every go-statement closure
// against both rules.
func checkParShardFunc(pass *Pass, body *ast.BlockStmt) {
	received, waits := collectSyncFacts(pass, body)

	// Walk with an explicit stack of loop-variable objects so closures know
	// which identifiers are iteration variables of an enclosing loop.
	var loopVars []types.Object
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			mark := len(loopVars)
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			walkChildren(n, walk)
			loopVars = loopVars[:mark]
			return
		case *ast.RangeStmt:
			mark := len(loopVars)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						loopVars = append(loopVars, obj)
					}
				}
			}
			walkChildren(n, walk)
			loopVars = loopVars[:mark]
			return
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkSpawnedWorker(pass, lit, loopVars, received, waits)
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
}

// collectSyncFacts scans a function body for the synchronization constructs
// that discharge the unbuffered-send rule: receives from channels (unary
// <-ch, range over ch, select comm clauses, assignment receives) and
// sync.WaitGroup Wait calls.
func collectSyncFacts(pass *Pass, body *ast.BlockStmt) (received map[types.Object]bool, waits bool) {
	received = make(map[types.Object]bool)
	markRecv := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				received[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				markRecv(n.X)
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					markRecv(n.X)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := pass.TypeOf(sel.X); t != nil && isWaitGroup(t) {
					waits = true
				}
			}
		}
		return true
	})
	return received, waits
}

// checkSpawnedWorker applies both hygiene rules to one spawned closure.
func checkSpawnedWorker(pass *Pass, lit *ast.FuncLit, loopVars []types.Object, received map[types.Object]bool, waits bool) {
	inLoop := make(map[types.Object]bool, len(loopVars))
	for _, obj := range loopVars {
		inLoop[obj] = true
	}
	// Identifiers declared by the closure's own parameters shadow loop
	// variables; Uses entries resolve to the parameter object, so the map
	// lookup below naturally misses them.
	reportedVars := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && inLoop[obj] && !reportedVars[obj] {
				reportedVars[obj] = true
				pass.Reportf(n.Pos(),
					"worker goroutine captures loop variable %s: spawn sites must pin each worker's shard by passing it as a closure argument, not an implicit capture",
					n.Name)
			}
		case *ast.SendStmt:
			chExpr := unparen(n.Chan)
			t := pass.TypeOf(chExpr)
			if t == nil {
				return true
			}
			if !isUnbufferedChan(pass, chExpr) {
				return true
			}
			id, ok := chExpr.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil || received[obj] || waits {
				return true
			}
			pass.Reportf(n.Pos(),
				"worker goroutine sends on unbuffered channel %s but the spawning function neither receives from it nor waits on a sync.WaitGroup: the send blocks past the merge barrier (buffer the channel to the worker count, or //lint:unsync if synchronized externally)",
				id.Name)
		}
		return true
	})
}

// checkShardLockNesting traverses the function's CFG tracking which
// shard/stripe locks are held along each path, and reports any acquisition
// of a second, distinct shard lock while one is held. Held locks are
// canonicalized holder expressions; the DFS is memoized on (block,
// held-set) so reconvergent paths with the same lock state are walked
// once. Deferred operations never land mid-body and are skipped; a
// function literal runs on its own goroutine (spawn sites) or after the
// enclosing frame is gone (callbacks), so it is checked in a fresh context
// of its own.
func checkShardLockNesting(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body)
	reported := make(map[string]bool) // pos|holder|held — one report per pair
	visited := make(map[string]bool)  // blockIndex|held-set

	// processNode interprets the lock operations of one straight-line node,
	// mutating and returning the held set.
	var processNode func(n ast.Node, held []string) []string
	processNode = func(n ast.Node, held []string) []string {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.FuncLit:
				checkShardLockNesting(pass, c.Body)
				return false
			case *ast.CallExpr:
				holder, op, ok := shardLockOp(pass, c)
				if !ok {
					return true
				}
				switch op {
				case "Lock", "RLock":
					for _, h := range held {
						if h == holder {
							continue
						}
						key := fmt.Sprintf("%d|%s|%s", c.Pos(), holder, h)
						if reported[key] {
							continue
						}
						reported[key] = true
						pass.Reportf(c.Pos(),
							"acquires shard lock %s.%s while holding %s's: per-shard locks must never nest (release the first shard, or order through a non-shard mutex)",
							holder, op, h)
					}
					held = append(held, holder)
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == holder {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			}
			return true
		})
		return held
	}

	var visit func(b *Block, held []string)
	visit = func(b *Block, held []string) {
		key := fmt.Sprintf("%d|%s", b.Index, strings.Join(held, "\x00"))
		if visited[key] {
			return
		}
		visited[key] = true
		held = append([]string(nil), held...)
		for _, n := range b.Nodes {
			held = processNode(n, held)
		}
		for _, e := range b.Succs {
			visit(e.To, held)
		}
	}
	visit(cfg.Entry, nil)
}

// shardLockOp matches a mutex operation (Lock/RLock/Unlock/RUnlock) whose
// mutex belongs to a shard-like holder — a value whose named type contains
// "shard" or "stripe" (case-insensitive), found by walking down the
// receiver's selector chain (sh.mu.Lock(): the mutex expr sh.mu is not
// shard-named, the next hop sh is). holder is the canonicalized source
// text of the shard expression, the unit the nesting tracker keys on.
func shardLockOp(pass *Pass, call *ast.CallExpr) (holder, op string, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = fun.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	for e := unparen(fun.X); e != nil; {
		if isShardNamed(pass.TypeOf(e)) {
			return types.ExprString(e), op, true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		case *ast.UnaryExpr:
			e = unparen(x.X)
		default:
			return "", "", false
		}
	}
	return "", "", false
}

// isShardNamed reports whether t (possibly behind a pointer) is a named
// type whose name contains "shard" or "stripe", case-insensitive.
func isShardNamed(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "shard") || strings.Contains(name, "stripe")
}

// isUnbufferedChan reports whether the expression is a channel created by a
// `make(chan T)` with no capacity argument visible in the same function or
// file. Channels of unknown origin (parameters, fields) are assumed
// buffered — the rule only fires on locally provable mistakes.
func isUnbufferedChan(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	def := findDefiningMake(pass, obj)
	if def == nil {
		return false
	}
	return len(def.Args) == 1 // make(chan T) — no capacity
}

// findDefiningMake locates the make(chan ...) call assigned to obj, if the
// declaration is visible in the analyzed files.
func findDefiningMake(pass *Pass, obj types.Object) *ast.CallExpr {
	var def *ast.CallExpr
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if def != nil {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj || i >= len(as.Rhs) {
					continue
				}
				if call, ok := unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" {
						def = call
					}
				}
			}
			return true
		})
	}
	return def
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
