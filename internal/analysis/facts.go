package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// Facts are how analysis results cross package boundaries: an analyzer
// running on package P attaches a small JSON-serializable value to one of
// P's declared objects (a function that polls cancellation, a helper that
// allocates, a field that is atomically owned), and the same analyzer
// running later on an importer of P reads it back. The standalone driver
// carries one in-memory store across the dependency-ordered package walk;
// the unitchecker driver serializes the store into the .vetx file go vet
// already threads between compilation units.
//
// Keys are strings rather than types.Object pointers because the producer
// and the consumer see *different* object identities for the same
// declaration (the producer typechecks P from source, the consumer may see
// P through export data). ObjKey and FieldKey build matching keys from
// either view.

// FactStore holds every (analyzer, object) fact seen so far.
type FactStore struct {
	facts map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[string]json.RawMessage)}
}

func factKey(analyzer, objKey string) string {
	return analyzer + "\x00" + objKey
}

func (s *FactStore) put(analyzer, objKey string, fact any) error {
	if objKey == "" {
		return nil
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("encoding %s fact for %s: %w", analyzer, objKey, err)
	}
	s.facts[factKey(analyzer, objKey)] = data
	return nil
}

func (s *FactStore) get(analyzer, objKey string, fact any) bool {
	data, ok := s.facts[factKey(analyzer, objKey)]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.facts) }

// Encode serializes the whole store. The unitchecker driver writes this as
// the package's .vetx payload; because the store already contains the
// merged facts of every dependency, importers only need to read their
// direct imports' files.
func (s *FactStore) Encode() ([]byte, error) {
	return json.Marshal(s.facts)
}

// Merge decodes a serialized store (as produced by Encode) into s,
// overwriting on key collisions — facts are deterministic functions of the
// defining package, so colliding values agree.
func (s *FactStore) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("decoding fact store: %w", err)
	}
	for k, v := range m {
		s.facts[k] = v
	}
	return nil
}

// ObjKey returns the stable cross-package key of a package-level function,
// method, or other named object: "pkgpath.Name" for package-level objects,
// "pkgpath.(Recv).Name" for methods (pointerness of the receiver is
// erased — a method set has one owner either way). Returns "" for objects
// facts cannot attach to (builtins, locals without package context).
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				return obj.Pkg().Path() + ".(" + named.Obj().Name() + ")." + obj.Name()
			}
			return "" // method on an unnamed receiver (interface literal)
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FieldKey returns the cross-package key of a struct field:
// "pkgpath.Type.Field". Named types only; fields of anonymous structs have
// no stable identity to key on.
func FieldKey(t types.Type, field string) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

// ExportFact attaches fact to key under the pass's analyzer. Facts must be
// JSON-serializable; an empty key is a silent no-op (the object has no
// cross-package identity).
func (p *Pass) ExportFact(key string, fact any) {
	_ = p.Facts.put(p.Analyzer.Name, key, fact)
}

// ImportFact loads the fact previously exported under key by this pass's
// analyzer (in this package or any dependency), reporting whether one was
// found.
func (p *Pass) ImportFact(key string, fact any) bool {
	return p.Facts.get(p.Analyzer.Name, key, fact)
}
