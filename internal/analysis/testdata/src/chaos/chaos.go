// Package chaos is a fixture stand-in for the engine's fault-injection
// layer. Check polls the context on every path, so when ctxpoll analyzes
// this package it derives the cross-package "polls" fact the consumer
// fixtures rely on.
package chaos

import "resilient"

// Check polls cancellation first, then evaluates the named fault point.
func Check(ctx *resilient.Ctx, point string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = point
	return nil
}
