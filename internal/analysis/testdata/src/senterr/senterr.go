// Package senterr exercises the senterr analyzer: ==/!= against sentinel
// error variables is flagged; errors.Is, nil comparisons, and non-error
// Err-prefixed values are allowed.
package senterr

import (
	"errors"
	"fmt"
)

// ErrNodeBudget mirrors the engine's budget sentinel.
var ErrNodeBudget = errors.New("node budget exhausted")

// ErrShortCodec mirrors a codec sentinel.
var ErrShortCodec = errors.New("truncated codec input")

// ErrCount is Err-prefixed but not an error: never flagged.
var ErrCount = 3

func explore() error {
	return fmt.Errorf("depth 4: %w", ErrNodeBudget)
}

// BadEqual compares with ==: flagged.
func BadEqual() bool {
	err := explore()
	return err == ErrNodeBudget // want "sentinel error ErrNodeBudget compared with =="
}

// BadNotEqual compares with !=: flagged.
func BadNotEqual(err error) bool {
	if err != ErrShortCodec { // want "sentinel error ErrShortCodec compared with !="
		return true
	}
	return false
}

// BadReversed puts the sentinel on the left: flagged.
func BadReversed(err error) bool {
	return ErrNodeBudget == err // want "sentinel error ErrNodeBudget compared with =="
}

// GoodErrorsIs matches through the wrap chain: allowed.
func GoodErrorsIs() bool {
	return errors.Is(explore(), ErrNodeBudget)
}

// GoodNilCheck compares against nil, not a sentinel: allowed.
func GoodNilCheck() bool {
	return explore() == nil
}

// GoodNonErrorErr compares an Err-prefixed non-error: allowed.
func GoodNonErrorErr(n int) bool {
	return n == ErrCount
}

// AnnotatedIdentity documents a deliberate identity check: allowed.
func AnnotatedIdentity(err error) bool {
	return err == ErrNodeBudget //lint:sentinel identity check on unwrapped return
}
