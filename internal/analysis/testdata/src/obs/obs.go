// Package obs is a fixture stand-in for the engine's observability layer:
// the analyzer recognizes the Recorder interface by name and package-path
// suffix, so this stub triggers the same checks as the real package.
package obs

// Recorder matches the real obs.Recorder shape closely enough for the
// fixtures.
type Recorder interface {
	Event(name string)
	Counter(name string, delta int)
}

// Active returns the process recorder, nil when instrumentation is off.
func Active() Recorder { return nil }
