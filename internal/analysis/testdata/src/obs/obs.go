// Package obs is a fixture stand-in for the engine's observability layer:
// the analyzer recognizes the Recorder interface by name and package-path
// suffix, so this stub triggers the same checks as the real package.
package obs

// Recorder matches the real obs.Recorder shape closely enough for the
// fixtures.
type Recorder interface {
	Event(name string)
	Counter(name string, delta int)
}

// Active returns the process recorder, nil when instrumentation is off.
func Active() Recorder { return nil }

// SpanID and TraceSpan mirror the real span types' shape.
type SpanID uint64

// TraceSpan is the value Begin returns and End consumes.
type TraceSpan struct {
	ID, Parent SpanID
}

// Tracer matches the real obs.Tracer method set closely enough for the
// fixtures.
type Tracer struct{}

// Begin starts a lane-0 span.
func (t *Tracer) Begin(name string, parent SpanID) TraceSpan { return TraceSpan{} }

// BeginLane starts a span on a worker lane.
func (t *Tracer) BeginLane(name string, parent SpanID, lane int) TraceSpan { return TraceSpan{} }

// End completes a span; ending the zero span is a no-op.
func (t *Tracer) End(s TraceSpan) {}

// Trace returns the process tracer, nil when span tracing is off.
func Trace() *Tracer { return nil }
