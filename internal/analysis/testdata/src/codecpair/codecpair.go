// Fixtures for the codecpair analyzer, against the fake resilient codec.
package codecpair

import "resilient"

// Snap's pair mirrors exactly, including the depth-1 loop; bookkeeping
// calls (Err, Done) are not payload and do not disturb the sequence.
type Snap struct {
	Epoch uint64
	Keys  []string
}

func (s *Snap) Sections(e *resilient.Enc) {
	e.U64(s.Epoch)
	e.Int(len(s.Keys))
	for _, k := range s.Keys {
		e.Str(k)
	}
}

func DecodeSnap(d *resilient.Dec) (*Snap, error) {
	s := &Snap{}
	s.Epoch = d.U64()
	n := d.Int()
	for i := 0; i < n; i++ {
		s.Keys = append(s.Keys, d.Str())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Frame's reader consumes the two sections in the wrong order.
type Frame struct {
	ID   uint32
	Name string
}

func (f *Frame) Sections(e *resilient.Enc) {
	e.U32(f.ID)
	e.Str(f.Name)
}

func DecodeFrame(d *resilient.Dec) *Frame {
	f := &Frame{}
	f.Name = d.Str() // want `DecodeFrame reads Str here but \(Frame\).Sections writes U32 at step 1`
	f.ID = d.U32()
	return f
}

// Table's reader consumes once what the writer wrote per element.
type Table struct {
	Rows []uint32
}

func (t *Table) Sections(e *resilient.Enc) {
	e.Int(len(t.Rows))
	for _, r := range t.Rows {
		e.U32(r)
	}
}

func DecodeTable(d *resilient.Dec) *Table {
	t := &Table{}
	_ = d.Int()
	t.Rows = append(t.Rows, d.U32()) // want `DecodeTable reads U32 here but \(Table\).Sections writes U32 \(in a depth-1 loop\) at step 2`
	return t
}

// Pair's reader stops early: the second section is never decoded.
type Pair struct {
	A, B uint64
}

func (p *Pair) Sections(e *resilient.Enc) {
	e.U64(p.A)
	e.U64(p.B)
}

func DecodePair(d *resilient.Dec) *Pair { // want `DecodePair stops after 1 reads but \(Pair\).Sections writes 2 values`
	return &Pair{A: d.U64()}
}

// Orphan has no Decode counterpart in the package: symmetry is only
// checkable when both halves are declared, so it is skipped.
type Orphan struct {
	V uint32
}

func (o *Orphan) Sections(e *resilient.Enc) {
	e.U32(o.V)
}

// Skewed's divergence is acknowledged with the escape hatch.
type Skewed struct {
	A uint32
	B uint64
}

func (s *Skewed) Sections(e *resilient.Enc) {
	e.U32(s.A)
	e.U64(s.B)
}

func DecodeSkewed(d *resilient.Dec) *Skewed {
	s := &Skewed{}
	s.B = d.U64() //lint:codec fixture exercises the escape hatch
	s.A = d.U32()
	return s
}
