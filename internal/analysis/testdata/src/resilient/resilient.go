// Package resilient is a fixture stand-in for the engine's resilience
// layer: the analyzers recognize Ctx, Enc, and Dec by name and package-path
// suffix, so this stub triggers the same checks as the real package.
package resilient

// Ctx mirrors the real cancellation context's shape.
type Ctx struct{ canceled bool }

// Err is the intrinsic poll: one load of the cancel flag.
func (c *Ctx) Err() error {
	if c != nil && c.canceled {
		return errCanceled
	}
	return nil
}

type ctxErr struct{ s string }

func (e *ctxErr) Error() string { return e.s }

var errCanceled = &ctxErr{"canceled"}

// Enc mirrors the real section encoder's method set.
type Enc struct{ buf []byte }

func (e *Enc) U32(v uint32) { e.buf = append(e.buf, byte(v)) }
func (e *Enc) U64(v uint64) { e.buf = append(e.buf, byte(v)) }
func (e *Enc) Int(v int)    { e.U64(uint64(v)) }
func (e *Enc) Str(s string) { e.buf = append(e.buf, s...) }

// Bytes is bookkeeping, not payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Dec mirrors the real section decoder's method set.
type Dec struct {
	buf []byte
	off int
	err error
}

func (d *Dec) U32() uint32 { d.off += 4; return 0 }
func (d *Dec) U64() uint64 { d.off += 8; return 0 }
func (d *Dec) Int() int    { return int(d.U64()) }
func (d *Dec) Str() string { d.off++; return "" }

// Err and Done are bookkeeping, not payload.
func (d *Dec) Err() error { return d.err }
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.buf) }
