// Fixtures for the ctxpoll analyzer. The chaos fixture package is analyzed
// first (see suite_test.go), so chaos.Check carries a cross-package "polls"
// fact here; stop below is then two helper frames away from the intrinsic
// ctx.Err load.
package ctxpoll

import (
	"chaos"
	"resilient"
)

func work(i int) int { return i * 2 }

func needsCheck(i int) bool { return i > 0 }

// stop is two frames from the atomic load: stop -> chaos.Check -> ctx.Err,
// with the middle frame in another package.
func stop(ctx *resilient.Ctx) error { return chaos.Check(ctx, "layer") }

func BadNoPoll(ctx *resilient.Ctx, items []int) int {
	total := 0
	for _, it := range items { // want "loop can complete an iteration without polling cancellation"
		total += work(it)
	}
	return total
}

func BadImpureGate(ctx *resilient.Ctx, items []int) error {
	for _, it := range items { // want "loop can complete an iteration without polling cancellation"
		if needsCheck(it) { // impure gate: the skipping path never polls
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		work(it)
	}
	return nil
}

func BadContinueSkipsPoll(ctx *resilient.Ctx, items []int) error {
	for _, it := range items { // want "loop can complete an iteration without polling cancellation"
		if it == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

func GoodDirectPoll(ctx *resilient.Ctx, items []int) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

func GoodChaosCheck(ctx *resilient.Ctx, items []int) error {
	for _, it := range items {
		if err := chaos.Check(ctx, "layer"); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

func GoodTwoFrames(ctx *resilient.Ctx, items []int) error {
	for _, it := range items {
		if err := stop(ctx); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

func GoodEveryK(ctx *resilient.Ctx, items []int) error {
	for i, it := range items {
		if i&1023 == 0 { // pure gate whose body polls: sanctioned
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		work(it)
	}
	return nil
}

// GoodPureSweep makes no calls: bounded local work per layer is the
// granularity the contract allows.
func GoodPureSweep(ctx *resilient.Ctx, items []int) int {
	total := 0
	for _, it := range items {
		total += it
	}
	return total
}

// NoCtxNoObligation has no *resilient.Ctx in scope.
func NoCtxNoObligation(items []int) int {
	total := 0
	for _, it := range items {
		total += work(it)
	}
	return total
}

type runner struct {
	ctx *resilient.Ctx
}

// BadReceiverCtx has the context in scope through its receiver.
func (r *runner) BadReceiverCtx(items []int) int {
	total := 0
	for _, it := range items { // want "loop can complete an iteration without polling cancellation"
		total += work(it)
	}
	return total
}

func SuppressedLoop(ctx *resilient.Ctx, items []int) int {
	total := 0
	//lint:poll fixture exercises the escape hatch
	for _, it := range items {
		total += work(it)
	}
	return total
}
