// Package detorder exercises the detorder analyzer: map ranges without a
// laundering sort, wall-clock reads, and unseeded math/rand are flagged;
// sorted collection, slice ranges, seeded sources, and //lint:nondet
// annotations are allowed.
package detorder

import (
	"math/rand"
	"sort"
	"time"
)

// BadMapRange folds over a map with no sort: flagged.
func BadMapRange(edges map[string]int) int {
	total := 0
	for k, v := range edges { // want "range over map edges"
		total += len(k) + v
	}
	return total
}

// GoodSortedKeys collects keys and sorts before use: allowed.
func GoodSortedKeys(edges map[string]int) []string {
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSliceRange ranges over a slice: allowed.
func GoodSliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// AnnotatedMaxFold is order-insensitive and says so: allowed.
func AnnotatedMaxFold(depths map[string]int) int {
	max := 0
	for _, d := range depths { //lint:nondet max is order-insensitive
		if d > max {
			max = d
		}
	}
	return max
}

// BadClock reads the wall clock: flagged.
func BadClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic engine package"
}

// AnnotatedClock feeds instrumentation only: allowed.
func AnnotatedClock() time.Time {
	//lint:nondet instrumentation timing only
	return time.Now()
}

// BadGlobalRand draws from the unseeded global source: flagged.
func BadGlobalRand() int {
	return rand.Intn(10) // want "unseeded math/rand call"
}

// GoodSeededRand builds an explicit seeded source: allowed.
func GoodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
