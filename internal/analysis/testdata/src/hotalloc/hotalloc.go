// Fixtures for the hotalloc analyzer. The hothelpers fixture package is
// analyzed first (see suite_test.go), so Format's "allocates" fact arrives
// here through the store and the violation sits two helper frames away
// from the hotpath call site.
package hotalloc

import (
	"sync/atomic"

	"arena"
	"hothelpers"
)

var sink any

type point struct{ x, y int }

// localAlloc is one local frame above its allocation.
func localAlloc() []int { return make([]int, 4) }

func consume(v any) { sink = v }

func tick() {}

//lint:hotpath
func BadMake(n int) int {
	buf := make([]byte, n) // want "call of make allocates"
	return len(buf)
}

//lint:hotpath
func BadComposite(x, y int) int {
	p := point{x, y} // want "composite literal allocates"
	return p.x + p.y
}

//lint:hotpath
func BadConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//lint:hotpath
func BadConversion(b []byte) string {
	return string(b) // want "conversion allocates"
}

//lint:hotpath
func BadClosure(n int) func() int {
	return func() int { return n } // want "function literal allocates its closure header"
}

//lint:hotpath
func BadGo() {
	go tick() // want "go statement allocates a goroutine"
}

//lint:hotpath
func BadBoxing(n int) {
	consume(n) // want "passing int to an interface parameter boxes it"
}

//lint:hotpath
func BadLocalHelper() int {
	return len(localAlloc()) // want "calls localAlloc, which allocates: call of make allocates"
}

//lint:hotpath
func BadTwoFramesAway(v int) int {
	return len(hothelpers.Format(v)) // want "calls Format, which allocates: calls format, which allocates"
}

//lint:hotpath
func GoodAppend(dst []byte, b byte) []byte {
	return append(dst, b)
}

//lint:hotpath
func GoodArena(a *arena.Buf, n int) []byte {
	return a.Grab(n)
}

//lint:hotpath
func GoodMapProbe(m map[string]int, b []byte) int {
	return m[string(b)]
}

//lint:hotpath
func GoodAtomicAndFactFree(c *uint64, v uint64) uint64 {
	atomic.AddUint64(c, hothelpers.Mask(v))
	return atomic.LoadUint64(c)
}

//lint:hotpath
func GoodPointerArg(p *point) {
	consume(p) // pointer-shaped: the interface header reuses the word
}

// UnmarkedAllocates has no hotpath marker: constructs here carry facts but
// produce no diagnostics.
func UnmarkedAllocates(n int) []byte {
	return make([]byte, n)
}

//lint:hotpath
func SuppressedMake(n int) int {
	buf := make([]byte, n) //lint:alloc fixture exercises the escape hatch
	return len(buf)
}
