// Package atomicowner is the dependency fixture for atomicfield's
// cross-package fact test: Hits is atomically owned here, and the fact must
// reach packages that read the field plainly through the exported type.
package atomicowner

import "sync/atomic"

// Gauge publishes a monotone counter.
type Gauge struct {
	Hits int64
	Name string
}

// Inc is the owning side of the atomic protocol.
func (g *Gauge) Inc() { atomic.AddInt64(&g.Hits, 1) }

// Load is the reading side.
func (g *Gauge) Load() int64 { return atomic.LoadInt64(&g.Hits) }
