// Fixtures for the atomicfield analyzer. The atomicowner fixture package
// is analyzed first (see suite_test.go), so Gauge.Hits arrives here as an
// atomically-owned field fact.
package atomicfield

import (
	"sync/atomic"

	"atomicowner"
)

type counter struct {
	n     uint64
	label string
}

// bump is the owning side: once this exists, every other access of n must
// go through sync/atomic.
func bump(c *counter) {
	atomic.AddUint64(&c.n, 1)
}

func BadPlainRead(c *counter) uint64 {
	return c.n // want "plain access of n"
}

func BadPlainWrite(c *counter) {
	c.n = 0 // want "plain access of n"
}

func GoodAtomicLoad(c *counter) uint64 {
	return atomic.LoadUint64(&c.n)
}

// GoodOtherField: label is not atomically owned.
func GoodOtherField(c *counter) string {
	return c.label
}

// BadCrossPackage reads an imported atomic field plainly; the ownership
// fact came from the atomicowner package.
func BadCrossPackage(g *atomicowner.Gauge) int64 {
	return g.Hits // want "plain access of Hits"
}

// GoodCrossPackage uses the owner's accessor and the unowned field.
func GoodCrossPackage(g *atomicowner.Gauge) (int64, string) {
	return g.Load(), g.Name
}

type hist struct {
	counts [8]uint64
}

func record(h *hist, i int) {
	atomic.AddUint64(&h.counts[i&7], 1)
}

// GoodLen: capacity is a property of the type, not the values.
func GoodLen(h *hist) int {
	return len(h.counts)
}

// GoodRangeIndex: a value-less range reads only the length.
func GoodRangeIndex(h *hist) uint64 {
	var total uint64
	for i := range h.counts {
		total += atomic.LoadUint64(&h.counts[i])
	}
	return total
}

func BadValueRange(h *hist) uint64 {
	var total uint64
	for _, v := range h.counts { // want "plain access of counts"
		total += v
	}
	return total
}

func SuppressedRead(c *counter) uint64 {
	return c.n //lint:atomic fixture exercises the escape hatch
}
