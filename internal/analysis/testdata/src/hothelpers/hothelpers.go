// Package hothelpers is the dependency fixture for hotalloc's
// cross-package fact test: Format allocates two helper frames down
// (Format -> format -> fmt.Sprintf), and the fact derived here must reach
// the hotpath caller in the hotalloc fixture package.
package hothelpers

import "fmt"

// Format renders v; its allocation is one frame down.
func Format(v int) string { return format(v) }

func format(v int) string { return fmt.Sprintf("%d", v) }

// Mask is allocation-free and must carry no fact.
func Mask(v uint64) uint64 { return v &^ 7 }
