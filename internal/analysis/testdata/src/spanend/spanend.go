// Fixtures for the spanend analyzer, against the fake obs package.
package spanend

import "obs"

func work() {}

func GoodDeferDirect(tr *obs.Tracer) {
	defer tr.End(tr.Begin("phase", 0))
	work()
}

func GoodDeferVar(tr *obs.Tracer) {
	sp := tr.Begin("phase", 0)
	defer tr.End(sp)
	work()
}

func GoodAllPaths(tr *obs.Tracer, ok bool) {
	sp := tr.Begin("phase", 0)
	if ok {
		work()
		tr.End(sp)
		return
	}
	tr.End(sp)
}

// GoodNilGate is the canonical pairing when tracing may be off: the span is
// begun and ended under matching tr != nil tests, and the path that would
// skip the End asserts tr == nil — infeasible once the Begin ran.
func GoodNilGate(tr *obs.Tracer) {
	var sp obs.TraceSpan
	if tr != nil {
		sp = tr.Begin("phase", 0)
	}
	work()
	if tr != nil {
		tr.End(sp)
	}
}

// GoodPanicPath: paths ending in panic never reach the exit.
func GoodPanicPath(tr *obs.Tracer, ok bool) {
	sp := tr.Begin("phase", 0)
	if !ok {
		panic("invariant violated")
	}
	work()
	tr.End(sp)
}

// GoodEscapeReturn moves the balance obligation to the caller.
func GoodEscapeReturn(tr *obs.Tracer) obs.TraceSpan {
	return tr.Begin("phase", 0)
}

// GoodEscapeStore parks the span in a structure something else drains.
func GoodEscapeStore(tr *obs.Tracer, pending map[string]obs.TraceSpan) {
	pending["phase"] = tr.Begin("phase", 0)
}

// GoodWorkerLane: the closure is its own context and balances its own span.
func GoodWorkerLane(tr *obs.Tracer) {
	run := func(lane int) {
		sp := tr.BeginLane("worker", 0, lane)
		defer tr.End(sp)
		work()
	}
	run(0)
}

func BadDiscard(tr *obs.Tracer) {
	tr.Begin("phase", 0) // want "span from Begin is discarded"
	work()
}

func BadUnderscore(tr *obs.Tracer) {
	_ = tr.Begin("phase", 0) // want "span from Begin is assigned to _"
}

func BadMissedReturn(tr *obs.Tracer, ok bool) {
	sp := tr.Begin("phase", 0) // want "span sp from Begin is not Ended on every exit path"
	if ok {
		return
	}
	work()
	tr.End(sp)
}

func BadLaneNeverEnded(tr *obs.Tracer) {
	sp := tr.BeginLane("lane", 0, 1) // want "span sp from BeginLane is not Ended on every exit path"
	work()
	_ = sp.ID
}

func BadWorkerLane(tr *obs.Tracer) {
	go func() {
		sp := tr.BeginLane("worker", 0, 1) // want "span sp from BeginLane is not Ended on every exit path"
		work()
		_ = sp.ID
	}()
}

func SuppressedDiscard(tr *obs.Tracer) {
	tr.Begin("phase", 0) //lint:span fixture exercises the escape hatch
}
