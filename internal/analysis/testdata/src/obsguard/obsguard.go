// Package obsguard exercises the obsguard analyzer: Recorder calls must be
// dominated by a nil check, and must not sit two or more loops deep.
package obsguard

import "obs"

// BadUnguarded calls the recorder with no nil check: flagged.
func BadUnguarded(rec obs.Recorder) {
	rec.Event("start") // want "not dominated by a nil check"
}

// GoodGuardedBranch wraps the call in an if rec != nil: allowed.
func GoodGuardedBranch(rec obs.Recorder) {
	if rec != nil {
		rec.Event("start")
		rec.Counter("layers", 1)
	}
}

// GoodEarlyReturn guards the rest of the function with an early return:
// allowed.
func GoodEarlyReturn(rec obs.Recorder, layers int) {
	if rec == nil {
		return
	}
	rec.Event("start")
	for i := 0; i < layers; i++ {
		rec.Counter("layer", i)
	}
}

// GoodActiveInit uses the if-init nil-test idiom: allowed.
func GoodActiveInit() {
	if rec := obs.Active(); rec != nil {
		rec.Event("swept")
	}
}

// BadElseBranch calls in the branch where the recorder is known nil:
// flagged.
func BadElseBranch(rec obs.Recorder) {
	if rec != nil {
		rec.Event("on")
	} else {
		rec.Event("off") // want "not dominated by a nil check"
	}
}

// GoodElseOfNilTest calls in the else of an == nil test: allowed.
func GoodElseOfNilTest(rec obs.Recorder) {
	if rec == nil {
		println("instrumentation off")
	} else {
		rec.Event("on")
	}
}

// BadPerNode feeds the recorder inside a nested loop: per-node
// instrumentation, flagged even though nil-guarded.
func BadPerNode(rec obs.Recorder, layers [][]string) {
	if rec == nil {
		return
	}
	for _, layer := range layers {
		for range layer {
			rec.Counter("nodes", 1) // want "inside a nested loop"
		}
	}
}

// GoodPerLayer accumulates per node and publishes once per layer: allowed.
func GoodPerLayer(rec obs.Recorder, layers [][]string) {
	if rec == nil {
		return
	}
	for _, layer := range layers {
		n := 0
		for range layer {
			n++
		}
		rec.Counter("nodes", n)
	}
}

// GoodGuardedClosure spawns a guarded closure: the guard at the creation
// site dominates the deferred call.
func GoodGuardedClosure(rec obs.Recorder) {
	if rec != nil {
		defer func() { rec.Event("done") }()
	}
}

// BadUnguardedClosure captures an unguarded recorder: flagged.
func BadUnguardedClosure(rec obs.Recorder) {
	defer func() { rec.Event("done") }() // want "not dominated by a nil check"
}

// AnnotatedTrustedCall documents an externally guaranteed recorder: allowed.
func AnnotatedTrustedCall(rec obs.Recorder) {
	rec.Event("caller checks") //lint:obs caller guarantees non-nil
}

// GoodRecoverBlock records a contained panic from a recover block deep in
// looped worker code: a recover block runs at most once per frame, so the
// nesting rule does not apply (the nil guard still does).
func GoodRecoverBlock(shards [][]func()) {
	for _, shard := range shards {
		for _, job := range shard {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if rec := obs.Active(); rec != nil {
							rec.Counter("pool.panics", 1)
							rec.Event("pool.panic")
						}
					}
				}()
				job()
			}()
		}
	}
}

// BadRecoverBlockUnguarded shows rule 1 survives the recover exemption:
// an unguarded recorder in a recover block is still flagged.
func BadRecoverBlockUnguarded(rec obs.Recorder, job func()) {
	defer func() {
		if r := recover(); r != nil {
			rec.Event("panic") // want "not dominated by a nil check"
		}
	}()
	job()
}

// BadLoopInsideRecover nests a fresh loop inside the recover block: the
// exemption resets the outer nesting, but loops opened inside the block
// count again.
func BadLoopInsideRecover(rec obs.Recorder, shards [][]func()) {
	if rec == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			for _, shard := range shards {
				for range shard {
					rec.Counter("nodes", 1) // want "inside a nested loop"
				}
			}
		}
	}()
}

// BadTracerUnguarded begins a span with no nil check: Trace returns nil
// when tracing is off, so this is flagged like an unguarded recorder.
func BadTracerUnguarded(tr *obs.Tracer) {
	tr.End(tr.Begin("phase", 0)) // want "obs.Tracer.End not dominated" "obs.Tracer.Begin not dominated"
}

// GoodTracerInit uses the if-init nil-test idiom on the tracer: allowed.
func GoodTracerInit() {
	if tr := obs.Trace(); tr != nil {
		defer tr.End(tr.Begin("phase", 0))
	}
}

// GoodTracerPerLayer begins one span per layer (one loop deep): allowed.
func GoodTracerPerLayer(tr *obs.Tracer, layers []string) {
	if tr == nil {
		return
	}
	for range layers {
		sp := tr.Begin("layer", 0)
		tr.End(sp)
	}
}

// BadTracerPerNode begins a span inside a nested loop: a span per node
// floods the journal, flagged even though nil-guarded.
func BadTracerPerNode(tr *obs.Tracer, layers [][]string) {
	if tr == nil {
		return
	}
	for _, layer := range layers {
		for range layer {
			sp := tr.Begin("node", 0) // want "obs.Tracer.Begin inside a nested loop"
			tr.End(sp)
		}
	}
}

// GoodTracerDeepEnd ends a layer span from an early-exit path two loops
// deep: End of a never-begun span is a no-op, so the nesting ban covers
// only span starts.
func GoodTracerDeepEnd(tr *obs.Tracer, layers [][]string) {
	if tr == nil {
		return
	}
	for _, layer := range layers {
		sp := tr.Begin("layer", 0)
		for _, node := range layer {
			if node == "stop" {
				tr.End(sp)
				return
			}
		}
		tr.End(sp)
	}
}

// GoodTracerGuardedClosure inherits the tracer guard at the closure's
// creation site, the worker-lane span idiom of the pool shards.
func GoodTracerGuardedClosure(tr *obs.Tracer, work func()) {
	if tr != nil {
		defer func() { tr.End(tr.BeginLane("shard", 0, 1)) }()
	}
	work()
}

// BadTracerLaneLoop starts a lane span per node: BeginLane is banned at
// depth two just like Begin.
func BadTracerLaneLoop(tr *obs.Tracer, layers [][]string) {
	if tr == nil {
		return
	}
	for _, layer := range layers {
		for i := range layer {
			tr.End(tr.BeginLane("node", 0, i)) // want "obs.Tracer.BeginLane inside a nested loop"
		}
	}
}
