// Shard-lock-nesting fixtures for the parshard analyzer: acquiring one
// shard's (or stripe's) lock while holding another's is flagged; purely
// sequential per-shard locking, nesting with non-shard mutexes, and fresh
// contexts inside function literals are allowed.
package parshard

import "sync"

// workShard mimics the successor cache's intern shards: a mutex guarding
// one slice of a sharded table.
type workShard struct {
	mu   sync.Mutex
	vals map[string]int
}

// countStripe mimics the entry stripes: a second shard-like family.
type countStripe struct {
	mu sync.Mutex
	n  int
}

// tableHolder is deliberately not shard-named: its mutex may bracket shard
// locks (the growMu pattern — a global ordered after every shard lock).
type tableHolder struct {
	mu     sync.Mutex
	shards []workShard
}

// BadNestedShardLocks acquires b's lock while holding a's: flagged.
func BadNestedShardLocks(a, b *workShard, k string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "acquires shard lock b.Lock while holding a's"
	defer b.mu.Unlock()
	return a.vals[k] + b.vals[k]
}

// BadShardThenStripe nests across the two shard-like families: flagged.
func BadShardThenStripe(sh *workShard, st *countStripe) {
	sh.mu.Lock()
	st.mu.Lock() // want "acquires shard lock st.Lock while holding sh's"
	st.n++
	st.mu.Unlock()
	sh.mu.Unlock()
}

// BadIndexedNesting locks two shards of the same table at once: flagged.
func BadIndexedNesting(t *tableHolder, i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() // want `acquires shard lock t.shards\[j\].Lock while holding t.shards\[i\]'s`
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// GoodSequentialShardLocks releases each shard before the next — the
// Stats/Publish sweep pattern: allowed.
func GoodSequentialShardLocks(t *tableHolder) int {
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		total += len(sh.vals)
		sh.mu.Unlock()
	}
	return total
}

// GoodShardThenGlobal nests a non-shard mutex inside a shard lock — the
// internSlow/growMu order: allowed.
func GoodShardThenGlobal(sh *workShard, t *tableHolder, k string) {
	sh.mu.Lock()
	t.mu.Lock()
	t.shards = append(t.shards, workShard{})
	t.mu.Unlock()
	sh.vals[k]++
	sh.mu.Unlock()
}

// GoodFuncLitFreshContext spawns a worker while holding a shard lock; the
// literal's acquisitions run in their own context: allowed.
func GoodFuncLitFreshContext(a, b *workShard, k string) {
	a.mu.Lock()
	done := make(chan int, 1)
	go func(key string) {
		b.mu.Lock()
		v := b.vals[key]
		b.mu.Unlock()
		done <- v
	}(k)
	a.vals[k] = <-done
	a.mu.Unlock()
}

// SuppressedNesting documents a deliberate ordered acquisition: the escape
// hatch keeps it visible.
func SuppressedNesting(a, b *workShard, k string) {
	a.mu.Lock()
	b.mu.Lock() //lint:unsync fixture: deliberate address-ordered double lock
	b.vals[k] = a.vals[k]
	b.mu.Unlock()
	a.mu.Unlock()
}
