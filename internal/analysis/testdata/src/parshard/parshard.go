// Package parshard exercises the parshard analyzer: loop-variable captures
// and unsynchronized unbuffered-channel sends inside spawned worker
// closures are flagged; argument-passing, buffered channels, and
// receive/WaitGroup synchronization are allowed.
package parshard

import "sync"

// BadLoopCapture spawns workers that capture the shard index: flagged.
func BadLoopCapture(shards [][]int) []int {
	out := make([]int, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = len(shard) // want "captures loop variable i" "captures loop variable shard"
		}()
	}
	wg.Wait()
	return out
}

// GoodArgumentPassing pins each worker's shard via arguments: allowed.
func GoodArgumentPassing(shards [][]int) []int {
	out := make([]int, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(part int, rows []int) {
			defer wg.Done()
			out[part] = len(rows)
		}(i, shard)
	}
	wg.Wait()
	return out
}

// BadUnbufferedSend fires-and-forgets a send on an unbuffered channel with
// no receive and no WaitGroup: flagged.
func BadUnbufferedSend(n int) {
	done := make(chan int)
	go func(k int) {
		done <- k // want "sends on unbuffered channel done"
	}(n)
}

// GoodBufferedSend buffers the results channel to the worker count:
// allowed.
func GoodBufferedSend(parts []int) int {
	results := make(chan int, len(parts))
	for p, v := range parts {
		go func(part, val int) {
			results <- val * part
		}(p, v)
	}
	total := 0
	for range parts {
		total += <-results
	}
	return total
}

// GoodReceivedSend sends on an unbuffered channel that the spawning
// function receives from: allowed.
func GoodReceivedSend(n int) int {
	out := make(chan int)
	go func(k int) {
		out <- k * 2
	}(n)
	return <-out
}

// AnnotatedExternalSync documents synchronization owned elsewhere: allowed.
func AnnotatedExternalSync(n int, sink chan<- int) {
	local := make(chan int)
	go forward(local, sink)
	go func(k int) {
		local <- k //lint:unsync forward goroutine drains local
	}(n)
}

func forward(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v
	}
}
