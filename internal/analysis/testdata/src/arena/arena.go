// Package arena is a fixture stand-in for the engine's arena allocator:
// hotalloc sanctions its callees by package-path suffix, so this stub gets
// the same exemption as the real package.
package arena

// Buf is a pre-sized scratch region.
type Buf struct {
	b   []byte
	off int
}

// Grab hands out the next n bytes of the region.
func (a *Buf) Grab(n int) []byte {
	s := a.b[a.off : a.off+n]
	a.off += n
	return s
}
