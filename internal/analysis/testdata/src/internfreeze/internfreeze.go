// Package internfreeze exercises the internfreeze analyzer: writes to
// fields of a type carrying the interned-state fingerprint (Key, Local,
// FailedAt) are flagged outside constructor/clone functions and allowed
// inside them; plain structs are never flagged.
package internfreeze

import "strconv"

// State carries the core.State fingerprint, so it is treated as interned.
type State struct {
	locals []string
	failed []bool
	key    string
}

func (s *State) Key() string         { return s.key }
func (s *State) Local(i int) string  { return s.locals[i] }
func (s *State) FailedAt(i int) bool { return s.failed[i] }

// Scratch lacks the fingerprint: writable anywhere.
type Scratch struct {
	count int
	note  string
}

// NewState is a constructor: field initialization is allowed.
func NewState(locals []string) *State {
	s := &State{}
	s.locals = locals
	s.failed = make([]bool, len(locals))
	s.key = strconv.Itoa(len(locals))
	return s
}

// CloneWithFailure is a clone helper: writes allowed.
func CloneWithFailure(s *State, i int) *State {
	c := &State{locals: s.locals, key: s.key}
	c.failed = append([]bool(nil), s.failed...)
	c.failed[i] = true
	return c
}

// BadMutate writes interned fields outside a constructor: flagged.
func BadMutate(s *State, v string) {
	s.key = v // want "write to field key of interned state type State"
	s.locals[0] = v // want "write to field locals of interned state type State"
	s.failed[1] = true // want "write to field failed of interned state type State"
}

// BadIncrement uses ++ on a field reached through the state: flagged.
func BadIncrement(states []*State) {
	for _, s := range states {
		s.key += "!" // want "write to field key of interned state type State"
	}
}

// AnnotatedRepair documents a deliberate pre-intern fixup: allowed.
func AnnotatedRepair(s *State) {
	s.key = "" //lint:mutates not yet interned
}

// GoodScratchMutate writes a non-state struct: allowed.
func GoodScratchMutate(sc *Scratch) {
	sc.count++
	sc.note = "ok"
}

// GoodLocalRead only reads state fields: allowed.
func GoodLocalRead(s *State) string {
	return s.Key() + s.Local(0)
}
