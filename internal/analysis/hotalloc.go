package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-alloc contract on the engine's annotated hot
// paths. The steady-state kernels — the AppendKey implementations, the
// valence.Sweep bit-plane kernels, Histogram.Record — are pinned at 0
// allocs/op by benchmarks, but a benchmark only guards the paths it
// drives; this analyzer guards the construct level, so an allocation
// introduced on an untested branch (or three helpers down) is caught at
// lint time.
//
// Opt-in: a function is checked when its declaration carries a
// //lint:hotpath marker (doc comment or the line above). Inside one, the
// analyzer flags the constructs the compiler turns into runtime
// allocations:
//
//   - composite literals, make, new;
//   - function literals (closure headers escape) and go statements;
//   - fmt package calls (always allocate through their interface slices);
//   - string <-> []byte conversions, except the map-probe form m[string(b)]
//     which the compiler optimizes away;
//   - string concatenation;
//   - boxing: passing or converting a non-pointer concrete value to an
//     interface parameter.
//
// Calls are checked transitively: every declared function in every package
// gets an "allocates" fact derived bottom-up over the call graph (with the
// reason chain), so a hotpath function calling a helper that calls
// fmt.Sprintf is reported at the hotpath call site two frames away.
// Sanctioned allocators are exempt wherever they appear: the arena package
// (amortized pre-sized allocation is the approved pattern), append (hot
// paths append into caller-provided, pre-grown buffers), and the
// allocation-free stdlib kernels (sync/atomic, math, math/bits,
// encoding/binary). Dynamic interface-method callees are trusted — their
// implementations carry their own annotations.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Suppress: "alloc",
	Doc: "flag allocation-inducing constructs inside //lint:hotpath functions, " +
		"transitively through helpers via call-graph facts",
	Run: runHotAlloc,
}

// allocFact marks a function that may allocate, with the first reason
// found (possibly a chain through callees).
type allocFact struct {
	Reason string
}

func runHotAlloc(pass *Pass) error {
	g := BuildCallGraph(pass)

	// Bottom-up: derive the allocates fact for every declared function.
	g.Propagate(func(fn *types.Func, fd *ast.FuncDecl) bool {
		key := ObjKey(fn)
		var have allocFact
		if key == "" || pass.ImportFact(key, &have) {
			return false
		}
		reason := firstAllocReason(pass, fd.Body)
		if reason == "" {
			return false
		}
		pass.ExportFact(key, allocFact{Reason: reason})
		return true
	})

	// Report inside annotated functions only.
	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if !funcHasMarker(pass, fd, "hotpath") {
			return
		}
		forEachAllocSite(pass, fd.Body, func(pos token.Pos, what string) {
			pass.Reportf(pos, "hotpath function %s: %s (//lint:alloc to override)", fd.Name.Name, what)
		})
	})
	return nil
}

// firstAllocReason returns a description of the first allocating construct
// in the body, or "" when it is allocation-free.
func firstAllocReason(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	forEachAllocSite(pass, body, func(pos token.Pos, what string) {
		if reason == "" {
			reason = what
		}
	})
	return reason
}

// forEachAllocSite walks a body reporting each allocation-inducing
// construct. Function literals are flagged as a construct but not entered
// (the closure header is the allocation; the body runs elsewhere).
func forEachAllocSite(pass *Pass, body *ast.BlockStmt, report func(pos token.Pos, what string)) {
	probes := mapProbeConversions(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates its closure header")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
			return true
		case *ast.CompositeLit:
			report(n.Pos(), "composite literal allocates")
			// Do not also flag nested literals of one value.
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
			return true
		case *ast.CallExpr:
			checkAllocCall(pass, n, probes, report)
			return true
		}
		return true
	})
}

// mapProbeConversions collects the string(b) conversions used directly as
// map indexes — the form the compiler compiles without the copy.
func mapProbeConversions(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	probes := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if t := pass.TypeOf(idx.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if c, ok := unparen(idx.Index).(*ast.CallExpr); ok {
			probes[c] = true
		}
		return true
	})
	return probes
}

// checkAllocCall classifies one call expression inside a hot path.
func checkAllocCall(pass *Pass, call *ast.CallExpr, probes map[*ast.CallExpr]bool, report func(pos token.Pos, what string)) {
	// Conversions first: string(b), []byte(s).
	if conv, what := allocConversion(pass, call); conv {
		if !probes[call] {
			report(call.Pos(), what)
		}
		return
	}
	// Builtins: make/new allocate, append and the rest do not (hot paths
	// append into pre-grown buffers; growth is the caller's amortized cost).
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "make" || id.Name == "new" {
				report(call.Pos(), "call of "+id.Name+" allocates")
			}
			return
		}
	}
	callee := CalleeOf(pass, call)
	if callee != nil && callee.Pkg() != nil {
		path := callee.Pkg().Path()
		switch {
		case path == "fmt":
			report(call.Pos(), "calls fmt."+callee.Name()+" (allocates)")
			return
		case allocExemptPkg(path):
			return
		}
		var f allocFact
		if key := ObjKey(callee); key != "" && pass.ImportFact(key, &f) {
			report(call.Pos(), "calls "+callee.Name()+", which allocates: "+f.Reason)
			return
		}
	}
	// Boxing: a non-pointer concrete argument passed as an interface
	// parameter is heap-boxed at the call site.
	if sig, ok := typeAsSignature(pass.TypeOf(call.Fun)); ok {
		checkBoxingArgs(pass, call, sig, report)
	}
}

// allocConversion matches allocating string<->[]byte conversions. The
// map-probe form m[string(b)] is exempt: the compiler elides that copy.
func allocConversion(pass *Pass, call *ast.CallExpr) (bool, string) {
	if len(call.Args) != 1 {
		return false, ""
	}
	// The callee must denote a type, not a function.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, ""
	}
	to := tv.Type
	from := pass.TypeOf(call.Args[0])
	if from == nil {
		return false, ""
	}
	switch {
	case isStringType(to) && isByteSlice(from):
		return true, "[]byte -> string conversion allocates (map probes m[string(b)] are exempt)"
	case isByteSlice(to) && isStringType(from):
		return true, "string -> []byte conversion allocates"
	}
	return false, ""
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// allocExemptPkg reports whether callees from the package are sanctioned
// inside hot paths (matched by suffix so fixtures can fake arena).
func allocExemptPkg(path string) bool {
	switch path {
	case "sync/atomic", "math", "math/bits", "encoding/binary", "arena":
		return true
	}
	return strings.HasSuffix(path, "/arena")
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// checkBoxingArgs flags non-pointer concrete values passed to interface
// parameters. Pointers, interfaces, nil, and untyped constants assignable
// without boxing cost... do not allocate; everything else is copied to the
// heap to get an interface header.
func checkBoxingArgs(pass *Pass, call *ast.CallExpr, sig *types.Signature, report func(pos token.Pos, what string)) {
	if call.Ellipsis != token.NoPos {
		return // conservatively skip explicit slice-spread calls
	}
	// Only the fixed parameters are checked: a variadic tail allocates its
	// backing slice regardless of boxing, but fmt is already flagged
	// wholesale and the engine's hot paths have no variadic helpers.
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		param := sig.Params().At(i)
		if _, isIface := param.Type().Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
			continue // pointer-shaped: the interface header reuses the word
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "passing "+at.String()+" to an interface parameter boxes it (allocates)")
	}
}
