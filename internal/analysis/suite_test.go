package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.DetOrder, "detorder")
}

func TestInternFreeze(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.InternFreeze, "internfreeze")
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.ObsGuard, "obsguard")
}

func TestSentErr(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.SentErr, "senterr")
}

func TestParShard(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.ParShard, "parshard")
}

func TestAppliesScoping(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.DetOrder, "repro/internal/core", true},
		{analysis.DetOrder, "repro/internal/valence", true},
		{analysis.DetOrder, "repro/internal/knowledge", true},
		{analysis.DetOrder, "repro/internal/decision", true},
		{analysis.DetOrder, "repro/internal/sim", false},
		{analysis.DetOrder, "repro/internal/obs", false},
		{analysis.ObsGuard, "repro/internal/obs", false},
		{analysis.ObsGuard, "repro/internal/core", true},
		{analysis.InternFreeze, "repro/internal/sim", true},
		{analysis.SentErr, "repro/cmd/repro", true},
		{analysis.ParShard, "repro/internal/core", true},
	}
	for _, c := range cases {
		if got := analysis.Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

func TestSuiteComplete(t *testing.T) {
	all := analysis.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Suppress == "" {
			t.Errorf("analyzer %q has no escape-hatch token", a.Name)
		}
	}
}
