package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.DetOrder, "detorder")
}

func TestInternFreeze(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.InternFreeze, "internfreeze")
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.ObsGuard, "obsguard")
}

func TestSentErr(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.SentErr, "senterr")
}

func TestParShard(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.ParShard, "parshard")
}

// TestCtxPoll analyzes the chaos fixture first: chaos.Check's "polls" fact
// crosses the package boundary through the shared store, and the fixture's
// GoodTwoFrames case is two helper frames from the intrinsic ctx.Err load.
func TestCtxPoll(t *testing.T) {
	analysistest.RunWithDeps(t, testdata(t), analysis.CtxPoll, "ctxpoll", "chaos")
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.SpanEnd, "spanend")
}

// TestHotAlloc analyzes the hothelpers fixture first, so the hotpath
// violation two frames away (Format -> format -> fmt.Sprintf) is reported
// through an imported fact.
func TestHotAlloc(t *testing.T) {
	analysistest.RunWithDeps(t, testdata(t), analysis.HotAlloc, "hotalloc", "hothelpers")
}

func TestCodecPair(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.CodecPair, "codecpair")
}

func TestAtomicField(t *testing.T) {
	analysistest.RunWithDeps(t, testdata(t), analysis.AtomicField, "atomicfield", "atomicowner")
}

func TestAppliesScoping(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.DetOrder, "repro/internal/core", true},
		{analysis.DetOrder, "repro/internal/valence", true},
		{analysis.DetOrder, "repro/internal/knowledge", true},
		{analysis.DetOrder, "repro/internal/decision", true},
		{analysis.DetOrder, "repro/internal/sim", false},
		{analysis.DetOrder, "repro/internal/obs", false},
		{analysis.ObsGuard, "repro/internal/obs", false},
		{analysis.ObsGuard, "repro/internal/core", true},
		{analysis.InternFreeze, "repro/internal/sim", true},
		{analysis.SentErr, "repro/cmd/repro", true},
		{analysis.ParShard, "repro/internal/core", true},
		{analysis.CtxPoll, "repro/internal/core", true},
		{analysis.CtxPoll, "repro/internal/obs", false},
		{analysis.SpanEnd, "repro/internal/core", true},
		{analysis.SpanEnd, "repro/internal/obs", false},
		{analysis.HotAlloc, "repro/internal/obs", true},
		{analysis.CodecPair, "repro/internal/core", true},
		{analysis.AtomicField, "repro/internal/obs", true},
	}
	for _, c := range cases {
		if got := analysis.Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

func TestSuiteComplete(t *testing.T) {
	all := analysis.All()
	if len(all) != 10 {
		t.Fatalf("All() returned %d analyzers, want 10", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Suppress == "" {
			t.Errorf("analyzer %q has no escape-hatch token", a.Name)
		}
	}
}
