package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CodecPair enforces the RSCK checkpoint codec's mirror symmetry. The
// resilient.Enc/Dec section codec is positional: Dec has no field tags, so
// a reader that consumes sections in any order other than exactly the
// write order silently decodes shifted garbage — the sticky error only
// fires when lengths happen to run the buffer out, and a resumed
// exploration from such a snapshot diverges bit-from-bit with no
// diagnostic pointing at the codec.
//
// The convention under check is the one every checkpoint type follows: a
// writer is a method named Sections whose receiver type T encodes through
// resilient.Enc method calls, and its reader is the same-package function
// Decode<T> consuming through resilient.Dec. The analyzer extracts each
// side's codec-call sequence in source order, tagged with the loop depth
// of each call (an element written once must not be read in a loop, and
// vice versa — CertifyCheckpoint's per-frame U32 triplets only mirror
// because both sides loop), and reports the first divergence. Err, Done,
// Bytes, and Len are bookkeeping, not payload, and are excluded. Writers
// without a Decode<T> reader (and readers without a writer) are skipped:
// symmetry is only checkable when both halves are declared in the package.
var CodecPair = &Analyzer{
	Name:     "codecpair",
	Suppress: "codec",
	Doc: "flag Sections/Decode<T> checkpoint codec pairs whose resilient.Enc write " +
		"sequence and resilient.Dec read sequence are not exact mirrors",
	Run: runCodecPair,
}

// codecOp is one payload call: the Enc/Dec method name and the for/range
// nesting depth it executes at.
type codecOp struct {
	Name  string
	Depth int
	Pos   ast.Node
}

func runCodecPair(pass *Pass) error {
	writers := make(map[string][]codecOp) // receiver type name -> ops
	writerDecl := make(map[string]*ast.FuncDecl)
	readers := make(map[string][]codecOp) // type name from Decode<T> -> ops
	readerDecl := make(map[string]*ast.FuncDecl)

	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		switch {
		case fd.Name.Name == "Sections" && fd.Recv != nil && len(fd.Recv.List) == 1:
			tname := receiverTypeName(pass, fd)
			if tname == "" {
				return
			}
			if ops := codecCalls(pass, fd.Body, "Enc"); len(ops) > 0 {
				writers[tname] = ops
				writerDecl[tname] = fd
			}
		case strings.HasPrefix(fd.Name.Name, "Decode") && fd.Recv == nil:
			tname := strings.TrimPrefix(fd.Name.Name, "Decode")
			if tname == "" {
				return
			}
			if ops := codecCalls(pass, fd.Body, "Dec"); len(ops) > 0 {
				readers[tname] = ops
				readerDecl[tname] = fd
			}
		}
	})

	for tname, w := range writers {
		r, ok := readers[tname]
		if !ok {
			continue
		}
		reportCodecDivergence(pass, tname, w, r, writerDecl[tname], readerDecl[tname])
	}
	return nil
}

func reportCodecDivergence(pass *Pass, tname string, w, r []codecOp, wd, rd *ast.FuncDecl) {
	n := len(w)
	if len(r) < n {
		n = len(r)
	}
	for i := 0; i < n; i++ {
		if w[i].Name != r[i].Name || w[i].Depth != r[i].Depth {
			pass.Reportf(r[i].Pos.Pos(),
				"Decode%s reads %s here but (%s).Sections writes %s at step %d: the Enc/Dec sequences must mirror exactly (//lint:codec to override)",
				tname, describeOp(r[i]), tname, describeOp(w[i]), i+1)
			return
		}
	}
	switch {
	case len(w) > len(r):
		pass.Reportf(rd.Pos(),
			"Decode%s stops after %d reads but (%s).Sections writes %d values: trailing %s never decoded (//lint:codec to override)",
			tname, len(r), tname, len(w), describeOp(w[len(r)]))
	case len(r) > len(w):
		pass.Reportf(r[len(w)].Pos.Pos(),
			"Decode%s reads %s beyond the %d values (%s).Sections writes (//lint:codec to override)",
			tname, describeOp(r[len(w)]), len(w), tname)
	}
}

func describeOp(op codecOp) string {
	if op.Depth > 0 {
		return fmt.Sprintf("%s (in a depth-%d loop)", op.Name, op.Depth)
	}
	return op.Name
}

// receiverTypeName resolves the named type of a method's receiver.
func receiverTypeName(pass *Pass, fd *ast.FuncDecl) string {
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// codecCalls extracts the payload-method call sequence on values of the
// resilient codec type (Enc or Dec) in source order, tagged with loop
// depth. Function literals are opaque (no checkpoint delegates its codec
// to a closure) and bookkeeping methods are skipped.
func codecCalls(pass *Pass, body *ast.BlockStmt, codecType string) []codecOp {
	var ops []codecOp
	depth := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			walkChildren(n, walk)
			depth--
			return
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isCodecValue(pass.TypeOf(unparen(sel.X)), codecType) {
				switch sel.Sel.Name {
				case "Err", "Done", "Bytes", "Len":
				default:
					ops = append(ops, codecOp{Name: sel.Sel.Name, Depth: depth, Pos: n})
				}
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
	return ops
}

// isCodecValue reports whether t is the named type name (or a pointer to
// it) declared in a resilient package (suffix-matched for fixtures).
func isCodecValue(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "resilient" || strings.HasSuffix(path, "/resilient")
}
