package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one type-checked module package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	// DepOnly marks a module package pulled in only as a dependency of the
	// requested patterns: it must be analyzed so its exported facts reach
	// dependents, but it is outside the reporting scope of the run.
	DepOnly bool
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Loader loads module packages for analysis. It shells out to `go list
// -deps -export` once to learn the package graph and the export-data files
// of every dependency (stdlib included), then parses and type-checks the
// module's own packages from source, resolving imports through the gc
// export data — no typechecking of the standard library, no third-party
// driver.
type Loader struct {
	// Dir is the module root the go list invocation runs in.
	Dir string
	// Overlay maps absolute file paths to replacement contents; the
	// regression tests use it to inject synthetic violations without
	// touching the working tree.
	Overlay map[string][]byte
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	DepOnly    bool
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists patterns (e.g. "./...") and returns the matched module
// packages, parsed and type-checked.
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Module dependencies of the patterns load too: dependency order is
		// what lets a shared fact store resolve cross-package facts when the
		// patterns name a subset of the module (the caller reports only on
		// non-DepOnly packages).
		if p.Module != nil && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var loaded []*LoadedPackage
	for _, p := range targets {
		names := p.GoFiles
		if len(names) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range names {
			path := filepath.Join(p.Dir, name)
			var src any
			if body, ok := l.Overlay[path]; ok {
				src = body
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		loaded = append(loaded, &LoadedPackage{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			DepOnly:    p.DepOnly,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return loaded, nil
}

// LoadTestdataPackage parses and type-checks one GOPATH-style fixture
// package rooted at srcRoot (testdata/src): the import path maps to
// srcRoot/<path>, fixture imports resolve against sibling fixture
// directories first and the standard library (type-checked from GOROOT
// source) second. Used by the analysistest harness.
func LoadTestdataPackage(srcRoot, path string) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	ti := &testdataImporter{
		fset:    fset,
		srcRoot: srcRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}
	files, pkg, info, err := ti.load(path)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{
		ImportPath: path,
		Dir:        filepath.Join(srcRoot, path),
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

type testdataImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	pkgs    map[string]*types.Package
}

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.pkgs[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(ti.srcRoot, path)); err == nil && st.IsDir() {
		_, pkg, _, err := ti.load(path)
		return pkg, err
	}
	return ti.std.Import(path)
}

func (ti *testdataImporter) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ti.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: ti}
	pkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	ti.pkgs[path] = pkg
	return files, pkg, info, nil
}
