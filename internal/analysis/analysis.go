// Package analysis is the engine-invariant analyzer suite: a small,
// dependency-free reimplementation of the go/analysis vocabulary (Analyzer,
// Pass, Diagnostic) plus five custom analyzers that mechanically enforce the
// invariants the engine's correctness rests on but Go's type system cannot
// express:
//
//   - detorder: no nondeterministic iteration or clocks inside the
//     deterministic engine packages (bit-for-bit golden outputs depend on
//     map-free traversal order).
//   - internfreeze: interned state values are immutable outside their
//     constructors (aliased mutation would corrupt the shared successor
//     caches).
//   - obsguard: obs.Recorder calls stay nil-guarded and batched per layer,
//     never per node (the disabled-instrumentation fast path pays one
//     branch).
//   - senterr: sentinel errors are matched with errors.Is, never ==
//     (budget errors arrive wrapped with context).
//   - parshard: worker spawn sites do not capture loop variables and do not
//     fire-and-forget sends on unbuffered channels.
//
// A second generation of analyzers enforces the contracts introduced by the
// resilience, bit-parallel, and tracing layers, built on a shared dataflow
// platform (an intraprocedural CFG/dominance builder in cfg.go, a
// package-level call graph in callgraph.go, and cross-package facts in
// facts.go):
//
//   - ctxpoll: top-level loops in functions that take a *resilient.Ctx
//     inside the deterministic engine packages must poll cancellation on
//     every iteration path (directly, via chaos.Check, or through any
//     helper that transitively polls — propagated by facts).
//   - spanend: every obs.Tracer Begin/BeginLane span is Ended on all exit
//     paths, by defer or by an End that covers every path to return.
//   - hotalloc: functions annotated //lint:hotpath must not contain
//     allocation-inducing constructs (composite literals, fmt calls,
//     non-map-probe string<->[]byte conversions, closures, interface
//     boxing), transitively through the call graph.
//   - codecpair: RSCK checkpoint writers (Sections methods) and their
//     Decode* readers must use the resilient.Enc/Dec section methods in
//     exactly mirrored order.
//   - atomicfield: a struct field accessed through sync/atomic anywhere in
//     the package is never plainly read or written elsewhere.
//
// The suite runs standalone via cmd/lint (wired into make lint / tier1) and
// through go vet -vettool. Each analyzer has an escape hatch: a comment of
// the form //lint:<token> (e.g. //lint:nondet) on the flagged line or the
// line directly above suppresses the diagnostic, leaving an auditable
// marker in the source. cmd/lint -stale audits hatches that no longer
// suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker, mirroring go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and Makefile output.
	Name string
	// Doc is the one-paragraph description printed by cmd/lint -help.
	Doc string
	// Suppress is the escape-hatch token: a //lint:<Suppress> comment on
	// the reported line or the line above silences the diagnostic.
	Suppress string
	// Run reports diagnostics on the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the pass's FileSet. A finding
// silenced by an escape-hatch comment is still recorded, flagged Suppressed
// and carrying the "file:line" key of the comment that silenced it — the
// -json output reports it and the -stale audit counts the hatch as used.
type Diagnostic struct {
	Pos          token.Pos
	Analyzer     string
	Message      string
	Suppressed   bool
	SuppressedBy string
}

// Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store shared by the whole driver run;
	// see facts.go. Never nil.
	Facts *FactStore

	diagnostics []Diagnostic
	// suppressed maps "file:line" to the set of escape tokens present there.
	suppressed map[string]map[string]bool
}

// posKey builds the "file:line" key the suppression index and the stale
// audit agree on.
func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// NewPass assembles a pass and indexes the package's //lint: escape-hatch
// comments. A nil facts store is replaced with a fresh one, so fixture
// runs get intra-package fact propagation without wiring a store.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) *Pass {
	if facts == nil {
		facts = NewFactStore()
	}
	p := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		Facts:      facts,
		suppressed: make(map[string]map[string]bool),
	}
	for _, c := range LintComments(fset, files) {
		if p.suppressed[c.Key] == nil {
			p.suppressed[c.Key] = make(map[string]bool)
		}
		for _, tok := range c.Tokens {
			p.suppressed[c.Key][tok] = true
		}
	}
	return p
}

// LintComment is one //lint: comment: its position, its "file:line" key
// (matched against Diagnostic.SuppressedBy by the stale audit), and the
// whitespace-separated tokens following the prefix. The first token is the
// escape hatch or marker; trailing tokens are free-form rationale.
type LintComment struct {
	Pos    token.Pos
	Key    string
	Tokens []string
}

// LintComments indexes every //lint: comment in the files.
func LintComments(fset *token.FileSet, files []*ast.File) []LintComment {
	var out []LintComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, LintComment{
					Pos:    c.Pos(),
					Key:    posKey(pos.Filename, pos.Line),
					Tokens: strings.Fields(strings.TrimPrefix(text, "lint:")),
				})
			}
		}
	}
	return out
}

// Reportf records a diagnostic. An escape-hatch comment on the reported
// line or the line above marks it Suppressed rather than dropping it, so
// drivers can audit hatch usage.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.Analyzer.Suppress != "" {
		position := p.Fset.Position(pos)
		for _, line := range []int{position.Line, position.Line - 1} {
			key := posKey(position.Filename, line)
			if p.suppressed[key][p.Analyzer.Suppress] {
				d.Suppressed = true
				d.SuppressedBy = key
				break
			}
		}
	}
	p.diagnostics = append(p.diagnostics, d)
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// RunAnalyzer runs one analyzer over one loaded package and returns its
// active (unsuppressed) diagnostics sorted by position. Fixture tests and
// single-package callers use this; drivers that need suppressed findings
// and cross-package facts use RunAnalyzerFacts.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, err := RunAnalyzerFacts(a, fset, files, pkg, info, nil)
	if err != nil {
		return nil, err
	}
	active := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			active = append(active, d)
		}
	}
	return active, nil
}

// RunAnalyzerFacts runs one analyzer over one loaded package against a
// shared fact store and returns all its diagnostics — suppressed ones
// included, flagged — sorted by position. Facts exported by the run remain
// in the store for downstream packages.
func RunAnalyzerFacts(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) ([]Diagnostic, error) {
	pass := NewPass(a, fset, files, pkg, info, facts)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diagnostics, func(i, j int) bool {
		return pass.diagnostics[i].Pos < pass.diagnostics[j].Pos
	})
	return pass.diagnostics, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DetOrder, InternFreeze, ObsGuard, SentErr, ParShard,
		CtxPoll, SpanEnd, HotAlloc, CodecPair, AtomicField,
	}
}

// MarkerTokens are //lint: tokens that are annotations rather than escape
// hatches — they opt a declaration into a contract instead of silencing a
// diagnostic, so the stale audit never reports them.
var MarkerTokens = map[string]bool{
	"hotpath": true, // opts a function into hotalloc checking
}

// deterministicSuffixes are the import-path suffixes of the deterministic
// engine packages: exploration and field sweeps there must be bit-for-bit
// reproducible, so detorder (and the parallel-spawn hygiene of parshard)
// applies to them.
var deterministicSuffixes = []string{
	"internal/core",
	"internal/valence",
	"internal/knowledge",
	"internal/decision",
}

// IsDeterministicEnginePkg reports whether the import path names one of the
// deterministic engine packages (matched by suffix so analysistest fixture
// paths and the real module agree).
func IsDeterministicEnginePkg(path string) bool {
	for _, s := range deterministicSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Applies reports whether the analyzer checks packages with the given
// import path when driven by cmd/lint. Analyzers themselves are
// scope-free — fixtures run them directly — so the package filter lives
// here, next to the suite definition.
func Applies(a *Analyzer, pkgPath string) bool {
	switch a {
	case DetOrder, CtxPoll:
		return IsDeterministicEnginePkg(pkgPath)
	case ObsGuard, SpanEnd:
		// Everywhere but the Recorder/Tracer implementation itself.
		return pkgPath != "internal/obs" && !strings.HasSuffix(pkgPath, "/internal/obs")
	default:
		return true
	}
}

// FactProducer reports whether the analyzer exports cross-package facts.
// Drivers run fact producers on every module package — even ones where
// Applies says not to report — and discard the diagnostics, so facts about
// helpers defined outside an analyzer's reporting scope still reach the
// packages inside it.
func FactProducer(a *Analyzer) bool {
	switch a {
	case CtxPoll, HotAlloc, ObsGuard, AtomicField:
		return true
	}
	return false
}
