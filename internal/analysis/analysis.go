// Package analysis is the engine-invariant analyzer suite: a small,
// dependency-free reimplementation of the go/analysis vocabulary (Analyzer,
// Pass, Diagnostic) plus five custom analyzers that mechanically enforce the
// invariants the engine's correctness rests on but Go's type system cannot
// express:
//
//   - detorder: no nondeterministic iteration or clocks inside the
//     deterministic engine packages (bit-for-bit golden outputs depend on
//     map-free traversal order).
//   - internfreeze: interned state values are immutable outside their
//     constructors (aliased mutation would corrupt the shared successor
//     caches).
//   - obsguard: obs.Recorder calls stay nil-guarded and batched per layer,
//     never per node (the disabled-instrumentation fast path pays one
//     branch).
//   - senterr: sentinel errors are matched with errors.Is, never ==
//     (budget errors arrive wrapped with context).
//   - parshard: worker spawn sites do not capture loop variables and do not
//     fire-and-forget sends on unbuffered channels.
//
// The suite runs standalone via cmd/lint (wired into make lint / tier1) and
// through go vet -vettool. Each analyzer has an escape hatch: a comment of
// the form //lint:<token> (e.g. //lint:nondet) on the flagged line or the
// line directly above suppresses the diagnostic, leaving an auditable
// marker in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker, mirroring go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and Makefile output.
	Name string
	// Doc is the one-paragraph description printed by cmd/lint -help.
	Doc string
	// Suppress is the escape-hatch token: a //lint:<Suppress> comment on
	// the reported line or the line above silences the diagnostic.
	Suppress string
	// Run reports diagnostics on the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	// suppressed maps "file:line" to the set of escape tokens present there.
	suppressed map[string]map[string]bool
}

// NewPass assembles a pass and indexes the package's //lint: escape-hatch
// comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		suppressed: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if p.suppressed[key] == nil {
					p.suppressed[key] = make(map[string]bool)
				}
				for _, tok := range strings.Fields(strings.TrimPrefix(text, "lint:")) {
					p.suppressed[key][tok] = true
				}
			}
		}
	}
	return p
}

// Reportf records a diagnostic unless an escape-hatch comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Analyzer.Suppress != "" {
		position := p.Fset.Position(pos)
		for _, line := range []int{position.Line, position.Line - 1} {
			key := fmt.Sprintf("%s:%d", position.Filename, line)
			if p.suppressed[key][p.Analyzer.Suppress] {
				return
			}
		}
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// RunAnalyzer runs one analyzer over one loaded package and returns its
// diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := NewPass(a, fset, files, pkg, info)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diagnostics, func(i, j int) bool {
		return pass.diagnostics[i].Pos < pass.diagnostics[j].Pos
	})
	return pass.diagnostics, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetOrder, InternFreeze, ObsGuard, SentErr, ParShard}
}

// deterministicSuffixes are the import-path suffixes of the deterministic
// engine packages: exploration and field sweeps there must be bit-for-bit
// reproducible, so detorder (and the parallel-spawn hygiene of parshard)
// applies to them.
var deterministicSuffixes = []string{
	"internal/core",
	"internal/valence",
	"internal/knowledge",
	"internal/decision",
}

// IsDeterministicEnginePkg reports whether the import path names one of the
// deterministic engine packages (matched by suffix so analysistest fixture
// paths and the real module agree).
func IsDeterministicEnginePkg(path string) bool {
	for _, s := range deterministicSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Applies reports whether the analyzer checks packages with the given
// import path when driven by cmd/lint. Analyzers themselves are
// scope-free — fixtures run them directly — so the package filter lives
// here, next to the suite definition.
func Applies(a *Analyzer, pkgPath string) bool {
	switch a {
	case DetOrder:
		return IsDeterministicEnginePkg(pkgPath)
	case ObsGuard:
		// Everywhere but the Recorder implementation itself.
		return pkgPath != "internal/obs" && !strings.HasSuffix(pkgPath, "/internal/obs")
	default:
		return true
	}
}
