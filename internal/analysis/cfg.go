package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the suite's intraprocedural control-flow layer: a basic-block
// CFG built from a function body, a dominator computation over it, and the
// path queries the flow-sensitive analyzers ask (ctxpoll: "can one loop
// iteration complete without crossing a barrier?", spanend: "can the
// function exit without crossing one?"). It replaces the ad-hoc
// source-order block walking that obsguard and parshard previously carried
// privately.

// Block is one straight-line run of AST nodes: statements, plus the
// condition expressions of the branches the block ends in. Nodes execute in
// order; control leaves through Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// Edge is one control transfer. When Cond is non-nil the edge is the Taken
// (or not-Taken) arm of that branch condition — the nil-correlation pruning
// in spanend uses it to discard infeasible paths like "the tracer was
// non-nil at Begin but nil at the End guard".
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Taken bool
	// loopEntry marks the edge from the code before a loop into the loop
	// head; iteration-path queries exclude it so a path cannot "complete an
	// iteration" by leaving the loop and re-entering from outside.
	loopEntry bool
}

// Loop records one for/range statement's anatomy in the CFG.
type Loop struct {
	Stmt ast.Stmt
	// Head evaluates the loop condition (or the range step); Body is the
	// first block of the loop body; After is where break and loop exit land.
	Head, Body, After *Block
}

// CFG is the control-flow graph of one function body. Exit is the single
// synthetic block reached by every return and by falling off the end;
// panic paths terminate without reaching it.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Loops maps each for/range statement to its anatomy.
	Loops map[ast.Stmt]*Loop
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loopStack tracks enclosing break/continue targets, innermost last.
	loopStack []cfgLoopCtx
	// pendingLabel is the label of a LabeledStmt whose statement is being
	// built (claimed by the next loop/switch for labeled break/continue).
	pendingLabel string
	labels       map[string]*Block
	gotos        []pendingGoto
}

type cfgLoopCtx struct {
	label        string
	brk, cont    *Block
	isLoop       bool // switch/select push a ctx with only brk
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of a function body. The builder handles the
// full structured-statement vocabulary plus goto (labels are patched in a
// second pass); defer statements appear as ordinary nodes — consumers that
// care about end-of-function effects scan for *ast.DeferStmt themselves.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{Loops: make(map[ast.Stmt]*Loop)}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*Block)}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.buildStmts(body.List)
	// Falling off the end of the body is an implicit return.
	b.edge(b.cur, Edge{To: c.Exit})
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, Edge{To: target})
		}
	}
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from *Block, e Edge) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, e)
}

// startBlock switches emission to blk (nil means unreachable code follows,
// e.g. after a return; a fresh dangling block absorbs it).
func (b *cfgBuilder) startBlock(blk *Block) {
	if blk == nil {
		blk = b.newBlock()
	}
	b.cur = blk
}

func (b *cfgBuilder) buildStmts(list []ast.Stmt) {
	for _, s := range list {
		b.build(s)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) build(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.buildStmts(s.List)

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.edge(b.cur, Edge{To: lbl})
		b.startBlock(lbl)
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.build(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		then := b.newBlock()
		join := b.newBlock()
		b.edge(cond, Edge{To: then, Cond: s.Cond, Taken: true})
		b.startBlock(then)
		b.buildStmts(s.Body.List)
		b.edge(b.cur, Edge{To: join})
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, Edge{To: els, Cond: s.Cond, Taken: false})
			b.startBlock(els)
			b.build(s.Else)
			b.edge(b.cur, Edge{To: join})
		} else {
			b.edge(cond, Edge{To: join, Cond: s.Cond, Taken: false})
		}
		b.startBlock(join)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, Edge{To: head})
		}
		b.edge(b.cur, Edge{To: head, loopEntry: true})
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, Edge{To: body, Cond: s.Cond, Taken: true})
			b.edge(head, Edge{To: after, Cond: s.Cond, Taken: false})
		} else {
			b.edge(head, Edge{To: body})
		}
		b.cfg.Loops[s] = &Loop{Stmt: s, Head: head, Body: body, After: after}
		b.loopStack = append(b.loopStack, cfgLoopCtx{label: label, brk: after, cont: post, isLoop: true})
		b.startBlock(body)
		b.buildStmts(s.Body.List)
		b.edge(b.cur, Edge{To: post})
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		// The range operand is evaluated once, on entry; the head then
		// produces one element per iteration (the key/value bind there).
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		b.edge(b.cur, Edge{To: head, loopEntry: true})
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		b.edge(head, Edge{To: body})
		b.edge(head, Edge{To: after})
		b.cfg.Loops[s] = &Loop{Stmt: s, Head: head, Body: body, After: after}
		b.loopStack = append(b.loopStack, cfgLoopCtx{label: label, brk: after, cont: head, isLoop: true})
		b.startBlock(body)
		b.buildStmts(s.Body.List)
		b.edge(b.cur, Edge{To: head})
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.startBlock(after)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.cur.Nodes = append(b.cur.Nodes, sw.Init)
			}
			if sw.Tag != nil {
				b.cur.Nodes = append(b.cur.Nodes, sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.cur.Nodes = append(b.cur.Nodes, sw.Init)
			}
			b.cur.Nodes = append(b.cur.Nodes, sw.Assign)
			bodyList = sw.Body.List
		}
		b.buildCases(bodyList, label, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.buildCases(s.Body.List, label, true)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findCtx(s.Label, false); t != nil {
				b.edge(b.cur, Edge{To: t})
			}
			b.startBlock(nil)
		case token.CONTINUE:
			if t := b.findCtx(s.Label, true); t != nil {
				b.edge(b.cur, Edge{To: t})
			}
			b.startBlock(nil)
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.startBlock(nil)
		case token.FALLTHROUGH:
			// Handled by buildCases (the edge to the next case body); the
			// statement itself carries no other effect.
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, Edge{To: b.cfg.Exit})
		b.startBlock(nil)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicCall(s.X) {
			// A panic terminates the frame without reaching the normal
			// exit; recovery happens in the caller of the deferred chain.
			b.startBlock(nil)
		}

	default:
		// Leaf statements: assignments, declarations, sends, defers, go
		// statements, increments. All are straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// buildCases lowers a switch/select body: each clause gets its own block
// branching from the dispatch block; fallthrough chains to the next clause.
func (b *cfgBuilder) buildCases(clauses []ast.Stmt, label string, isSelect bool) {
	dispatch := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		var bodyStmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				dispatch.Nodes = append(dispatch.Nodes, e)
			}
			bodyStmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blocks[i].Nodes = append(blocks[i].Nodes, cl.Comm)
			}
			bodyStmts = cl.Body
		}
		b.edge(dispatch, Edge{To: blocks[i]})
		b.loopStack = append(b.loopStack, cfgLoopCtx{label: label, brk: after})
		b.startBlock(blocks[i])
		// A trailing fallthrough transfers into the next clause's block.
		ft := false
		if n := len(bodyStmts); n > 0 {
			if br, ok := bodyStmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
			}
		}
		b.buildStmts(bodyStmts)
		if ft && i+1 < len(blocks) {
			b.edge(b.cur, Edge{To: blocks[i+1]})
		} else {
			b.edge(b.cur, Edge{To: after})
		}
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
	}
	if !hasDefault || isSelect && len(clauses) == 0 {
		b.edge(dispatch, Edge{To: after})
	}
	b.startBlock(after)
}

// findCtx resolves a break (cont=false) or continue (cont=true) target.
func (b *cfgBuilder) findCtx(label *ast.Ident, cont bool) *Block {
	for i := len(b.loopStack) - 1; i >= 0; i-- {
		ctx := b.loopStack[i]
		if cont && !ctx.isLoop {
			continue
		}
		if label != nil && ctx.label != label.Name {
			continue
		}
		if cont {
			return ctx.cont
		}
		return ctx.brk
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dominators returns the immediate-dominator array over Blocks (indexed by
// Block.Index; the entry dominates itself, unreachable blocks get -1),
// computed with the Cooper–Harvey–Kennedy iterative algorithm over a
// reverse postorder.
func (c *CFG) Dominators() []int {
	n := len(c.Blocks)
	// Reverse postorder over successor edges.
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				dfs(e.To)
			}
		}
		order = append(order, b)
	}
	dfs(c.Entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i, b := range order {
		rpoNum[b.Index] = i
	}
	preds := make([][]*Block, n)
	for _, b := range c.Blocks {
		if !seen[b.Index] {
			continue
		}
		for _, e := range b.Succs {
			preds[e.To.Index] = append(preds[e.To.Index], b)
		}
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[c.Entry.Index] = c.Entry.Index
	intersect := func(a, bb int) int {
		for a != bb {
			for rpoNum[a] > rpoNum[bb] {
				a = idom[a]
			}
			for rpoNum[bb] > rpoNum[a] {
				bb = idom[bb]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == c.Entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b.Index] {
				if idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators).
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == idom[b] {
			return false
		}
		b = idom[b]
	}
}

// PathQuery parameterizes barrier-avoiding reachability over the CFG.
type PathQuery struct {
	// Barrier reports whether executing node n discharges the property the
	// query is tracking (a cancellation poll, a span End). A path that
	// crosses a barrier is discarded.
	Barrier func(n ast.Node) bool
	// AvoidEdge discards edges the query must not traverse (loop-entry
	// edges for iteration queries, infeasible nil-test arms).
	AvoidEdge func(from *Block, e Edge) bool
	// AvoidBlock discards whole blocks (a loop's After block for iteration
	// queries).
	AvoidBlock func(b *Block) bool
}

// blockHasBarrier reports whether any node of b (from index start on) is a
// barrier.
func (q *PathQuery) blockHasBarrier(b *Block, start int) bool {
	if q.Barrier == nil {
		return false
	}
	for _, n := range b.Nodes[start:] {
		if q.Barrier(n) {
			return true
		}
	}
	return false
}

// PathExists reports whether execution can flow from node `fromNode` inside
// block `from` to block `to` without crossing a barrier. The scan starts
// after fromNode within `from` (pass nil to start at the block head). A
// path that reaches `to` at all counts — barriers inside `to` itself are
// not consulted (callers include them in the query when the target block's
// own nodes matter).
func (c *CFG) PathExists(from *Block, fromNode ast.Node, to *Block, q *PathQuery) bool {
	start := 0
	if fromNode != nil {
		for i, n := range from.Nodes {
			if n == fromNode || containsNode(n, fromNode) {
				start = i + 1
				break
			}
		}
	}
	if q.blockHasBarrier(from, start) {
		return false
	}
	seen := make([]bool, len(c.Blocks))
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		for _, e := range b.Succs {
			if q.AvoidEdge != nil && q.AvoidEdge(b, e) {
				continue
			}
			next := e.To
			if next == to {
				return true
			}
			if seen[next.Index] {
				continue
			}
			seen[next.Index] = true
			if q.AvoidBlock != nil && q.AvoidBlock(next) {
				continue
			}
			if q.blockHasBarrier(next, 0) {
				continue
			}
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// containsNode reports whether outer's subtree contains inner.
func containsNode(outer, inner ast.Node) bool {
	if outer == nil || inner == nil {
		return false
	}
	if inner.Pos() < outer.Pos() || inner.End() > outer.End() {
		return false
	}
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if n == inner {
			found = true
		}
		return !found
	})
	return found
}

// IterationWithoutBarrier reports whether the loop can complete one full
// iteration — head, body, back to head — without crossing a barrier. It is
// the ctxpoll primitive: false means every iteration path polls.
func (c *CFG) IterationWithoutBarrier(l *Loop, q *PathQuery) bool {
	// The head's own nodes (the loop condition) run on every iteration; a
	// barrier there discharges the whole loop.
	if q.blockHasBarrier(l.Head, 0) {
		return false
	}
	inner := &PathQuery{
		Barrier: q.Barrier,
		AvoidBlock: func(b *Block) bool {
			if b == l.After {
				return true
			}
			return q.AvoidBlock != nil && q.AvoidBlock(b)
		},
		AvoidEdge: func(from *Block, e Edge) bool {
			if e.loopEntry {
				return true
			}
			return q.AvoidEdge != nil && q.AvoidEdge(from, e)
		},
	}
	return c.PathExists(l.Head, nil, l.Head, inner)
}
