package analysis

import (
	"go/ast"
	"strings"
)

// This file holds the AST-walking vocabulary shared by every analyzer in
// the suite. Before the dataflow platform each analyzer carried private
// copies of these helpers (obsguard owned terminates, parshard owned
// unparen and walkChildren); they live here now so the CFG builder, the
// call graph, and the analyzers all speak the same primitives.

// unparen strips any number of enclosing parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// walkChildren applies walk to each direct child node of n. Walkers that
// maintain their own context stacks (loop variables, held locks, loop
// depth) use it to recurse one level at a time instead of ast.Inspect's
// full descent.
func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walk(c)
		return false
	})
}

// terminates reports whether a block always leaves the enclosing block
// (return, panic, continue, break, or goto as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// forEachFuncDecl invokes fn for every function or method declaration with
// a body in the pass's files.
func forEachFuncDecl(pass *Pass, fn func(fd *ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// funcHasMarker reports whether the function declaration carries a
// //lint:<token> marker comment — in its doc comment group or on the line
// of (or directly above) the func keyword. Markers are annotations that
// opt a function into an analyzer's contract (e.g. //lint:hotpath), as
// opposed to escape hatches that silence one diagnostic.
func funcHasMarker(pass *Pass, fd *ast.FuncDecl, token string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if commentMarker(c.Text) == token {
				return true
			}
		}
	}
	pos := pass.Fset.Position(fd.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		key := posKey(pos.Filename, line)
		if pass.suppressed[key][token] {
			return true
		}
	}
	return false
}

// commentMarker extracts the first token of a //lint: comment, or "".
func commentMarker(text string) string {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(text, "lint:") {
		return ""
	}
	fields := strings.Fields(strings.TrimPrefix(text, "lint:"))
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// isPureExpr reports whether evaluating e has no side effects and calls no
// functions: identifiers, selectors, literals, index expressions, and
// arithmetic/comparison operators over them, plus len/cap. ctxpoll uses it
// to sanction the every-K polling idiom — a poll nested under a pure
// condition (`if visits&0xfff == 0 { ... }`) still counts as polled on
// every iteration path, because the gate itself cannot block or diverge.
func isPureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return isPureExpr(e.X)
	case *ast.SelectorExpr:
		return isPureExpr(e.X)
	case *ast.IndexExpr:
		return isPureExpr(e.X) && isPureExpr(e.Index)
	case *ast.UnaryExpr:
		return isPureExpr(e.X)
	case *ast.BinaryExpr:
		return isPureExpr(e.X) && isPureExpr(e.Y)
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || (id.Name != "len" && id.Name != "cap") {
			return false
		}
		for _, a := range e.Args {
			if !isPureExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}
