package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InternFreeze enforces the immutability contract of interned state values.
// The shared successor caches (core.SuccessorCache / core.KeyIndex) hand
// out dense ids for states keyed by their canonical Key() at intern time
// and alias the state values across every analysis that runs over the same
// model; a field write after interning desynchronizes the value from its
// registered key and corrupts every memo table joined on the id. The
// core.State doc comment demands immutability — this analyzer makes the
// demand mechanical: any write to a field of a state type outside that
// type's constructor/clone functions is flagged.
//
// State types are recognized structurally (so fixtures and future model
// packages are covered without registration): a named struct whose method
// set carries the core.State fingerprint Key() string, Local(int) string,
// and FailedAt(int) bool. Constructor/clone functions are those named
// New*/new*/Clone*/clone*.
var InternFreeze = &Analyzer{
	Name:     "internfreeze",
	Suppress: "mutates",
	Doc: "flag writes to fields of interned state types outside their constructor/clone " +
		"functions; aliased mutation corrupts the shared successor caches",
	Run: runInternFreeze,
}

func runInternFreeze(pass *Pass) error {
	memo := make(map[*types.Named]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructorName(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// Function literals inside constructors were already skipped
				// with their parent; literals inside ordinary functions are
				// walked here and checked like their parent.
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkInternedWrite(pass, memo, lhs)
					}
				case *ast.IncDecStmt:
					checkInternedWrite(pass, memo, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// isConstructorName reports whether the function may legitimately
// initialize state fields.
func isConstructorName(name string) bool {
	for _, prefix := range []string{"new", "New", "clone", "Clone"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkInternedWrite flags lhs when it writes (directly or through
// index/star chains) to a field of an interned state type.
func checkInternedWrite(pass *Pass, memo map[*types.Named]bool, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if ok && isInternedStateType(named, memo) {
				pass.Reportf(e.Pos(),
					"write to field %s of interned state type %s outside a constructor/clone: interned states are aliased by the shared successor cache and must stay immutable after KeyIndex assigns their id",
					e.Sel.Name, named.Obj().Name())
			}
			return
		default:
			return
		}
	}
}

// isInternedStateType reports whether named carries the core.State method
// fingerprint.
func isInternedStateType(named *types.Named, memo map[*types.Named]bool) bool {
	if v, ok := memo[named]; ok {
		return v
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		memo[named] = false
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	ok := hasMethodSig(ms, "Key", nil, []string{"string"}) &&
		hasMethodSig(ms, "Local", []string{"int"}, []string{"string"}) &&
		hasMethodSig(ms, "FailedAt", []string{"int"}, []string{"bool"})
	memo[named] = ok
	return ok
}

// hasMethodSig reports whether the method set contains name with the given
// basic-typed parameter and result shapes.
func hasMethodSig(ms *types.MethodSet, name string, params, results []string) bool {
	sel := ms.Lookup(nil, name)
	if sel == nil {
		// Unexported lookup above only covers same-package; try a scan for
		// exported names from any package.
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				sel = ms.At(i)
				break
			}
		}
		if sel == nil {
			return false
		}
	}
	sig, ok := sel.Obj().Type().(*types.Signature)
	if !ok {
		return false
	}
	return tupleMatches(sig.Params(), params) && tupleMatches(sig.Results(), results)
}

func tupleMatches(t *types.Tuple, shapes []string) bool {
	if t.Len() != len(shapes) {
		return false
	}
	for i := 0; i < t.Len(); i++ {
		b, ok := t.At(i).Type().(*types.Basic)
		if !ok || b.Name() != shapes[i] {
			return false
		}
	}
	return true
}
