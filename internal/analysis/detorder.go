package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder enforces the determinism contract of the engine packages: the
// golden experiment outputs, the bit-identical parallel/serial equivalence
// of ExploreParallel and NewFieldParallel, and the witness equality of
// CertifyGraph vs Certify all assume that every traversal the engine makes
// is a pure function of the model. Three constructs silently break that:
//
//   - ranging over a map (iteration order is randomized per run),
//   - reading the wall clock (time.Now),
//   - drawing from the unseeded global math/rand source.
//
// A map range is allowed when its result is laundered through an explicit
// sort later in the same function (the collect-keys-then-sort.Strings
// idiom), or when annotated //lint:nondet for the provably order-
// insensitive cases (pure max/sum folds, instrumentation timings).
var DetOrder = &Analyzer{
	Name:     "detorder",
	Suppress: "nondet",
	Doc: "flag nondeterministic iteration and clocks in deterministic engine packages: " +
		"map ranges not fed through an explicit sort, time.Now, and unseeded math/rand",
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetOrderFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkDetOrderFunc(pass *Pass, body *ast.BlockStmt) {
	// Sort-call positions inside this function; a map range earlier in the
	// text is considered laundered by them.
	var sortPositions []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(pass, call, sortingPackages, nil) {
			sortPositions = append(sortPositions, call.Pos())
		}
		return true
	})
	sortedAfter := func(pos token.Pos) bool {
		for _, sp := range sortPositions {
			if sp > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !sortedAfter(n.Pos()) {
				pass.Reportf(n.Pos(),
					"range over map %s: iteration order is nondeterministic in a deterministic engine package; collect and sort the keys, or annotate //lint:nondet if the fold is order-insensitive",
					exprString(n.X))
			}
		case *ast.CallExpr:
			if isPkgCall(pass, n, map[string]bool{"time": true}, func(name string) bool { return name == "Now" }) {
				pass.Reportf(n.Pos(),
					"time.Now in a deterministic engine package: wall-clock reads make runs irreproducible; annotate //lint:nondet if this only feeds instrumentation")
			}
			if isPkgCall(pass, n, map[string]bool{"math/rand": true, "math/rand/v2": true},
				func(name string) bool { return !strings.HasPrefix(name, "New") }) {
				pass.Reportf(n.Pos(),
					"unseeded math/rand call in a deterministic engine package: use rand.New(rand.NewSource(seed)) so runs are reproducible")
			}
		}
		return true
	})
}

// sortingPackages are the packages whose calls launder a preceding map
// range: collecting keys and sorting them restores a canonical order.
var sortingPackages = map[string]bool{"sort": true, "slices": true}

// isPkgCall reports whether call invokes a package-level function of one of
// the named packages (matched by import path), optionally filtered by
// function name.
func isPkgCall(pass *Pass, call *ast.CallExpr, pkgs map[string]bool, nameOK func(string) bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || !pkgs[pn.Imported().Path()] {
		return false
	}
	return nameOK == nil || nameOK(sel.Sel.Name)
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
