package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLoaderOverlayInjectsViolation drives the in-process half of the
// acceptance criterion: overlaying internal/valence/field.go with an added
// unsorted map range must surface a detorder diagnostic, without touching
// the working tree.
func TestLoaderOverlayInjectsViolation(t *testing.T) {
	root := moduleRoot(t)
	target := filepath.Join(root, "internal", "valence", "field.go")
	body, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	planted := append([]byte{}, body...)
	planted = append(planted, []byte(`

func overlayPlantedFold(weights map[string]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
`)...)

	loader := &analysis.Loader{Dir: root, Overlay: map[string][]byte{target: planted}}
	pkgs, err := loader.Load("./internal/valence")
	if err != nil {
		t.Fatalf("loading overlaid package: %v", err)
	}
	var pkg *analysis.LoadedPackage
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if pkg != nil {
			t.Fatalf("two non-dep packages matched ./internal/valence: %s and %s", pkg.ImportPath, p.ImportPath)
		}
		pkg = p
	}
	if pkg == nil {
		t.Fatal("no non-dep package matched ./internal/valence")
	}
	if !analysis.Applies(analysis.DetOrder, pkg.ImportPath) {
		t.Fatalf("detorder does not apply to %s", pkg.ImportPath)
	}
	diags, err := analysis.RunAnalyzer(analysis.DetOrder, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "range over map weights") {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted map range not reported; diagnostics: %v", diags)
	}
}

// TestLoaderCleanPackages loads the internal tree without an overlay and
// expects the full applicable suite to come back empty. It mirrors the
// cmd/lint standalone driver: one fact store shared across the walk, with
// fact-producing analyzers also run on packages outside their reporting
// scope, so cross-package properties (chaos.Check polls the context, obs
// nil-predicate helpers) reach the engine packages that rely on them.
func TestLoaderCleanPackages(t *testing.T) {
	loader := &analysis.Loader{Dir: moduleRoot(t)}
	pkgs, err := loader.Load("./internal/...")
	if err != nil {
		t.Fatalf("loading internal packages: %v", err)
	}
	seen := make(map[string]bool)
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		seen[pkg.ImportPath] = true
		for _, a := range analysis.All() {
			applies := analysis.Applies(a, pkg.ImportPath) && !pkg.DepOnly
			if !applies && !analysis.FactProducer(a) {
				continue
			}
			diags, err := analysis.RunAnalyzerFacts(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, facts)
			if err != nil {
				t.Fatal(err)
			}
			if !applies {
				continue
			}
			for _, d := range diags {
				if d.Suppressed {
					continue
				}
				t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
	for _, want := range []string{"repro/internal/core", "repro/internal/valence", "repro/internal/decision", "repro/internal/knowledge"} {
		if !seen[want] {
			t.Errorf("engine package %s not loaded", want)
		}
	}
}

// TestLoaderNarrowPatternDepFacts pins the cross-package fact story for
// narrowed patterns: loading just ./internal/valence must still bring in
// its module dependencies (marked DepOnly) in dependency order, so the
// polls fact of chaos.Check reaches the valence layer loops and the suite
// stays clean — the same walk cmd/lint performs when given one package.
func TestLoaderNarrowPatternDepFacts(t *testing.T) {
	loader := &analysis.Loader{Dir: moduleRoot(t)}
	pkgs, err := loader.Load("./internal/valence")
	if err != nil {
		t.Fatalf("loading ./internal/valence: %v", err)
	}
	depOnly := make(map[string]bool)
	for _, p := range pkgs {
		if p.DepOnly {
			depOnly[p.ImportPath] = true
		}
	}
	if !depOnly["repro/internal/chaos"] {
		t.Fatalf("repro/internal/chaos not loaded as a DepOnly package; deps: %v", depOnly)
	}
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			applies := analysis.Applies(a, pkg.ImportPath) && !pkg.DepOnly
			if !applies && !analysis.FactProducer(a) {
				continue
			}
			diags, err := analysis.RunAnalyzerFacts(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, facts)
			if err != nil {
				t.Fatal(err)
			}
			if !applies {
				continue
			}
			for _, d := range diags {
				if !d.Suppressed {
					t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				}
			}
		}
	}
}

// writeModule materializes a synthetic module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderOverlayNonexistentFile: an overlay entry whose path matches no
// listed Go file must be ignored, not invent a package or fail the load.
func TestLoaderOverlayNonexistentFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module synthetic\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
	})
	ghost := filepath.Join(dir, "a", "ghost.go")
	loader := &analysis.Loader{Dir: dir, Overlay: map[string][]byte{ghost: []byte("package a\n\nfunc Ghost() {}\n")}}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load with dangling overlay: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Pkg.Scope().Lookup("Ghost") != nil {
		t.Fatalf("overlay of a nonexistent file leaked a declaration into the package")
	}
}

// TestLoaderTestOnlyPackage: a directory holding only _test.go files has no
// GoFiles and must be skipped without failing the surrounding load.
func TestLoaderTestOnlyPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         "module synthetic\n\ngo 1.22\n",
		"a/a.go":         "package a\n\nfunc A() int { return 1 }\n",
		"b/only_test.go": "package b\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n",
	})
	loader := &analysis.Loader{Dir: dir}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load with test-only package: %v", err)
	}
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, "/b") {
			t.Fatalf("test-only package %s should have been skipped", p.ImportPath)
		}
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1 (only a)", len(pkgs))
	}
}

// TestLoaderBrokenDependency: when a dependency does not compile there is
// no export data to import against; the load must fail loudly with the go
// command's diagnostic rather than typecheck against stale or missing
// exports.
func TestLoaderBrokenDependency(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module synthetic\n\ngo 1.22\n",
		"bad/b.go": "package bad\n\nfunc B() int { return \"not an int\" }\n",
		"use/u.go": "package use\n\nimport \"synthetic/bad\"\n\nfunc U() int { return bad.B() }\n",
	})
	loader := &analysis.Loader{Dir: dir}
	_, err := loader.Load("./use")
	if err == nil {
		t.Fatalf("Load against a broken dependency succeeded; want a loud failure")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error does not name the broken dependency: %v", err)
	}
}
