package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLoaderOverlayInjectsViolation drives the in-process half of the
// acceptance criterion: overlaying internal/valence/field.go with an added
// unsorted map range must surface a detorder diagnostic, without touching
// the working tree.
func TestLoaderOverlayInjectsViolation(t *testing.T) {
	root := moduleRoot(t)
	target := filepath.Join(root, "internal", "valence", "field.go")
	body, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	planted := append([]byte{}, body...)
	planted = append(planted, []byte(`

func overlayPlantedFold(weights map[string]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
`)...)

	loader := &analysis.Loader{Dir: root, Overlay: map[string][]byte{target: planted}}
	pkgs, err := loader.Load("./internal/valence")
	if err != nil {
		t.Fatalf("loading overlaid package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !analysis.Applies(analysis.DetOrder, pkg.ImportPath) {
		t.Fatalf("detorder does not apply to %s", pkg.ImportPath)
	}
	diags, err := analysis.RunAnalyzer(analysis.DetOrder, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "range over map weights") {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted map range not reported; diagnostics: %v", diags)
	}
}

// TestLoaderCleanPackages loads the engine packages without an overlay and
// expects the full applicable suite to come back empty.
func TestLoaderCleanPackages(t *testing.T) {
	loader := &analysis.Loader{Dir: moduleRoot(t)}
	pkgs, err := loader.Load("./internal/core", "./internal/valence", "./internal/decision", "./internal/knowledge")
	if err != nil {
		t.Fatalf("loading engine packages: %v", err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d packages, want 4", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			if !analysis.Applies(a, pkg.ImportPath) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
}
