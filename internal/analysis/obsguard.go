package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the two cost rules of the observability layer
// (internal/obs): with instrumentation disabled the hot paths must pay a
// single nil-check per operation, and with it enabled the recorder must be
// fed per layer/depth, never per node.
//
// Rule 1 (nil dominance): every method call on a value of interface type
// obs.Recorder must be dominated by a nil check — inside `if rec != nil`,
// after an early `if rec == nil { return }`, or in the else-arm of a
// nil-test. An unguarded call panics when instrumentation is off (Active
// returns a nil Recorder) or silently re-introduces per-call interface
// dispatch on the disabled path.
//
// Rule 2 (batching): a Recorder call nested two or more loops deep inside
// one function is per-node instrumentation (the depth/layer loop is one
// level; anything deeper iterates states or edges). Such counters must be
// accumulated locally and published once per layer, as exploreID and the
// field sweep do.
//
// Exception: a recover block — `if r := recover(); r != nil { ... }`, the
// panic-containment idiom of resilient.Pool's workers — is a valid
// recorder-call dominator for rule 2: it runs at most once per frame no
// matter how many loops enclose it, so recording a panic there is a cold
// path, not per-node instrumentation. Rule 1 still applies inside it.
//
// The span tracer (*obs.Tracer) follows the same contract: Trace returns
// nil when tracing is off, so every Tracer method call needs the rule-1
// nil dominance, and beginning a span (Begin/BeginLane) is subject to the
// rule-2 nesting ban — a span per node floods the journal exactly like a
// per-node counter. Ending a span is exempt from rule 2: End of the zero
// span is a no-op, so early-exit paths deep in loops may End
// unconditionally.
var ObsGuard = &Analyzer{
	Name:     "obsguard",
	Suppress: "obs",
	Doc: "flag obs.Recorder and obs.Tracer calls not dominated by a nil check, and recorder " +
		"calls or span starts nested two or more loops deep (per-node instrumentation " +
		"must batch per layer); recover blocks are exempt from the nesting rule",
	Run: runObsGuard,
}

func runObsGuard(pass *Pass) error {
	// Export nil-predicate facts before walking, so helpers defined later in
	// the same package (or in any dependency — their facts arrived with the
	// store) count as guards.
	exportNilPredicates(pass)
	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		w := &obsWalker{pass: pass, guarded: make(map[types.Object]bool)}
		// A Recorder parameter of a function that immediately
		// early-returns on nil is the dominant pattern; parameters
		// start unguarded and earn the guard from that check.
		w.walkBody(fd.Body)
	})
	return nil
}

// nilPredFact marks a function whose boolean result is exactly "parameter
// Param is non-nil" for a Recorder/Tracer-typed parameter. Callers may use
// `if helper(rec)` (or early-return on `!helper(rec)`) as a rule-1 guard;
// the fact travels across packages so a guard helper in one package
// dominates calls in its importers.
type nilPredFact struct {
	Param int
}

// exportNilPredicates detects single-expression nil predicates —
// `func active(r obs.Recorder) bool { return r != nil }` — and exports a
// fact for each. Only the exact `return param != nil` shape qualifies: it
// makes the predicate an iff, so both the true branch (non-nil) and the
// negated early-return (nil) directions are sound.
func exportNilPredicates(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		if fd.Recv != nil || len(fd.Body.List) != 1 {
			return
		}
		ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return
		}
		cmp, ok := unparen(ret.Results[0]).(*ast.BinaryExpr)
		if !ok || cmp.Op != token.NEQ {
			return
		}
		var tested ast.Expr
		switch {
		case isNilIdent(cmp.Y):
			tested = unparen(cmp.X)
		case isNilIdent(cmp.X):
			tested = unparen(cmp.Y)
		default:
			return
		}
		id, ok := tested.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || (!isRecorderInterface(obj.Type()) && !isTracerPointer(obj.Type())) {
			return
		}
		if fd.Type.Params == nil {
			return
		}
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == obj {
					fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if ok {
						pass.ExportFact(ObjKey(fn), nilPredFact{Param: idx})
					}
					return
				}
				idx++
			}
		}
	})
}

// obsWalker tracks, along one lexical path through a function, which
// Recorder-typed variables are dominated by a nil check and how many loops
// enclose the current statement.
type obsWalker struct {
	pass      *Pass
	guarded   map[types.Object]bool
	loopDepth int
}

// walkBody walks the statements of a block, propagating "guarded after
// early return" facts from `if x == nil { return }` statements to the
// statements that follow them in the same block.
func (w *obsWalker) walkBody(block *ast.BlockStmt) {
	var restored []types.Object
	for _, stmt := range block.List {
		w.walkStmt(stmt)
		if ifs, ok := stmt.(*ast.IfStmt); ok {
			for _, obj := range w.nilEqualObjects(ifs.Cond) {
				if terminates(ifs.Body) && !w.guarded[obj] {
					w.guarded[obj] = true
					restored = append(restored, obj)
				}
			}
		}
	}
	for _, obj := range restored {
		delete(w.guarded, obj)
	}
}

func (w *obsWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.checkExpr(s.Cond)
		// `if x != nil { ... }` guards the then-branch;
		// `if x == nil { ... } else { ... }` guards the else-branch.
		if isRecoverGuard(s) {
			// A recover block runs at most once per frame regardless of
			// enclosing loops: recording the panic there is a cold path, so
			// the nesting rule is suspended inside it.
			saved := w.loopDepth
			w.loopDepth = 0
			w.withGuards(w.nilNotEqualObjects(s.Cond), func() { w.walkBody(s.Body) })
			w.loopDepth = saved
		} else {
			w.withGuards(w.nilNotEqualObjects(s.Cond), func() { w.walkBody(s.Body) })
		}
		if s.Else != nil {
			w.withGuards(w.nilEqualObjects(s.Cond), func() { w.walkStmt(s.Else) })
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.loopDepth++
		w.walkBody(s.Body)
		w.loopDepth--
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.loopDepth++
		w.walkBody(s.Body)
		w.loopDepth--
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		w.walkBody(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Assign)
		w.walkBody(s.Body)
	case *ast.SelectStmt:
		w.walkBody(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.checkExpr(e)
		}
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.walkStmt(s.Comm)
		}
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	default:
		// Leaf statements: scan their expressions for recorder calls and
		// nested function literals.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				nested := &obsWalker{pass: w.pass, guarded: make(map[types.Object]bool)}
				// A closure inherits the guards that dominate its creation
				// site: `if rec != nil { defer func() { rec.Event(...) }() }`
				// is a guarded call.
				for obj := range w.guarded {
					nested.guarded[obj] = true
				}
				nested.loopDepth = w.loopDepth
				nested.walkBody(n.Body)
				return false
			case *ast.CallExpr:
				w.checkCall(n)
			}
			return true
		})
	}
}

// checkExpr scans a condition or operand expression for recorder calls.
func (w *obsWalker) checkExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkCall(call)
		}
		return true
	})
}

// withGuards runs fn with the given objects temporarily marked guarded.
func (w *obsWalker) withGuards(objs []types.Object, fn func()) {
	var added []types.Object
	for _, obj := range objs {
		if !w.guarded[obj] {
			w.guarded[obj] = true
			added = append(added, obj)
		}
	}
	fn()
	for _, obj := range added {
		delete(w.guarded, obj)
	}
}

// checkCall applies both rules to one call expression.
func (w *obsWalker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := sel.X
	for {
		if p, ok := recv.(*ast.ParenExpr); ok {
			recv = p.X
			continue
		}
		break
	}
	t := w.pass.TypeOf(recv)
	isRec := isRecorderInterface(t)
	isTr := !isRec && isTracerPointer(t)
	if !isRec && !isTr {
		return
	}
	kind, nilSource := "obs.Recorder", "Active"
	if isTr {
		kind, nilSource = "obs.Tracer", "Trace"
	}
	// Rule 2: every Recorder method is per-node work in a nested loop; for
	// the tracer only beginning a span is — End of a never-begun span is
	// the sanctioned no-op on deep early-exit paths.
	if w.loopDepth >= 2 && (isRec || sel.Sel.Name == "Begin" || sel.Sel.Name == "BeginLane") {
		w.pass.Reportf(call.Pos(),
			"%s.%s inside a nested loop: per-node instrumentation; accumulate locally and publish once per layer (//lint:obs to override)",
			kind, sel.Sel.Name)
	}
	id, ok := recv.(*ast.Ident)
	if !ok {
		w.pass.Reportf(call.Pos(),
			"%s.%s on an unnamed receiver: bind it to a variable and nil-check it so the disabled path costs one branch",
			kind, sel.Sel.Name)
		return
	}
	if obj := w.pass.ObjectOf(id); obj == nil || !w.guarded[obj] {
		w.pass.Reportf(call.Pos(),
			"%s.%s not dominated by a nil check: guard with `if %s != nil` (%s returns nil when instrumentation is off)",
			kind, sel.Sel.Name, id.Name, nilSource)
	}
}

// nilNotEqualObjects returns the Recorder-typed objects x for which cond
// guarantees x != nil when true (x != nil conjuncts of an && chain).
func (w *obsWalker) nilNotEqualObjects(cond ast.Expr) []types.Object {
	return w.nilCompareObjects(cond, token.NEQ, token.LAND)
}

// nilEqualObjects returns the Recorder-typed objects x for which cond
// guarantees x == nil when true (x == nil disjuncts... conservatively, only
// a bare x == nil or an || chain of them).
func (w *obsWalker) nilEqualObjects(cond ast.Expr) []types.Object {
	return w.nilCompareObjects(cond, token.EQL, token.LOR)
}

// nilCompareObjects collects idents compared to nil with op across chainOp
// combinations of cond. A call of a nil-predicate helper (see nilPredFact)
// counts as `arg != nil`; its negation counts as `arg == nil`.
func (w *obsWalker) nilCompareObjects(cond ast.Expr, op, chainOp token.Token) []types.Object {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return w.nilCompareObjects(e.X, op, chainOp)
	case *ast.CallExpr:
		if op == token.NEQ {
			if obj := w.nilPredicateArg(e); obj != nil {
				return []types.Object{obj}
			}
		}
		return nil
	case *ast.UnaryExpr:
		if e.Op == token.NOT && op == token.EQL {
			if call, ok := unparen(e.X).(*ast.CallExpr); ok {
				if obj := w.nilPredicateArg(call); obj != nil {
					return []types.Object{obj}
				}
			}
		}
		return nil
	case *ast.BinaryExpr:
		if e.Op == chainOp {
			return append(w.nilCompareObjects(e.X, op, chainOp), w.nilCompareObjects(e.Y, op, chainOp)...)
		}
		if e.Op != op {
			return nil
		}
		var id *ast.Ident
		if isNilIdent(e.Y) {
			id, _ = e.X.(*ast.Ident)
		} else if isNilIdent(e.X) {
			id, _ = e.Y.(*ast.Ident)
		}
		if id == nil {
			return nil
		}
		obj := w.pass.ObjectOf(id)
		if obj == nil || (!isRecorderInterface(obj.Type()) && !isTracerPointer(obj.Type())) {
			return nil
		}
		return []types.Object{obj}
	}
	return nil
}

// nilPredicateArg resolves a call of a nil-predicate helper to the
// Recorder/Tracer object it tests, or nil when the callee carries no
// nilPredFact (exported by this package's pre-pass or imported from a
// dependency's).
func (w *obsWalker) nilPredicateArg(call *ast.CallExpr) types.Object {
	callee := CalleeOf(w.pass, call)
	if callee == nil {
		return nil
	}
	var fact nilPredFact
	if !w.pass.ImportFact(ObjKey(callee), &fact) {
		return nil
	}
	if fact.Param < 0 || fact.Param >= len(call.Args) {
		return nil
	}
	id, ok := unparen(call.Args[fact.Param]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pass.ObjectOf(id)
	if obj == nil || (!isRecorderInterface(obj.Type()) && !isTracerPointer(obj.Type())) {
		return nil
	}
	return obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isRecoverGuard reports whether the if-statement is the panic-containment
// idiom `if r := recover(); r != nil` (or a bare `if recover() != nil`).
func isRecoverGuard(s *ast.IfStmt) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return false
	}
	var tested ast.Expr
	switch {
	case isNilIdent(cond.Y):
		tested = cond.X
	case isNilIdent(cond.X):
		tested = cond.Y
	default:
		return false
	}
	if isRecoverCall(tested) {
		return true
	}
	id, ok := tested.(*ast.Ident)
	if !ok || s.Init == nil {
		return false
	}
	asg, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	return ok && lhs.Name == id.Name && isRecoverCall(asg.Rhs[0])
}

// isRecoverCall reports whether e is a call of the recover builtin.
func isRecoverCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "recover"
}

// isRecorderInterface reports whether t is the named interface Recorder of
// an obs package (matched by path suffix so fixtures can fake the package).
func isRecorderInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Recorder" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// isTracerPointer reports whether t is *Tracer of an obs package (matched
// by path suffix, like isRecorderInterface, so fixtures can fake it).
func isTracerPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Tracer" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
