package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces wrapped-error discipline around the engine's sentinel
// errors (core.ErrNodeBudget, the codec and validation sentinels). The
// engine returns these wrapped with context — fmt.Errorf("explore depth
// %d: %w", d, ErrNodeBudget) — so a direct `err == ErrNodeBudget`
// comparison silently stops matching the moment a call site adds context.
// errors.Is traverses the wrap chain; == compares one link. Any equality
// or inequality comparison whose operand is a package-level exported
// sentinel (an Err*-named variable of type error) is flagged.
var SentErr = &Analyzer{
	Name:     "senterr",
	Suppress: "sentinel",
	Doc: "flag ==/!= comparisons against sentinel error variables; wrapped errors only " +
		"match through errors.Is",
	Run: runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			name, ok := sentinelOperand(pass, be.X)
			if !ok {
				name, ok = sentinelOperand(pass, be.Y)
			}
			if !ok {
				return true
			}
			verb := "errors.Is(err, %s)"
			if be.Op == token.NEQ {
				verb = "!errors.Is(err, %s)"
			}
			pass.Reportf(be.Pos(),
				"sentinel error %s compared with %s: the engine wraps sentinels with context, use "+verb,
				name, be.Op, name)
			return true
		})
	}
	return nil
}

// isSentinelName matches the Go sentinel naming convention: "Err" followed
// by an upper-case word start (ErrNodeBudget, ErrRange). Plain "Error" or
// "Errs" style names are not sentinels.
func isSentinelName(name string) bool {
	if !strings.HasPrefix(name, "Err") || len(name) < 4 {
		return false
	}
	c := name[3]
	return c >= 'A' && c <= 'Z'
}

// sentinelOperand reports whether e names a package-level error variable
// with the Err* naming convention, returning its display name.
func sentinelOperand(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || !isSentinelName(v.Name()) {
		return "", false
	}
	// Package-level: parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	named, ok := v.Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return exprString(e), true
}
