package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces access-mode consistency for atomically owned
// fields: a struct field whose address is handed to sync/atomic anywhere
// is owned by the atomic protocol everywhere, and a plain read or write of
// it is a data race — one -race only catches when a test actually
// interleaves the two accesses. This is the static complement the obs
// layer's counters rely on: Histogram.counts, the journal drop counters,
// and the sharded cache's published snapshots are all correct only because
// no path touches them non-atomically.
//
// Mechanically: the analyzer collects every field f such that &x.f (or
// &x.f[i]) appears as an argument to a sync/atomic function, exports a
// fact per collected field (keyed by the owning named type, so a package
// doing plain accesses to an imported type's atomic field is flagged too),
// then reports every other plain selector use of those fields. Exempt
// uses: the atomic call arguments themselves, len/cap (capacity is a
// property of the type, not the values), and `for i := range x.f` loops
// that bind no element value (they read the array's length only). Fields
// of the typed atomic wrappers (atomic.Int64 etc.) need no analysis —
// their plain methods are the atomic protocol.
var AtomicField = &Analyzer{
	Name:     "atomicfield",
	Suppress: "atomic",
	Doc: "flag plain reads/writes of struct fields that are accessed through sync/atomic " +
		"elsewhere in the package (or in a dependency, via facts)",
	Run: runAtomicField,
}

// atomicOwnedFact marks a field as owned by the atomic protocol.
type atomicOwnedFact struct{}

func runAtomicField(pass *Pass) error {
	owned := make(map[*types.Var]bool)    // field objects seen under sync/atomic here
	ownedKeys := make(map[string]bool)    // their FieldKeys, for export
	sanctioned := make(map[ast.Node]bool) // selector nodes inside atomic args / len / cap / range-len
	for _, file := range pass.Files {
		collectAtomicOwned(pass, file, owned, ownedKeys, sanctioned)
	}
	for key := range ownedKeys {
		pass.ExportFact(key, atomicOwnedFact{})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			f, ok := pass.ObjectOf(sel.Sel).(*types.Var)
			if !ok || !f.IsField() {
				return true
			}
			if !owned[f] {
				var fact atomicOwnedFact
				if key := FieldKey(pass.TypeOf(sel.X), sel.Sel.Name); key == "" || !pass.ImportFact(key, &fact) {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"plain access of %s, which is accessed with sync/atomic elsewhere: use the atomic protocol on every path (//lint:atomic to override)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// collectAtomicOwned finds sync/atomic call sites, records the fields
// whose addresses they take (both as objects for local matching and as
// FieldKeys for fact export), and sanctions the exempt selector nodes.
func collectAtomicOwned(pass *Pass, file *ast.File, owned map[*types.Var]bool, ownedKeys map[string]bool, sanctioned map[ast.Node]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && (b.Name() == "len" || b.Name() == "cap") {
					sanctionSelectors(n.Args, sanctioned)
					return true
				}
			}
			callee := CalleeOf(pass, n)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range n.Args {
				ue, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				sanctionSelectors([]ast.Expr{ue}, sanctioned)
				if sel, f := addressedField(pass, ue.X); f != nil {
					owned[f] = true
					if key := FieldKey(pass.TypeOf(sel.X), sel.Sel.Name); key != "" {
						ownedKeys[key] = true
					}
				}
			}
		case *ast.RangeStmt:
			// `for i := range x.f` reads only the length.
			if n.Value == nil {
				if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
		}
		return true
	})
}

// sanctionSelectors marks every selector in the expressions as exempt.
func sanctionSelectors(exprs []ast.Expr, sanctioned map[ast.Node]bool) {
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				sanctioned[sel] = true
			}
			return true
		})
	}
}

// addressedField resolves &x.f or &x.f[i] to the field object f.
func addressedField(pass *Pass, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	e = unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if f, ok := pass.ObjectOf(sel.Sel).(*types.Var); ok && f.IsField() {
		return sel, f
	}
	return nil, nil
}
