package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the package-level static call graph: for every function or
// method declared in the pass's files, the list of functions it calls.
// Calls made inside function literals are attributed to the enclosing
// declaration (the literal runs on some frame of that function's dynamic
// extent, or is its worker — either way the enclosing decl is the unit
// facts attach to). Interface-method callees appear as the interface's
// *types.Func: they are recorded but carry no defining body, so fact
// propagation stops there unless a fact was exported against the interface
// method's key.
type CallGraph struct {
	// Decls maps each declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees maps each declared function to its callees in source order,
	// deduplicated.
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the call graph of the pass's package.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		Callees: make(map[*types.Func][]*types.Func),
	}
	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		g.Decls[fn] = fd
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := CalleeOf(pass, call); callee != nil && !seen[callee] {
				seen[callee] = true
				g.Callees[fn] = append(g.Callees[fn], callee)
			}
			return true
		})
	})
	return g
}

// CalleeOf resolves the function or method a call expression invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func CalleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Propagate runs a bottom-up fixpoint over the call graph: it repeatedly
// calls derive(fn, fd) for every declared function until no call changes
// the answer of has(fn). Analyzers use it to close intra-package fact sets
// (does this helper transitively poll? transitively allocate?) before the
// final reporting walk; cross-package closure comes for free because
// imported facts were merged into the store before the pass ran.
func (g *CallGraph) Propagate(derive func(fn *types.Func, fd *ast.FuncDecl) bool) {
	for changed := true; changed; {
		changed = false
		for fn, fd := range g.Decls {
			if derive(fn, fd) {
				changed = true
			}
		}
	}
}
