// Package analysistest is a file-fixture harness for the engine-invariant
// analyzer suite, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the stdlib-only framework in internal/analysis.
//
// Fixtures live in GOPATH-style trees: testdata/src/<importpath>/*.go.
// Expected diagnostics are declared in the fixture source with trailing
// comments of the form
//
//	code() // want "regexp"
//
// Each quoted pattern must match (regexp search, not full match) the
// message of exactly one diagnostic reported on that line; diagnostics
// without a matching want, and wants without a matching diagnostic, fail
// the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at srcRoot/<pkgPath>, runs the analyzer,
// and compares reported diagnostics against the // want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	RunWithDeps(t, srcRoot, a, pkgPath)
}

// RunWithDeps is Run with cross-package fact flow: each dep fixture package
// is analyzed first (facts only — its diagnostics are discarded) and the
// accumulated store feeds the target package's run, exactly as the
// dependency-ordered cmd/lint walk would. Facts cross via string keys, so
// the deps and the target seeing different types.Object identities is not
// only tolerated but part of what the test exercises.
func RunWithDeps(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPath string, deps ...string) {
	t.Helper()
	facts := analysis.NewFactStore()
	for _, dep := range deps {
		lp, err := analysis.LoadTestdataPackage(srcRoot, dep)
		if err != nil {
			t.Fatalf("loading dep fixture %s: %v", dep, err)
		}
		if _, err := analysis.RunAnalyzerFacts(a, lp.Fset, lp.Files, lp.Pkg, lp.Info, facts); err != nil {
			t.Fatalf("running %s on dep %s: %v", a.Name, dep, err)
		}
	}
	lp, err := analysis.LoadTestdataPackage(srcRoot, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	all, err := analysis.RunAnalyzerFacts(a, lp.Fset, lp.Files, lp.Pkg, lp.Info, facts)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	var diags []analysis.Diagnostic
	for _, d := range all {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}

	wants, err := collectWants(lp)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgPath, err)
	}

	for _, d := range diags {
		pos := lp.Fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant finds the first unmatched want on the diagnostic's line whose
// pattern matches the message, marks it matched, and returns it.
func matchWant(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants extracts the // want expectations from the fixture's
// comments. A single comment may carry several quoted patterns.
func collectWants(lp *analysis.LoadedPackage) ([]*want, error) {
	var wants []*want
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWantComment(lp, c)
				if err != nil {
					return nil, err
				}
				wants = append(wants, ws...)
			}
		}
	}
	return wants, nil
}

func parseWantComment(lp *analysis.LoadedPackage, c *ast.Comment) ([]*want, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	pos := lp.Fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var wants []*want
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("%s:%d: want pattern must be a quoted string, got %q", pos.Filename, pos.Line, rest)
		}
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
		rest = strings.TrimSpace(remainder)
	}
	return wants, nil
}

// cutStringLit splits one leading Go string literal off s, returning its
// unquoted value and the remainder.
func cutStringLit(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("unquoting %s: %v", s[:i+1], err)
			}
			return lit, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want pattern in %s", s)
}
