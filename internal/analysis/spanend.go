package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd enforces the tracer layer's balance contract: every span started
// with Tracer.Begin or Tracer.BeginLane is Ended on all exit paths of the
// function that started it. An unended span never reaches the journal —
// its duration, its children's parent edge, and cmd/obsreport's self-time
// attribution silently vanish for exactly the runs being debugged.
//
// Accepted shapes, in the order they are tried:
//
//   - direct pass: the Begin call is an argument of an End call —
//     `defer tr.End(tr.Begin("phase"))`, the dominant engine idiom;
//   - escape: the span is returned, stored into a struct/map, sent on a
//     channel, or passed to a helper other than End — ownership moved, the
//     balance obligation moves with it;
//   - flow cover: for a span assigned to a variable, every CFG path from
//     the Begin to the function's exit crosses an `End(span)` — a plain
//     call, or a defer statement (a crossed defer fires at every later
//     return). Paths pruned as infeasible: edges asserting the tracer is
//     nil when the span was begun under a `tr != nil` test (Trace returns
//     nil when tracing is off, so the canonical `if tr != nil { sp =
//     tr.Begin } ... if tr != nil { tr.End(sp) }` pairing is balanced —
//     the tracer cannot change nilness between the two tests). Paths that
//     end in panic never reach the exit and are exempt: End of the zero
//     span is a no-op, so panic cleanup may End unconditionally or not at
//     all.
//
// A span begun and discarded (`tr.Begin("x")` as a statement, or assigned
// to _) can never be balanced and is always reported. Function literals
// are separate contexts with their own obligations (a worker lane begun in
// a closure must end in that closure).
var SpanEnd = &Analyzer{
	Name:     "spanend",
	Suppress: "span",
	Doc: "flag Tracer.Begin/BeginLane spans not Ended on every exit path of the starting " +
		"function (defer, all-paths End, or ownership escape)",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl) {
		checkSpanBalance(pass, fd.Body)
	})
	return nil
}

// checkSpanBalance audits one function-like body, then recurses into the
// function literals it contains (each a fresh context).
func checkSpanBalance(pass *Pass, body *ast.BlockStmt) {
	parents := buildParentMap(body)
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.CallExpr:
			if isSpanBegin(pass, n) {
				checkOneSpan(pass, body, n, parents)
			}
		}
		return true
	})
	for _, lit := range lits {
		checkSpanBalance(pass, lit.Body)
	}
}

// isSpanBegin reports whether the call is Begin/BeginLane on a *obs.Tracer.
func isSpanBegin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Begin" && sel.Sel.Name != "BeginLane") {
		return false
	}
	return isTracerPointer(pass.TypeOf(unparen(sel.X)))
}

// isSpanEndOn reports whether node n's subtree contains an End call on a
// tracer whose first argument is the span object. Deliberately does not
// skip function literals or defers: a defer crossed on a path fires at
// every later exit, and an End inside a deferred closure is the
// panic-cleanup idiom.
func isSpanEndOn(pass *Pass, n ast.Node, span types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" || len(call.Args) < 1 {
			return true
		}
		if !isTracerPointer(pass.TypeOf(unparen(sel.X))) {
			return true
		}
		if id, ok := unparen(call.Args[0]).(*ast.Ident); ok && pass.ObjectOf(id) == span {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkOneSpan classifies one Begin call and reports it when unbalanced.
func checkOneSpan(pass *Pass, body *ast.BlockStmt, begin *ast.CallExpr, parents map[ast.Node]ast.Node) {
	method := begin.Fun.(*ast.SelectorExpr).Sel.Name

	// Walk up to the first structurally meaningful parent.
	n := ast.Node(begin)
	for {
		p := parents[n]
		if p == nil {
			return
		}
		switch p := p.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.CallExpr:
			// Argument of another call: End => direct pass; anything else
			// transfers ownership.
			return
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.IndexExpr:
			return // escapes
		case *ast.ExprStmt:
			pass.Reportf(begin.Pos(),
				"span from %s is discarded: its End can never run; use defer tr.End(tr.%s(...)) or bind it (//lint:span to override)",
				method, method)
			return
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if unparen(rhs) != begin || i >= len(p.Lhs) {
					continue
				}
				lhs, ok := p.Lhs[i].(*ast.Ident)
				if !ok {
					return // stored through a selector/index: escapes
				}
				if lhs.Name == "_" {
					pass.Reportf(begin.Pos(),
						"span from %s is assigned to _: its End can never run (//lint:span to override)", method)
					return
				}
				checkSpanVarFlow(pass, body, begin, pass.ObjectOf(lhs), parents)
				return
			}
			return
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if unparen(v) == begin && i < len(p.Names) {
					checkSpanVarFlow(pass, body, begin, pass.ObjectOf(p.Names[i]), parents)
					return
				}
			}
			return
		default:
			return // unusual context: stay quiet rather than guess
		}
	}
}

// checkSpanVarFlow runs the CFG query for a span bound to a variable:
// every path from the Begin to the function exit must cross an End(span),
// unless the variable itself escapes.
func checkSpanVarFlow(pass *Pass, body *ast.BlockStmt, begin *ast.CallExpr, span types.Object, parents map[ast.Node]ast.Node) {
	if span == nil || spanVarEscapes(pass, body, span, begin, parents) {
		return
	}
	cfg := BuildCFG(body)
	fromBlock, fromNode := locateNode(cfg, begin)
	if fromBlock == nil {
		return
	}
	tracerObj := tracerReceiverObj(pass, begin)
	q := &PathQuery{
		Barrier: func(n ast.Node) bool { return isSpanEndOn(pass, n, span) },
		AvoidEdge: func(_ *Block, e Edge) bool {
			return tracerObj != nil && edgeAssertsNil(pass, e, tracerObj)
		},
	}
	if cfg.PathExists(fromBlock, fromNode, cfg.Exit, q) {
		method := begin.Fun.(*ast.SelectorExpr).Sel.Name
		pass.Reportf(begin.Pos(),
			"span %s from %s is not Ended on every exit path: defer the End or cover all returns (//lint:span to override)",
			span.Name(), method)
	}
}

// spanVarEscapes reports whether the span variable's value leaves the
// function by a route other than End: returned, passed to another call,
// stored through a selector/index, sent, or aggregated into a composite.
func spanVarEscapes(pass *Pass, body *ast.BlockStmt, span types.Object, begin *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != span {
			return true
		}
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			switch p := p.(type) {
			case *ast.ParenExpr:
				continue
			case *ast.CallExpr:
				if sel, ok := p.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					return true // End consumes it; not an escape
				}
				escapes = true
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
				escapes = true
			case *ast.AssignStmt:
				// span on the RHS being copied somewhere non-local.
				for i, rhs := range p.Rhs {
					if containsNode(rhs, id) && i < len(p.Lhs) {
						if _, plain := p.Lhs[i].(*ast.Ident); !plain {
							escapes = true
						}
					}
				}
			case *ast.SelectorExpr:
				// span.Field reads (sp.ID for logging) are not escapes.
				continue
			default:
			}
			break
		}
		return !escapes
	})
	return escapes
}

// tracerReceiverObj resolves the tracer variable the span was begun on,
// when it is a plain identifier.
func tracerReceiverObj(pass *Pass, begin *ast.CallExpr) types.Object {
	sel := begin.Fun.(*ast.SelectorExpr)
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		return pass.ObjectOf(id)
	}
	return nil
}

// edgeAssertsNil reports whether traversing e asserts obj == nil: the true
// arm of `obj == nil` or the false arm of `obj != nil`. Used to prune
// paths that are infeasible once the span was begun under a non-nil test.
func edgeAssertsNil(pass *Pass, e Edge, obj types.Object) bool {
	cmp, ok := unparen2(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var tested ast.Expr
	switch {
	case isNilIdent(cmp.Y):
		tested = unparen(cmp.X)
	case isNilIdent(cmp.X):
		tested = unparen(cmp.Y)
	default:
		return false
	}
	id, ok := tested.(*ast.Ident)
	if !ok || pass.ObjectOf(id) != obj {
		return false
	}
	switch cmp.Op {
	case token.EQL:
		return e.Taken
	case token.NEQ:
		return !e.Taken
	}
	return false
}

// unparen2 is unparen lifted over nil.
func unparen2(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return unparen(e)
}

// locateNode finds the block and leaf node of the CFG containing target.
func locateNode(cfg *CFG, target ast.Node) (*Block, ast.Node) {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if n == target || containsNode(n, target) {
				return b, n
			}
		}
	}
	return nil, nil
}

// buildParentMap indexes each node's syntactic parent within root.
func buildParentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
