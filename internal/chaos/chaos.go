// Package chaos is the engine's deterministic fault-injection harness. The
// long-running engines declare named fault points at their safe
// interruption sites (explore.layer, explore.warm, certify.visit,
// field.layer, field.shard, decision.field.layer, knowledge.bucket) by
// calling Inject; a test arms a Plan that fires a chosen fault — a panic, a
// delay, a forced cancellation, or forced budget exhaustion — on the k-th
// hit of a point, and everything else is a single atomic load plus a nil
// check.
//
// Plans are keyed by a seed: RandomPlan derives the victim point, the hit
// number, and the fault kind from a splitmix64 stream, so a failing chaos
// run is reproduced by its seed alone. Hit counters live in the plan, so
// re-arming a fresh plan replays the same schedule.
//
// The package is stdlib-only (plus internal/resilient for the error
// taxonomy): the engines above it import chaos, never the reverse.
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilient"
)

// Kind is the action a fault rule performs when it fires.
type Kind uint8

const (
	// KindPanic panics with a *Fault value. Fault points inside pool
	// workers use it to exercise panic containment.
	KindPanic Kind = iota + 1
	// KindDelay sleeps for the rule's Delay and then continues normally:
	// the run must still produce a correct verdict.
	KindDelay
	// KindCancel returns the fault as an error; engines treat it exactly
	// like a cancellation observed at that safe point and return their
	// partial, resumable state.
	KindCancel
	// KindBudget returns the fault as an error; engines surface it through
	// their budget-exhaustion path.
	KindBudget
)

// String names the kind for fault messages.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	case KindBudget:
		return "budget"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Fault is one fired fault: the point, the hit number it fired on, and the
// kind. As an error it wraps resilient.ErrPartial, so engine callers see an
// injected cancel/budget fault through the same errors.Is degradation
// check as a real one.
type Fault struct {
	Point string
	Kind  Kind
	Hit   uint64
	Delay time.Duration
}

func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected %s at %s (hit %d)", f.Kind, f.Point, f.Hit)
}

// Unwrap ties injected faults into the resilient degradation family.
func (f *Fault) Unwrap() error { return resilient.ErrPartial }

// Rule arms one fault at one point: fire Kind on the Hit-th call of
// Inject(point) (1-based).
type Rule struct {
	Hit   uint64
	Kind  Kind
	Delay time.Duration
}

// Plan is an armed set of rules with per-point hit counters.
type Plan struct {
	mu    sync.Mutex
	rules map[string]Rule
	hits  map[string]*uint64
	fired []*Fault
}

// NewPlan returns an empty plan; add rules with Set.
func NewPlan() *Plan {
	return &Plan{rules: make(map[string]Rule), hits: make(map[string]*uint64)}
}

// Set arms a rule for a point, replacing any existing rule there.
func (p *Plan) Set(point string, r Rule) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[point] = r
	if p.hits[point] == nil {
		p.hits[point] = new(uint64)
	}
	return p
}

// Hits returns how many times Inject(point) has been observed by this
// plan. Tests probe an uninterrupted run with a never-firing rule to learn
// how many interruption sites it passes, then randomize cuts inside that
// range.
func (p *Plan) Hits(point string) uint64 {
	p.mu.Lock()
	ctr := p.hits[point]
	p.mu.Unlock()
	if ctr == nil {
		return 0
	}
	return atomic.LoadUint64(ctr)
}

// Fired returns the faults this plan has fired, in firing order.
func (p *Plan) Fired() []*Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Fault(nil), p.fired...)
}

// Points lists the engine fault points, in the order they sit on the
// layer-sweep pipeline. Tests iterate it so a new fault point cannot be
// forgotten by the chaos suite.
func Points() []string {
	return []string{
		"explore.layer",
		"explore.warm",
		"certify.visit",
		"field.layer",
		"field.shard",
		"decision.field.layer",
		"knowledge.bucket",
	}
}

// RandomPlan derives a single-fault plan from a seed: a splitmix64 stream
// picks the victim point among candidates, a hit number in [1, maxHit],
// and a kind among kinds. The same seed always yields the same plan.
func RandomPlan(seed uint64, candidates []string, maxHit uint64, kinds []Kind) *Plan {
	s := seed
	point := candidates[int(splitmix64(&s)%uint64(len(candidates)))]
	hit := 1 + splitmix64(&s)%maxHit
	kind := kinds[int(splitmix64(&s)%uint64(len(kinds)))]
	return NewPlan().Set(point, Rule{Hit: hit, Kind: kind, Delay: time.Millisecond})
}

// PlanFor derives a single-fault plan for an explicit campaign cell: the
// point and kind are given (the campaign sweeps their full cross product),
// only the hit number in [1, maxHit] comes from the seed — salted with the
// point name and kind so the same seed cuts different cells at different
// hits. Deterministic: a campaign case is reproduced by (seed, point,
// kind, maxHit) alone.
func PlanFor(seed uint64, point string, kind Kind, maxHit uint64) *Plan {
	s := seed ^ uint64(kind)<<56
	for _, b := range []byte(point) {
		s = s*0x100000001b3 + uint64(b)
	}
	if maxHit < 1 {
		maxHit = 1
	}
	hit := 1 + splitmix64(&s)%maxHit
	return NewPlan().Set(point, Rule{Hit: hit, Kind: kind, Delay: time.Millisecond})
}

// splitmix64 advances the state and returns the next value of the
// splitmix64 stream — the standard seed-expansion mix, dependency-free.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// armed is the process-wide plan; nil when chaos is off (the default).
var armed atomic.Pointer[Plan]

// Arm installs p as the process-wide plan. Tests must Disarm before
// finishing (defer chaos.Disarm()).
func Arm(p *Plan) { armed.Store(p) }

// Disarm turns injection off; Inject returns nil afterwards.
func Disarm() { armed.Store(nil) }

// Inject is the fault point probe. Disarmed (the default) it is one atomic
// load and a nil check. Armed, it counts the hit and, when a rule fires:
// KindPanic panics with the *Fault, KindDelay sleeps and returns nil, and
// KindCancel/KindBudget return the *Fault as an error for the engine to
// surface through its cancellation or budget path.
func Inject(point string) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.inject(point)
}

// Check is the combined interruption probe the engines poll at their safe
// points: the context's cancel flag first, then the named fault point. Both
// halves are one atomic load in the common (live, disarmed) case.
func Check(ctx *resilient.Ctx, point string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Inject(point)
}

func (p *Plan) inject(point string) error {
	p.mu.Lock()
	r, ok := p.rules[point]
	ctr := p.hits[point]
	p.mu.Unlock()
	if !ok {
		return nil
	}
	hit := atomic.AddUint64(ctr, 1)
	if hit != r.Hit {
		return nil
	}
	f := &Fault{Point: point, Kind: r.Kind, Hit: hit, Delay: r.Delay}
	p.mu.Lock()
	p.fired = append(p.fired, f)
	p.mu.Unlock()
	if rec := obs.Active(); rec != nil {
		rec.Add("chaos.fired", 1)
		rec.Event("chaos.fired",
			obs.F{Key: "point", Value: point},
			obs.F{Key: "kind", Value: r.Kind.String()},
			obs.F{Key: "hit", Value: hit})
	}
	switch r.Kind {
	case KindPanic:
		panic(f)
	case KindDelay:
		time.Sleep(r.Delay)
		return nil
	default:
		return f
	}
}
